"""End-to-end tests for the YAML-driven CLI (the paper's T1 -> T2 chain)."""

import pytest

from repro.cli import main, subsample_main, train_main

SST_CASE = """
shared:
  dims: 3
  dtype: sst-binary
  input_vars: [u, v, w]
  output_vars: p
  cluster_var: pv
  gravity: z
  fileprefix: "cli-test"
subsample:
  hypercubes: maxent
  num_hypercubes: 3
  method: maxent
  num_samples: 64
  num_clusters: 4
  nxsl: 8
  nysl: 8
  nzsl: 8
train:
  epochs: 2
  batch: 4
  window: 1
  arch: MLP_transformer
"""

LSTM_CASE = """
shared:
  dims: 2
  dtype: openfoam
  input_vars: [u, v]
  output_vars: []
  cluster_var: p
subsample:
  hypercubes: random
  method: random
  num_hypercubes: 3
  num_samples: 16
  num_clusters: 4
  nxsl: 12
  nysl: 12
  nzsl: 1
train:
  epochs: 2
  batch: 4
  window: 3
  arch: lstm
"""


@pytest.fixture()
def sst_case(tmp_path):
    path = tmp_path / "case.yaml"
    path.write_text(SST_CASE)
    return str(path)


@pytest.fixture()
def lstm_case(tmp_path):
    path = tmp_path / "case.yaml"
    path.write_text(LSTM_CASE)
    return str(path)


class TestSubsampleCli:
    def test_runs_and_reports_energy(self, sst_case, capsys):
        code = subsample_main([sst_case, "--scale", "0.5", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Total Energy Consumed" in out
        assert "Subsampled" in out

    def test_parallel_ranks(self, sst_case, capsys):
        code = subsample_main([sst_case, "--scale", "0.5", "--ranks", "2"])
        assert code == 0
        assert "Elapsed Time" in capsys.readouterr().out

    def test_output_dir_persists(self, sst_case, tmp_path, capsys):
        out_dir = str(tmp_path / "snapshots")
        code = subsample_main([sst_case, "--scale", "0.5", "--output_dir", out_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "Saved subsample" in out
        assert "reduction" in out


class TestSourceFlags:
    def test_sharded_source_flag(self, sst_case, tmp_path, capsys):
        from repro.data import build_dataset, save_dataset

        shard_dir = str(tmp_path / "shards")
        save_dataset(build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=2),
                     shard_dir)
        code = subsample_main([sst_case, "--source", shard_dir,
                               "--max-cached-shards", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Subsampled" in out

    def test_sim_source_flag(self, sst_case, capsys):
        code = subsample_main([sst_case, "--scale", "0.5", "--source", "sim"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Subsampled" in out

    def test_stream_flag(self, sst_case, capsys):
        code = subsample_main([sst_case, "--scale", "0.5", "--stream"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Subsampled" in out
        assert "Total Energy Consumed" in out

    def test_stream_in_situ_combination(self, sst_case, tmp_path, capsys):
        """The headline path: sample while the simulation runs, then persist."""
        out_dir = str(tmp_path / "snapshots")
        code = subsample_main([sst_case, "--scale", "0.5", "--source", "sim",
                               "--stream", "--output_dir", out_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "Saved subsample" in out

    def test_stream_multirank_flag(self, sst_case, capsys):
        """--stream --ranks N drives the multi-producer merge path."""
        code = subsample_main([sst_case, "--scale", "0.5", "--stream",
                               "--ranks", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Subsampled" in out
        assert "Total Energy Consumed" in out

    def test_stream_sharded_prefetch(self, sst_case, tmp_path, capsys):
        """Sharded source + --prefetch + multi-rank stream, end to end."""
        from repro.data import load_dataset, save_dataset

        shard_dir = str(tmp_path / "shards")
        save_dataset(load_dataset("sst-binary", scale=0.5, rng=0), shard_dir)
        code = subsample_main([sst_case, "--scale", "0.5", "--stream",
                               "--ranks", "2", "--source", shard_dir,
                               "--max-cached-shards", "4", "--prefetch", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Subsampled" in out


class TestOwnedShardFlags:
    @pytest.fixture()
    def shard_dir(self, tmp_path):
        from repro.data import build_dataset, save_dataset

        path = str(tmp_path / "shards")
        save_dataset(build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4),
                     path)
        return path

    def test_owned_shards_stream(self, sst_case, shard_dir, capsys):
        code = subsample_main([sst_case, "--stream", "--ranks", "2",
                               "--source", shard_dir, "--owned-shards"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Subsampled" in out

    def test_injected_failure_reweights(self, sst_case, shard_dir, capsys):
        code = subsample_main([sst_case, "--stream", "--ranks", "2",
                               "--source", shard_dir, "--owned-shards",
                               "--on-rank-failure", "reweight",
                               "--inject-rank-failure", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Merged partial streams" in out
        assert "[1]" in out

    def test_injected_failure_raises_by_default(self, sst_case, shard_dir):
        with pytest.raises(RuntimeError, match="reweight"):
            subsample_main([sst_case, "--stream", "--ranks", "2",
                            "--source", shard_dir,
                            "--inject-rank-failure", "0"])


class TestFlagValidation:
    """Satellite: flags that cannot apply error out instead of being
    silently dropped."""

    def test_prefetch_requires_shard_source(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--prefetch", "2"])
        assert "--prefetch" in capsys.readouterr().err

    def test_prefetch_rejected_for_sim_source(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--source", "sim", "--prefetch", "2"])
        assert "in-situ" in capsys.readouterr().err

    def test_max_cached_warns_without_source(self, sst_case, capsys):
        code = subsample_main([sst_case, "--scale", "0.5",
                               "--max-cached-shards", "3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "no effect" in captured.err

    def test_owned_shards_requires_stream(self, sst_case, tmp_path, capsys):
        from repro.data import build_dataset, save_dataset

        shard_dir = str(tmp_path / "shards")
        save_dataset(build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=2),
                     shard_dir)
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--source", shard_dir, "--owned-shards"])
        assert "--owned-shards requires --stream" in capsys.readouterr().err

    def test_owned_shards_requires_shard_source(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--stream", "--ranks", "2",
                            "--owned-shards"])
        assert "--source" in capsys.readouterr().err

    def test_owned_shards_requires_multiple_ranks(self, sst_case, tmp_path, capsys):
        from repro.data import build_dataset, save_dataset

        shard_dir = str(tmp_path / "shards")
        save_dataset(build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=2),
                     shard_dir)
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--stream", "--source", shard_dir,
                            "--owned-shards"])
        assert "--ranks >= 2" in capsys.readouterr().err

    def test_on_rank_failure_requires_stream(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--ranks", "2",
                            "--on-rank-failure", "reweight"])
        assert "--on-rank-failure requires --stream" in capsys.readouterr().err

    def test_on_rank_failure_requires_multiple_ranks(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--stream",
                            "--on-rank-failure", "reweight"])
        assert "--ranks >= 2" in capsys.readouterr().err

    def test_inject_rank_failure_range_checked(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--stream", "--ranks", "2",
                            "--inject-rank-failure", "5"])
        assert "out of range" in capsys.readouterr().err

    def test_inject_rank_failure_requires_stream(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            subsample_main([sst_case, "--inject-rank-failure", "0"])
        assert "--inject-rank-failure" in capsys.readouterr().err


class TestTrainCli:
    def test_reconstruction_training(self, sst_case, capsys):
        code = train_main([sst_case, "--scale", "0.5", "--epochs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Evaluation on test set" in out
        assert "Total Energy Consumed" in out

    def test_lstm_drag_training(self, lstm_case, capsys):
        code = train_main([lstm_case, "--scale", "0.4", "--epochs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Evaluation on test set" in out

    def test_stream_training(self, sst_case, capsys):
        code = train_main([sst_case, "--scale", "0.5", "--epochs", "2",
                           "--stream"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Streamed" in out
        assert "Evaluation on test set" in out

    def test_stream_training_from_shards(self, sst_case, tmp_path, capsys):
        from repro.data import build_dataset, save_dataset

        shard_dir = str(tmp_path / "shards")
        save_dataset(build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=6),
                     shard_dir)
        code = train_main([sst_case, "--epochs", "2", "--stream",
                           "--source", shard_dir, "--max-cached-shards", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Evaluation on test set" in out

    def test_checkpoint_then_resume_matches_uninterrupted(self, sst_case,
                                                          tmp_path, capsys):
        ck = str(tmp_path / "ck.npz")
        assert train_main([sst_case, "--scale", "0.5", "--epochs", "3",
                           "--stream"]) == 0
        full = capsys.readouterr().out
        assert train_main([sst_case, "--scale", "0.5", "--epochs", "1",
                           "--stream", "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert train_main([sst_case, "--scale", "0.5", "--epochs", "3",
                           "--stream", "--resume", ck]) == 0
        resumed = capsys.readouterr().out

        def eval_line(text):
            return [ln for ln in text.splitlines()
                    if ln.startswith("Evaluation on test set")][0]

        assert eval_line(full) == eval_line(resumed)

    def test_tune_reports_best(self, sst_case, capsys):
        code = train_main([sst_case, "--scale", "0.5", "--tune", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Best of 2 trials" in out
        assert "lr=" in out


class TestTrainFlagValidation:
    """Satellite: repro-train rejects silently-ignored flag combos, in the
    same style as repro-subsample."""

    def test_tune_rejects_stream(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            train_main([sst_case, "--tune", "2", "--stream"])
        assert "--tune" in capsys.readouterr().err

    def test_tune_rejects_resume(self, sst_case, tmp_path, capsys):
        ck = tmp_path / "ck.npz"
        ck.write_bytes(b"")
        with pytest.raises(SystemExit):
            train_main([sst_case, "--tune", "2", "--resume", str(ck)])
        assert "--checkpoint/--resume" in capsys.readouterr().err

    def test_tune_rejects_multirank(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            train_main([sst_case, "--tune", "2", "--ranks", "2"])
        assert "--ranks" in capsys.readouterr().err

    def test_resume_missing_checkpoint(self, sst_case, tmp_path, capsys):
        with pytest.raises(SystemExit):
            train_main([sst_case, "--resume", str(tmp_path / "nope.npz")])
        assert "no checkpoint" in capsys.readouterr().err

    def test_checkpoint_every_requires_checkpoint(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            train_main([sst_case, "--checkpoint-every", "2"])
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpoint_every_must_be_positive(self, sst_case, tmp_path, capsys):
        with pytest.raises(SystemExit):
            train_main([sst_case, "--checkpoint", str(tmp_path / "ck.npz"),
                        "--checkpoint-every", "0"])
        assert "positive" in capsys.readouterr().err

    def test_prefetch_requires_shard_source(self, sst_case, capsys):
        with pytest.raises(SystemExit):
            train_main([sst_case, "--prefetch", "2"])
        assert "--prefetch" in capsys.readouterr().err

    def test_max_cached_warns_without_source(self, sst_case, capsys):
        code = train_main([sst_case, "--scale", "0.5", "--epochs", "2",
                           "--max-cached-shards", "3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "no effect" in captured.err


class TestDispatcher:
    def test_usage_on_bad_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_dispatch_subsample(self, sst_case, capsys):
        assert main(["subsample", sst_case, "--scale", "0.5"]) == 0
        assert "Subsampled" in capsys.readouterr().out
