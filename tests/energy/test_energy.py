"""Tests for the energy model, meters, and Eq. 3 cost model."""

import threading

import pytest

from repro.energy import EnergyMeter, EnergyModel, account, active_meter, cost_to_train


class TestEnergyModel:
    def test_dynamic_energy(self):
        m = EnergyModel(e_flop=1e-11, e_byte=1e-10)
        assert m.dynamic_energy(1e12, 0) == pytest.approx(10.0)
        assert m.dynamic_energy(0, 1e11) == pytest.approx(10.0)

    def test_movement_dominates_compute(self):
        """The paper's premise: moving a double costs >>(~100x) computing it."""
        m = EnergyModel()
        per_flop = m.dynamic_energy(1, 0)
        per_double_moved = m.dynamic_energy(0, 8)
        assert per_double_moved / per_flop >= 100

    def test_idle_energy(self):
        m = EnergyModel(p_idle_cpu=100.0, p_idle_gpu=400.0)
        assert m.idle_energy(2.0, gpus=4) == pytest.approx(2 * (100 + 1600))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().dynamic_energy(-1, 0)
        with pytest.raises(ValueError):
            EnergyModel().idle_energy(-1)


class TestEnergyMeter:
    def test_context_accounting(self):
        with EnergyMeter() as meter:
            account(flops=1e9, nbytes=1e6, device="gpu")
        assert meter.flops_gpu == 1e9
        assert meter.bytes_gpu == 1e6
        assert meter.total_energy > 0

    def test_no_active_meter_is_noop(self):
        assert active_meter() is None
        account(flops=1e9)  # must not raise

    def test_nested_meters_both_charged(self):
        with EnergyMeter() as outer:
            account(flops=100)
            with EnergyMeter() as inner:
                account(flops=10)
        assert inner.flops_gpu == 10
        assert outer.flops_gpu == 110

    def test_cpu_vs_gpu_split(self):
        with EnergyMeter() as meter:
            account(flops=5, device="cpu")
            account(flops=7, device="gpu")
        assert meter.flops_cpu == 5
        assert meter.flops_gpu == 7

    def test_bad_device(self):
        with pytest.raises(ValueError):
            EnergyMeter().record(flops=1, device="tpu")

    def test_idle_power_needs_elapsed(self):
        meter = EnergyMeter(gpus=2)
        meter.add_elapsed(10.0)
        assert meter.gpu_energy == pytest.approx(meter.model.p_idle_gpu * 2 * 10.0)

    def test_report_greppable(self):
        """Report must contain the lines the paper's analysis greps for."""
        meter = EnergyMeter()
        meter.record(flops=1e12)
        meter.add_elapsed(1.0)
        text = meter.report()
        assert "Total Energy Consumed" in text
        assert "CPU Energy" in text
        assert "Elapsed Time" in text

    def test_merge_sums_counters_max_elapsed(self):
        a, b = EnergyMeter(), EnergyMeter()
        a.record(flops=10)
        a.add_elapsed(1.0)
        b.record(flops=20)
        b.add_elapsed(5.0)
        a.merge(b)
        assert a.flops_gpu == 30
        assert a.elapsed == 5.0

    def test_meters_thread_local(self):
        """SPMD ranks meter independently — no cross-thread bleed."""
        seen = {}

        def worker():
            with EnergyMeter() as m:
                account(flops=111)
                seen["worker"] = m.flops_gpu

        with EnergyMeter() as main:
            t = threading.Thread(target=worker, daemon=True)
            t.start()
            t.join()
        assert seen["worker"] == 111
        assert main.flops_gpu == 0

    def test_exit_order_enforced(self):
        a, b = EnergyMeter(), EnergyMeter()
        a.__enter__()
        b.__enter__()
        with pytest.raises(RuntimeError):
            a.__exit__(None, None, None)
        b.__exit__(None, None, None)
        a.__exit__(None, None, None)


class TestCostToTrain:
    def test_training_term_linear_in_each_factor(self):
        base = cost_to_train(m=100, p=1000, e=10).training
        assert cost_to_train(m=200, p=1000, e=10).training == pytest.approx(2 * base)
        assert cost_to_train(m=100, p=2000, e=10).training == pytest.approx(2 * base)
        assert cost_to_train(m=100, p=1000, e=20).training == pytest.approx(2 * base)

    def test_sampling_amortized_over_full_scan(self):
        c = cost_to_train(m=100, p=10, e=1, sampling_cost_per_point=2.0, points_scanned=1e6)
        assert c.sampling == pytest.approx(2e6)
        assert c.total == c.sampling + c.training

    def test_subsampling_wins_when_epochs_large(self):
        """Eq. 3's core claim: sampling overhead amortizes under long training."""
        full = cost_to_train(m=1e6, p=1e5, e=1000)
        sampled = cost_to_train(
            m=1e5, p=1e5, e=1000, sampling_cost_per_point=100.0, points_scanned=1e6
        )
        assert sampled.total < full.total

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cost_to_train(m=-1, p=1, e=1)
