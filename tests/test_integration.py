"""Cross-module integration tests: the full paper workflow per dataset.

Each test runs the complete chain — generate dataset → two-phase subsample
(parallel) → assemble training data → train a few epochs → evaluate — plus
the storage and metric paths, verifying the modules compose exactly as the
benches and examples use them.
"""

import numpy as np
import pytest

from repro.data import SubsampleStore, build_dataset
from repro.metrics import nrmse, pdf_match_js
from repro.nn import CNNTransformer, LSTMRegressor, MLPTransformer, Tensor, no_grad
from repro.sampling import subsample
from repro.train import Trainer, build_drag_data, build_reconstruction_data
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


def case3d(method="maxent", hypercubes="maxent", cube=8, ns=64, arch="mlp_transformer"):
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes=hypercubes, method=method, num_hypercubes=4,
            num_samples=ns, num_clusters=4, nxsl=cube, nysl=cube, nzsl=cube,
        ),
        train=TrainConfig(arch=arch),
    )


class TestSSTWorkflow:
    @pytest.fixture(scope="class")
    def sst(self):
        return build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)

    def test_sampled_reconstruction_end_to_end(self, sst, tmp_path):
        res = subsample(sst, case3d(), nranks=2, seed=0)
        assert res.points is not None

        # Storage: feature-rich subsample is much smaller than raw fields.
        store = SubsampleStore(str(tmp_path))
        store.save("run", res.points)
        assert store.reduction_factor("run", sst.nbytes()) > 5

        data = build_reconstruction_data(sst, res, window=1, horizon=1)
        model = MLPTransformer(
            in_channels=data.in_channels, n_points=data.n_points,
            out_channels=data.out_channels, grid=data.grid,
            d_model=16, depth=1, n_heads=2, rng=0,
        )
        fit = Trainer(model, epochs=3, batch=4, seed=0).fit(data.x, data.y)
        assert np.isfinite(fit.final_test_loss)
        assert fit.energy.total_energy > 0

        # Model predictions have the right scale structure.
        with no_grad():
            pred = model(Tensor(data.x[:2])).data
        assert pred.shape == data.y[:2].shape
        assert np.isfinite(nrmse(pred, data.y[:2]))

    def test_full_baseline_end_to_end(self, sst):
        res = subsample(sst, case3d(method="full", arch="cnn_transformer"), seed=0)
        data = build_reconstruction_data(sst, res, window=1, horizon=1)
        model = CNNTransformer(
            in_channels=data.in_channels, out_channels=data.out_channels,
            grid=data.grid, d_model=16, depth=1, n_heads=2, rng=0,
        )
        fit = Trainer(model, epochs=2, batch=2, seed=0).fit(data.x, data.y)
        assert np.isfinite(fit.final_test_loss)

    def test_sampled_pdf_close_to_population(self, sst):
        res = subsample(sst, case3d(ns=128, cube=8), seed=0)
        population = np.concatenate([s.get("pv").ravel() for s in sst.snapshots])
        js = pdf_match_js(population, res.points.values["pv"])
        assert js < 0.5  # far from degenerate


class TestOF2DWorkflow:
    def test_drag_pipeline_end_to_end(self):
        ds = build_dataset("OF2D", scale=0.4, rng=0, n_snapshots=24)
        cfg = CaseConfig(
            shared=SharedConfig(dims=2),
            subsample=SubsampleConfig(
                hypercubes="random", method="maxent", num_hypercubes=3,
                num_samples=24, num_clusters=4, nxsl=12, nysl=12, nzsl=1,
            ),
            train=TrainConfig(arch="lstm", window=3),
        )
        res = subsample(ds, cfg, nranks=2, seed=0)
        x, y = build_drag_data(ds, res, window=3)
        model = LSTMRegressor(input_dim=x.shape[2], hidden=12, rng=0)
        fit = Trainer(model, epochs=8, batch=8, lr=5e-3, seed=0).fit(x, y)
        # Even a short run must beat predicting the mean badly.
        assert fit.final_test_loss < 10 * np.var(ds.target)


class TestGESTSWorkflow:
    def test_isotropic_methods_comparable(self):
        """On isotropic data the methods produce similar-quality subsets."""
        ds = build_dataset("GESTS-2048", scale=0.5, rng=0, spinup_steps=5)
        population = ds.snapshots[0].get("enstrophy").ravel()
        js = {}
        for method in ("random", "maxent"):
            res = subsample(ds, case3d(method=method, hypercubes="random"), seed=0)
            js[method] = pdf_match_js(population, res.points.values["enstrophy"])
        assert js["maxent"] < 1.0 and js["random"] < 1.0


class TestTemporalIntoPipeline:
    def test_snapshot_selection_then_subsample(self):
        """§4.3 composition: pick informative snapshots, then sample them."""
        from repro.data import TurbulenceDataset
        from repro.sampling import select_snapshots

        ds = build_dataset("OF2D", scale=0.4, rng=0, n_snapshots=40)
        keep = select_snapshots(ds.snapshots, 8, "wz", method="maxent", rng=0)
        reduced = TurbulenceDataset(
            label=ds.label,
            snapshots=[ds.snapshots[i] for i in keep],
            input_vars=ds.input_vars, output_vars=[], cluster_var=ds.cluster_var,
            target=ds.target[keep],
        )
        cfg = CaseConfig(
            shared=SharedConfig(dims=2),
            subsample=SubsampleConfig(
                hypercubes="random", method="random", num_hypercubes=2,
                num_samples=16, num_clusters=4, nxsl=12, nysl=12, nzsl=1,
            ),
            train=TrainConfig(arch="lstm"),
        )
        res = subsample(reduced, cfg, seed=0)
        assert res.n_samples == 2 * 16
