"""Runtime sanitizer tests: the deliberately-raced fixture must be caught,
quiescent use must not be, and shm leak tracking must balance."""

import threading
from multiprocessing import shared_memory

import pytest

from repro.lint import runtime


@pytest.fixture
def sanitizer():
    runtime.install()
    try:
        yield runtime
    finally:
        runtime.uninstall()


class Box:
    """Minimal lock-owning class, instrumented per-test via guard_class."""

    def __init__(self):
        self._lock = threading.RLock()
        self._data = {}

    def put(self, key, value):
        with self._lock:
            self._data[key] = value

    def racy_read(self):
        return dict(self._data)  # deliberately off-lock  # repro-lint: ignore[RPL003]


def test_enabled_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not runtime.enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not runtime.enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert runtime.enabled()


def test_tracked_rlock_ownership():
    lock = runtime.TrackedRLock()
    assert not lock.owned()
    with lock:
        assert lock.owned()
        assert not lock.held_by_other()
        with lock:  # reentrant
            assert lock.owned()
        assert lock.owned()
    assert not lock.owned()

    seen = {}
    with lock:
        t = threading.Thread(
            target=lambda: seen.update(other=lock.held_by_other()), daemon=True
        )
        t.start()
        t.join()
    assert seen["other"] is True


def test_deliberate_race_is_detected(sanitizer):
    sanitizer.guard_class(Box, "_lock", ("_data",))
    box = Box()
    box.put("a", 1)

    with box._lock:  # hold the lock on the main thread...
        t = threading.Thread(target=box.racy_read, daemon=True)
        t.start()  # ...while a worker reads guarded state off-lock
        t.join()

    report = sanitizer.check(strict=False)
    assert any(
        v.cls == "Box" and v.attr == "_data" and v.op == "read"
        for v in report["lock_violations"]
    )
    with pytest.raises(AssertionError, match="off-lock read"):
        sanitizer.check(strict=True)


def test_quiescent_access_not_flagged(sanitizer):
    sanitizer.guard_class(Box, "_lock", ("_data",))
    box = Box()
    box.put("a", 1)
    assert box.racy_read() == {"a": 1}  # single-threaded: benign
    # multi-threaded but disciplined use is also clean
    workers = [
        threading.Thread(target=box.put, args=(i, i), daemon=True) for i in range(4)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert sanitizer.check(strict=False)["lock_violations"] == []


def test_registered_classes_are_instrumented(sanitizer):
    from repro.data.sources import (
        RemoteTieredSource,
        ShardDirSource,
        ShardedNpzSource,
        SimulationSource,
    )
    from repro.parallel.threadcomm import CommWorld

    for cls, attr in (
        (ShardDirSource, "_cache"),
        (RemoteTieredSource, "_staged"),
        (SimulationSource, "_cache"),
        (CommWorld, "_queues"),
    ):
        assert type(cls.__dict__[attr]).__name__ == "_GuardedAttr"
    # the back-compat subclass inherits the instrumentation
    assert isinstance(ShardedNpzSource._cache, object)
    assert type(ShardedNpzSource.__mro__[1].__dict__["_cache"]).__name__ == "_GuardedAttr"


def test_shm_leak_detection(sanitizer):
    seg = shared_memory.SharedMemory(create=True, size=64)
    name = seg.name
    seg.close()
    assert name in sanitizer.shm_leaks()
    with pytest.raises(AssertionError, match="leaked shm segment"):
        sanitizer.check(strict=True)
    # balancing the segment clears the report
    reopen = shared_memory.SharedMemory(name=name)
    reopen.close()
    reopen.unlink()
    assert name not in sanitizer.shm_leaks()
    assert sanitizer.check(strict=False)["shm_leaks"] == []


def test_uninstall_restores_classes():
    from repro.data.sources import SimulationSource

    runtime.install()
    assert runtime.installed()
    runtime.uninstall()
    assert not runtime.installed()
    assert "_cache" not in SimulationSource.__dict__  # plain attribute again
    assert shared_memory.SharedMemory.__name__ == "SharedMemory"
    box = Box()  # never re-instrumented after uninstall
    box.put("a", 1)
    assert not isinstance(box._lock, runtime.TrackedRLock)


def test_install_is_idempotent():
    runtime.install()
    try:
        runtime.install()  # second call must not re-wrap __init__
        from repro.data.sources import SimulationSource

        wrapped = SimulationSource.__init__
        runtime.install()
        assert SimulationSource.__init__ is wrapped
    finally:
        runtime.uninstall()
