"""Suppression comments, lint.toml allowlists/excludes, and CLI contract."""

import os
import subprocess
import sys

import pytest

from repro.lint import LintConfig, lint_paths, load_config
from repro.lint.cli import main
from repro.lint.config import find_config

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

UNSEEDED = "import numpy as np\nrng = np.random.default_rng()\n"


def _write(tmp_path, name, text):
    p = tmp_path / name
    p.write_text(text)
    return str(p)


# -- inline suppressions -----------------------------------------------------


def test_inline_ignore_with_code(tmp_path):
    path = _write(
        tmp_path, "mod.py",
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro-lint: ignore[RPL001]\n",
    )
    assert lint_paths([path], LintConfig(root=str(tmp_path))) == []


def test_inline_ignore_bare_suppresses_all(tmp_path):
    path = _write(
        tmp_path, "mod.py",
        "import numpy as np\nrng = np.random.default_rng()  # repro-lint: ignore\n",
    )
    assert lint_paths([path], LintConfig(root=str(tmp_path))) == []


def test_inline_ignore_wrong_code_does_not_suppress(tmp_path):
    path = _write(
        tmp_path, "mod.py",
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro-lint: ignore[RPL006]\n",
    )
    diags = lint_paths([path], LintConfig(root=str(tmp_path)))
    assert [d.code for d in diags] == ["RPL001"]


# -- lint.toml ---------------------------------------------------------------


def test_allowlist_suppresses_matching_file(tmp_path):
    _write(tmp_path, "mod.py", UNSEEDED)
    toml = _write(
        tmp_path, "lint.toml",
        '[allow.RPL001]\n"mod.py" = "deliberate entropy for this demo"\n',
    )
    config = load_config(toml)
    assert lint_paths([str(tmp_path / "mod.py")], config) == []
    # the allowlist is per-code: other rules still run
    assert config.allowed("RPL001", "mod.py") == "deliberate entropy for this demo"
    assert config.allowed("RPL006", "mod.py") is None


def test_exclude_skips_directory_walk_but_not_explicit_files(tmp_path):
    sub = tmp_path / "vendored"
    sub.mkdir()
    bad = _write(sub, "mod.py", UNSEEDED)
    toml = _write(tmp_path, "lint.toml", 'exclude = ["vendored/*"]\n')
    config = load_config(toml)
    assert lint_paths([str(tmp_path)], config) == []
    # explicit file arguments bypass excludes (CI's seeded-violation check)
    assert [d.code for d in lint_paths([bad], config)] == ["RPL001"]


def test_bare_directory_pattern_covers_contents(tmp_path):
    sub = tmp_path / "vendored"
    sub.mkdir()
    _write(sub, "mod.py", UNSEEDED)
    toml = _write(tmp_path, "lint.toml", 'exclude = ["vendored"]\n')
    assert lint_paths([str(tmp_path)], load_config(toml)) == []


def test_unknown_config_keys_fail_loudly(tmp_path):
    toml = _write(tmp_path, "lint.toml", 'allowlist = ["typo"]\n')
    with pytest.raises(ValueError, match="unknown top-level keys"):
        load_config(toml)


def test_allowlist_requires_justification(tmp_path):
    toml = _write(tmp_path, "lint.toml", '[allow.RPL001]\n"mod.py" = ""\n')
    with pytest.raises(ValueError, match="justification"):
        load_config(toml)


def test_find_config_walks_upward(tmp_path):
    toml = _write(tmp_path, "lint.toml", "")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_config(str(nested)) == toml


def test_wallclock_modules_config(tmp_path):
    mod = _write(tmp_path, "virt.py", "import time\nt = time.time()\n")
    toml = _write(tmp_path, "lint.toml", '[rpl002]\nmodules = ["virt.py"]\n')
    diags = lint_paths([mod], load_config(toml))
    assert [d.code for d in diags] == ["RPL002"]
    # and without the config the same file is not a virtual-time module
    assert lint_paths([mod], LintConfig(root=str(tmp_path), wallclock_modules=())) == []


# -- CLI ---------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", UNSEEDED)
    clean = _write(tmp_path, "ok.py", "x = 1\n")
    assert main(["--no-config", clean]) == 0
    assert main(["--no-config", bad]) == 1
    out = capsys.readouterr()
    assert "RPL001" in out.out
    assert "1 finding(s)" in out.err
    assert main([]) == 2
    assert main(["--no-config", "--select", "NOPE", bad]) == 2


def test_cli_select_filters_rules(tmp_path):
    bad = _write(tmp_path, "bad.py", UNSEEDED)
    assert main(["--no-config", "--select", "RPL006", bad]) == 0
    assert main(["--no-config", "--select", "RPL001,RPL006", bad]) == 1


def test_module_entrypoint_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
    )
    assert proc.returncode == 0
    for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006"):
        assert code in proc.stdout
