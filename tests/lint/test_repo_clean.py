"""Meta-test: the repository itself lints clean with its own lint.toml.

This is the same gate CI runs; keeping it in the suite means a violation
fails locally before a PR ever reaches CI, and proves the shipped
configuration (excludes, allowlist, wallclock modules) actually resolves.
"""

import os

from repro.lint import lint_paths, load_config

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_repo_tree_lints_clean():
    config = load_config(os.path.join(REPO, "lint.toml"))
    paths = [os.path.join(REPO, d) for d in ("src", "tests", "benchmarks")]
    diags = lint_paths(paths, config)
    assert diags == [], "\n".join(d.render() for d in diags)


def test_repo_config_allowlists_only_rng_module():
    config = load_config(os.path.join(REPO, "lint.toml"))
    assert set(config.allow) == {"RPL001"}
    assert list(config.allow["RPL001"]) == ["src/repro/utils/rng.py"]


def test_flag_fixtures_are_excluded_from_tree_walks():
    config = load_config(os.path.join(REPO, "lint.toml"))
    assert config.excluded("tests/lint/fixtures/rpl001_flag.py")
