"""Meta-test: the repository itself lints clean with its own lint.toml.

This is the same gate CI runs; keeping it in the suite means a violation
fails locally before a PR ever reaches CI, and proves the shipped
configuration (excludes, allowlist, wallclock modules) actually resolves.
"""

import os

from repro.lint import lint_paths, load_config

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_repo_tree_lints_clean():
    config = load_config(os.path.join(REPO, "lint.toml"))
    paths = [os.path.join(REPO, d) for d in ("src", "tests", "benchmarks")]
    diags = lint_paths(paths, config)
    assert diags == [], "\n".join(d.render() for d in diags)


def test_repo_config_allowlists_only_rng_module():
    config = load_config(os.path.join(REPO, "lint.toml"))
    assert set(config.allow) == {"RPL001"}
    assert list(config.allow["RPL001"]) == ["src/repro/utils/rng.py"]


def test_flag_fixtures_are_excluded_from_tree_walks():
    config = load_config(os.path.join(REPO, "lint.toml"))
    assert config.excluded("tests/lint/fixtures/rpl001_flag.py")


def test_rule_set_covers_rpl001_through_rpl009():
    from repro.lint.rules import ALL_CHECKERS

    codes = {c.code for c in ALL_CHECKERS}
    assert codes == {f"RPL00{i}" for i in range(1, 10)}
    assert {c.code for c in ALL_CHECKERS if getattr(c, "project", False)} == {
        "RPL007", "RPL008", "RPL009",
    }


def test_project_rule_suppressions_are_documented():
    """The interprocedural rules pass over the tree with exactly the
    known justified inline ignores: StreamFeed's derived test-batch cache
    (rebuilt deterministically on resume, so not checkpoint state)."""
    found = []
    for sub in ("src", "tests", "benchmarks"):
        for dirpath, _, filenames in os.walk(os.path.join(REPO, sub)):
            if "fixtures" in dirpath:
                continue
            for name in filenames:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as fh:
                    for lineno, line in enumerate(fh, 1):
                        if "repro-lint: ignore" not in line:
                            continue
                        if any(c in line for c in ("RPL007", "RPL008", "RPL009")):
                            found.append((os.path.relpath(path, REPO), lineno))
    assert sorted({p for p, _ in found}) == ["src/repro/train/feeds.py"]
    assert len(found) == 2
