"""Fixture: leaked factory resources (RPL009)."""

import tempfile
import threading
from multiprocessing import shared_memory


def attach_segment(name):
    return shared_memory.SharedMemory(name=name)


def make_scratch_dir():
    return tempfile.mkdtemp(prefix="repro-")


def spawn_worker(fn):
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    return t


def read_header(name):
    seg = attach_segment(name)  # never close()d/unlink()ed
    return bytes(seg.buf[:8])


def scratch_and_forget():
    make_scratch_dir()  # discarded outright
    return True


def fire_and_forget(fn):
    worker = spawn_worker(fn)  # never joined or handed to an owner
    print("spawned", worker.name)
