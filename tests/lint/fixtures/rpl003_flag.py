"""Fixture: guarded attribute touched off-lock (RPL003)."""

import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict = {}

    def put(self, key, value) -> None:
        with self._lock:
            self._items[key] = value

    def get(self, key):
        return self._items.get(key)  # off-lock read of guarded state

    def drop(self, key) -> None:
        self._items.pop(key, None)  # off-lock mutation of guarded state
