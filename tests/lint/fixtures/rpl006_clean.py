"""Fixture: honest exception handling — RPL006 must stay silent."""

failures: list = []


def record(fn):
    try:
        return fn()
    except Exception as exc:  # broad but the handler does real work
        failures.append(exc)
        return None


def narrow(fn):
    try:
        return fn()
    except ValueError:
        pass  # narrow excepts may ignore


def reraise(fn):
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc
