"""Fixture: rank-divergent collectives (RPL007)."""

from repro.parallel.spmd import run_spmd


def rank0_only_allreduce(comm, xs):
    if comm.rank == 0:  # allreduce has no matching call on the other ranks
        total = comm.allreduce(sum(xs))
    else:
        total = None
    return total


def early_return_skips_barrier(comm, payload):
    if comm.rank != 0:  # returning ranks never reach gather/barrier below
        return None
    rows = comm.gather(payload)
    comm.barrier()
    return rows


def per_rank_rounds(comm, grads):
    acc = grads
    for _ in range(comm.rank):  # per-rank iteration count desynchronizes
        acc = comm.allreduce(acc)
    return acc


def _sync(comm, value):
    return comm.bcast(value)


def broadcast_from_root(comm, value):
    if comm.rank == 0:  # the collective hides one call deep in _sync()
        value = _sync(comm, value)
    return value


def launch(xs):
    return run_spmd(rank0_only_allreduce, nranks=4, args=(xs,))
