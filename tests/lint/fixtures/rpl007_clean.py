"""Fixture: collectives in lock-step (RPL007)."""


def balanced_allreduce(comm, xs):
    total = comm.allreduce(sum(xs))  # every rank rendezvouses
    if comm.rank == 0:
        print("total", total)  # rank-dependent but collective-free
    return total


def size_guard_is_uniform(comm, xs):
    if comm.size == 1:  # size tests agree on every rank
        return sum(xs)
    return comm.allreduce(sum(xs))


def matched_branches(comm, payload):
    if comm.rank == 0:
        rows = comm.gather(payload)
    else:
        rows = comm.gather(None)  # same rendezvous on both sides
    comm.barrier()
    return rows


def _sync(comm, value):
    return comm.bcast(value)


def helper_on_every_rank(comm, value):
    value = _sync(comm, value)  # interprocedural, but unconditional
    if comm.rank == 0 and value is None:
        raise RuntimeError("abort")  # raising rank never rendezvouses
    return comm.bcast(value)
