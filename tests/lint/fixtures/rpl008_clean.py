"""Fixture: checkpoint state fully covered (RPL008)."""


class WindowFeed:
    def __init__(self):
        self._epoch = 0
        self._offset = 0

    def advance(self):
        self._epoch += 1
        self._offset += 3

    def state(self):
        return {"epoch": self._epoch, "offset": self._offset}

    def load_state(self, payload):
        self._epoch = payload["epoch"]
        self._offset = payload["offset"]


class EnergyMeter:
    """Coverage through a helper: rank_state() delegates to _snapshot()."""

    def __init__(self):
        self._joules = 0.0
        self._samples = 0

    def observe(self, watts, dt):
        self._joules += watts * dt
        self._samples += 1

    def _snapshot(self):
        return {"joules": self._joules, "samples": self._samples}

    def rank_state(self):
        return self._snapshot()

    def load_rank_state(self, payload):
        self._joules = payload["joules"]
        self._samples = payload["samples"]

    def reset(self):
        self._joules = 0.0  # lifecycle rebuild, not training-time evolution
        self._samples = 0
