"""Fixture: ordered or order-insensitive set use — RPL004 must stay silent."""


def total_bytes(chunks: dict) -> float:
    pending = set(chunks)
    total = 0.0
    for key in sorted(pending):
        total += chunks[key]
    return total


def payload(n: int) -> list:
    ranks = {i % 7 for i in range(n)}
    return [r * 2 for r in sorted(ranks)]


def extrema(n: int) -> tuple:
    ranks = {i % 7 for i in range(n)}
    return (min(r for r in sorted(ranks)), max(ranks), len(ranks))


def membership(n: int) -> bool:
    ranks = {i % 5 for i in range(n)}
    for r in ranks:  # no accumulation in the body: order-free
        print(r)
    return bool(ranks)
