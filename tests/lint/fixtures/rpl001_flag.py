"""Fixture: every statement below must trip RPL001 (never imported)."""

import random

import numpy as np
from numpy.random import default_rng

x = np.random.rand(3)
np.random.seed(0)
rng = np.random.default_rng()
rng2 = default_rng()
r = np.random.RandomState()
v = random.random()
random.shuffle([1, 2, 3])
rr = random.Random()
