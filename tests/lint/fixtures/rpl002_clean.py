"""Fixture: pure virtual-time arithmetic — RPL002 must stay silent even
when this file is configured as a wallclock module."""


def advance(clock: float, latency: float, nbytes: int, bandwidth: float) -> float:
    return clock + latency + nbytes / bandwidth


def max_clock(clocks: list) -> float:
    return max(clocks)
