"""Fixture: unbalanced OS resources (RPL005)."""

import tempfile
import threading
from multiprocessing import shared_memory


def leak_segment(nbytes: int) -> bytes:
    seg = shared_memory.SharedMemory(create=True, size=nbytes)
    return bytes(seg.buf[:8])  # neither close() nor unlink()


def stray_thread(fn) -> None:
    t = threading.Thread(target=fn)  # no explicit daemon=
    t.start()


def leak_dir() -> str:
    root = tempfile.mkdtemp()
    return root  # no try/finally cleanup anywhere in this function
