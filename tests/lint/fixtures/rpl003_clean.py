"""Fixture: disciplined locking — RPL003 must stay silent."""

import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict = {}
        self.hits = 0  # __init__ writes never make state "guarded"

    def put(self, key, value) -> None:
        with self._lock:
            self._items[key] = value

    def get(self, key):
        with self._lock:
            return self._items.get(key)

    def _evict_oldest(self) -> None:
        """Drop one entry; caller holds the lock."""
        if self._items:
            self._items.pop(next(iter(self._items)))
