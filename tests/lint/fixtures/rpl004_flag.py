"""Fixture: set iteration feeding numeric accumulation (RPL004)."""


def total_bytes(chunks: dict) -> float:
    pending = set(chunks)
    total = 0.0
    for key in pending:
        total += chunks[key]
    return total


def payload(n: int) -> list:
    ranks = {i % 7 for i in range(n)}
    return [r * 2 for r in ranks]
