"""Fixture: checkpoint state coverage gaps (RPL008)."""


class WindowFeed:
    """The epoch cursor is checkpointed but the window offset is not:
    a resumed run replays the wrong batches, silently."""

    def __init__(self):
        self._epoch = 0
        self._offset = 0

    def advance(self):
        self._epoch += 1
        self._offset += 3  # never round-tripped through state()

    def state(self):
        return {"epoch": self._epoch}

    def load_state(self, payload):
        self._epoch = payload["epoch"]


class CountingCallback:
    state_key = "counter"

    def __init__(self):
        self._steps = 0
        self._history = []

    def on_step_end(self, loop):
        self._steps += 1
        self._history.append(self._steps)  # grows, but state() ignores it

    def state(self):
        return {"steps": self._steps}

    def load_state(self, payload):
        self._steps = payload["steps"]


class MiniLoop:
    def __init__(self, feed):
        self._feed = feed
        self._step = 0
        self._best = None

    def fit(self, steps):
        self.load_checkpoint({})  # restore orchestrator: exempt from scan
        for _ in range(steps):
            self.train_step()

    def train_step(self):
        self._step += 1
        self._best = self._step  # missing from the checkpoint payload

    def save_checkpoint(self):
        return {"step": self._step}

    def load_checkpoint(self, payload):
        self._step = payload.get("step", 0)
