"""Fixture: factory resources released or transferred (RPL009)."""

import shutil
import tempfile
import threading
from multiprocessing import shared_memory


def attach_segment(name):
    return shared_memory.SharedMemory(name=name)


def make_scratch_dir():
    return tempfile.mkdtemp(prefix="repro-")


def spawn_worker(fn):
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    return t


def read_header(name):
    seg = attach_segment(name)
    try:
        return bytes(seg.buf[:8])
    finally:
        seg.close()  # released in-function


def forward_segment(name):
    return attach_segment(name)  # transferred: the caller owns it now


class SegmentHolder:
    def __init__(self, name):
        self.seg = attach_segment(name)  # owner lifecycle takes over

    def close(self):
        self.seg.close()


def scratch_build():
    root = make_scratch_dir()
    try:
        return root + "/artifact"
    finally:
        shutil.rmtree(root)


def run_worker(fn):
    w = spawn_worker(fn)
    w.join()
