"""Fixture: seeded / sanctioned RNG use — RPL001 must stay silent."""

import random

import numpy as np
from numpy.random import default_rng

rng = np.random.default_rng(42)
rng2 = default_rng(7)
state = np.random.RandomState(0)
child = rng.spawn(1)[0]
seq = np.random.SeedSequence(123)
local = random.Random(5)
sys_rng = random.SystemRandom()
draw = rng.normal(size=3)
