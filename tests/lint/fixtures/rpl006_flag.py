"""Fixture: swallowed exceptions (RPL006)."""


def swallow_everything(fn):
    try:
        return fn()
    except:  # noqa: E722 - the bare except is the point
        pass


def swallow_broad(fn):
    try:
        return fn()
    except Exception:
        pass


def swallow_tuple(fn):
    try:
        return fn()
    except (ValueError, BaseException):
        ...
