"""Fixture: balanced OS resources — RPL005 must stay silent."""

import shutil
import tempfile
import threading
from multiprocessing import shared_memory


def roundtrip(nbytes: int) -> bytes:
    seg = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        return bytes(seg.buf[:8])
    finally:
        seg.close()
        seg.unlink()


def joined_thread(fn) -> None:
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    t.join()


def scratch_dir(build) -> str:
    root = tempfile.mkdtemp()
    try:
        build(root)
    except BaseException:
        shutil.rmtree(root, ignore_errors=True)
        raise
    return root
