"""Fixture: wall-clock reads in a virtual-time module (RPL002 when the
test config lists this file as a wallclock module)."""

import time
from datetime import datetime


def advance(clock: float) -> float:
    start = time.time()
    now = time.perf_counter()
    stamp = datetime.now()
    time.sleep(0.1)
    return clock + start + now + stamp.timestamp()
