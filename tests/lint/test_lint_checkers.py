"""Per-rule fixture tests: each flag fixture must fire its rule, each
clean fixture must stay silent, for every checker RPL001-RPL009 (the
project rules RPL007-RPL009 run on a single-file call graph here)."""

import os

import pytest

from repro.lint import LintConfig, lint_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: code -> (config kwargs, minimum findings expected from the flag fixture)
RULES = {
    "RPL001": ({}, 6),
    "RPL002": ({"wallclock_modules": ("rpl002_*.py",)}, 3),
    "RPL003": ({}, 2),
    "RPL004": ({}, 2),
    "RPL005": ({}, 3),
    "RPL006": ({}, 3),
    "RPL007": ({}, 4),
    "RPL008": ({}, 3),
    "RPL009": ({}, 3),
}


def _lint(code: str, kind: str) -> list:
    kwargs, _ = RULES[code]
    config = LintConfig(root=FIXTURES, **kwargs)
    path = os.path.join(FIXTURES, f"{code.lower()}_{kind}.py")
    return lint_paths([path], config)


@pytest.mark.parametrize("code", sorted(RULES))
def test_flag_fixture_fires(code):
    diags = _lint(code, "flag")
    assert diags, f"{code} flag fixture produced no findings"
    mine = [d for d in diags if d.code == code]
    assert len(mine) >= RULES[code][1]
    # ruff-style rendering: path:line:col CODE message
    head = mine[0].render()
    assert f" {code} " in head and head.startswith(f"{code.lower()}_flag.py:")


@pytest.mark.parametrize("code", sorted(RULES))
def test_clean_fixture_silent(code):
    diags = _lint(code, "clean")
    assert [d for d in diags if d.code == code] == []


def test_flag_findings_carry_positions():
    for diag in _lint("RPL001", "flag"):
        assert diag.line >= 1
        assert diag.col >= 0


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    diags = lint_paths([str(bad)], LintConfig(root=str(tmp_path)))
    assert [d.code for d in diags] == ["RPL999"]
