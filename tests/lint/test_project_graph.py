"""Call-graph unit suite for ``repro.lint.project``: alias chains,
method resolution across bases, super(), nested closures, local type
inference, and cycle safety."""

import textwrap

from repro.lint.config import LintConfig
from repro.lint.core import SourceFile
from repro.lint.project import ProjectGraph, module_name
from repro.lint.rules.collectives import CollectiveLockstepChecker


def _graph(files: dict) -> ProjectGraph:
    return ProjectGraph({
        relpath: SourceFile(relpath, textwrap.dedent(text))
        for relpath, text in files.items()
    })


def test_module_name_strips_src_and_init():
    assert module_name("src/repro/train/loop.py") == "repro.train.loop"
    assert module_name("src/repro/__init__.py") == "repro"
    assert module_name("benchmarks/bench_x.py") == "benchmarks.bench_x"


def test_alias_chain_resolves_cross_module():
    g = _graph({
        "src/pkg/a.py": """\
            def f():
                return 1
        """,
        "src/pkg/b.py": """\
            from pkg.a import f as renamed

            def caller():
                return renamed()
        """,
    })
    [(_, target)] = list(g.calls(g.functions["pkg.b.caller"]))
    assert target is g.functions["pkg.a.f"]


def test_method_resolution_walks_bases():
    g = _graph({
        "src/pkg/m.py": """\
            class Base:
                def run(self):
                    return self.helper()

                def helper(self):
                    return 0

            class Child(Base):
                def helper(self):
                    return 1

            def use():
                c = Child()
                return c.run()
        """,
    })
    child = g.classes["pkg.m.Child"]
    assert g.resolve_method(child, "run") is g.functions["pkg.m.Base.run"]
    assert g.resolve_method(child, "helper") is g.functions["pkg.m.Child.helper"]
    # local inference: ``c = Child()`` makes ``c.run()`` resolvable
    targets = {t.qualname for _, t in g.calls(g.functions["pkg.m.use"]) if t}
    assert "pkg.m.Base.run" in targets
    # self-dispatch inside Base.run
    [(_, helper)] = list(g.calls(g.functions["pkg.m.Base.run"]))
    assert helper is g.functions["pkg.m.Base.helper"]


def test_super_call_resolves_to_base():
    g = _graph({
        "src/pkg/s.py": """\
            class Top:
                def setup(self):
                    return 0

            class Sub(Top):
                def setup(self):
                    return super().setup() + 1
        """,
    })
    # calls() yields both ``super()`` itself (opaque) and the method call
    targets = [t for _, t in g.calls(g.functions["pkg.s.Sub.setup"]) if t]
    assert targets == [g.functions["pkg.s.Top.setup"]]


def test_nested_closures_get_locals_qualnames():
    g = _graph({
        "src/pkg/n.py": """\
            def outer():
                def inner():
                    return 2
                return inner()
        """,
    })
    assert "pkg.n.outer.<locals>.inner" in g.functions
    [(_, target)] = list(g.calls(g.functions["pkg.n.outer"]))
    assert target is g.functions["pkg.n.outer.<locals>.inner"]


def test_annotation_inference_handles_optional_and_union():
    g = _graph({
        "src/pkg/t.py": """\
            from typing import Optional

            class Worker:
                def go(self):
                    return 1

            def a(w: Worker):
                return w.go()

            def b(w: Optional[Worker]):
                return w.go()

            def c(w: "Worker | None"):
                return w.go()
        """,
    })
    for name in ("a", "b", "c"):
        [(_, target)] = list(g.calls(g.functions[f"pkg.t.{name}"]))
        assert target is g.functions["pkg.t.Worker.go"], name


def test_inheritance_cycle_terminates():
    g = _graph({
        "src/pkg/cyc.py": """\
            class A(B):
                def only_a(self):
                    return 1

            class B(A):
                def only_b(self):
                    return 2
        """,
    })
    a = g.classes["pkg.cyc.A"]
    assert g.resolve_method(a, "only_b") is g.functions["pkg.cyc.B.only_b"]
    assert g.resolve_method(a, "missing") is None


def test_call_cycle_terminates_in_collective_analysis():
    g = _graph({
        "src/pkg/c.py": """\
            def ping(comm, n):
                comm.barrier()
                if n:
                    return pong(comm, n - 1)
                return 0

            def pong(comm, n):
                return ping(comm, n)
        """,
    })
    diags = list(CollectiveLockstepChecker().check_project(g, LintConfig()))
    assert diags == []


def test_unresolvable_calls_stay_opaque():
    g = _graph({
        "src/pkg/u.py": """\
            import os

            def f(x):
                os.getpid()
                x.anything()
                return undefined_name()
        """,
    })
    targets = [t for _, t in g.calls(g.functions["pkg.u.f"])]
    assert targets == [None, None, None]
