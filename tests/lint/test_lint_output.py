"""``--format`` structured output and ``--jobs`` parallel equivalence."""

import json
import os

import pytest

from repro.lint import LintConfig, lint_paths
from repro.lint.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
FLAG = os.path.join(FIXTURES, "rpl001_flag.py")


# -- --format ----------------------------------------------------------------


def test_format_json_one_object_per_line(capsys):
    rc = main(["--no-config", "--format", "json", FLAG])
    assert rc == 1
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines
    for line in lines:
        obj = json.loads(line)
        assert set(obj) == {"path", "line", "col", "code", "message"}
        assert obj["code"].startswith("RPL")
        assert obj["line"] >= 1


def test_format_github_error_annotations(capsys):
    rc = main(["--no-config", "--format", "github", FLAG])
    assert rc == 1
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines
    for line in lines:
        assert line.startswith("::error file=")
        assert ",line=" in line and ",col=" in line and ",title=RPL" in line


def test_format_text_matches_render(capsys):
    main(["--no-config", FLAG])
    text = capsys.readouterr().out
    config = LintConfig()
    expected = "\n".join(d.render() for d in lint_paths([FLAG], config)) + "\n"
    assert text == expected


def test_clean_run_is_silent_in_every_format(capsys):
    clean = os.path.join(FIXTURES, "rpl001_clean.py")
    for fmt in ("text", "json", "github"):
        rc = main(["--no-config", "--format", fmt, "--select", "RPL001", clean])
        assert rc == 0
        assert capsys.readouterr().out == ""


# -- --jobs ------------------------------------------------------------------


def test_jobs_output_identical_to_serial():
    config = LintConfig(root=FIXTURES)
    serial = lint_paths([FIXTURES], config)
    parallel = lint_paths([FIXTURES], config, jobs=2)
    assert serial  # the flag fixtures guarantee a non-trivial comparison
    assert parallel == serial


def test_jobs_report_syntax_errors_once(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    (tmp_path / "fine.py").write_text("x = 1\n")
    config = LintConfig(root=str(tmp_path))
    serial = lint_paths([str(tmp_path)], config)
    parallel = lint_paths([str(tmp_path)], config, jobs=2)
    assert [d.code for d in serial] == ["RPL999"]
    assert parallel == serial


@pytest.mark.parametrize("jobs", ["0", "-1"])
def test_jobs_must_be_positive(jobs, capsys):
    rc = main(["--no-config", "--jobs", jobs, FLAG])
    assert rc == 2
    assert "--jobs" in capsys.readouterr().err


def test_jobs_cli_exit_code_and_output_match_serial(capsys):
    rc_serial = main(["--no-config", FLAG])
    out_serial = capsys.readouterr().out
    rc_parallel = main(["--no-config", "--jobs", "2", FLAG])
    out_parallel = capsys.readouterr().out
    assert rc_serial == rc_parallel == 1
    assert out_parallel == out_serial
