"""Coverage for smaller surfaces: logging, SPMD results, misc layers, viz."""

import logging

import numpy as np
import pytest

from repro.nn import GELU, Sequential, Linear, Tensor
from repro.parallel import run_spmd
from repro.parallel.spmd import SpmdResult
from repro.parallel.perfmodel import VirtualClock
from repro.utils.log import get_logger, log_kv
from repro.utils.rng import seed_everything


class TestLogging:
    def test_logger_idempotent(self):
        a = get_logger("repro.test.x")
        b = get_logger("repro.test.x")
        assert a is b
        assert len(a.handlers) == 1

    def test_log_kv_greppable(self, caplog):
        logger = get_logger("repro.test.kv")
        logger.propagate = True
        with caplog.at_level(logging.INFO, logger="repro.test.kv"):
            log_kv(logger, "Total Energy Consumed", 42.0)
        assert "Total Energy Consumed: 42.0" in caplog.text


class TestSeedEverything:
    def test_seeds_global_rngs(self):
        import random

        seed_everything(123)
        # Global-state draws are the point here: the test proves
        # seed_everything() pins exactly these streams.
        a = (random.random(), np.random.rand())  # repro-lint: ignore[RPL001]
        seed_everything(123)
        b = (random.random(), np.random.rand())  # repro-lint: ignore[RPL001]
        assert a == b


class TestSpmdResult:
    def test_len_getitem_makespan(self):
        clocks = [VirtualClock(), VirtualClock()]
        clocks[1].t = 5.0
        res = SpmdResult(values=["a", "b"], clocks=clocks)
        assert len(res) == 2
        assert res[1] == "b"
        assert res.virtual_time == 5.0

    def test_kwargs_passthrough(self):
        def prog(comm, a, b=0):
            return a + b + comm.rank

        res = run_spmd(prog, 2, 10, b=5)
        assert res.values == [15, 16]

    def test_nranks_validation(self):
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 0)


class TestMiscLayers:
    def test_gelu_close_to_exact(self):
        from scipy.stats import norm

        x = np.linspace(-3, 3, 31)
        out = GELU()(Tensor(x)).data
        exact = x * norm.cdf(x)
        assert np.allclose(out, exact, atol=2e-3)

    def test_sequential_order(self):
        rng = np.random.default_rng(0)
        a = Linear(3, 4, rng=rng)
        b = Linear(4, 2, rng=rng)
        seq = Sequential(a, b)
        x = Tensor(rng.standard_normal((5, 3)))
        manual = b(a(x)).data
        assert np.allclose(seq(x).data, manual)

    def test_tensor_repr_and_helpers(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        assert "grad" in repr(t)
        assert t.numpy().tolist() == [1.0, 2.0]
        assert Tensor([3.0]).item() == 3.0


class TestTrainerVerbose:
    def test_verbose_logging_runs(self):
        from repro.nn import LSTMRegressor
        from repro.train import Trainer

        rng = np.random.default_rng(1)
        x = rng.standard_normal((12, 2, 3))
        y = rng.standard_normal((12, 1, 1))
        model = LSTMRegressor(input_dim=3, hidden=8, rng=0)
        fit = Trainer(model, epochs=2, batch=4, seed=0, verbose=True).fit(x, y)
        assert fit.epochs_run == 2

    def test_invalid_gpu_rate(self):
        from repro.nn import LSTMRegressor
        from repro.train import Trainer

        with pytest.raises(ValueError):
            Trainer(LSTMRegressor(input_dim=2, rng=0), gpu_flops_rate=0.0)


class TestCliModelFactory:
    def test_matey_branch(self):
        from repro.cli import build_model_for_case
        from repro.nn import MATEY
        from repro.train.data import ReconstructionData
        from repro.utils.config import CaseConfig, SubsampleConfig, TrainConfig

        data = ReconstructionData(
            x=np.zeros((2, 1, 1, 8, 8, 8)), y=np.zeros((2, 1, 1, 8, 8, 8)),
            grid=(8, 8, 8), in_channels=1, out_channels=1, n_points=None,
        )
        case = CaseConfig(
            subsample=SubsampleConfig(method="full"),
            train=TrainConfig(arch="matey"),
        )
        model = build_model_for_case(case, data)
        assert isinstance(model, MATEY)

    def test_lstm_requires_input_dim(self):
        from repro.cli import build_model_for_case
        from repro.utils.config import CaseConfig, TrainConfig

        case = CaseConfig(train=TrainConfig(arch="lstm"))
        with pytest.raises(ValueError):
            build_model_for_case(case, None)
