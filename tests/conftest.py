"""Suite-wide guards.

The process SPMD backend forks real workers; a bug in its teardown would
leak children that outlive the test that spawned them (and, on CI, hang the
runner waiting on them).  The session fixture below asserts the suite ends
with no live multiprocessing children, after a short drain for workers
whose parent already initiated the join.
"""

import multiprocessing as mp
import time

import pytest


@pytest.fixture(autouse=True, scope="session")
def no_orphaned_workers():
    yield
    deadline = time.monotonic() + 5.0
    children = mp.active_children()  # also reaps finished processes
    while children and time.monotonic() < deadline:
        time.sleep(0.05)
        children = mp.active_children()
    assert not children, (
        f"test session leaked {len(children)} multiprocessing worker(s): "
        f"{[c.name for c in children]}"
    )
