"""Tests for distributed shard ownership (OwnedShardLayout) and the
cross-rank cache_info aggregation."""

import json
import os
import threading

import numpy as np
import pytest

from repro.data import (
    OwnedShardLayout,
    ShardedNpzSource,
    aggregate_cache_info,
    build_dataset,
    save_dataset,
)
from repro.data.store import MANIFEST


@pytest.fixture(scope="module")
def sst():
    return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=5)


@pytest.fixture(scope="module")
def shard_dir(sst, tmp_path_factory):
    path = tmp_path_factory.mktemp("owned-shards")
    save_dataset(sst, str(path))
    return str(path)


class TestOwnedShardLayout:
    def test_rank_dirs_are_valid_shard_directories(self, shard_dir, sst):
        layout = OwnedShardLayout.build(shard_dir, 2)
        try:
            assert layout.nranks == 2
            assert layout.spans == [(0, 3), (3, 5)]
            for r in range(2):
                src = ShardedNpzSource(layout.rank_dir(r))
                lo, hi = layout.rank_span(r)
                assert src.n_snapshots == hi - lo
                assert src.label == sst.label
                for j in range(src.n_snapshots):
                    a, b = src.snapshot(j), sst.snapshots[lo + j]
                    assert a.time == b.time
                    for name, arr in b.variables.items():
                        assert np.array_equal(a.get(name), arr), name
        finally:
            layout.remove()

    def test_ownership_is_disjoint_and_covering(self, shard_dir, sst):
        layout = OwnedShardLayout.build(shard_dir, 3)
        try:
            times = []
            for r in range(3):
                src = ShardedNpzSource(layout.rank_dir(r))
                times.extend(src.times)
            # Every snapshot appears exactly once, in global order.
            assert times == list(sst.times)
        finally:
            layout.remove()

    def test_more_ranks_than_shards_gives_empty_tail_dirs(self, shard_dir, sst):
        layout = OwnedShardLayout.build(shard_dir, sst.n_snapshots + 2)
        try:
            tail = ShardedNpzSource(layout.rank_dir(layout.nranks - 1))
            assert tail.n_snapshots == 0
            assert tail.nbytes() == 0
            assert list(tail.iter_tables(["u"])) == []
            assert list(tail.iter_snapshots()) == []
        finally:
            layout.remove()

    def test_target_sliced_per_rank(self, tmp_path):
        ds = build_dataset("OF2D", scale=0.3, rng=0, n_snapshots=4)
        assert ds.target is not None
        path = str(tmp_path / "of2d")
        save_dataset(ds, path)
        layout = OwnedShardLayout.build(path, 2)
        try:
            for r in range(2):
                src = ShardedNpzSource(layout.rank_dir(r))
                lo, hi = layout.rank_span(r)
                assert np.allclose(src.target, ds.target[lo:hi])
        finally:
            layout.remove()

    def test_default_builds_are_isolated_and_outside_base(self, shard_dir):
        """Concurrent owned runs must not clobber each other, and the base
        directory (possibly a read-only dataset mount) stays untouched."""
        a = OwnedShardLayout.build(shard_dir, 2)
        b = OwnedShardLayout.build(shard_dir, 2)
        try:
            assert a.root != b.root
            assert not a.root.startswith(shard_dir)
            assert not any(name.startswith(".owned") for name in os.listdir(shard_dir))
        finally:
            a.remove()
            b.remove()

    def test_explicit_dest_rebuild_replaces_stale_layout(self, shard_dir, tmp_path):
        dest = str(tmp_path / "layout")
        layout = OwnedShardLayout.build(shard_dir, 2, dest=dest)
        marker = os.path.join(layout.rank_dir(0), "stale.txt")
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("old")
        rebuilt = OwnedShardLayout.build(shard_dir, 2, dest=dest)
        try:
            assert rebuilt.root == dest
            assert not os.path.exists(marker)
        finally:
            rebuilt.remove()

    def test_hardlinks_not_copies_where_supported(self, shard_dir):
        layout = OwnedShardLayout.build(shard_dir, 2)
        try:
            base = os.path.join(shard_dir, "snapshot_00000.npz")
            owned = os.path.join(layout.rank_dir(0), "snapshot_00000.npz")
            if os.stat(base).st_nlink > 1:  # fs supports hardlinks
                assert os.path.samefile(base, owned)
        finally:
            layout.remove()

    def test_rank_source_is_private(self, shard_dir):
        layout = OwnedShardLayout.build(shard_dir, 2)
        try:
            a = layout.rank_source(0, max_cached=1)
            b = layout.rank_source(1, max_cached=1)
            a.snapshot(0)
            assert a.cache_info()["counters"]["misses"] == 1
            assert b.cache_info()["counters"]["misses"] == 0  # no shared cache
            a.close()
            b.close()
        finally:
            layout.remove()

    def test_manifest_written_per_rank(self, shard_dir, sst):
        layout = OwnedShardLayout.build(shard_dir, 2)
        try:
            with open(os.path.join(layout.rank_dir(1), MANIFEST),
                      encoding="utf-8") as fh:
                manifest = json.load(fh)
            assert manifest["n_snapshots"] == layout.rank_span(1)[1] - layout.rank_span(1)[0]
            assert manifest["label"] == sst.label
        finally:
            layout.remove()

    def test_validation(self, shard_dir, tmp_path):
        with pytest.raises(ValueError, match="nranks"):
            OwnedShardLayout.build(shard_dir, 0)
        with pytest.raises(FileNotFoundError):
            OwnedShardLayout.build(str(tmp_path / "nope"), 2)
        layout = OwnedShardLayout.build(shard_dir, 2)
        try:
            with pytest.raises(IndexError):
                layout.rank_dir(2)
            with pytest.raises(IndexError):
                layout.rank_span(-1)
        finally:
            layout.remove()

    def test_remove_keeps_base_directory(self, shard_dir):
        layout = OwnedShardLayout.build(shard_dir, 2)
        layout.remove()
        assert not os.path.isdir(layout.root)
        assert os.path.isfile(os.path.join(shard_dir, MANIFEST))
        layout.remove()  # idempotent


class TestAggregateCacheInfo:
    def test_sums_counters_and_derives_decodes(self):
        infos = [
            {"hits": 2, "misses": 3, "prefetched": 1, "evictions": 0},
            {"hits": 1, "misses": 2, "prefetched": 0, "evictions": 4},
        ]
        agg = aggregate_cache_info(infos)
        assert agg["ranks"] == 2
        assert agg["hits"] == 3 and agg["misses"] == 5
        assert agg["decodes"] == 5 + 1
        assert agg["evictions"] == 4

    def test_skips_none_entries(self):
        agg = aggregate_cache_info([None, {"misses": 2}, None])
        assert agg["ranks"] == 1 and agg["decodes"] == 2

    def test_empty(self):
        agg = aggregate_cache_info([])
        assert agg["ranks"] == 0 and agg["decodes"] == 0


class TestCloseLifecycle:
    def test_close_joins_prefetch_thread(self, shard_dir):
        before = {t for t in threading.enumerate()}
        src = ShardedNpzSource(shard_dir, max_cached=2, prefetch=2)
        src.prefetch([0, 1])
        src.snapshot(0)
        src.close()
        leaked = [t for t in threading.enumerate()
                  if t not in before and t.name == "shard-prefetch"]
        assert leaked == [], f"prefetch thread leaked: {leaked}"

    def test_context_manager_closes(self, shard_dir):
        with ShardedNpzSource(shard_dir, max_cached=2, prefetch=1) as src:
            src.snapshot(0)
            src.snapshot(1)
        assert not any(
            t.name == "shard-prefetch" and t.is_alive()
            for t in threading.enumerate()
        )
        # Closing is idempotent and reentry-safe.
        src.close()
