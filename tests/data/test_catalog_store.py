"""Tests for the dataset catalog, loaders, and stores."""

import numpy as np
import pytest

from repro.data import (
    CATALOG,
    SubsampleStore,
    TurbulenceDataset,
    build_dataset,
    dataset_summary,
    load_dataset,
    save_dataset,
)
from repro.data.points import PointSet
from repro.data.store import load_field, save_field
from repro.sim.fields import FlowField


@pytest.fixture(scope="module")
def of2d():
    return build_dataset("OF2D", scale=0.4, rng=0, n_snapshots=12)


@pytest.fixture(scope="module")
def sst_small():
    return build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=2)


class TestCatalog:
    def test_all_six_datasets_present(self):
        assert set(CATALOG) == {
            "TC2D", "OF2D", "SST-P1F4", "SST-P1F100", "GESTS-2048", "GESTS-8192",
        }

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            build_dataset("NOPE")

    def test_of2d_roles_match_table1(self, of2d):
        assert of2d.input_vars == ["u", "v"]
        assert of2d.cluster_var == "p"
        assert of2d.target is not None and len(of2d.target) == 12

    def test_sst_roles_match_table1(self, sst_small):
        assert sst_small.input_vars == ["u", "v", "w"]
        assert sst_small.output_vars == ["p"]
        assert sst_small.cluster_var == "pv"

    def test_tc2d(self):
        ds = build_dataset("TC2D", scale=0.3, rng=0)
        assert ds.n_snapshots == 1
        assert ds.input_vars == ["c", "c_var"]

    def test_gests_small(self):
        ds = build_dataset("GESTS-2048", scale=0.5, rng=0, spinup_steps=4)
        assert ds.cluster_var == "enstrophy"
        assert ds.ndim == 3

    def test_sst_p1f100_gravity_y(self):
        ds = build_dataset("SST-P1F100", scale=0.6, rng=0, n_snapshots=1)
        assert ds.gravity == "y"
        assert ds.output_vars == ["ee"]

    def test_summary_rows(self, of2d):
        rows = dataset_summary([of2d])
        assert rows[0]["label"] == "OF2D"
        assert rows[0]["paper_size"] == "300MB"
        assert rows[0]["size_bytes"] > 0


class TestDatasetValidation:
    def test_needs_snapshots(self):
        with pytest.raises(ValueError):
            TurbulenceDataset(
                label="x", snapshots=[], input_vars=[], output_vars=[], cluster_var="u"
            )

    def test_missing_variable_rejected(self):
        f = FlowField({"u": np.ones((4, 4))})
        with pytest.raises(ValueError, match="not available"):
            TurbulenceDataset(
                label="x", snapshots=[f], input_vars=["zeta"], output_vars=[], cluster_var="u"
            )

    def test_target_length_checked(self):
        f = FlowField({"u": np.ones((4, 4))})
        with pytest.raises(ValueError, match="one value per snapshot"):
            TurbulenceDataset(
                label="x", snapshots=[f], input_vars=["u"], output_vars=[],
                cluster_var="u", target=np.zeros(3),
            )

    def test_times_property(self, of2d):
        times = of2d.times
        assert len(times) == of2d.n_snapshots
        assert np.all(np.diff(times) > 0)


class TestPersistence:
    def test_field_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        f = FlowField({"u": rng.random((6, 6))}, time=3.5, meta={"label": "X", "nu": 0.01})
        path = str(tmp_path / "snap.npz")
        save_field(path, f)
        g = load_field(path)
        assert np.array_equal(g["u"], f["u"])
        assert g.time == 3.5
        assert g.meta["nu"] == 0.01

    def test_dataset_roundtrip(self, tmp_path, of2d):
        path = str(tmp_path / "of2d")
        save_dataset(of2d, path)
        loaded = load_dataset("openfoam", path=path)
        assert loaded.label == of2d.label
        assert loaded.n_snapshots == of2d.n_snapshots
        assert np.allclose(loaded.target, of2d.target)
        assert np.array_equal(loaded.snapshots[0]["u"], of2d.snapshots[0]["u"])

    def test_load_generates_when_no_path(self):
        ds = load_dataset("tc2d", scale=0.3, rng=0)
        assert ds.label == "TC2D"

    def test_unknown_dtype(self):
        with pytest.raises(KeyError):
            load_dataset("hdf9")

    def test_subsample_store_roundtrip(self, tmp_path):
        store = SubsampleStore(str(tmp_path / "store"))
        ps = PointSet(
            coords=np.arange(12.0).reshape(4, 3),
            values={"u": np.arange(4.0)},
            time=1.0,
            meta={"method": "maxent"},
        )
        store.save("run1", ps)
        back = store.load("run1")
        assert np.array_equal(back.coords, ps.coords)
        assert back.meta["method"] == "maxent"
        assert "run1" in store.entries()

    def test_store_reduction_factor(self, tmp_path):
        store = SubsampleStore(str(tmp_path / "store"))
        rng = np.random.default_rng(2)
        ps = PointSet(coords=rng.random((100, 3)), values={"u": rng.random(100)})
        store.save("small", ps)
        factor = store.reduction_factor("small", raw_bytes=10**7)
        assert factor > 100  # storing 100 points vs a 10 MB field

    def test_store_rejects_path_traversal(self, tmp_path):
        store = SubsampleStore(str(tmp_path / "store"))
        with pytest.raises(ValueError):
            store.save("../evil", PointSet(coords=np.zeros((1, 2)), values={}))
