"""Tests for the stream-first SnapshotSource ingestion protocol."""

import tracemalloc

import numpy as np
import pytest

from repro.data import (
    InMemorySource,
    PartitionedSource,
    RemoteTieredSource,
    ShardDirSource,
    ShardedNpzSource,
    SimulationSource,
    as_source,
    build_dataset,
    open_source,
    save_dataset,
)
from repro.data.sources import SnapshotSource
from repro.sampling import subsample
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


@pytest.fixture(scope="module")
def sst():
    return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=6)


@pytest.fixture(scope="module")
def shard_dir(sst, tmp_path_factory):
    path = tmp_path_factory.mktemp("shards")
    save_dataset(sst, str(path))
    return str(path)


def small_case(**overrides):
    sub = dict(hypercubes="maxent", method="maxent", num_hypercubes=4,
               num_samples=32, num_clusters=4, nxsl=8, nysl=8, nzsl=8)
    sub.update(overrides)
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(**sub),
        train=TrainConfig(arch="mlp_transformer"),
    )


class TestInMemorySource:
    def test_metadata_passthrough(self, sst):
        src = InMemorySource(sst)
        assert src.label == sst.label
        assert src.n_snapshots == sst.n_snapshots
        assert src.grid_shape == sst.grid_shape
        assert src.cluster_var == sst.cluster_var
        assert src.input_vars == sst.input_vars
        assert src.nbytes() == sst.nbytes()
        assert np.array_equal(src.times, sst.times)

    def test_snapshots_are_the_dataset_objects(self, sst):
        src = InMemorySource(sst)
        for i, snap in src.iter_snapshots():
            assert snap is sst.snapshots[i]

    def test_value_range_hint_exact(self, sst):
        src = InMemorySource(sst)
        lo, hi = src.value_range_hint("pv")
        allv = np.concatenate([s.get("pv").ravel() for s in sst.snapshots])
        assert lo == allv.min() and hi == allv.max()

    def test_rejects_non_dataset(self):
        with pytest.raises(TypeError):
            InMemorySource([1, 2, 3])


class TestIterTables:
    def test_chunks_cover_source_in_order(self, sst):
        src = InMemorySource(sst)
        grid = sst.grid_shape
        n = int(np.prod(grid))
        rows = 0
        seen_snaps = []
        for s, _time, coords, table in src.iter_tables(["u", "pv"], chunk_rows=1000):
            assert coords.shape[1] == 3
            assert table.shape == (coords.shape[0], 2)
            assert coords.shape[0] <= 1000
            rows += coords.shape[0]
            seen_snaps.append(s)
        assert rows == n * sst.n_snapshots
        assert seen_snaps == sorted(seen_snaps)
        # Last chunk's last coordinate is the grid's last cell.
        assert tuple(coords[-1].astype(int)) == tuple(g - 1 for g in grid)

    def test_chunk_values_match_flat_order(self, sst):
        src = InMemorySource(sst)
        s, _, coords, table = next(src.iter_tables(["pv"], chunk_rows=128))
        flat = sst.snapshots[0].get("pv").reshape(-1)
        assert np.array_equal(table[:, 0], flat[:128])


class TestShardedNpzSource:
    def test_round_trips_save_dataset_exactly(self, sst, shard_dir):
        """Satellite: the out-of-core view must equal the dataset it was
        written from, bit for bit."""
        src = ShardedNpzSource(shard_dir, max_cached=2)
        assert src.label == sst.label
        assert src.n_snapshots == sst.n_snapshots
        assert src.grid_shape == sst.grid_shape
        assert src.input_vars == sst.input_vars
        assert src.output_vars == sst.output_vars
        assert src.cluster_var == sst.cluster_var
        assert np.array_equal(src.times, sst.times)
        for i in range(sst.n_snapshots):
            a, b = src.snapshot(i), sst.snapshots[i]
            assert a.time == b.time
            assert sorted(a.variables) == sorted(b.variables)
            for name, arr in b.variables.items():
                assert np.array_equal(a.variables[name], arr), name

    def test_lru_residency_is_bounded(self, shard_dir, sst):
        src = ShardedNpzSource(shard_dir, max_cached=2)
        # Touch every shard forwards, backwards, and shuffled.
        order = list(range(sst.n_snapshots))
        for i in [*order, *order[::-1], 3, 0, 5, 1]:
            src.snapshot(i)
        info = src.cache_info()
        assert info["gauges"]["max_resident"] <= 2
        assert info["gauges"]["resident"] <= 2
        assert info["counters"]["evictions"] > 0

    def test_cache_hits_on_repeat_access(self, shard_dir):
        src = ShardedNpzSource(shard_dir, max_cached=2)
        src.snapshot(0)
        src.snapshot(0)
        info = src.cache_info()["counters"]
        assert info["hits"] == 1 and info["misses"] == 1

    def test_validation(self, tmp_path, shard_dir):
        with pytest.raises(FileNotFoundError):
            ShardedNpzSource(str(tmp_path / "nope"))
        with pytest.raises(ValueError):
            ShardedNpzSource(shard_dir, max_cached=0)
        src = ShardedNpzSource(shard_dir)
        with pytest.raises(IndexError):
            src.snapshot(99)


def _wait_for_prefetch(src, n=1, timeout_s=5.0):
    """Poll until the background worker has decoded >= n shards."""
    import time

    deadline = time.monotonic() + timeout_s
    while src.cache_info()["counters"]["prefetched"] < n:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"prefetcher never reached {n} decodes: {src.cache_info()}"
            )
        time.sleep(0.005)


class TestShardedPrefetch:
    def test_prefetch_hits_and_bounded_residency(self, shard_dir, sst):
        """Satellite: a forward scan with look-ahead serves hits from the
        background prefetcher while residency stays bounded."""
        src = ShardedNpzSource(shard_dir, max_cached=3, prefetch=2)
        try:
            src.snapshot(0)          # miss; queues shards 1 and 2
            _wait_for_prefetch(src)  # worker drains the queue in order...
            src.snapshot(1)          # ...so shard 1 is now a prefetch hit
            for i in range(2, sst.n_snapshots):
                src.snapshot(i)
        finally:
            src.close()
        info = src.cache_info()
        assert info["counters"]["prefetched"] >= 1
        assert info["counters"]["prefetch_hits"] >= 1
        assert info["gauges"]["max_resident"] <= 3
        assert info["gauges"]["prefetch_depth"] == 2

    def test_explicit_prefetch_hint(self, shard_dir):
        src = ShardedNpzSource(shard_dir, max_cached=2, prefetch=1)
        try:
            src.prefetch([0, 1])
            _wait_for_prefetch(src)
            src.snapshot(0)
        finally:
            src.close()
        info = src.cache_info()["counters"]
        assert info["prefetched"] >= 1
        assert info["prefetch_hits"] >= 1

    def test_prefetch_disabled_is_noop(self, shard_dir):
        src = ShardedNpzSource(shard_dir, max_cached=2, prefetch=0)
        src.prefetch([0, 1, 2])
        src.snapshot(0)
        info = src.cache_info()["counters"]
        assert info["prefetched"] == 0 and info["prefetch_hits"] == 0
        src.close()  # idempotent even without a worker

    def test_prefetch_validation(self, shard_dir):
        with pytest.raises(ValueError):
            ShardedNpzSource(shard_dir, prefetch=-1)

    def test_subsample_with_prefetch_matches_without(self, shard_dir, sst):
        """Prefetch is a pure performance hint: selections are identical."""
        plain = subsample(ShardedNpzSource(shard_dir, max_cached=2),
                          small_case(), nranks=1, seed=0)
        pre_src = ShardedNpzSource(shard_dir, max_cached=2, prefetch=2)
        pre = subsample(pre_src, small_case(), nranks=1, seed=0)
        pre_src.close()
        assert np.array_equal(plain.selected_cube_ids, pre.selected_cube_ids)
        assert np.array_equal(plain.points.coords, pre.points.coords)


class TestLazyDecode:
    def test_lazy_field_decodes_members_on_demand(self, shard_dir, sst):
        src = ShardedNpzSource(shard_dir, max_cached=2, lazy=True)
        snap = src.snapshot(0)
        assert snap.decoded_members() == []
        assert snap.grid_shape == sst.grid_shape  # header-only, no decode
        assert snap.decoded_members() == []
        u = snap.get("u")
        assert snap.decoded_members() == ["u"]
        assert np.array_equal(u, sst.snapshots[0].get("u"))
        # Mapping semantics still reflect the full member list.
        assert sorted(snap.variables) == sorted(sst.snapshots[0].variables)
        assert "u" in snap.variables and "r" in snap.variables

    def test_lazy_mapping_semantics(self, shard_dir, sst):
        """Regression: generic mapping idioms (get / dict(...) / **) must
        decode, never silently return None or a truncated member set."""
        snap = ShardedNpzSource(shard_dir, lazy=True).snapshot(0)
        assert snap.variables.get("u") is not None
        assert snap.variables.get("not-a-var", "sentinel") == "sentinel"
        full = dict(snap.variables)
        assert sorted(full) == sorted(sst.snapshots[0].variables)
        assert all(isinstance(v, np.ndarray) for v in full.values())

    def test_lazy_derived_variables_compose(self, shard_dir, sst):
        """pv derives from u/v/w/r — lazy members must feed the derived
        registry exactly like eager ones."""
        snap = ShardedNpzSource(shard_dir, lazy=True).snapshot(0)
        assert np.allclose(snap.get("pv"), sst.snapshots[0].get("pv"))

    def test_lazy_nbytes_matches_eager(self, shard_dir):
        lazy = ShardedNpzSource(shard_dir, lazy=True).snapshot(0)
        eager = ShardedNpzSource(shard_dir, lazy=False).snapshot(0)
        assert lazy.nbytes() == eager.nbytes()
        assert lazy.decoded_members() == []  # estimate came from headers

    def test_eager_mode_still_available(self, shard_dir, sst):
        snap = ShardedNpzSource(shard_dir, lazy=False).snapshot(0)
        assert not hasattr(snap, "decoded_members")
        assert np.array_equal(snap.get("u"), sst.snapshots[0].get("u"))


class TestPartitionedSource:
    def test_span_view_passthrough(self, sst):
        base = InMemorySource(sst)
        part = PartitionedSource(base, 2, 5)
        assert part.n_snapshots == 3
        assert part.grid_shape == base.grid_shape
        assert part.input_vars == base.input_vars
        assert part.cluster_var == base.cluster_var
        assert part.label.endswith("[2:5]")
        for i in range(3):
            assert part.snapshot(i) is sst.snapshots[2 + i]
        assert np.array_equal(part.times, sst.times[2:5])
        with pytest.raises(IndexError):
            part.snapshot(3)

    def test_split_covers_source(self, sst):
        base = InMemorySource(sst)
        parts = PartitionedSource.split(base, 4)
        assert sum(p.n_snapshots for p in parts) == sst.n_snapshots
        seen = [p.snapshot(i).time for p in parts for i in range(p.n_snapshots)]
        assert seen == list(sst.times)

    def test_empty_span(self, sst):
        base = InMemorySource(sst)
        parts = PartitionedSource.split(base, sst.n_snapshots + 2)
        tail = parts[-1]
        assert tail.n_snapshots == 0
        assert tail.nbytes() == 0
        assert list(tail.iter_snapshots()) == []

    def test_prefetch_translates_to_base(self, shard_dir):
        src = ShardedNpzSource(shard_dir, max_cached=4, prefetch=1)
        try:
            part = PartitionedSource(src, 2, 4)
            part.prefetch([0, 1])  # global shards 2, 3
            _wait_for_prefetch(src)
            part.snapshot(0)
            assert src.cache_info()["counters"]["prefetch_hits"] >= 1
        finally:
            src.close()

    def test_validation(self, sst):
        base = InMemorySource(sst)
        with pytest.raises(ValueError):
            PartitionedSource(base, 4, 2)
        with pytest.raises(ValueError):
            PartitionedSource(base, 0, sst.n_snapshots + 1)
        with pytest.raises(TypeError):
            PartitionedSource(sst, 0, 1)

    def test_value_range_hint_shared_with_base(self, sst):
        base = InMemorySource(sst)
        part = PartitionedSource(base, 0, 2)
        assert part.value_range_hint("pv") == base.value_range_hint("pv")


class TestSimulationSource:
    def _make(self, n=3, max_cached=1):
        def factory():
            rng = np.random.default_rng(7)
            for i in range(n):
                yield_field = np.asarray(rng.random((8, 8)))
                from repro.sim.fields import FlowField
                yield FlowField({"u": yield_field, "v": rng.random((8, 8))}, time=float(i))

        return SimulationSource(
            factory, n, label="toy", input_vars=["u"], output_vars=["v"],
            cluster_var="u", max_cached=max_cached,
        )

    def test_forward_access_generates_once(self):
        src = self._make(n=4)
        for i in range(4):
            assert src.snapshot(i).time == float(i)
        assert src.generated == 4
        assert src.restarts == 0

    def test_backward_access_replays_deterministically(self):
        src = self._make(n=4)
        late = src.snapshot(3).variables["u"].copy()
        early = src.snapshot(1).variables["u"].copy()  # forces a replay
        assert src.restarts == 1
        src2 = self._make(n=4)
        assert np.array_equal(src2.snapshot(1).variables["u"], early)
        assert np.array_equal(src2.snapshot(3).variables["u"], late)

    def test_residency_bounded(self):
        src = self._make(n=5, max_cached=2)
        for i in range(5):
            src.snapshot(i)
        assert len(src._cache) <= 2

    def test_times_walks_stream(self):
        src = self._make(n=3)
        assert np.array_equal(src.times, [0.0, 1.0, 2.0])

    def test_short_factory_raises(self):
        def factory():
            return iter(())

        src = SimulationSource(factory, 2, label="bad", input_vars=["u"],
                               output_vars=[], cluster_var="u")
        with pytest.raises(RuntimeError, match="yielded only"):
            src.snapshot(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationSource(lambda: iter(()), 0, label="x", input_vars=[],
                             output_vars=[], cluster_var="u")

    def test_nbytes_after_full_pass_never_replays(self):
        """Regression: asking nbytes() after the stream is consumed must
        use the cached per-snapshot size, not restart the simulation."""
        src = self._make(n=4)
        for i in range(4):
            src.snapshot(i)
        restarts = src.restarts
        assert src.nbytes() == src.snapshot(3).nbytes() * 4
        assert src.restarts == restarts

    def test_multirank_batch_guarded_against_replay_storm(self):
        """A replay-on-backstep sim source under thread ranks would re-run
        the solver O(ranks x snapshots) times; subsample must refuse."""
        from repro.data import stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2,
                             max_cached=1)
        with pytest.raises(ValueError, match="replay"):
            subsample(src, small_case(), nranks=2, seed=0)
        # Raising max_cached to cover the stream makes multi-rank legal.
        src2 = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2,
                              max_cached=2)
        res = subsample(src2, small_case(), nranks=2, seed=0)
        assert res.n_samples > 0


class TestStreamDataset:
    def test_openfoam_dtype_streams_and_subsamples(self):
        """Regression: OF2D's Table-1 output 'D' is the drag target, not a
        field variable — the sim source must expose the per-point roles the
        built dataset actually has, or subsample KeyErrors on 'D'."""
        from repro.data import stream_dataset

        src = stream_dataset("openfoam", scale=0.3, seed=0, n_snapshots=4)
        assert src.output_vars == []
        assert src.target is None  # drag is a whole-run property
        case = CaseConfig(
            shared=SharedConfig(dims=2, dtype="openfoam", input_vars=["u", "v"],
                                output_vars=[], cluster_var="p"),
            subsample=SubsampleConfig(hypercubes="random", method="random",
                                      num_hypercubes=2, num_samples=16,
                                      num_clusters=4, nxsl=8, nysl=8, nzsl=1),
            train=TrainConfig(arch="lstm"),
        )
        res = subsample(src, case, nranks=1, seed=0)
        assert res.n_samples > 0
        stream_res = subsample(
            stream_dataset("openfoam", scale=0.3, seed=0, n_snapshots=4),
            case, seed=0, mode="stream",
        )
        assert stream_res.n_samples > 0

    def test_matches_batch_builder_fields(self):
        """The stream factory and batch builder share their geometry."""
        from repro.data import build_dataset, stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=3, n_snapshots=2)
        ds = build_dataset("SST-P1F4", scale=1.0, rng=3, n_snapshots=2)
        assert src.grid_shape == ds.grid_shape
        for i in range(2):
            got, want = src.snapshot(i), ds.snapshots[i]
            for name, arr in want.variables.items():
                assert np.array_equal(got.variables[name], arr), name

    def test_defaults_come_from_catalog_entry(self):
        from repro.data import CATALOG, stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=0)
        assert src.n_snapshots == CATALOG["SST-P1F4"].default_snapshots
        assert src.gravity == CATALOG["SST-P1F4"].gravity

    def test_entry_default_snapshots_matches_builder_default(self):
        """Pin the entry's default_snapshots to each builder's own
        n_snapshots keyword default — if they desynchronize, batch and
        stream ingestion silently produce different-length datasets."""
        import inspect

        from repro.data import CATALOG

        for label, entry in CATALOG.items():
            params = inspect.signature(entry.builder).parameters
            if "n_snapshots" in params:
                assert params["n_snapshots"].default == entry.default_snapshots, label
            else:
                assert entry.default_snapshots == 1, label


class TestAsSource:
    def test_coercions(self, sst, shard_dir):
        assert isinstance(as_source(sst), InMemorySource)
        assert isinstance(as_source(shard_dir), ShardDirSource)
        src = InMemorySource(sst)
        assert as_source(src) is src
        assert isinstance(as_source(src), SnapshotSource)
        with pytest.raises(TypeError):
            as_source(42)


class TestOutOfCoreMemory:
    def test_sharded_subsample_bounded_residency(self, shard_dir, sst):
        """Acceptance: an out-of-core run over >=4 shards never holds more
        than max_cached decoded shards, across the whole pipeline."""
        assert sst.n_snapshots >= 4
        src = ShardedNpzSource(shard_dir, max_cached=2)
        res = subsample(src, small_case(), nranks=1, seed=0)
        assert res.n_samples > 0
        info = src.cache_info()
        assert info["gauges"]["max_resident"] <= 2
        assert info["counters"]["evictions"] > 0  # it really cycled through shards

    def test_sharded_subsample_peak_below_full_footprint(self, shard_dir, sst):
        """Satellite: peak traced allocation of an out-of-core subsample
        stays below the full dataset's decoded footprint."""
        full_bytes = sst.nbytes()
        src = ShardedNpzSource(shard_dir, max_cached=1)
        tracemalloc.start()
        try:
            subsample(src, small_case(), nranks=1, seed=0)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # 6 snapshots x ~6 stored vars each; holding one shard (+ derived
        # vars + pipeline bookkeeping) must undercut full residency.
        assert peak < full_bytes, f"peak {peak} >= full dataset {full_bytes}"


class TestOpenSource:
    def test_path_and_dir_specs_resolve_equivalently(self, shard_dir):
        for spec in (shard_dir, f"dir://{shard_dir}", f"npz+dir://{shard_dir}"):
            src = open_source(spec)
            assert isinstance(src, ShardDirSource)
            assert src.codec.name == "npz"
            src.close()

    def test_source_and_dataset_pass_through(self, sst):
        src = InMemorySource(sst)
        assert open_source(src) is src
        assert isinstance(open_source(sst), InMemorySource)

    def test_codec_prefix_mismatch_refused(self, shard_dir):
        with pytest.raises(ValueError, match="holds 'npz' shards, not 'raw'"):
            open_source(f"raw+dir://{shard_dir}")

    def test_remote_spec_builds_tiered_source(self, shard_dir):
        src = open_source(
            f"remote://{shard_dir}?latency_s=0.5&bandwidth=1e6&max_staged=3"
        )
        try:
            assert isinstance(src, RemoteTieredSource)
            assert src.latency_s == 0.5
            assert src.bandwidth == 1e6
            assert src.max_staged == 3
            assert src.layout_path == shard_dir
        finally:
            src.close()

    def test_knobs_reach_the_source(self, shard_dir):
        src = open_source(shard_dir, max_cached=5, prefetch=1, lazy=False)
        try:
            assert src.max_cached == 5
            assert src.prefetch_depth == 1
            assert src.lazy is False
        finally:
            src.close()

    def test_bad_specs_rejected(self, shard_dir):
        with pytest.raises(ValueError, match="unknown source scheme"):
            open_source(f"s3://{shard_dir}")
        with pytest.raises(ValueError, match="unknown remote:// option"):
            open_source(f"remote://{shard_dir}?nope=1")
        with pytest.raises(ValueError, match="no .options"):
            open_source(f"dir://{shard_dir}?latency_s=1")
        with pytest.raises(TypeError):
            open_source(42)


class TestCacheInfoSchema:
    def test_schema2_layout(self, shard_dir):
        src = ShardDirSource(shard_dir, max_cached=2)
        src.snapshot(0)
        info = src.cache_info()
        assert info["schema"] == 2
        assert info["codec"] == "npz"
        assert info["tier"] == "local"
        from dataclasses import fields

        from repro.data import CacheCounters

        assert set(info["counters"]) == {f.name for f in fields(CacheCounters)}
        for key in ("resident", "max_resident", "max_cached", "prefetch_depth"):
            assert key in info["gauges"]

    def test_flat_keys_warn_but_work(self, shard_dir):
        """Satellite: the deprecation shim serves the legacy flat keys."""
        src = ShardDirSource(shard_dir, max_cached=2)
        src.snapshot(0)
        src.snapshot(0)
        info = src.cache_info()
        with pytest.deprecated_call():
            assert info["hits"] == 1
        with pytest.deprecated_call():
            assert info["resident"] == info["gauges"]["resident"]
        with pytest.deprecated_call():
            assert info.get("misses") == 1
        assert info.get("not-a-counter", "sentinel") == "sentinel"
        with pytest.raises(KeyError):
            info["definitely-not-a-key"]

    def test_aggregate_accepts_schema2_and_legacy(self, shard_dir):
        from repro.data import aggregate_cache_info

        src = ShardDirSource(shard_dir, max_cached=2)
        src.snapshot(0)
        src.snapshot(0)
        legacy = {"hits": 3, "misses": 2, "evictions": 1, "prefetched": 4,
                  "prefetch_hits": 2}
        agg = aggregate_cache_info([src.cache_info(), legacy, None])
        assert agg["ranks"] == 2
        assert agg["hits"] == 1 + 3
        assert agg["misses"] == 1 + 2
        assert agg["decodes"] == agg["misses"] + agg["prefetched"]


class TestRemoteTieredSource:
    def _remote(self, shard_dir, **kw):
        kw.setdefault("latency_s", 0.01)
        kw.setdefault("bandwidth", 1e6)
        return RemoteTieredSource(shard_dir, **kw)

    def test_round_trip_matches_local(self, shard_dir, sst):
        src = self._remote(shard_dir, max_cached=2)
        try:
            for i in range(sst.n_snapshots):
                got = src.snapshot(i)
                want = sst.snapshots[i]
                for name, arr in want.variables.items():
                    assert np.array_equal(got.variables[name], arr), name
            assert np.array_equal(src.times, sst.times)
        finally:
            src.close()

    def test_fetch_accounting(self, shard_dir, sst):
        src = self._remote(shard_dir, max_cached=1, max_staged=2)
        try:
            for i in range(sst.n_snapshots):
                src.snapshot(i)
            info = src.cache_info()
            c = info["counters"]
            assert info["tier"] == "remote"
            assert c["remote_fetches"] == sst.n_snapshots
            assert c["remote_bytes"] > 0
            # cost model: each fetch pays latency plus bytes/bandwidth
            assert c["remote_wait_s"] >= sst.n_snapshots * 0.01
            assert c["remote_wait_s"] == pytest.approx(
                sst.n_snapshots * 0.01 + c["remote_bytes"] / 1e6
            )
            assert info["gauges"]["staged"] <= 2
            assert c["staged_evictions"] > 0
        finally:
            src.close()

    def test_staged_reuse_skips_refetch(self, shard_dir):
        src = self._remote(shard_dir, max_cached=1, max_staged=4)
        try:
            src.snapshot(0)
            src.snapshot(1)  # evicts 0 from RAM (max_cached=1), not staging
            src.snapshot(0)  # RAM miss, staging hit: no second fetch of 0
            c = src.cache_info()["counters"]
            assert c["remote_fetches"] == 2
            assert c["staged_hits"] >= 1
        finally:
            src.close()

    def test_owned_staging_dir_removed_on_close(self, shard_dir):
        import os

        src = self._remote(shard_dir)
        staging = src.path
        assert os.path.isdir(staging)
        src.close()
        assert not os.path.isdir(staging)
        assert os.path.isdir(shard_dir)  # the remote is never touched

    def test_caller_staging_dir_kept(self, shard_dir, tmp_path):
        import os

        staging = str(tmp_path / "stage")
        src = self._remote(shard_dir, staging_dir=staging)
        src.snapshot(0)
        src.close()
        assert os.path.isdir(staging)

    def test_reopen_preserves_knobs(self, shard_dir):
        src = self._remote(shard_dir, max_staged=3, latency_s=0.25)
        dup = src.reopen()
        try:
            assert isinstance(dup, RemoteTieredSource)
            assert dup.remote_path == src.remote_path
            assert dup.max_staged == 3 and dup.latency_s == 0.25
            assert dup.path != src.path  # private staging tier
        finally:
            src.close()
            dup.close()

    def test_validation(self, shard_dir, tmp_path):
        with pytest.raises(FileNotFoundError):
            RemoteTieredSource(str(tmp_path / "nope"))
        with pytest.raises(ValueError):
            self._remote(shard_dir, max_staged=0)
        with pytest.raises(ValueError):
            self._remote(shard_dir, latency_s=-1)
        with pytest.raises(ValueError):
            self._remote(shard_dir, bandwidth=0)

    def test_subsample_matches_local_source(self, shard_dir):
        """The tier is transparent: same selections as a local source."""
        local = subsample(ShardDirSource(shard_dir, max_cached=2),
                          small_case(), nranks=1, seed=0)
        src = self._remote(shard_dir, max_cached=2)
        try:
            remote = subsample(src, small_case(), nranks=1, seed=0)
        finally:
            src.close()
        assert np.array_equal(local.points.coords, remote.points.coords)
        for var, vals in local.points.values.items():
            assert np.array_equal(vals, remote.points.values[var]), var
