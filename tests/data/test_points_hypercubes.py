"""Tests for PointSet and hypercube extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    Hypercube,
    PointSet,
    extract_all_hypercubes,
    extract_hypercube,
    hypercube_origins,
)
from repro.sim.fields import FlowField


def make_field(shape=(8, 8, 8)):
    rng = np.random.default_rng(0)
    return FlowField(
        {name: rng.random(shape) for name in ("u", "v", "w")}, time=2.0, meta={"label": "T"}
    )


class TestPointSet:
    def test_construction_and_len(self):
        ps = PointSet(coords=np.zeros((5, 3)), values={"u": np.arange(5.0)})
        assert len(ps) == 5
        assert ps.ndim == 3

    def test_value_shape_checked(self):
        with pytest.raises(ValueError):
            PointSet(coords=np.zeros((5, 3)), values={"u": np.arange(4.0)})

    def test_feature_table(self):
        ps = PointSet(
            coords=np.zeros((3, 2)),
            values={"a": np.array([1.0, 2, 3]), "b": np.array([4.0, 5, 6])},
        )
        assert ps.feature_table(["b", "a"]).tolist() == [[4, 1], [5, 2], [6, 3]]

    def test_feature_table_missing(self):
        ps = PointSet(coords=np.zeros((2, 2)), values={"a": np.zeros(2)})
        with pytest.raises(KeyError):
            ps.feature_table(["a", "zz"])

    def test_select(self):
        ps = PointSet(coords=np.arange(8.0).reshape(4, 2), values={"a": np.arange(4.0)})
        sub = ps.select(np.array([0, 2]))
        assert len(sub) == 2
        assert sub.values["a"].tolist() == [0, 2]

    def test_concatenate(self):
        a = PointSet(coords=np.zeros((2, 3)), values={"u": np.ones(2)}, time=1.0)
        b = PointSet(coords=np.ones((3, 3)), values={"u": np.zeros(3)}, time=2.0)
        cat = PointSet.concatenate([a, b])
        assert len(cat) == 5
        assert isinstance(cat.time, np.ndarray)
        assert cat.time.tolist() == [1, 1, 2, 2, 2]

    def test_concatenate_mismatch_rejected(self):
        a = PointSet(coords=np.zeros((2, 3)), values={"u": np.ones(2)})
        b = PointSet(coords=np.zeros((2, 3)), values={"v": np.ones(2)})
        with pytest.raises(ValueError):
            PointSet.concatenate([a, b])

    def test_nbytes_positive(self):
        ps = PointSet(coords=np.zeros((5, 3)), values={"u": np.zeros(5)})
        assert ps.nbytes() == 5 * 3 * 8 + 5 * 8


class TestHypercubeOrigins:
    def test_exact_tiling(self):
        origins = hypercube_origins((8, 8, 8), (4, 4, 4))
        assert len(origins) == 8
        assert (0, 0, 0) in origins and (4, 4, 4) in origins

    def test_remainder_dropped(self):
        origins = hypercube_origins((10, 8), (4, 4))
        assert len(origins) == 2 * 2  # 10//4 = 2 along x

    def test_cube_bigger_than_grid_rejected(self):
        with pytest.raises(ValueError):
            hypercube_origins((4, 4), (8, 4))

    @given(
        gx=st.integers(6, 20), gy=st.integers(6, 20),
        cx=st.integers(1, 6), cy=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_origins_disjoint_and_inside(self, gx, gy, cx, cy):
        origins = hypercube_origins((gx, gy), (cx, cy))
        assert len(origins) == (gx // cx) * (gy // cy)
        seen = set()
        for ox, oy in origins:
            assert 0 <= ox and ox + cx <= gx
            assert 0 <= oy and oy + cy <= gy
            assert (ox, oy) not in seen
            seen.add((ox, oy))


class TestExtract:
    def test_extract_matches_source(self):
        f = make_field()
        cube = extract_hypercube(f, (2, 2, 2), (4, 4, 4), ["u", "v"])
        assert cube.shape == (4, 4, 4)
        assert np.array_equal(cube.variables["u"], f["u"][2:6, 2:6, 2:6])
        assert cube.time == 2.0

    def test_out_of_bounds_rejected(self):
        f = make_field()
        with pytest.raises(ValueError):
            extract_hypercube(f, (6, 0, 0), (4, 4, 4), ["u"])

    def test_derived_variable_extracted(self):
        f = make_field()
        cube = extract_hypercube(f, (0, 0, 0), (4, 4, 4), ["enstrophy"])
        assert np.all(cube.variables["enstrophy"] >= 0)

    def test_extract_all_covers_grid(self):
        f = make_field()
        cubes = extract_all_hypercubes(f, (4, 4, 4), ["u"])
        assert len(cubes) == 8
        total = sum(c.n_points for c in cubes)
        assert total == f.n_points

    def test_cube_coords_global(self):
        f = make_field()
        cube = extract_hypercube(f, (4, 0, 0), (2, 2, 2), ["u"])
        coords = cube.coords()
        assert coords.shape == (8, 3)
        assert coords[:, 0].min() == 4.0

    def test_to_pointset_roundtrip_values(self):
        f = make_field()
        cube = extract_hypercube(f, (0, 4, 0), (2, 2, 2), ["u"])
        ps = cube.to_pointset(["u"])
        # Check one specific point: coords (0, 4, 0) is the first in C-order.
        assert ps.values["u"][0] == f["u"][0, 4, 0]

    def test_select_points(self):
        f = make_field()
        cube = extract_hypercube(f, (0, 0, 0), (2, 2, 2), ["u"])
        ps = cube.select_points(np.array([0, 7]))
        assert len(ps) == 2
        assert ps.values["u"][1] == f["u"][1, 1, 1]

    def test_hypercube_validation(self):
        with pytest.raises(ValueError):
            Hypercube(origin=(0, 0), shape=(2, 2, 2), variables={})
        with pytest.raises(ValueError):
            Hypercube(origin=(0, 0, 0), shape=(2, 2, 2), variables={"u": np.zeros((3, 2, 2))})
