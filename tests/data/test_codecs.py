"""Shard-codec registry tests: every codec round-trips byte-identically,
stream subsampling is codec-invariant per (seed, nranks) — owned shards
included — and lazy decode keeps real Mapping semantics."""

import json
import os

import numpy as np
import pytest

from repro.data import (
    ShardDirSource,
    build_dataset,
    codec_names,
    get_codec,
    load_dataset,
    open_source,
    register_codec,
    save_dataset,
)
from repro.data.codecs import ShardCodec
from repro.data.store import MANIFEST, read_manifest, write_manifest
from repro.sampling import subsample
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig

ALL_CODECS = ("npz", "raw", "chunked")


@pytest.fixture(scope="module")
def sst():
    return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=6)


@pytest.fixture(scope="module")
def codec_dirs(sst, tmp_path_factory):
    """One saved shard directory per codec, from the same dataset."""
    dirs = {}
    for codec in ALL_CODECS:
        path = tmp_path_factory.mktemp(f"shards_{codec}")
        save_dataset(sst, str(path), codec=codec)
        dirs[codec] = str(path)
    return dirs


def stream_case(**overrides):
    sub = dict(hypercubes="maxent", method="maxent", num_hypercubes=4,
               num_samples=32, num_clusters=4, nxsl=8, nysl=8, nzsl=8)
    sub.update(overrides)
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(**sub),
        train=TrainConfig(arch="mlp_transformer"),
    )


class TestRegistry:
    def test_builtin_codecs_registered(self):
        assert set(ALL_CODECS) <= set(codec_names())

    def test_get_codec_accepts_instance_and_name(self):
        raw = get_codec("raw")
        assert get_codec(raw) is raw
        assert get_codec("raw") is raw  # registry holds singletons

    def test_unknown_codec_is_loud(self):
        with pytest.raises(KeyError, match="unknown shard codec 'zstd'"):
            get_codec("zstd")

    def test_register_codec_extends_registry(self):
        class NullCodec(ShardCodec):
            name = "test-null"

            def shard_name(self, index):
                return f"{index}.null"

            def encode(self, directory, index, field):
                raise NotImplementedError

            def decode(self, directory, index):
                raise NotImplementedError

            def decode_lazy(self, directory, index):
                raise NotImplementedError

            def shard_time(self, directory, index):
                raise NotImplementedError

        try:
            register_codec(NullCodec)
            assert "test-null" in codec_names()
            assert get_codec("test-null").shard_name(3) == "3.null"
        finally:
            from repro.data.codecs import CODECS

            CODECS.pop("test-null", None)


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ALL_CODECS)
    def test_save_load_is_bit_exact(self, sst, codec_dirs, codec):
        ds = load_dataset("sst-binary", path=codec_dirs[codec])
        assert ds.label == sst.label
        assert ds.n_snapshots == sst.n_snapshots
        for got, want in zip(ds.snapshots, sst.snapshots):
            assert got.time == want.time
            assert sorted(got.variables) == sorted(want.variables)
            for name, arr in want.variables.items():
                got_arr = np.asarray(got.variables[name])
                assert got_arr.dtype == arr.dtype, name
                assert np.array_equal(got_arr, arr), name

    @pytest.mark.parametrize("codec", ALL_CODECS)
    def test_manifest_self_describes_and_source_autodetects(
        self, codec_dirs, codec
    ):
        manifest = read_manifest(codec_dirs[codec])
        assert manifest["codec"] == codec
        src = ShardDirSource(codec_dirs[codec])
        assert src.codec.name == codec

    def test_legacy_manifest_without_codec_key_reads_as_npz(
        self, sst, tmp_path
    ):
        path = str(tmp_path / "legacy")
        save_dataset(sst, path)  # npz default
        manifest = read_manifest(path)
        del manifest["codec"]
        write_manifest(path, manifest)
        src = ShardDirSource(path)
        assert src.codec.name == "npz"
        assert np.array_equal(
            src.snapshot(0).get("u"), sst.snapshots[0].get("u")
        )

    @pytest.mark.parametrize("codec", ("raw", "chunked"))
    def test_source_times_and_nbytes_match_npz(self, codec_dirs, codec):
        ref = ShardDirSource(codec_dirs["npz"])
        src = ShardDirSource(codec_dirs[codec])
        assert np.array_equal(src.times, ref.times)
        assert src.nbytes() == ref.nbytes()
        assert src.grid_shape == ref.grid_shape


class TestStreamGolden:
    """Acceptance: stream-subsample output is byte-identical to the npz
    golden for every codec, per (seed, nranks), owned shards included."""

    @pytest.mark.parametrize("seed,nranks", [(0, 1), (0, 2), (3, 2)])
    def test_codecs_match_npz_golden(self, codec_dirs, seed, nranks):
        def run(path):
            src = open_source(path, max_cached=2)
            try:
                return subsample(src, stream_case(), nranks=nranks,
                                 seed=seed, mode="stream")
            finally:
                src.close()

        golden = run(codec_dirs["npz"])
        for codec in ("raw", "chunked"):
            got = run(codec_dirs[codec])
            assert np.array_equal(golden.points.coords, got.points.coords), codec
            assert np.array_equal(golden.points.time, got.points.time), codec
            for var, vals in golden.points.values.items():
                assert np.array_equal(vals, got.points.values[var]), (codec, var)

    @pytest.mark.parametrize("codec", ("raw", "chunked"))
    def test_owned_shards_match_npz_golden(self, codec_dirs, codec):
        def run(path):
            src = open_source(path, max_cached=2)
            try:
                return subsample(src, stream_case(), nranks=2, seed=0,
                                 mode="stream", owned_shards=True)
            finally:
                src.close()

        golden = run(codec_dirs["npz"])
        got = run(codec_dirs[codec])
        assert np.array_equal(golden.points.coords, got.points.coords)
        for var, vals in golden.points.values.items():
            assert np.array_equal(vals, got.points.values[var]), var

    def test_remote_tier_matches_npz_golden(self, codec_dirs):
        golden_src = open_source(codec_dirs["npz"], max_cached=2)
        remote_src = open_source(
            f"remote://{codec_dirs['raw']}?latency_s=0.01&max_staged=2"
        )
        try:
            golden = subsample(golden_src, stream_case(), nranks=2, seed=0,
                               mode="stream")
            got = subsample(remote_src, stream_case(), nranks=2, seed=0,
                            mode="stream")
        finally:
            golden_src.close()
            remote_src.close()
        assert np.array_equal(golden.points.coords, got.points.coords)
        for var, vals in golden.points.values.items():
            assert np.array_equal(vals, got.points.values[var]), var
        assert remote_src.cache_info()["counters"]["remote_fetches"] > 0


class TestLazyMappingSemantics:
    @pytest.mark.parametrize("codec", ("raw", "chunked"))
    def test_lazy_members_are_a_real_mapping(self, sst, codec_dirs, codec):
        snap = ShardDirSource(codec_dirs[codec], lazy=True).snapshot(0)
        assert snap.decoded_members() == []
        assert snap.grid_shape == sst.grid_shape  # metadata only, no decode
        assert snap.decoded_members() == []
        u = snap.get("u")
        assert snap.decoded_members() == ["u"]
        assert np.array_equal(u, sst.snapshots[0].get("u"))
        assert snap.variables.get("not-a-var", "sentinel") == "sentinel"
        full = dict(snap.variables)
        assert sorted(full) == sorted(sst.snapshots[0].variables)
        assert all(np.asarray(v).size for v in full.values())
        assert len(snap.variables) == len(sst.snapshots[0].variables)

    @pytest.mark.parametrize("codec", ("raw", "chunked"))
    def test_lazy_nbytes_is_header_only(self, codec_dirs, codec):
        lazy = ShardDirSource(codec_dirs[codec], lazy=True).snapshot(0)
        eager = ShardDirSource(codec_dirs[codec], lazy=False).snapshot(0)
        assert lazy.nbytes() == eager.nbytes()
        assert lazy.decoded_members() == []

    @pytest.mark.parametrize("codec", ("raw", "chunked"))
    def test_derived_variables_compose_with_lazy_members(
        self, sst, codec_dirs, codec
    ):
        snap = ShardDirSource(codec_dirs[codec], lazy=True).snapshot(0)
        assert np.allclose(snap.get("pv"), sst.snapshots[0].get("pv"))


class TestAtomicManifest:
    def test_write_manifest_replaces_atomically(self, tmp_path):
        path = str(tmp_path)
        write_manifest(path, {"n_snapshots": 1})
        assert read_manifest(path) == {"n_snapshots": 1}
        write_manifest(path, {"n_snapshots": 2})
        assert read_manifest(path) == {"n_snapshots": 2}
        assert not os.path.exists(os.path.join(path, MANIFEST + ".tmp"))

    def test_killed_writer_leaves_no_half_valid_dir(self, sst, tmp_path):
        """Satellite bugfix: a writer dying mid-save must leave a directory
        that ShardDirSource refuses, never one it silently opens."""
        path = str(tmp_path / "halfway")

        calls = {"n": 0}
        real_replace = os.replace

        def dying_replace(src, dst, *a, **kw):
            if dst.endswith(MANIFEST):
                calls["n"] += 1
                raise KeyboardInterrupt("killed mid-save")  # before commit
            return real_replace(src, dst, *a, **kw)

        import repro.data.store as store_mod

        store_mod.os.replace, saved = dying_replace, store_mod.os.replace
        try:
            with pytest.raises(KeyboardInterrupt):
                save_dataset(sst, path, codec="raw")
        finally:
            store_mod.os.replace = saved
        assert calls["n"] == 1
        # Shards exist but the commit record does not: opening must fail.
        assert os.path.isdir(path) and os.listdir(path)
        assert not os.path.exists(os.path.join(path, MANIFEST))
        with pytest.raises(FileNotFoundError, match="no manifest.json"):
            ShardDirSource(path)

    def test_torn_tmp_file_never_shadows_manifest(self, sst, tmp_path):
        """The tmp file is invisible to readers even if it survives."""
        path = str(tmp_path / "ds")
        save_dataset(sst, path, codec="chunked")
        torn = os.path.join(path, MANIFEST + ".tmp")
        with open(torn, "w", encoding="utf-8") as fh:
            fh.write('{"n_snapshots":')  # torn JSON
        manifest = read_manifest(path)
        assert manifest["codec"] == "chunked"
        assert json.loads(open(os.path.join(path, MANIFEST)).read()) == manifest
