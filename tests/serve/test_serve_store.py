"""ArtifactStore: content-keyed commit semantics and byte stability."""

import copy
import os

import pytest

from repro.api import Experiment, SubsampleArtifact
from repro.serve.store import ArtifactStore

from _serve_cases import TINY_CASE


@pytest.fixture(scope="module")
def sample_artifact():
    """One real subsample artifact shared by the module (cheap but not free)."""
    exp = (Experiment.from_case(copy.deepcopy(TINY_CASE))
           .with_seed(3).with_scale(0.5))
    exp.subsample()
    return exp.subsample_artifact


class TestStoreCommit:
    def test_put_then_entry_and_load(self, tmp_path, sample_artifact):
        store = ArtifactStore(str(tmp_path / "store"))
        assert not store.has("ab" * 32)
        entry = store.put("ab" * 32, sample_artifact, meta={"job_kind": "x"})
        assert store.has("ab" * 32)
        assert entry.kind == "subsample"
        assert entry.artifact_path.endswith("artifact.npz")
        assert os.path.isfile(entry.artifact_path)
        assert entry.meta["job_kind"] == "x"
        loaded = store.load("ab" * 32)
        assert isinstance(loaded, SubsampleArtifact)
        assert loaded.result.n_samples == sample_artifact.result.n_samples

    def test_put_is_idempotent_first_wins(self, tmp_path, sample_artifact):
        store = ArtifactStore(str(tmp_path / "store"))
        key = "cd" * 32
        first = store.put(key, sample_artifact, meta={"attempt": 1})
        with open(first.artifact_path, "rb") as fh:
            original = fh.read()
        second = store.put(key, sample_artifact, meta={"attempt": 2})
        assert second.artifact_path == first.artifact_path
        assert second.meta["attempt"] == 1  # first commit's record survives
        with open(first.artifact_path, "rb") as fh:
            assert fh.read() == original
        assert store.keys() == [key]

    def test_artifact_bytes_match_direct_save(self, tmp_path, sample_artifact):
        """The cache must store exactly what Artifact.save produces —
        service bookkeeping lives only in meta.json."""
        store = ArtifactStore(str(tmp_path / "store"))
        entry = store.put("ef" * 32, sample_artifact)
        direct = sample_artifact.save(str(tmp_path / "direct"))
        with open(entry.artifact_path, "rb") as lhs, open(direct, "rb") as rhs:
            assert lhs.read() == rhs.read()

    def test_no_partial_entries(self, tmp_path, sample_artifact):
        """An entry exists only once meta.json is committed: an artifact
        file without its record is invisible to readers."""
        store = ArtifactStore(str(tmp_path / "store"))
        key = "12" * 32
        entry = store.put(key, sample_artifact)
        os.remove(os.path.join(os.path.dirname(entry.artifact_path),
                               "meta.json"))
        assert not store.has(key)
        assert store.entry(key) is None
        assert store.keys() == []

    def test_stats_and_missing_load(self, tmp_path, sample_artifact):
        store = ArtifactStore(str(tmp_path / "store"))
        assert store.stats() == {"entries": 0, "bytes": 0}
        store.put("34" * 32, sample_artifact)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        with pytest.raises(KeyError):
            store.load("56" * 32)

    def test_unknown_kind_rejected(self, tmp_path):
        class Oddball:
            kind = "mystery"

        store = ArtifactStore(str(tmp_path / "store"))
        with pytest.raises(ValueError, match="unknown artifact kind"):
            store.put("78" * 32, Oddball())
