"""Shared tiny case document for the serve test suite (imported by the
conftest and the test modules; kept out of conftest.py so the tests can
import it without relying on conftest's module name)."""

#: a tiny but complete case document (8^3 cubes, 64 samples); mirrors
#: tests/test_cli.py's SST case.
TINY_CASE = {
    "shared": {
        "dims": 3,
        "dtype": "sst-binary",
        "input_vars": ["u", "v", "w"],
        "output_vars": "p",
        "cluster_var": "pv",
        "gravity": "z",
        "fileprefix": "serve-test",
    },
    "subsample": {
        "hypercubes": "maxent",
        "num_hypercubes": 3,
        "method": "maxent",
        "num_samples": 64,
        "num_clusters": 4,
        "nxsl": 8,
        "nysl": 8,
        "nzsl": 8,
    },
    "train": {
        "epochs": 2,
        "batch": 4,
        "window": 1,
        "arch": "MLP_transformer",
    },
}

#: the same case as repro-submit-compatible YAML (for CLI-level tests)
TINY_CASE_YAML = """
shared:
  dims: 3
  dtype: sst-binary
  input_vars: [u, v, w]
  output_vars: p
  cluster_var: pv
  gravity: z
  fileprefix: "serve-test"
subsample:
  hypercubes: maxent
  num_hypercubes: 3
  method: maxent
  num_samples: 64
  num_clusters: 4
  nxsl: 8
  nysl: 8
  nzsl: 8
train:
  epochs: 2
  batch: 4
  window: 1
  arch: MLP_transformer
"""
