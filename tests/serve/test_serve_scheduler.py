"""Scheduler lifecycle: attach, cache hits, admission, retry, drain, resume.

Job compute is stubbed (``repro.serve.scheduler.execute_job``) so each
test controls exactly when a "job" blocks, dies, checkpoints, or
finishes — the real pipeline is exercised end-to-end in
test_serve_http.py.
"""

import copy
import os
import threading
import time

import pytest

import repro.serve.scheduler as sched_mod
from repro.serve.jobs import JobSpec
from repro.serve.runner import JobOutcome, STOP_FILE
from repro.serve.scheduler import (
    AdmissionPolicy,
    AdmissionRejected,
    Scheduler,
    ServiceDraining,
)
from repro.serve.store import ArtifactStore

from _serve_cases import TINY_CASE


def make_spec(**over) -> JobSpec:
    base = {"kind": "subsample", "case": copy.deepcopy(TINY_CASE),
            "seed": 3, "ranks": 1, "scale": 0.5}
    base.update(over)
    return JobSpec.from_json(base)


def wait_for(predicate, timeout: float = 10.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


class FakeArtifact:
    """Duck-typed api.Artifact: enough for ArtifactStore.put."""

    kind = "subsample"

    def __init__(self, payload: bytes = b"fake-npz-bytes") -> None:
        self.payload = payload

    def save(self, path: str) -> str:
        if not path.endswith(".npz"):
            path = path + ".npz"
        with open(path, "wb") as fh:
            fh.write(self.payload)
        return path


class StubRunner:
    """Scriptable execute_job replacement.

    ``gate[seed]`` — job blocks until the event is set.
    ``fail_once[seed]`` — first execution raises that exception.
    ``park_on_stop`` — job polls for its STOP file, then checkpoints.
    Records every ``(seed, resume_checkpoint)`` call.
    """

    def __init__(self) -> None:
        self.gate: dict[int, threading.Event] = {}
        self.fail_once: dict[int, Exception] = {}
        self.park_on_stop = False
        self.calls: list[tuple[int, str | None]] = []
        self._lock = threading.Lock()

    def __call__(self, spec, workdir, resume_checkpoint=None) -> JobOutcome:
        with self._lock:
            self.calls.append((spec.seed, resume_checkpoint))
            exc = self.fail_once.pop(spec.seed, None)
        if exc is not None:
            raise exc
        gate = self.gate.get(spec.seed)
        if gate is not None and not gate.wait(timeout=10.0):
            raise AssertionError(f"seed {spec.seed} gate never opened")
        os.makedirs(workdir, exist_ok=True)
        if self.park_on_stop:
            stop = os.path.join(workdir, STOP_FILE)
            wait_for(lambda: os.path.exists(stop), what="STOP file")
            ckpt = os.path.join(workdir, "checkpoint.npz")
            with open(ckpt, "wb") as fh:
                fh.write(b"ckpt")
            return JobOutcome(status="checkpointed",
                              meta={"epochs_run": 1, "epochs_target": 50},
                              checkpoint_path=ckpt)
        return JobOutcome(status="done", artifact=FakeArtifact(),
                          meta={"n_samples": 64, "total_energy": 1.5})


@pytest.fixture()
def stub(monkeypatch):
    runner = StubRunner()
    monkeypatch.setattr(sched_mod, "execute_job", runner)
    return runner


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def scheduler_for(store, tmp_path, **kw) -> Scheduler:
    kw.setdefault("workers", 1)
    return Scheduler(store, spool=str(tmp_path / "spool"), **kw)


class TestDedupe:
    def test_concurrent_duplicates_attach(self, stub, store, tmp_path):
        stub.gate[3] = threading.Event()
        with scheduler_for(store, tmp_path) as sched:
            first = sched.submit(make_spec())
            assert first["status"] in ("queued", "running")
            assert not first["attached"]
            second = sched.submit(make_spec(backend="process"))
            assert second["attached"]
            assert second["id"] == first["id"]
            stub.gate[3].set()
            wait_for(lambda: sched.job(first["id"])["status"] == "done",
                     what="job completion")
            # one compute, one store entry, attach counted
            assert len(stub.calls) == 1
            assert len(store.keys()) == 1
            stats = sched.stats()
            assert stats["counters"]["attached"] == 1
            assert stats["counters"]["completed"] == 1
            assert sched.job(first["id"])["attach_count"] == 1

    def test_resubmit_after_done_is_cache_hit(self, stub, store, tmp_path):
        with scheduler_for(store, tmp_path) as sched:
            first = sched.submit(make_spec())
            wait_for(lambda: sched.job(first["id"])["status"] == "done",
                     what="job completion")
            again = sched.submit(make_spec())
            assert again["status"] == "done"
            assert again["cache_hit"]
            assert again["artifact_ready"]
            assert again["id"] != first["id"]
            assert len(stub.calls) == 1  # no second compute
            assert sched.stats()["counters"]["cache_hits"] == 1

    def test_distinct_specs_compute_separately(self, stub, store, tmp_path):
        with scheduler_for(store, tmp_path, workers=2) as sched:
            a = sched.submit(make_spec(seed=1))
            b = sched.submit(make_spec(seed=2))
            assert a["id"] != b["id"]
            wait_for(lambda: all(
                sched.job(j)["status"] == "done" for j in (a["id"], b["id"])),
                what="both jobs")
            assert len(store.keys()) == 2


class TestAdmission:
    def test_oversized_job_rejected(self, stub, store, tmp_path):
        policy = AdmissionPolicy(rank_budget=2)
        with scheduler_for(store, tmp_path, policy=policy) as sched:
            with pytest.raises(AdmissionRejected, match="budget units"):
                sched.submit(make_spec(ranks=4))
            assert sched.stats()["counters"]["rejected"] == 1

    def test_z_margin_inflates_cost(self, stub, store, tmp_path):
        # deterministic equivalent: 2 ranks * (1 + 1.0*0.5) = 3 > budget 2
        policy = AdmissionPolicy(rank_budget=2, z_margin=1.0)
        with scheduler_for(store, tmp_path, policy=policy) as sched:
            with pytest.raises(AdmissionRejected):
                sched.submit(make_spec(ranks=2))

    def test_queue_bound_gives_fast_reject(self, stub, store, tmp_path):
        stub.gate[1] = threading.Event()
        policy = AdmissionPolicy(rank_budget=4, max_queued=1)
        with scheduler_for(store, tmp_path, policy=policy) as sched:
            running = sched.submit(make_spec(seed=1))
            wait_for(lambda: sched.job(running["id"])["status"] == "running",
                     what="first job to start")
            sched.submit(make_spec(seed=2))  # fills the queue
            with pytest.raises(AdmissionRejected, match="queue is full"):
                sched.submit(make_spec(seed=3))
            stub.gate[1].set()

    def test_backfill_never_starves_fitting_jobs(self, stub, store, tmp_path):
        """A small job behind a blocked big one starts first (FIFO with
        backfill), and the big one still runs once budget frees up."""
        stub.gate[1] = threading.Event()
        policy = AdmissionPolicy(rank_budget=3)
        with scheduler_for(store, tmp_path, workers=2,
                           policy=policy) as sched:
            big = sched.submit(make_spec(seed=1, ranks=2))
            wait_for(lambda: sched.job(big["id"])["status"] == "running",
                     what="big job to start")
            blocked = sched.submit(make_spec(seed=2, ranks=2))  # 2 > headroom 1
            small = sched.submit(make_spec(seed=3, ranks=1))    # fits headroom
            wait_for(lambda: sched.job(small["id"])["status"] == "done",
                     what="backfilled small job")
            assert sched.job(blocked["id"])["status"] == "queued"
            stub.gate[1].set()
            wait_for(lambda: sched.job(blocked["id"])["status"] == "done",
                     what="blocked job after budget freed")


class TestFailureAndRetry:
    def test_worker_death_retries_then_succeeds(self, stub, store, tmp_path):
        stub.fail_once[3] = RuntimeError("rank 1 died unexpectedly (exit -9)")
        with scheduler_for(store, tmp_path) as sched:
            snap = sched.submit(make_spec(retries=1))
            wait_for(lambda: sched.job(snap["id"])["status"] == "done",
                     what="retried job")
            final = sched.job(snap["id"])
            assert final["retries_used"] == 1
            assert len(stub.calls) == 2
            assert sched.stats()["counters"]["retried"] == 1

    def test_worker_death_without_retries_fails(self, stub, store, tmp_path):
        stub.fail_once[3] = RuntimeError("rank 0 timed out after 30.0s")
        with scheduler_for(store, tmp_path) as sched:
            snap = sched.submit(make_spec())
            wait_for(lambda: sched.job(snap["id"])["status"] == "failed",
                     what="failed job")
            assert "timed out" in sched.job(snap["id"])["error"]

    def test_deterministic_error_never_retries(self, stub, store, tmp_path):
        stub.fail_once[3] = ValueError("num_samples exceeds candidate pool")
        with scheduler_for(store, tmp_path) as sched:
            snap = sched.submit(make_spec(retries=5))
            wait_for(lambda: sched.job(snap["id"])["status"] == "failed",
                     what="failed job")
            final = sched.job(snap["id"])
            assert final["retries_used"] == 0
            assert final["error"].startswith("ValueError")
            assert len(stub.calls) == 1

    def test_failed_key_is_released_for_recompute(self, stub, store, tmp_path):
        stub.fail_once[3] = ValueError("boom")
        with scheduler_for(store, tmp_path) as sched:
            first = sched.submit(make_spec())
            wait_for(lambda: sched.job(first["id"])["status"] == "failed",
                     what="failed job")
            second = sched.submit(make_spec())  # fresh compute, not attach
            assert not second["attached"]
            assert second["id"] != first["id"]
            wait_for(lambda: sched.job(second["id"])["status"] == "done",
                     what="recomputed job")


class TestDrainAndResume:
    def test_drain_cancels_queued_and_parks_running(self, stub, store,
                                                    tmp_path):
        stub.park_on_stop = True
        stub.gate[1] = threading.Event()
        stub.gate[1].set()  # running job goes straight to STOP-polling
        sched = scheduler_for(store, tmp_path)
        try:
            running = sched.submit(make_spec(seed=1, kind="train", epochs=50))
            wait_for(lambda: sched.job(running["id"])["status"] == "running",
                     what="train job to start")
            queued = sched.submit(make_spec(seed=2))
            summary = sched.close(timeout=15.0)
        finally:
            sched.close(timeout=1.0)
        assert summary["cancelled"] == [queued["id"]]
        assert summary["checkpointed"] == [running["id"]]
        assert summary["jobs"][queued["id"]] == "cancelled"
        parked = sched.job(running["id"])
        assert parked["status"] == "checkpointed"
        assert parked["resumable"]
        workdir = os.path.join(sched.spool, running["id"])
        assert os.path.isfile(os.path.join(workdir, "job.json"))
        assert os.path.isfile(os.path.join(workdir, "checkpoint.npz"))
        assert store.keys() == []  # partial fits are never cached

    def test_submit_during_drain_rejected(self, stub, store, tmp_path):
        sched = scheduler_for(store, tmp_path)
        try:
            sched.drain()
            with pytest.raises(ServiceDraining):
                sched.submit(make_spec())
            with pytest.raises(ServiceDraining):
                sched.resume("j000001")
        finally:
            sched.close(timeout=1.0)

    def test_restore_then_resume_across_restart(self, stub, store, tmp_path):
        # First server lifetime: drain an in-flight train job.
        stub.park_on_stop = True
        with scheduler_for(store, tmp_path) as sched:
            parked = sched.submit(make_spec(kind="train", epochs=50))
            wait_for(lambda: sched.job(parked["id"])["status"] == "running",
                     what="train job to start")
        # Second lifetime over the same spool: the record is re-adopted.
        stub.park_on_stop = False
        with scheduler_for(store, tmp_path) as sched2:
            restored = sched2.job(parked["id"])
            assert restored["status"] == "checkpointed"
            assert restored["resumable"]
            resumed = sched2.resume(parked["id"])
            assert resumed["id"] != parked["id"]
            wait_for(lambda: sched2.job(resumed["id"])["status"] == "done",
                     what="resumed job")
            # the resumed execution received the parked checkpoint
            seed, ckpt = stub.calls[-1]
            assert seed == 3
            assert ckpt is not None and ckpt.endswith("checkpoint.npz")
            assert sched2.job(parked["id"])["resumed_to"] == resumed["id"]
            assert sched2.stats()["counters"]["resumed"] == 1
            with pytest.raises(ValueError, match="already resumed"):
                sched2.resume(parked["id"])

    def test_resume_errors(self, stub, store, tmp_path):
        with scheduler_for(store, tmp_path) as sched:
            done = sched.submit(make_spec())
            wait_for(lambda: sched.job(done["id"])["status"] == "done",
                     what="job completion")
            with pytest.raises(KeyError):
                sched.resume("j999999")
            with pytest.raises(ValueError, match="not 'checkpointed'"):
                sched.resume(done["id"])


class TestStats:
    def test_energy_and_cache_aggregates(self, stub, store, tmp_path):
        with scheduler_for(store, tmp_path) as sched:
            a = sched.submit(make_spec(seed=1))
            b = sched.submit(make_spec(seed=2))
            wait_for(lambda: all(
                sched.job(j)["status"] == "done" for j in (a["id"], b["id"])),
                what="both jobs")
            stats = sched.stats()
            assert stats["energy_total"] == pytest.approx(3.0)  # 2 x 1.5
            assert stats["store"]["entries"] == 2
            assert stats["jobs"]["done"] == 2
            assert stats["running_cost"] == 0
