"""Graceful-shutdown coverage for the real ``repro-serve`` daemon.

Launches ``python -m repro.serve`` as a subprocess, submits a long train
job over HTTP, SIGTERMs the daemon mid-fit, and asserts the documented
drain contract: exit code 0, queued work cancelled, the in-flight fit
parked at a resumable checkpoint, one machine-readable shutdown summary
line, and no orphaned worker processes (the session-wide orphan guard in
tests/conftest.py backstops the last point).
"""

import copy
import json
import multiprocessing as mp
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.client import ServeClient, ServeError

from _serve_cases import TINY_CASE

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src")


def daemon_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("REPRO_PROC_TIMEOUT", "120")
    env["PYTHONUNBUFFERED"] = "1"
    return env


@pytest.fixture()
def daemon(tmp_path):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", "--workers", "1",
         "--store", str(tmp_path / "store"), "--drain-timeout", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=daemon_env(), cwd=str(tmp_path))
    try:
        banner = proc.stdout.readline()
        assert "repro-serve listening on " in banner, banner
        url = banner.split("listening on ", 1)[1].split()[0]
        yield proc, url, tmp_path
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_sigterm_mid_train_drains_and_checkpoints(daemon):
    proc, url, tmp_path = daemon
    client = ServeClient(url, timeout=10.0)
    assert client.health()["ok"]

    train = client.submit({
        "kind": "train", "case": copy.deepcopy(TINY_CASE),
        "seed": 0, "scale": 0.5, "epochs": 200,
    })
    # A second identical submission while in flight must attach, and a
    # queued job behind the single worker must be cancelled by the drain.
    attached = client.submit({
        "kind": "train", "case": copy.deepcopy(TINY_CASE),
        "seed": 0, "scale": 0.5, "epochs": 200,
    })
    assert attached["attached"]
    assert attached["id"] == train["id"]
    queued = client.submit({
        "kind": "subsample", "case": copy.deepcopy(TINY_CASE),
        "seed": 9, "scale": 0.5,
    })

    # Wait until the fit has streamed at least two epochs of progress.
    deadline = time.monotonic() + 120.0
    while True:
        snap = client.job(train["id"])
        progress = snap.get("progress") or {}
        if progress.get("epoch", 0) >= 2:
            break
        assert time.monotonic() < deadline, f"no progress: {snap}"
        time.sleep(0.1)

    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=90)
    assert proc.returncode == 0, out
    assert "repro-serve draining" in out

    summary_lines = [line for line in out.splitlines()
                     if line.startswith("repro-serve shutdown: ")]
    assert len(summary_lines) == 1, out
    summary = json.loads(summary_lines[0].split("shutdown: ", 1)[1])
    assert summary["jobs"][train["id"]] == "checkpointed"
    assert train["id"] in summary["checkpointed"]
    # the queued subsample either got cancelled by the drain or squeaked
    # through before the signal landed; it must not be stuck mid-state
    assert summary["jobs"][queued["id"]] in ("cancelled", "done")
    assert summary["counters"]["attached"] == 1

    ckpt = tmp_path / "store" / "spool" / train["id"] / "checkpoint.npz"
    assert ckpt.is_file()
    record = json.loads(
        (tmp_path / "store" / "spool" / train["id"] / "job.json").read_text())
    assert record["status"] == "checkpointed"
    assert record["checkpoint"] == str(ckpt)

    # daemon is gone: the port no longer answers, and no worker processes
    # survived it (mp.active_children only sees our own children, so also
    # assert the daemon's whole process tree is gone via returncode above)
    with pytest.raises(ServeError):
        client.health()
    assert mp.active_children() == []
