"""Shared fixtures for the serve suite, plus the opt-in runtime sanitizer.

``REPRO_SANITIZE=1 pytest tests/serve`` instruments the scheduler's
lock-owning class and the shared-memory transport for the session (see
:mod:`repro.lint.runtime`) and asserts a clean check at teardown — same
pattern as ``tests/parallel/conftest.py``.  Without the environment
variable it is inert.
"""

import copy

import pytest

from repro.lint import runtime

from _serve_cases import TINY_CASE


@pytest.fixture()
def tiny_case() -> dict:
    # a fresh copy per test: specs must be free to mutate their case
    return copy.deepcopy(TINY_CASE)


@pytest.fixture(scope="session", autouse=True)
def runtime_sanitizer():
    if not runtime.enabled():
        yield
        return
    runtime.install()
    try:
        yield
        runtime.check(strict=True)
    finally:
        runtime.uninstall()
