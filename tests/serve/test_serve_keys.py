"""Content-key stability — the dedupe identity must not drift.

Pins the satellite contract: keys are invariant to dict ordering,
defaulted-vs-spelled-out case fields, and the SPMD backend (the PR 6
conformance grid makes backends byte-interchangeable), and sensitive to
everything that perturbs artifact bytes (seed, ranks, scale, kind).
"""

import copy

import pytest

from repro.api import SubsampleArtifact
from repro.serve.jobs import JobSpec, JobSpecError
from repro.serve.keys import (
    canonical_json,
    content_key,
    dir_fingerprint,
    source_fingerprint,
)

from _serve_cases import TINY_CASE


def reordered(doc: dict) -> dict:
    """Deep copy with every dict's insertion order reversed."""
    if isinstance(doc, dict):
        return {k: reordered(doc[k]) for k in reversed(list(doc))}
    if isinstance(doc, list):
        return [reordered(v) for v in doc]
    return copy.deepcopy(doc)


class TestCanonicalJson:
    def test_ordering_invariant(self):
        assert canonical_json({"b": 1, "a": {"y": 2, "x": 3}}) == \
            canonical_json({"a": {"x": 3, "y": 2}, "b": 1})

    def test_minimal_and_ascii(self):
        text = canonical_json({"k": "v", "n": 1.5})
        assert text == '{"k":"v","n":1.5}'
        text.encode("ascii")  # must not raise

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"loss": float("nan")})

    def test_content_key_is_sha256_hex(self):
        key = content_key({"a": 1})
        assert len(key) == 64
        int(key, 16)  # hex


class TestJobSpecKeys:
    def spec(self, **over) -> JobSpec:
        base = {"kind": "subsample", "case": copy.deepcopy(TINY_CASE),
                "seed": 3, "ranks": 2, "scale": 0.5}
        base.update(over)
        return JobSpec.from_json(base)

    def test_stable_across_case_dict_ordering(self):
        assert self.spec().content_key() == \
            self.spec(case=reordered(TINY_CASE)).content_key()

    def test_stable_across_defaulted_fields(self):
        """A case round-tripped through CaseConfig (every default spelled
        out) must hash identically to the terse client-side dict."""
        from repro.utils.config import CaseConfig

        expanded = CaseConfig.from_dict(copy.deepcopy(TINY_CASE)).to_dict()
        assert expanded != TINY_CASE  # defaults really were filled in
        assert self.spec().content_key() == \
            self.spec(case=expanded).content_key()

    def test_backend_excluded(self):
        assert self.spec(backend="thread").content_key() == \
            self.spec(backend="process").content_key()

    def test_execution_policy_excluded(self):
        assert self.spec().content_key() == \
            self.spec(retries=3).content_key()
        train = self.spec(kind="train", epochs=2)
        assert train.content_key() == \
            self.spec(kind="train", epochs=2,
                      checkpoint_every=5).content_key()

    @pytest.mark.parametrize("field,value", [
        ("seed", 4),
        ("ranks", 3),
        ("scale", 0.75),
        ("mode", "stream"),
        ("stream_shuffle", 7),
    ])
    def test_identity_fields_included(self, field, value):
        assert self.spec().content_key() != \
            self.spec(**{field: value}).content_key()

    def test_kind_included(self):
        sub = self.spec()
        train = self.spec(kind="train", epochs=2)
        assert sub.content_key() != train.content_key()

    def test_epochs_perturb_train_keys(self):
        assert self.spec(kind="train", epochs=2).content_key() != \
            self.spec(kind="train", epochs=3).content_key()

    def test_unknown_field_rejected(self):
        with pytest.raises(JobSpecError, match="unknown job spec field"):
            JobSpec.from_json({"kind": "subsample", "case": TINY_CASE,
                               "sed": 3})


class TestSourceFingerprint:
    def test_catalog_vs_sim_distinct(self):
        cat = source_fingerprint(None, dtype="sst-binary", scale=0.5, seed=0)
        sim = source_fingerprint("sim", dtype="sst-binary", scale=0.5, seed=0)
        assert cat["kind"] == "catalog"
        assert sim["kind"] == "sim"
        assert content_key(cat) != content_key(sim)

    def test_dir_fingerprint_requires_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            dir_fingerprint(str(tmp_path))

    def test_dir_fingerprint_tracks_structure(self, tmp_path):
        from repro.data import build_dataset, save_dataset

        shard_dir = str(tmp_path / "shards")
        save_dataset(
            build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=2),
            shard_dir)
        first = dir_fingerprint(shard_dir)
        assert first == dir_fingerprint(shard_dir)  # stable
        (tmp_path / "shards" / "extra.bin").write_bytes(b"xx")
        assert dir_fingerprint(shard_dir) != first

    def test_cache_knobs_are_identity(self, tmp_path):
        from repro.data import build_dataset, save_dataset

        shard_dir = str(tmp_path / "shards")
        save_dataset(
            build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=2),
            shard_dir)
        kw = {"dtype": "sst-binary", "scale": 0.5, "seed": 0}
        base = source_fingerprint(shard_dir, **kw)
        assert source_fingerprint(shard_dir, **kw) == base
        assert source_fingerprint(shard_dir, prefetch=2, **kw) != base
        assert source_fingerprint(shard_dir, max_cached=5, **kw) != base


class TestArtifactFingerprint:
    def meta(self) -> dict:
        return {"seed": 3, "scale": 0.5, "ranks": 2, "backend": "thread",
                "case": copy.deepcopy(TINY_CASE)}

    def test_stable_across_meta_ordering(self):
        a = SubsampleArtifact(meta=self.meta())
        b = SubsampleArtifact(meta=reordered(self.meta()))
        assert a.fingerprint() == b.fingerprint()

    def test_backend_and_checkpoint_dropped(self):
        a = SubsampleArtifact(meta=self.meta())
        b = SubsampleArtifact(meta={**self.meta(), "backend": "process",
                                    "checkpoint": "/tmp/x.npz"})
        assert a.fingerprint() == b.fingerprint()

    def test_seed_and_kind_matter(self):
        a = SubsampleArtifact(meta=self.meta())
        assert a.fingerprint() != \
            SubsampleArtifact(meta={**self.meta(), "seed": 4}).fingerprint()
        from repro.api import TrainArtifact

        assert a.fingerprint() != \
            TrainArtifact(meta=self.meta()).fingerprint()
