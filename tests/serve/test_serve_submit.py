"""Flag-surface tests for ``repro-submit`` and ``repro-serve`` arg parsing.

Invalid combinations must die at the parser (exit code 2, message on
stderr) before any network traffic — same rejection style as
repro-subsample / repro-train (see tests/test_cli.py).
"""

import copy
import json

import pytest

from repro.cli import main
from repro.serve.cli import serve_main, submit_main
from repro.serve.scheduler import Scheduler
from repro.serve.server import ReproServer
from repro.serve.store import ArtifactStore

from _serve_cases import TINY_CASE, TINY_CASE_YAML


@pytest.fixture()
def case_file(tmp_path):
    path = tmp_path / "case.yaml"
    path.write_text(TINY_CASE_YAML)
    return str(path)


def rejects(argv, match: str, capsys):
    with pytest.raises(SystemExit) as exc:
        submit_main(argv)
    assert exc.value.code == 2
    assert match in capsys.readouterr().err


class TestSubmitRejections:
    def test_case_required_without_resume(self, capsys):
        rejects([], "case YAML file is required", capsys)

    def test_resume_takes_no_spec_flags(self, case_file, capsys):
        rejects([case_file, "--resume", "j000001"],
                "--resume continues an already-checkpointed job", capsys)
        rejects(["--resume", "j000001", "--train"], "do not apply", capsys)
        rejects(["--resume", "j000001", "--stream"], "do not apply", capsys)
        rejects(["--resume", "j000001", "--tune", "3"], "do not apply", capsys)
        rejects(["--resume", "j000001", "--source", "sim"], "do not apply",
                capsys)

    def test_tune_combos(self, case_file, capsys):
        rejects([case_file, "--tune", "0"], "at least 1 trial", capsys)
        rejects([case_file, "--tune", "3", "--train"],
                "different job kinds", capsys)
        rejects([case_file, "--tune", "3", "--stream"],
                "cannot combine with --stream", capsys)
        rejects([case_file, "--tune", "3", "--ranks", "2"],
                "run serially", capsys)

    def test_output_needs_wait(self, case_file, capsys):
        rejects([case_file, "--output", "out.npz", "--no-wait"],
                "needs --wait", capsys)

    def test_retry_and_checkpoint_bounds(self, case_file, capsys):
        rejects([case_file, "--retries", "-1"], "--retries must be >= 0",
                capsys)
        rejects([case_file, "--train", "--checkpoint-every", "0"],
                "positive epoch count", capsys)
        rejects([case_file, "--checkpoint-every", "2"],
                "applies only to --train", capsys)


class TestServeArgRejections:
    def test_worker_and_budget_bounds(self, capsys):
        with pytest.raises(SystemExit) as exc:
            serve_main(["--workers", "0"])
        assert exc.value.code == 2
        assert "at least 1 worker" in capsys.readouterr().err
        with pytest.raises(SystemExit) as exc:
            serve_main(["--rank-budget", "0"])
        assert exc.value.code == 2
        assert "at least 1 rank" in capsys.readouterr().err


class TestSubmitAgainstLiveServer:
    @pytest.fixture()
    def server(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, spool=str(tmp_path / "spool"), workers=1)
        with ReproServer("127.0.0.1", 0, scheduler) as srv:
            yield srv

    def test_submit_waits_and_downloads(self, server, case_file, tmp_path,
                                        capsys):
        out_path = str(tmp_path / "sample")
        code = submit_main([case_file, "--url", server.url, "--seed", "3",
                            "--scale", "0.5", "--output", out_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "status" not in out  # human format, not raw JSON
        assert ": done" in out
        assert (tmp_path / "sample.npz").is_file()

    def test_second_submit_reports_cache_hit_json(self, server, case_file,
                                                  capsys):
        assert submit_main([case_file, "--url", server.url, "--seed", "3",
                            "--scale", "0.5"]) == 0
        capsys.readouterr()
        code = submit_main([case_file, "--url", server.url, "--seed", "3",
                            "--scale", "0.5", "--json"])
        assert code == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["cache_hit"] is True
        assert snap["status"] == "done"

    def test_dispatch_via_umbrella_cli(self, server, case_file, capsys):
        code = main(["submit", case_file, "--url", server.url,
                     "--scale", "0.5"])
        assert code == 0
        assert "job j" in capsys.readouterr().out

    def test_unreachable_server_is_an_error_exit(self, case_file, capsys):
        code = submit_main([case_file, "--url", "http://127.0.0.1:9",
                            "--scale", "0.5"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_rejected_submission_is_an_error_exit(self, server, case_file,
                                                  capsys):
        code = submit_main([case_file, "--url", server.url, "--ranks", "64",
                            "--scale", "0.5"])
        assert code == 1
        err = capsys.readouterr().err
        assert "HTTP 429" in err


class TestSpecParity:
    def test_cli_spec_matches_direct_spec_key(self, case_file):
        """A spec built from CLI flags and one built from the raw dict must
        hash to the same content key (CLI round-trips through CaseConfig)."""
        import argparse

        from repro.serve.cli import _build_spec
        from repro.serve.jobs import JobSpec

        args = argparse.Namespace(
            tune=None, train=False, case=case_file, seed=3, ranks=2,
            scale=0.5, stream=False, backend="thread", retries=0,
            source=None, epochs=None, max_cached_shards=None, prefetch=0,
            owned_shards=False, on_rank_failure=None,
            inject_rank_failure=None, stream_shuffle=0, checkpoint_every=1)
        via_cli = JobSpec.from_json(_build_spec(args)).content_key()
        direct = JobSpec.from_json({
            "kind": "subsample", "case": copy.deepcopy(TINY_CASE),
            "seed": 3, "ranks": 2, "scale": 0.5}).content_key()
        assert via_cli == direct
