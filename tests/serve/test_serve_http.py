"""End-to-end HTTP service tests against the real pipeline.

The headline dedupe proof lives here: two identical submissions cost one
compute, the second is flagged ``cache_hit``, and the fetched artifact is
byte-identical to a direct ``Experiment.subsample()`` save.
"""

import copy
import time

import pytest

from repro.api import Experiment
from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import AdmissionPolicy, Scheduler
from repro.serve.server import ReproServer
from repro.serve.store import ArtifactStore

from _serve_cases import TINY_CASE


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One in-process server (ephemeral port) shared by the module."""
    root = tmp_path_factory.mktemp("serve")
    store = ArtifactStore(str(root / "store"))
    scheduler = Scheduler(store, spool=str(root / "spool"), workers=2,
                          policy=AdmissionPolicy(rank_budget=4))
    server = ReproServer("127.0.0.1", 0, scheduler)
    server.start()
    try:
        yield server, store
    finally:
        server.close(timeout=30.0)


@pytest.fixture()
def client(service):
    server, _ = service
    return ServeClient(server.url, timeout=10.0)


def spec(**over) -> dict:
    base = {"kind": "subsample", "case": copy.deepcopy(TINY_CASE),
            "seed": 3, "ranks": 2, "scale": 0.5}
    base.update(over)
    return base


class TestEndToEndDedupe:
    def test_repeat_submission_hits_cache_byte_identically(
            self, client, service, tmp_path):
        _, store = service
        before = len(store.keys())
        first = client.submit(spec())
        first = client.wait(first["id"], timeout=120.0)
        assert first["status"] == "done"
        assert not first["cache_hit"]
        assert first["result"]["n_samples"] > 0
        assert len(store.keys()) == before + 1

        # Same identity, different dict ordering and SPMD backend.
        shuffled = spec(backend="process")
        shuffled["case"] = {k: shuffled["case"][k]
                            for k in reversed(list(shuffled["case"]))}
        second = client.submit(shuffled)
        assert second["status"] == "done"
        assert second["cache_hit"]
        assert len(store.keys()) == before + 1  # still a single entry

        served = client.fetch_artifact(second["id"],
                                       str(tmp_path / "served"))
        direct = (Experiment.from_case(copy.deepcopy(TINY_CASE))
                  .with_seed(3).with_scale(0.5).with_ranks(2))
        direct.subsample()
        direct_path = direct.subsample_artifact.save(str(tmp_path / "direct"))
        with open(served, "rb") as lhs, open(direct_path, "rb") as rhs:
            assert lhs.read() == rhs.read()

    def test_stats_reflect_the_dedupe(self, client):
        stats = client.stats()
        assert stats["counters"]["cache_hits"] >= 1
        assert stats["counters"]["completed"] >= 1
        assert stats["store"]["entries"] >= 1
        assert stats["energy_total"] > 0

    def test_progress_doc_is_served(self, client):
        job = client.submit(spec())  # cache hit or fresh, either is fine
        job = client.wait(job["id"], timeout=120.0)
        snap = client.job(job["id"])
        assert snap["kind"] == "subsample"
        assert "progress" in snap


class TestFaultInjection:
    def test_injected_rank_death_fails_cleanly(self, client):
        job = client.submit(spec(seed=11, mode="stream",
                                 inject_rank_failure=1))
        job = client.wait(job["id"], timeout=120.0)
        assert job["status"] == "failed"
        assert job["error"]
        assert not job["artifact_ready"]
        assert client.health()["ok"]  # the pool survived the job

    def test_reweight_policy_survives_injected_death(self, client):
        job = client.submit(spec(seed=11, mode="stream",
                                 inject_rank_failure=1,
                                 on_rank_failure="reweight"))
        job = client.wait(job["id"], timeout=120.0)
        assert job["status"] == "done"
        assert job["result"]["failed_ranks"] == [1]


class TestErrorMapping:
    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServeError) as err:
            client.submit({"kind": "subsample", "case": TINY_CASE, "sed": 1})
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.submit(spec(kind="tune", mode="stream", tune_trials=2))
        assert err.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.job("j999999")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client.resume("j999999")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client._json("GET", "/v2/everything")
        assert err.value.status == 404

    def test_artifact_before_ready_is_409(self, client):
        job = client.submit(spec(seed=11, mode="stream",
                                 inject_rank_failure=1))
        job = client.wait(job["id"], timeout=120.0)
        assert job["status"] == "failed"
        with pytest.raises(ServeError) as err:
            client.fetch_artifact(job["id"], "/tmp/never-written")
        assert err.value.status == 409

    def test_resume_non_checkpointed_is_409(self, client):
        job = client.submit(spec())
        job = client.wait(job["id"], timeout=120.0)
        assert job["status"] == "done"
        with pytest.raises(ServeError) as err:
            client.resume(job["id"])
        assert err.value.status == 409

    def test_oversized_job_is_429(self, client):
        with pytest.raises(ServeError) as err:
            client.submit(spec(ranks=64))
        assert err.value.status == 429


class TestDrainOverHttp:
    def test_draining_scheduler_returns_503(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, spool=str(tmp_path / "spool"), workers=1)
        with ReproServer("127.0.0.1", 0, scheduler) as server:
            client = ServeClient(server.url, timeout=10.0)
            scheduler.drain()
            with pytest.raises(ServeError) as err:
                client.submit(spec())
            assert err.value.status == 503

    def test_shutdown_endpoint_requests_drain(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, spool=str(tmp_path / "spool"), workers=1)
        with ReproServer("127.0.0.1", 0, scheduler) as server:
            client = ServeClient(server.url, timeout=10.0)
            assert client.health() == {"ok": True, "draining": False}
            assert client.shutdown()["draining"]
            assert server.wait_shutdown(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while not client.health()["draining"]:
                assert time.monotonic() < deadline
                time.sleep(0.05)
