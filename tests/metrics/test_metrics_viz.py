"""Tests for metrics and ASCII/table visualization."""

import numpy as np
import pytest

from repro.metrics import (
    find_knee,
    nrmse,
    pdf_match_js,
    phase_space_uniformity,
    relative_l2,
    rmse,
    speedup_series,
    tail_coverage,
    wake_capture_score,
)
from repro.viz import ascii_bar, ascii_field, ascii_line, ascii_scatter, format_table, to_csv


class TestPdfMetrics:
    def test_js_zero_for_population_sample(self):
        rng = np.random.default_rng(0)
        pop = rng.standard_normal(10000)
        assert pdf_match_js(pop, pop) == pytest.approx(0.0, abs=1e-9)

    def test_js_detects_bias(self):
        rng = np.random.default_rng(1)
        pop = rng.standard_normal(10000)
        center_only = pop[np.abs(pop) < 0.5]
        fair = rng.choice(pop, 1000)
        assert pdf_match_js(pop, center_only) > pdf_match_js(pop, fair)

    def test_tail_coverage_full_vs_center(self):
        rng = np.random.default_rng(2)
        pop = rng.standard_normal(20000)
        tail_idx = np.argsort(np.abs(pop))[-300:]
        center_idx = np.argsort(np.abs(pop))[:300]
        assert tail_coverage(pop, tail_idx) > 0.8
        assert tail_coverage(pop, center_idx) == 0.0

    def test_uniformity_uniform_beats_gaussian(self):
        rng = np.random.default_rng(3)
        uniform = rng.random((2000, 2))
        gauss = rng.standard_normal((2000, 2)) * 0.15 + 0.5
        assert phase_space_uniformity(uniform) < phase_space_uniformity(gauss)

    def test_wake_capture_enrichment(self):
        rng = np.random.default_rng(4)
        vort = np.zeros(1000)
        vort[:100] = 10.0  # wake cells
        wake_samples = np.arange(50)  # all inside the wake
        spread_samples = rng.choice(1000, 100, replace=False)
        assert wake_capture_score(vort, wake_samples) == pytest.approx(10.0)
        assert wake_capture_score(vort, spread_samples) < 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pdf_match_js(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            tail_coverage(np.ones(10), np.arange(3), quantile=1.5)


class TestAccuracy:
    def test_rmse(self):
        assert rmse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(np.sqrt(2.5))

    def test_nrmse_scale_invariant(self):
        rng = np.random.default_rng(5)
        t = rng.standard_normal(100)
        p = t + 0.1 * rng.standard_normal(100)
        assert nrmse(10 * p, 10 * t) == pytest.approx(nrmse(p, t))

    def test_relative_l2_zero_for_exact(self):
        t = np.array([1.0, 2.0, 3.0])
        assert relative_l2(t, t) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))


class TestScaling:
    def test_ideal_scaling(self):
        s = speedup_series([1, 2, 4, 8], [8.0, 4.0, 2.0, 1.0])
        assert np.allclose(s.speedup, [1, 2, 4, 8])
        assert np.allclose(s.efficiency, 1.0)
        assert find_knee(s) == 8

    def test_knee_detection(self):
        # Efficiency: 1, 0.9, 0.8, 0.55, 0.3 -> knee at 8 for threshold 0.5.
        ranks = [1, 2, 4, 8, 16]
        times = [16.0, 16 / (2 * 0.9), 16 / (4 * 0.8), 16 / (8 * 0.55), 16 / (16 * 0.3)]
        s = speedup_series(ranks, times)
        assert find_knee(s, efficiency_threshold=0.5) == 8

    def test_series_validation(self):
        with pytest.raises(ValueError):
            speedup_series([2, 4], [1.0, 0.5])  # missing baseline
        with pytest.raises(ValueError):
            speedup_series([1, 1], [1.0, 1.0])
        with pytest.raises(ValueError):
            speedup_series([1, 2], [1.0, -1.0])

    def test_row(self):
        s = speedup_series([1, 2], [2.0, 1.0])
        row = s.row(1)
        assert row["ranks"] == 2 and row["speedup"] == 2.0


class TestViz:
    def test_scatter_contains_markers(self):
        out = ascii_scatter(np.arange(10), np.arange(10) ** 2, title="t")
        assert "o" in out and out.startswith("t\n")

    def test_scatter_log_axes(self):
        out = ascii_scatter(np.array([1, 10, 100]), np.array([1.0, 2.0, 3.0]), logx=True)
        assert "(log)" in out

    def test_line_legend(self):
        out = ascii_line({
            "a": (np.arange(5), np.arange(5.0)),
            "b": (np.arange(5), np.arange(5.0)[::-1]),
        })
        assert "o=a" in out and "x=b" in out

    def test_bar(self):
        out = ascii_bar(["x", "yy"], [1.0, 2.0])
        assert out.count("|") == 2
        assert "2" in out

    def test_field_shading(self):
        field = np.zeros((30, 30))
        field[:, 15:] = 1.0
        out = ascii_field(field, width=20, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert lines[0][0] == " " and lines[0][-1] == "@"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            ascii_bar([], [])
        with pytest.raises(ValueError):
            ascii_field(np.zeros(3))


class TestTables:
    def test_format_table_aligned(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_csv_escaping(self):
        rows = [{"a": 'v,"1"', "b": 2}]
        out = to_csv(rows)
        assert '"v,""1"""' in out

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        assert "b" not in format_table(rows, columns=["a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table([])
