"""Tests for streaming / in-situ sampling."""

import numpy as np
import pytest

from repro.sampling.streaming import ReservoirSampler, StreamingMaxEnt


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        r = ReservoirSampler(10, rng=0)
        r.feed(np.arange(5.0)[:, None])
        assert r.sample.shape == (5, 1)
        assert sorted(r.sample[:, 0]) == [0, 1, 2, 3, 4]

    def test_capacity_bound(self):
        r = ReservoirSampler(8, rng=0)
        for _ in range(10):
            r.feed(np.random.default_rng(1).random((100, 2)))
        assert r.sample.shape == (8, 2)
        assert r.n_seen == 1000

    def test_approximately_uniform(self):
        """Every stream element must be retained with ~equal probability."""
        hits = np.zeros(100)
        for seed in range(300):
            r = ReservoirSampler(10, rng=seed)
            r.feed(np.arange(100.0)[:, None])
            hits[r.sample[:, 0].astype(int)] += 1
        expected = 300 * 10 / 100
        # Chi-square-ish sanity: no element wildly over/under-represented.
        assert hits.min() > expected * 0.3
        assert hits.max() < expected * 2.0

    def test_empty_errors(self):
        with pytest.raises(ValueError):
            ReservoirSampler(5).sample
        with pytest.raises(ValueError):
            ReservoirSampler(0)


class TestStreamingMaxEnt:
    def _bimodal_stream(self, seed=0, n_chunks=20, chunk=500, rare_frac=0.02):
        rng = np.random.default_rng(seed)
        for _ in range(n_chunks):
            n_rare = max(1, int(chunk * rare_frac))
            vals = np.concatenate([
                rng.standard_normal(chunk - n_rare) * 0.5,
                8.0 + rng.standard_normal(n_rare) * 0.5,
            ])
            rng.shuffle(vals)
            yield vals

    def test_single_pass_budget(self):
        s = StreamingMaxEnt(n_samples=300, value_range=(-4, 11), n_clusters=6, rng=0)
        for chunk in self._bimodal_stream():
            s.feed(chunk)
        out = s.finalize()
        assert out.shape[0] == 300
        assert s.n_seen == 20 * 500

    def test_oversamples_rare_mode_like_offline(self):
        """The streaming sampler must keep MaxEnt's tail-seeking behaviour."""
        s = StreamingMaxEnt(n_samples=300, value_range=(-4, 11), n_clusters=6, rng=0)
        for chunk in self._bimodal_stream():
            s.feed(chunk)
        vals = s.finalize()[:, 0]
        rare_share = (vals > 4.0).mean()
        assert rare_share > 0.1  # 5x the 2% population share

    def test_payload_carried(self):
        s = StreamingMaxEnt(n_samples=50, value_range=(0, 1), n_clusters=3, rng=0)
        rng = np.random.default_rng(2)
        vals = rng.random(500)
        payload = np.column_stack([np.arange(500.0), np.arange(500.0) * 2])
        s.feed(vals, payload)
        rows = s.finalize()
        assert rows.shape == (50, 3)
        # payload columns stay consistent (col2 = 2 * col1).
        assert np.allclose(rows[:, 2], 2 * rows[:, 1])

    def test_to_pointset(self):
        s = StreamingMaxEnt(n_samples=40, value_range=(0, 1), n_clusters=3, rng=0)
        rng = np.random.default_rng(3)
        coords = rng.random((400, 3))
        s.feed(rng.random(400), coords)
        ps = s.to_pointset(coords_cols=3)
        assert len(ps) == 40
        assert ps.coords.shape == (40, 3)
        assert ps.meta["method"] == "streaming-maxent"

    def test_small_stream_returns_what_exists(self):
        s = StreamingMaxEnt(n_samples=100, value_range=(0, 1), n_clusters=2, rng=0)
        s.feed(np.random.default_rng(4).random(30))
        assert s.finalize().shape[0] == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=0, value_range=(0, 1))
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=5, value_range=(1, 0))
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=5, value_range=(0, 1)).finalize()
        s = StreamingMaxEnt(n_samples=5, value_range=(0, 1))
        with pytest.raises(ValueError):
            s.feed(np.ones(4), np.ones((3, 1)))

    def test_matches_offline_maxent_tail_behaviour(self):
        """Streaming and offline MaxEnt enrich tails to a similar degree."""
        from repro.sampling import MaxEntSampler

        rng = np.random.default_rng(5)
        values = np.concatenate([
            rng.standard_normal(9800) * 0.5,
            8.0 + rng.standard_normal(200) * 0.5,
        ])
        offline_idx = MaxEntSampler(n_clusters=6).sample(values[:, None], 500, rng=0)
        offline_share = (values[offline_idx] > 4.0).mean()

        # Stream in shuffled order (in-situ chunks interleave regimes); a
        # sorted stream would starve the online clusters of early contrast.
        shuffled = values[np.random.default_rng(6).permutation(len(values))]
        s = StreamingMaxEnt(n_samples=500, value_range=(-4, 11), n_clusters=6, rng=0)
        for lo in range(0, 10000, 1000):
            s.feed(shuffled[lo : lo + 1000])
        stream_share = (s.finalize()[:, 0] > 4.0).mean()
        # Single-pass with bounded memory keeps a substantial fraction of the
        # offline sampler's tail enrichment, far above the 2% population share.
        assert stream_share > 0.4 * offline_share
        assert stream_share > 0.05
