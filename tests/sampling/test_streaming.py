"""Tests for streaming / in-situ sampling."""

import os

import numpy as np
import pytest

from repro.sampling.streaming import (
    ReservoirSampler,
    ReservoirStream,
    StreamingMaxEnt,
    run_stream_subsample,
)


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        r = ReservoirSampler(10, rng=0)
        r.feed(np.arange(5.0)[:, None])
        assert r.sample.shape == (5, 1)
        assert sorted(r.sample[:, 0]) == [0, 1, 2, 3, 4]

    def test_capacity_bound(self):
        r = ReservoirSampler(8, rng=0)
        for _ in range(10):
            r.feed(np.random.default_rng(1).random((100, 2)))
        assert r.sample.shape == (8, 2)
        assert r.n_seen == 1000

    def test_approximately_uniform(self):
        """Every stream element must be retained with ~equal probability."""
        hits = np.zeros(100)
        for seed in range(300):
            r = ReservoirSampler(10, rng=seed)
            r.feed(np.arange(100.0)[:, None])
            hits[r.sample[:, 0].astype(int)] += 1
        expected = 300 * 10 / 100
        # Chi-square-ish sanity: no element wildly over/under-represented.
        assert hits.min() > expected * 0.3
        assert hits.max() < expected * 2.0

    def test_empty_errors(self):
        with pytest.raises(ValueError):
            ReservoirSampler(5).sample
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    def test_len_is_public(self):
        r = ReservoirSampler(8, rng=0)
        assert len(r) == 0
        r.feed(np.arange(3.0)[:, None])
        assert len(r) == 3
        r.feed(np.arange(20.0)[:, None])
        assert len(r) == 8

    def test_width_mismatch_raises(self):
        r = ReservoirSampler(4, rng=0)
        r.feed(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="width"):
            r.feed(np.zeros((3, 5)))

    def test_reservoir_rows_are_copies(self):
        chunk = np.arange(6.0).reshape(3, 2)
        r = ReservoirSampler(5, rng=0)
        r.feed(chunk)
        chunk[:] = -1.0
        assert r.sample.min() >= 0.0

    def test_algorithm_r_distribution_chi_square(self):
        """Satellite: the vectorized feed must preserve Algorithm R's
        uniform retention law — chi-square over element retention counts,
        with ragged chunk sizes so the batched path is exercised."""
        from scipy import stats

        n, cap, trials = 60, 12, 600
        chunks = [7, 1, 23, 4, 25]  # sums to 60; crosses the fill boundary
        hits = np.zeros(n)
        for seed in range(trials):
            r = ReservoirSampler(cap, rng=seed)
            stream = np.arange(float(n))[:, None]
            lo = 0
            for c in chunks:
                r.feed(stream[lo:lo + c])
                lo += c
            assert r.n_seen == n and len(r) == cap
            hits[r.sample[:, 0].astype(int)] += 1
        # Each element retained with probability cap/n; chi-square GoF.
        expected = trials * cap / n
        chi2 = ((hits - expected) ** 2 / expected).sum()
        p = stats.chi2.sf(chi2, df=n - 1)
        assert p > 1e-3, f"retention not uniform (chi2={chi2:.1f}, p={p:.2e})"

    def test_single_row_chunks_match_distribution_of_batched(self):
        """Feeding row-by-row and chunk-at-once draw from the same law."""
        means = []
        for chunked in (True, False):
            keep = []
            for seed in range(200):
                r = ReservoirSampler(5, rng=seed)
                stream = np.arange(50.0)[:, None]
                if chunked:
                    r.feed(stream)
                else:
                    for row in stream:
                        r.feed(row[None, :])
                keep.append(r.sample[:, 0].mean())
            means.append(np.mean(keep))
        # Uniform retention ⇒ both means near the stream mean (24.5).
        assert abs(means[0] - means[1]) < 2.0
        assert abs(means[0] - 24.5) < 2.0


class TestStreamingMaxEnt:
    def _bimodal_stream(self, seed=0, n_chunks=20, chunk=500, rare_frac=0.02):
        rng = np.random.default_rng(seed)
        for _ in range(n_chunks):
            n_rare = max(1, int(chunk * rare_frac))
            vals = np.concatenate([
                rng.standard_normal(chunk - n_rare) * 0.5,
                8.0 + rng.standard_normal(n_rare) * 0.5,
            ])
            rng.shuffle(vals)
            yield vals

    def test_single_pass_budget(self):
        s = StreamingMaxEnt(n_samples=300, value_range=(-4, 11), n_clusters=6, rng=0)
        for chunk in self._bimodal_stream():
            s.feed(chunk)
        out = s.finalize()
        assert out.shape[0] == 300
        assert s.n_seen == 20 * 500

    def test_oversamples_rare_mode_like_offline(self):
        """The streaming sampler must keep MaxEnt's tail-seeking behaviour."""
        s = StreamingMaxEnt(n_samples=300, value_range=(-4, 11), n_clusters=6, rng=0)
        for chunk in self._bimodal_stream():
            s.feed(chunk)
        vals = s.finalize()[:, 0]
        rare_share = (vals > 4.0).mean()
        assert rare_share > 0.1  # 5x the 2% population share

    def test_payload_carried(self):
        s = StreamingMaxEnt(n_samples=50, value_range=(0, 1), n_clusters=3, rng=0)
        rng = np.random.default_rng(2)
        vals = rng.random(500)
        payload = np.column_stack([np.arange(500.0), np.arange(500.0) * 2])
        s.feed(vals, payload)
        rows = s.finalize()
        assert rows.shape == (50, 3)
        # payload columns stay consistent (col2 = 2 * col1).
        assert np.allclose(rows[:, 2], 2 * rows[:, 1])

    def test_to_pointset(self):
        s = StreamingMaxEnt(n_samples=40, value_range=(0, 1), n_clusters=3, rng=0)
        rng = np.random.default_rng(3)
        coords = rng.random((400, 3))
        s.feed(rng.random(400), coords)
        ps = s.to_pointset(coords_cols=3)
        assert len(ps) == 40
        assert ps.coords.shape == (40, 3)
        assert ps.meta["method"] == "streaming-maxent"

    def test_small_stream_returns_what_exists(self):
        s = StreamingMaxEnt(n_samples=100, value_range=(0, 1), n_clusters=2, rng=0)
        s.feed(np.random.default_rng(4).random(30))
        assert s.finalize().shape[0] == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=0, value_range=(0, 1))
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=5, value_range=(1, 0))
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=5, value_range=(0, 1)).finalize()
        s = StreamingMaxEnt(n_samples=5, value_range=(0, 1))
        with pytest.raises(ValueError):
            s.feed(np.ones(4), np.ones((3, 1)))

    def test_matches_offline_maxent_tail_behaviour(self):
        """Streaming and offline MaxEnt enrich tails to a similar degree."""
        from repro.sampling import MaxEntSampler

        rng = np.random.default_rng(5)
        values = np.concatenate([
            rng.standard_normal(9800) * 0.5,
            8.0 + rng.standard_normal(200) * 0.5,
        ])
        offline_idx = MaxEntSampler(n_clusters=6).sample(values[:, None], 500, rng=0)
        offline_share = (values[offline_idx] > 4.0).mean()

        # Stream in shuffled order (in-situ chunks interleave regimes); a
        # sorted stream would starve the online clusters of early contrast.
        shuffled = values[np.random.default_rng(6).permutation(len(values))]
        s = StreamingMaxEnt(n_samples=500, value_range=(-4, 11), n_clusters=6, rng=0)
        for lo in range(0, 10000, 1000):
            s.feed(shuffled[lo : lo + 1000])
        stream_share = (s.finalize()[:, 0] > 4.0).mean()
        # Single-pass with bounded memory keeps a substantial fraction of the
        # offline sampler's tail enrichment, far above the 2% population share.
        assert stream_share > 0.4 * offline_share
        assert stream_share > 0.05

    def test_no_private_reservoir_access(self):
        """finalize() goes through the public len(); _items is gone."""
        r = ReservoirSampler(3, rng=0)
        assert not hasattr(r, "_items")


class TestReservoirMerge:
    def test_merged_k_rank_reservoir_uniform_chi_square(self):
        """Satellite: a K-producer reservoir merged by weighted draw must
        retain every element of the union stream with equal probability —
        chi-square GoF over uneven partitions."""
        from scipy import stats

        n, cap, trials = 60, 12, 600
        spans = [(0, 9), (9, 33), (33, 60)]  # deliberately unequal producers
        hits = np.zeros(n)
        stream = np.arange(float(n))[:, None]
        for seed in range(trials):
            parts = []
            for k, (lo, hi) in enumerate(spans):
                r = ReservoirSampler(cap, rng=(seed, k))
                r.feed(stream[lo:hi])
                parts.append(r)
            merged = ReservoirSampler.merge_all(parts, rng=(seed, 99))
            assert merged is parts[0]
            assert merged.n_seen == n and len(merged) == cap
            hits[merged.sample[:, 0].astype(int)] += 1
        expected = trials * cap / n
        chi2 = ((hits - expected) ** 2 / expected).sum()
        p = stats.chi2.sf(chi2, df=n - 1)
        assert p > 1e-3, f"merged retention not uniform (chi2={chi2:.1f}, p={p:.2e})"

    def test_merge_all_deterministic_for_fixed_seed(self):
        """Satellite: same per-rank states + same merge seed → bit-identical
        merged reservoir."""
        def build():
            parts = []
            for k in range(3):
                r = ReservoirSampler(8, rng=k)
                r.feed(np.arange(20.0 * k, 20.0 * k + 20.0)[:, None])
                parts.append(r)
            return parts

        a = ReservoirSampler.merge_all(build(), rng=42).sample
        b = ReservoirSampler.merge_all(build(), rng=42).sample
        assert np.array_equal(a, b)
        c = ReservoirSampler.merge_all(build(), rng=43).sample
        assert not np.array_equal(a, c)  # the draw really depends on the seed

    def test_pairwise_merge_counts_and_weights(self):
        a = ReservoirSampler(4, rng=0)
        a.feed(np.zeros((100, 2)))
        b = ReservoirSampler(4, rng=1)
        b.feed(np.ones((50, 2)))
        a.merge(b, rng=2)
        assert a.n_seen == 150
        assert len(a) == 4

    def test_merge_weight_biases_the_draw(self):
        """An explicit weight overrides n_seen: weighting one producer
        ~1000x should dominate the merged reservoir."""
        ones = 0
        for seed in range(30):
            a = ReservoirSampler(10, rng=(seed, 0))
            a.feed(np.zeros((100, 1)))
            b = ReservoirSampler(10, rng=(seed, 1))
            b.feed(np.ones((100, 1)))
            a.merge(b, weight=1e5, rng=(seed, 2))
            ones += int(a.sample[:, 0].sum())
        assert ones > 0.9 * 30 * 10

    def test_merge_all_honors_weight_of_fold_target(self):
        """Regression: weights[0] reweights the first reservoir (via
        reweight()) instead of being silently dropped."""
        ones = 0
        for seed in range(20):
            a = ReservoirSampler(10, rng=(seed, 0))
            a.feed(np.zeros((100, 1)))
            b = ReservoirSampler(10, rng=(seed, 1))
            b.feed(np.ones((100, 1)))
            m = ReservoirSampler.merge_all([a, b], weights=[1.0, 100.0],
                                           rng=(seed, 2))
            ones += int(m.sample[:, 0].sum())
        assert ones / (20 * 10) > 0.9

    def test_chained_weighted_merge_keeps_proportions(self):
        """Regression: an explicit up-weight survives later merges — the
        merged mass is tracked as stream_mass, not raw row counts."""
        twos = 0
        for seed in range(20):
            a = ReservoirSampler(10, rng=(seed, 0))
            a.feed(np.zeros((100, 1)))
            b = ReservoirSampler(10, rng=(seed, 1))
            b.feed(np.ones((100, 1)))
            c = ReservoirSampler(10, rng=(seed, 2))
            c.feed(np.full((100, 1), 2.0))
            a.merge(b, weight=1e5, rng=(seed, 3))
            assert a.stream_mass == 100 + 1e5
            a.merge(c, rng=(seed, 4))  # c's mass 100 vs accumulated ~1e5
            twos += int((a.sample[:, 0] == 2.0).sum())
        assert twos / (20 * 10) < 0.05

    def test_reweight_validation(self):
        r = ReservoirSampler(4, rng=0)
        with pytest.raises(ValueError, match="mass"):
            r.reweight(0.0)
        r.feed(np.zeros((5, 1)))
        r.reweight(2.5)
        assert r.stream_mass == 2.5 and r.n_seen == 5

    def test_merge_empty_other_is_noop(self):
        a = ReservoirSampler(4, rng=0)
        a.feed(np.arange(10.0)[:, None])
        before = a.sample.copy()
        a.merge(ReservoirSampler(4, rng=1), rng=2)
        assert np.array_equal(a.sample, before) and a.n_seen == 10

    def test_merge_into_empty_adopts_other(self):
        a = ReservoirSampler(4, rng=0)
        b = ReservoirSampler(4, rng=1)
        b.feed(np.arange(3.0)[:, None])
        a.merge(b, rng=2)
        assert a.n_seen == 3 and len(a) == 3
        assert sorted(a.sample[:, 0]) == [0.0, 1.0, 2.0]

    def test_merge_validation(self):
        a = ReservoirSampler(4, rng=0)
        a.feed(np.zeros((5, 2)))
        b = ReservoirSampler(4, rng=1)
        b.feed(np.zeros((5, 3)))
        with pytest.raises(ValueError, match="width"):
            a.merge(b)
        with pytest.raises(TypeError):
            a.merge(object())
        c = ReservoirSampler(4, rng=2)
        c.feed(np.zeros((5, 2)))
        with pytest.raises(ValueError, match="weight"):
            a.merge(c, weight=0.0)

    def test_under_capacity_merge_keeps_everything(self):
        """Two producers that together fit in capacity lose nothing."""
        a = ReservoirSampler(20, rng=0)
        a.feed(np.arange(5.0)[:, None])
        b = ReservoirSampler(20, rng=1)
        b.feed(np.arange(5.0, 12.0)[:, None])
        a.merge(b, rng=2)
        assert sorted(a.sample[:, 0]) == list(np.arange(12.0))


class TestStreamSamplerMergeContract:
    def test_base_merge_raises_not_implemented(self):
        from repro.sampling import StreamSampler

        class NoMerge(StreamSampler):
            def __init__(self):
                self.n_seen = 1

            def feed(self, values, payload=None):
                pass

            def finalize(self):
                return np.zeros((1, 1))

        with pytest.raises(NotImplementedError, match="multi-producer"):
            NoMerge().merge(NoMerge())

    def test_merge_all_validation(self):
        from repro.sampling import StreamSampler

        with pytest.raises(ValueError, match="at least one"):
            StreamSampler.merge_all([])
        a = ReservoirStream(4, rng=0)
        a.feed(np.arange(5.0))
        m = StreamingMaxEnt(n_samples=4, value_range=(0, 1), rng=0)
        with pytest.raises(TypeError, match="mixed"):
            StreamSampler.merge_all([a, m])
        b = ReservoirStream(4, rng=1)
        b.feed(np.arange(5.0))
        with pytest.raises(ValueError, match="weights"):
            StreamSampler.merge_all([a, b], weights=[1.0])

    def test_reservoir_stream_merge(self):
        a = ReservoirStream(8, rng=0)
        b = ReservoirStream(8, rng=1)
        rng = np.random.default_rng(2)
        va, vb = rng.random(30), rng.random(50)
        a.feed(va, np.column_stack([va * 2, va * 3]))
        b.feed(vb, np.column_stack([vb * 2, vb * 3]))
        merged = a.merge(b, rng=3)
        assert merged is a and a.n_seen == 80
        rows = a.finalize()
        assert rows.shape == (8, 3)
        assert np.allclose(rows[:, 1], 2 * rows[:, 0])  # payload stays paired


class TestStreamingMaxEntMerge:
    def _feed(self, sampler, values, chunk=500):
        for lo in range(0, len(values), chunk):
            sampler.feed(values[lo:lo + chunk])
        return sampler

    def test_merged_keeps_budget_and_both_modes(self):
        rng = np.random.default_rng(0)
        lowv = rng.standard_normal(6000) * 0.5
        rare = 8.0 + rng.standard_normal(150) * 0.5
        all_vals = np.concatenate([lowv, rare])
        all_vals = all_vals[np.random.default_rng(1).permutation(len(all_vals))]
        half = len(all_vals) // 2
        a = self._feed(StreamingMaxEnt(300, (-4, 11), n_clusters=6, rng=2),
                       all_vals[:half])
        b = self._feed(StreamingMaxEnt(300, (-4, 11), n_clusters=6, rng=3),
                       all_vals[half:])
        merged = StreamingMaxEnt.merge_all([a, b], rng=4)
        assert merged.n_seen == len(all_vals)
        out = merged.finalize()
        assert out.shape[0] == 300
        # Tail-seeking behaviour survives the merge.
        assert (out[:, 0] > 4.0).mean() > 0.1

    def test_merge_matches_single_producer_distribution(self):
        """Acceptance-style: merged two-producer MaxEnt tracks the single
        producer's sample-value distribution within a KS bound."""
        rng = np.random.default_rng(7)
        values = np.concatenate([
            rng.standard_normal(9500) * 0.6,
            6.0 + rng.standard_normal(500) * 0.4,
        ])
        values = values[np.random.default_rng(8).permutation(len(values))]

        single = self._feed(StreamingMaxEnt(600, (-4, 9), n_clusters=6, rng=0),
                            values)
        sv = np.sort(single.finalize()[:, 0])

        half = len(values) // 2
        a = self._feed(StreamingMaxEnt(600, (-4, 9), n_clusters=6, rng=1),
                       values[:half])
        b = self._feed(StreamingMaxEnt(600, (-4, 9), n_clusters=6, rng=2),
                       values[half:])
        merged = StreamingMaxEnt.merge_all([a, b], rng=3)
        mv = np.sort(merged.finalize()[:, 0])

        grid = np.linspace(values.min(), values.max(), 512)
        cdf_s = np.searchsorted(sv, grid) / len(sv)
        cdf_m = np.searchsorted(mv, grid) / len(mv)
        ks = np.abs(cdf_s - cdf_m).max()
        assert ks < 0.25, f"KS distance {ks:.3f} exceeds tolerance"

    def test_merge_into_empty_adopts_state(self):
        a = StreamingMaxEnt(50, (0, 1), n_clusters=3, rng=0)
        b = self._feed(StreamingMaxEnt(50, (0, 1), n_clusters=3, rng=1),
                       np.random.default_rng(2).random(400))
        a.merge(b, rng=3)
        assert a.n_seen == 400
        assert a.finalize().shape[0] == 50

    def test_merge_into_empty_copies_not_aliases(self):
        """Adopting a donor's state must not alias it: later merges into
        the adopter leave the donor intact."""
        a = StreamingMaxEnt(50, (0, 1), n_clusters=3, rng=0)
        b = self._feed(StreamingMaxEnt(50, (0, 1), n_clusters=3, rng=1),
                       np.random.default_rng(2).random(400))
        c = self._feed(StreamingMaxEnt(50, (0, 1), n_clusters=3, rng=3),
                       np.random.default_rng(4).random(400))
        b_counts = [st.counts.copy() for st in b._states]
        b_seen = b.n_seen
        merged = StreamingMaxEnt.merge_all([a, b, c], rng=5)
        assert merged is a and merged.n_seen == 800
        assert b.n_seen == b_seen
        for st, before in zip(b._states, b_counts):
            assert np.array_equal(st.counts, before)
        assert b.finalize().shape[0] == 50  # donor still fully usable

    def test_geometry_mismatch_raises(self):
        a = StreamingMaxEnt(10, (0, 1), n_clusters=3, rng=0)
        b = StreamingMaxEnt(10, (0, 2), n_clusters=3, rng=1)
        b.feed(np.random.default_rng(2).random(50))
        with pytest.raises(ValueError, match="geometry"):
            a.merge(b)
        c = StreamingMaxEnt(10, (0, 1), n_clusters=4, rng=3)
        c.feed(np.random.default_rng(4).random(50))
        with pytest.raises(ValueError, match="geometry"):
            a.merge(c)
        with pytest.raises(TypeError):
            a.merge(ReservoirStream(10, rng=5))


class TestStreamRegistry:
    def test_streaming_samplers_registered_under_offline_names(self):
        from repro.sampling import available_stream_samplers, get_stream_sampler

        names = available_stream_samplers()
        assert "maxent" in names and "random" in names
        s = get_stream_sampler("maxent", n_samples=10, value_range=(0, 1),
                               rng=0, n_clusters=3)
        assert isinstance(s, StreamingMaxEnt)
        r = get_stream_sampler("random", n_samples=10, rng=0)
        assert isinstance(r, ReservoirStream)

    def test_unknown_name_lists_available(self):
        from repro.sampling import get_stream_sampler

        with pytest.raises(KeyError, match="no streaming analogue"):
            get_stream_sampler("lhs", n_samples=10)

    def test_reservoir_stream_uniform_rows(self):
        s = ReservoirStream(20, rng=0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            vals = rng.random(100)
            s.feed(vals, np.column_stack([vals * 2, vals * 3]))
        rows = s.finalize()
        assert rows.shape == (20, 3)
        assert np.allclose(rows[:, 1], 2 * rows[:, 0])
        assert s.n_seen == 1000

    def test_third_party_stream_sampler_registers(self):
        from repro.sampling import (
            StreamSampler,
            get_stream_sampler,
            register_stream_sampler,
        )
        from repro.sampling.base import _STREAM_REGISTRY

        @register_stream_sampler("keep-first")
        class KeepFirst(StreamSampler):
            def __init__(self, n_samples, value_range=None, rng=None):
                self.n_samples, self.rows, self.n_seen = n_samples, [], 0

            def feed(self, values, payload=None):
                values = np.asarray(values, dtype=float).ravel()
                self.n_seen += values.size
                need = self.n_samples - len(self.rows)
                self.rows.extend(values[:need, None])

            def finalize(self):
                return np.stack(self.rows)

        try:
            s = get_stream_sampler("keep-first", n_samples=3)
            s.feed(np.arange(10.0))
            assert s.finalize().tolist() == [[0.0], [1.0], [2.0]]
        finally:
            del _STREAM_REGISTRY["keep-first"]


class TestStreamingOfflineFidelity:
    def test_sample_histograms_within_ks_bound(self):
        """Satellite: on a fixed dataset fed chunk-wise, the streaming
        MaxEnt sample-value distribution must track the offline maxent
        sampler's within a KS-style bound."""
        from repro.sampling import MaxEntSampler

        rng = np.random.default_rng(11)
        values = np.concatenate([
            rng.standard_normal(9500) * 0.6,
            6.0 + rng.standard_normal(500) * 0.4,
        ])
        values = values[np.random.default_rng(12).permutation(len(values))]

        offline_idx = MaxEntSampler(n_clusters=6).sample(values[:, None], 600, rng=0)
        offline_vals = np.sort(values[offline_idx])

        s = StreamingMaxEnt(n_samples=600, value_range=(-4, 9), n_clusters=6, rng=0)
        for lo in range(0, len(values), 500):
            s.feed(values[lo:lo + 500])
        stream_vals = np.sort(s.finalize()[:, 0])

        # Two-sample KS distance between the sample-value distributions.
        grid = np.linspace(values.min(), values.max(), 512)
        cdf_off = np.searchsorted(offline_vals, grid) / len(offline_vals)
        cdf_str = np.searchsorted(stream_vals, grid) / len(stream_vals)
        ks = np.abs(cdf_off - cdf_str).max()
        assert ks < 0.25, f"KS distance {ks:.3f} exceeds tolerance"
        # And both enrich the rare mode far beyond its 5% population share.
        assert (stream_vals > 3.0).mean() > 0.15
        assert (offline_vals > 3.0).mean() > 0.15


class TestStreamSubsample:
    def _case(self, method="maxent", arch="mlp_transformer", **overrides):
        from repro.utils.config import (
            CaseConfig,
            SharedConfig,
            SubsampleConfig,
            TrainConfig,
        )

        sub = dict(hypercubes="maxent", method=method, num_hypercubes=3,
                   num_samples=32, num_clusters=4, nxsl=8, nysl=8, nzsl=8)
        sub.update(overrides)
        return CaseConfig(
            shared=SharedConfig(dims=3),
            subsample=SubsampleConfig(**sub),
            train=TrainConfig(arch=arch),
        )

    @pytest.fixture(scope="class")
    def sst(self):
        from repro.data import build_dataset

        return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=3)

    @pytest.mark.parametrize("method", ["maxent", "random"])
    def test_single_pass_over_in_memory_source(self, sst, method):
        res = run_stream_subsample(sst, self._case(method), seed=0, chunk_rows=4096)
        assert res.n_samples == 3 * 32  # num_hypercubes * num_samples
        assert res.n_points_scanned == sst.n_snapshots * sst.n_points_per_snapshot
        assert res.meta["mode"] == "stream"
        assert res.points.meta["mode"] == "stream"
        assert res.n_candidate_cubes == 0 and len(res.selected_cube_ids) == 0
        # Per-point times map back to real snapshots.
        assert set(np.unique(np.asarray(res.points.time))) <= set(sst.times)
        # Carried variables are genuine field values at the carried coords.
        coords = res.points.coords.astype(int)
        t0 = sst.snapshots[0].time
        at_t0 = np.asarray(res.points.time) == t0
        if at_t0.any():
            pv = sst.snapshots[0].get("pv")
            got = res.points.values["pv"][at_t0]
            want = pv[tuple(coords[at_t0].T)]
            assert np.allclose(got, want)

    def test_subsample_mode_stream_entry_point(self, sst):
        """`subsample(source, case, mode='stream')` is the single entry."""
        from repro.sampling import subsample

        res = subsample(sst, self._case(), seed=0, mode="stream")
        assert res.meta["mode"] == "stream"
        assert res.meta["ranks"] == 1
        multi = subsample(sst, self._case(), nranks=2, seed=0, mode="stream")
        assert multi.meta["ranks"] == 2
        assert multi.n_points_scanned == res.n_points_scanned
        assert multi.n_samples == res.n_samples
        with pytest.raises(ValueError, match="mode"):
            subsample(sst, self._case(), seed=0, mode="banana")

    def test_stream_only_knobs_rejected_in_batch_mode(self, sst):
        """The batch pipeline has no partial-stream merge: stream-only
        knobs must fail loudly instead of being silently dropped."""
        from repro.sampling import subsample

        with pytest.raises(ValueError, match="stream"):
            subsample(sst, self._case(), seed=0, owned_shards=True)
        with pytest.raises(ValueError, match="stream"):
            subsample(sst, self._case(), seed=0, on_rank_failure="reweight")
        with pytest.raises(ValueError, match="stream"):
            subsample(sst, self._case(), seed=0, fault_hook=lambda r: False)

    def test_full_method_rejected(self, sst):
        with pytest.raises(ValueError, match="streaming analogue"):
            run_stream_subsample(
                sst, self._case("full", arch="cnn_transformer"), seed=0
            )

    def test_random_stream_skips_value_range_hint(self, sst, monkeypatch):
        """Reservoir sampling ignores value ranges; the (potentially full
        extra scan) hint must not be computed for it."""
        from repro.data import InMemorySource

        src = InMemorySource(sst)
        calls = []
        monkeypatch.setattr(
            src, "value_range_hint",
            lambda var: calls.append(var) or (0.0, 1.0),
        )
        run_stream_subsample(src, self._case("random"), seed=0)
        assert calls == []
        run_stream_subsample(src, self._case("maxent"), seed=0)
        assert calls == ["pv"]

    def test_unsupported_method_fails_before_source_does_work(self):
        """Regression: a batch-only method must be rejected before the
        simulation generates even one snapshot."""
        from repro.data import stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2)
        with pytest.raises(KeyError, match="no streaming analogue"):
            run_stream_subsample(src, self._case("lhs"), seed=0)
        assert src.generated == 0

    def test_simulation_source_generates_each_snapshot_once(self):
        """True in-situ: one pass, nothing regenerated, nothing resident."""
        from repro.data import stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2,
                             max_cached=1)
        res = run_stream_subsample(src, self._case(), seed=0)
        assert res.n_samples > 0
        assert src.generated == 2
        assert src.restarts == 0

    def test_energy_metered(self, sst):
        res = run_stream_subsample(sst, self._case(), seed=0)
        assert res.energy is not None
        assert res.energy.total_energy > 0.0


class TestMultiProducerStream:
    """SPMD streaming: per-rank partitions, weighted merge on rank 0."""

    def _case(self, method="maxent", **overrides):
        from repro.utils.config import (
            CaseConfig,
            SharedConfig,
            SubsampleConfig,
            TrainConfig,
        )

        sub = dict(hypercubes="maxent", method=method, num_hypercubes=6,
                   num_samples=100, num_clusters=4, nxsl=8, nysl=8, nzsl=8)
        sub.update(overrides)
        return CaseConfig(
            shared=SharedConfig(dims=3),
            subsample=SubsampleConfig(**sub),
            train=TrainConfig(arch="mlp_transformer"),
        )

    @pytest.fixture(scope="class")
    def sst(self):
        from repro.data import build_dataset

        return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=4)

    def test_four_ranks_match_single_rank_within_ks_bound(self, sst):
        """Acceptance: the merged 4-producer sample tracks the single-rank
        stream's sample-value distribution within the KS-style bound."""
        single = run_stream_subsample(sst, self._case(), seed=0)
        multi = run_stream_subsample(sst, self._case(), seed=0, nranks=4)
        assert multi.n_samples == single.n_samples == 600
        assert multi.n_points_scanned == single.n_points_scanned
        assert multi.meta["ranks"] == 4

        sv = np.sort(single.points.values["pv"])
        mv = np.sort(multi.points.values["pv"])
        pop = np.concatenate([s.get("pv").ravel() for s in sst.snapshots])
        grid = np.linspace(pop.min(), pop.max(), 512)
        cdf_s = np.searchsorted(sv, grid) / len(sv)
        cdf_m = np.searchsorted(mv, grid) / len(mv)
        ks = np.abs(cdf_s - cdf_m).max()
        assert ks < 0.25, f"KS distance {ks:.3f} exceeds tolerance"

    def test_multirank_deterministic_for_seed_and_rank_count(self, sst):
        """Bit-determinism: fixed (seed, nranks) → identical PointSets."""
        a = run_stream_subsample(sst, self._case(), seed=7, nranks=3)
        b = run_stream_subsample(sst, self._case(), seed=7, nranks=3)
        assert np.array_equal(a.points.coords, b.points.coords)
        assert np.array_equal(np.asarray(a.points.time), np.asarray(b.points.time))
        for var in a.points.values:
            assert np.array_equal(a.points.values[var], b.points.values[var])
        c = run_stream_subsample(sst, self._case(), seed=8, nranks=3)
        assert not np.array_equal(a.points.coords, c.points.coords)

    @pytest.mark.parametrize("method", ["maxent", "random"])
    def test_carried_values_genuine_at_coords(self, sst, method):
        """Multi-producer rows still map back to real field values."""
        res = run_stream_subsample(sst, self._case(method), seed=0, nranks=2)
        assert res.n_points_scanned == sst.n_snapshots * sst.n_points_per_snapshot
        coords = res.points.coords.astype(int)
        times = np.asarray(res.points.time)
        assert set(np.unique(times)) <= set(sst.times)
        t0 = sst.snapshots[0].time
        at_t0 = times == t0
        if at_t0.any():
            pv = sst.snapshots[0].get("pv")
            assert np.allclose(
                res.points.values["pv"][at_t0], pv[tuple(coords[at_t0].T)]
            )

    def test_more_ranks_than_snapshots(self, sst):
        """Empty partitions contribute zero weight, nothing breaks."""
        res = run_stream_subsample(
            sst, self._case(), seed=0, nranks=sst.n_snapshots + 3
        )
        assert res.n_points_scanned == sst.n_snapshots * sst.n_points_per_snapshot
        assert res.n_samples == 600

    def test_virtual_time_speedup_over_single_rank(self, sst):
        """The partitioned scan parallelizes: 4-rank makespan undercuts the
        single producer in virtual time."""
        from repro.parallel.perfmodel import PerfModel

        model = PerfModel(compute_rate=2.5e4)
        t1 = run_stream_subsample(sst, self._case(), seed=0, model=model).virtual_time
        t4 = run_stream_subsample(
            sst, self._case(), seed=0, nranks=4, model=model
        ).virtual_time
        assert t4 < t1
        assert t1 / t4 > 1.5

    def test_sim_source_replay_guard(self):
        from repro.data import stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2,
                             max_cached=1)
        with pytest.raises(ValueError, match="replay"):
            run_stream_subsample(src, self._case(), seed=0, nranks=2)
        src2 = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2,
                              max_cached=2)
        res = run_stream_subsample(src2, self._case(), seed=0, nranks=2)
        assert res.n_samples > 0

    def test_sim_source_full_window_really_avoids_replays(self):
        """Regression: the remedy the guard recommends (max_cached >=
        n_snapshots) must actually work — intermediates generated while
        advancing are cached, so interleaved producers never restart the
        solver."""
        from repro.data import stream_dataset

        src = stream_dataset("sst-binary", scale=0.5, seed=0, n_snapshots=6,
                             max_cached=6)
        run_stream_subsample(src, self._case(), seed=0, nranks=3)
        assert src.generated == 6
        assert src.restarts == 0

    def test_invalid_nranks(self, sst):
        with pytest.raises(ValueError, match="nranks"):
            run_stream_subsample(sst, self._case(), seed=0, nranks=0)

    def test_producer_reports_in_meta(self, sst):
        res = run_stream_subsample(sst, self._case(), seed=0, nranks=3)
        producers = res.meta["producers"]
        assert [p["rank"] for p in producers] == [0, 1, 2]
        assert all(not p["failed"] for p in producers)
        assert res.meta["failed_ranks"] == []
        spans = [tuple(p["span"]) for p in producers]
        assert spans[0][0] == 0 and spans[-1][1] == sst.n_snapshots
        assert sum(p["n_seen"] for p in producers) == res.n_points_scanned


class TestPartialStreamMerge:
    """StreamSampler.merge_partial: uneven / failed / empty producers."""

    def _report(self, rank, size, lo, hi, done=None, n_seen=0,
                failed=False, error=None):
        from repro.parallel.partition import Partition, ProducerReport

        part = Partition(rank=rank, size=size, lo=lo, hi=hi)
        return ProducerReport(
            partition=part,
            snapshots_done=part.n if done is None else done,
            n_seen=n_seen, stream_mass=float(n_seen),
            failed=failed, error=error,
        )

    def test_empty_state_merges_as_zero_mass(self):
        """Satellite regression: an unfed sampler (empty span) contributes
        nothing and corrupts nothing — even as the would-be fold target."""
        empty = ReservoirStream(8, rng=0)
        a = ReservoirStream(8, rng=1)
        a.feed(np.arange(20.0))
        b = ReservoirStream(8, rng=2)
        b.feed(np.arange(20.0, 50.0))
        from repro.sampling import StreamSampler

        merged = StreamSampler.merge_partial([empty, a, b], rng=3)
        assert merged.n_seen == 50
        assert merged.finalize().shape[0] == 8

    def test_failed_with_raise_policy(self):
        a = ReservoirStream(4, rng=0)
        a.feed(np.arange(10.0))
        b = ReservoirStream(4, rng=1)
        b.feed(np.arange(5.0))
        reports = [
            self._report(0, 2, 0, 2, n_seen=10),
            self._report(1, 2, 2, 4, done=0, n_seen=5, failed=True, error="io"),
        ]
        from repro.sampling import StreamSampler

        with pytest.raises(RuntimeError, match="rank 1: io"):
            StreamSampler.merge_partial([a, b], reports, on_failure="raise")

    def test_failed_with_reweight_keeps_partial_state(self):
        """A failed producer's delivered rows stay in the merged draw,
        weighted by delivered (not nominal) mass."""
        ones = 0
        for seed in range(30):
            a = ReservoirStream(10, rng=(seed, 0))
            a.feed(np.zeros(300))
            b = ReservoirStream(10, rng=(seed, 1))
            b.feed(np.ones(100))  # died after 100 of its nominal 300 rows
            reports = [
                self._report(0, 2, 0, 3, n_seen=300),
                self._report(1, 2, 3, 6, done=1, n_seen=100, failed=True),
            ]
            from repro.sampling import StreamSampler

            merged = StreamSampler.merge_partial([a, b], reports, rng=(seed, 2))
            assert merged.n_seen == 400
            ones += int(merged.finalize()[:, 0].sum())
        # Delivered-mass weighting: the failed producer holds ~1/4 of the
        # delivered stream, so ~1/4 of the merged rows (not ~1/2 nominal).
        share = ones / (30 * 10)
        assert 0.12 < share < 0.40

    def test_validation(self):
        from repro.sampling import StreamSampler

        a = ReservoirStream(4, rng=0)
        a.feed(np.arange(5.0))
        with pytest.raises(ValueError, match="on_failure"):
            StreamSampler.merge_partial([a], on_failure="ignore")
        with pytest.raises(ValueError, match="at least one"):
            StreamSampler.merge_partial([])
        with pytest.raises(ValueError, match="reports"):
            StreamSampler.merge_partial([a], reports=[])
        empty = ReservoirStream(4, rng=1)
        with pytest.raises(ValueError, match="delivered"):
            StreamSampler.merge_partial([empty])


class TestFaultInjection:
    """Kill a producer mid-span; the merge must reweight or raise."""

    def _case(self, method="maxent"):
        from repro.utils.config import (
            CaseConfig,
            SharedConfig,
            SubsampleConfig,
            TrainConfig,
        )

        return CaseConfig(
            shared=SharedConfig(dims=3),
            subsample=SubsampleConfig(
                hypercubes="maxent", method=method, num_hypercubes=6,
                num_samples=100, num_clusters=4, nxsl=8, nysl=8, nzsl=8,
            ),
            train=TrainConfig(arch="mlp_transformer"),
        )

    @pytest.fixture(scope="class")
    def sst(self):
        from repro.data import build_dataset

        return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=4)

    @staticmethod
    def _kill(victim, after_rows):
        def hook(rank, snapshots_done=0, rows_fed=0):
            return rank == victim and rows_fed > after_rows
        return hook

    def test_raise_policy_names_the_dead_rank(self, sst):
        with pytest.raises(RuntimeError, match="rank 1") as excinfo:
            run_stream_subsample(
                sst, self._case(), seed=0, nranks=4, chunk_rows=2048,
                fault_hook=self._kill(1, 2000), on_rank_failure="raise",
            )
        assert "reweight" in str(excinfo.value)  # the remedy is named

    def test_reweight_full_size_and_ks_bounded(self, sst):
        """Acceptance: nranks=4, one rank killed mid-span — the reweighted
        merge still returns a full-size sample within the KS fidelity bound
        of the single-rank stream."""
        single = run_stream_subsample(sst, self._case(), seed=0, chunk_rows=2048)
        res = run_stream_subsample(
            sst, self._case(), seed=0, nranks=4, chunk_rows=2048,
            fault_hook=self._kill(2, 2000), on_rank_failure="reweight",
        )
        assert res.n_samples == single.n_samples == 600  # full budget
        assert res.meta["failed_ranks"] == [2]
        assert res.n_points_scanned < single.n_points_scanned  # rows were lost
        dead = res.meta["producers"][2]
        assert dead["failed"] and dead["n_seen"] < sst.n_points_per_snapshot

        sv = np.sort(single.points.values["pv"])
        mv = np.sort(res.points.values["pv"])
        pop = np.concatenate([s.get("pv").ravel() for s in sst.snapshots])
        grid = np.linspace(pop.min(), pop.max(), 512)
        ks = np.abs(
            np.searchsorted(sv, grid) / len(sv)
            - np.searchsorted(mv, grid) / len(mv)
        ).max()
        assert ks < 0.25, f"KS distance {ks:.3f} exceeds tolerance"

    def test_bit_deterministic_per_seed_ranks_and_victim(self, sst):
        """Same (seed, nranks, failed rank) → identical points; changing
        the victim changes the draw."""
        kw = dict(seed=5, nranks=4, chunk_rows=2048, on_rank_failure="reweight")
        a = run_stream_subsample(sst, self._case(), fault_hook=self._kill(1, 2000), **kw)
        b = run_stream_subsample(sst, self._case(), fault_hook=self._kill(1, 2000), **kw)
        assert np.array_equal(a.points.coords, b.points.coords)
        assert np.array_equal(np.asarray(a.points.time), np.asarray(b.points.time))
        for var in a.points.values:
            assert np.array_equal(a.points.values[var], b.points.values[var])
        c = run_stream_subsample(sst, self._case(), fault_hook=self._kill(3, 2000), **kw)
        assert not np.array_equal(a.points.coords, c.points.coords)

    @pytest.mark.parametrize("method", ["maxent", "random"])
    def test_both_methods_survive_a_death(self, sst, method):
        res = run_stream_subsample(
            sst, self._case(method), seed=0, nranks=2, chunk_rows=2048,
            fault_hook=self._kill(0, 2000), on_rank_failure="reweight",
        )
        assert res.n_samples == 600
        assert res.meta["failed_ranks"] == [0]

    def test_real_producer_exception_tolerated_under_reweight(self, sst):
        """A genuine mid-stream error (not an injected fault) is recovered
        the same way: partial state merged, failure recorded."""
        from repro.data import InMemorySource

        class Corrupt(InMemorySource):
            def snapshot(self, i):
                if i == 3:  # last snapshot, owned by the last rank
                    raise OSError("shard rotted")
                return super().snapshot(i)

        src = Corrupt(sst)
        res = run_stream_subsample(
            src, self._case("random"), seed=0, nranks=2, chunk_rows=2048,
            on_rank_failure="reweight",
        )
        assert res.meta["failed_ranks"] == [1]
        dead = res.meta["producers"][1]
        assert "shard rotted" in dead["error"]
        # Rank 1 fully delivered global snapshot 2 before snapshot 3's
        # decode raised — boundary deaths must not undercount coverage.
        assert dead["snapshots_done"] == 1 and dead["covered"] == [2, 3]
        assert dead["n_seen"] == sst.n_points_per_snapshot
        assert res.n_samples == 600
        with pytest.raises(RuntimeError):
            run_stream_subsample(
                Corrupt(sst), self._case("random"), seed=0, nranks=2,
                chunk_rows=2048, on_rank_failure="raise",
            )

    def test_all_producers_dead_surfaces_their_errors(self, sst):
        """When nothing at all is delivered, reweighting cannot help — the
        recorded per-rank errors must surface, not a generic empty-source
        message."""
        from repro.data import InMemorySource

        class Rotten(InMemorySource):
            def snapshot(self, i):
                raise OSError("disk gone")

        with pytest.raises(RuntimeError, match="disk gone"):
            run_stream_subsample(
                Rotten(sst), self._case("random"), seed=0, nranks=2,
                chunk_rows=2048, on_rank_failure="reweight",
            )

    def test_validation(self, sst):
        with pytest.raises(ValueError, match="on_rank_failure"):
            run_stream_subsample(sst, self._case(), seed=0, nranks=2,
                                 on_rank_failure="retry")
        with pytest.raises(ValueError, match="nranks >= 2"):
            run_stream_subsample(sst, self._case(), seed=0, nranks=1,
                                 fault_hook=lambda rank: True)


class TestOwnedShardStreaming:
    """Per-rank shard ownership end to end through run_stream_subsample."""

    def _case(self):
        from repro.utils.config import (
            CaseConfig,
            SharedConfig,
            SubsampleConfig,
            TrainConfig,
        )

        return CaseConfig(
            shared=SharedConfig(dims=3),
            subsample=SubsampleConfig(
                hypercubes="maxent", method="maxent", num_hypercubes=6,
                num_samples=100, num_clusters=4, nxsl=8, nysl=8, nzsl=8,
            ),
            train=TrainConfig(arch="mlp_transformer"),
        )

    @pytest.fixture(scope="class")
    def sst(self):
        from repro.data import build_dataset

        return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=4)

    @pytest.fixture(scope="class")
    def shard_dir(self, sst, tmp_path_factory):
        from repro.data import save_dataset

        path = tmp_path_factory.mktemp("owned-stream")
        save_dataset(sst, str(path))
        return str(path)

    def test_owned_matches_shared_bitwise(self, shard_dir):
        """Ownership is pure I/O isolation: same spans, same rngs, same
        points as the shared-cache view."""
        from repro.data import ShardedNpzSource

        with ShardedNpzSource(shard_dir, max_cached=2) as src:
            shared = run_stream_subsample(src, self._case(), seed=0, nranks=4)
        with ShardedNpzSource(shard_dir, max_cached=2) as src:
            owned = run_stream_subsample(src, self._case(), seed=0, nranks=4,
                                         owned_shards=True)
        assert np.array_equal(shared.points.coords, owned.points.coords)
        for var in shared.points.values:
            assert np.array_equal(shared.points.values[var],
                                  owned.points.values[var])

    def test_no_cross_rank_cache_sharing(self, shard_dir, sst):
        """Acceptance: per-rank cache_info decodes exactly the rank's own
        span and sums to the dataset's total I/O."""
        from repro.data import ShardedNpzSource

        with ShardedNpzSource(shard_dir, max_cached=2, prefetch=1) as src:
            res = run_stream_subsample(src, self._case(), seed=0, nranks=4,
                                       owned_shards=True)
        cache = res.meta["cache"]
        spans = [tuple(p["span"]) for p in res.meta["producers"]]
        for info, (lo, hi) in zip(cache["per_rank"], spans):
            c = info["counters"]
            assert c["misses"] + c["prefetched"] == hi - lo
            assert c["hits"] + c["misses"] >= hi - lo
        assert cache["total"]["decodes"] == sst.n_snapshots
        assert cache["total"]["ranks"] == 4

    def test_no_leaked_prefetch_threads(self, shard_dir):
        """Satellite: every per-rank prefetcher is joined by the pipeline
        teardown."""
        import threading

        from repro.data import ShardedNpzSource

        with ShardedNpzSource(shard_dir, max_cached=2, prefetch=2) as src:
            run_stream_subsample(src, self._case(), seed=0, nranks=3,
                                 owned_shards=True)
        alive = [t for t in threading.enumerate()
                 if t.name == "shard-prefetch" and t.is_alive()]
        assert alive == [], f"leaked prefetch threads: {alive}"

    def test_owned_with_more_ranks_than_shards(self, shard_dir, sst):
        """Satellite regression: empty owned directories stream nothing and
        merge as zero mass."""
        from repro.data import ShardedNpzSource

        with ShardedNpzSource(shard_dir, max_cached=2) as src:
            res = run_stream_subsample(src, self._case(), seed=0,
                                       nranks=sst.n_snapshots + 3,
                                       owned_shards=True)
        assert res.n_samples == 600
        assert res.n_points_scanned == sst.n_snapshots * sst.n_points_per_snapshot
        empty = [p for p in res.meta["producers"] if p["span"][0] == p["span"][1]]
        assert len(empty) == 3
        assert all(p["n_seen"] == 0 and not p["failed"] for p in empty)

    def test_owned_requires_sharded_source(self, sst):
        with pytest.raises(ValueError, match="owned_shards"):
            run_stream_subsample(sst, self._case(), seed=0, nranks=2,
                                 owned_shards=True)

    def test_owned_requires_multiple_ranks(self, shard_dir):
        """Regression: owned_shards at nranks=1 must refuse, not silently
        run the single-producer path while meta claims ownership."""
        from repro.data import ShardedNpzSource

        with ShardedNpzSource(shard_dir) as src:
            with pytest.raises(ValueError, match="nranks >= 2"):
                run_stream_subsample(src, self._case(), seed=0, nranks=1,
                                     owned_shards=True)

    def test_layout_scratch_dir_removed_after_run(self, shard_dir, monkeypatch):
        """The owned layout is run-scoped: its temp directory is gone after
        the subsample, success or failure."""
        from repro.data import ShardedNpzSource
        from repro.data.store import OwnedShardLayout

        roots = []
        orig = OwnedShardLayout.build.__func__

        def spy(cls, path, nranks, dest=None):
            layout = orig(cls, path, nranks, dest)
            roots.append(layout.root)
            return layout

        monkeypatch.setattr(OwnedShardLayout, "build", classmethod(spy))
        with ShardedNpzSource(shard_dir) as src:
            run_stream_subsample(src, self._case(), seed=0, nranks=2,
                                 owned_shards=True)
        assert len(roots) == 1
        assert not os.path.isdir(roots[0])

    def test_fault_injection_with_owned_shards(self, shard_dir):
        """The acceptance combination: ownership + a mid-span death."""
        def hook(rank, snapshots_done=0, rows_fed=0):
            return rank == 1 and rows_fed > 2000

        from repro.data import ShardedNpzSource

        with ShardedNpzSource(shard_dir, max_cached=2) as src:
            res = run_stream_subsample(
                src, self._case(), seed=0, nranks=4, chunk_rows=2048,
                owned_shards=True, fault_hook=hook, on_rank_failure="reweight",
            )
        assert res.n_samples == 600
        assert res.meta["failed_ranks"] == [1]
