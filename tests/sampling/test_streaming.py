"""Tests for streaming / in-situ sampling."""

import numpy as np
import pytest

from repro.sampling.streaming import (
    ReservoirSampler,
    ReservoirStream,
    StreamingMaxEnt,
    run_stream_subsample,
)


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        r = ReservoirSampler(10, rng=0)
        r.feed(np.arange(5.0)[:, None])
        assert r.sample.shape == (5, 1)
        assert sorted(r.sample[:, 0]) == [0, 1, 2, 3, 4]

    def test_capacity_bound(self):
        r = ReservoirSampler(8, rng=0)
        for _ in range(10):
            r.feed(np.random.default_rng(1).random((100, 2)))
        assert r.sample.shape == (8, 2)
        assert r.n_seen == 1000

    def test_approximately_uniform(self):
        """Every stream element must be retained with ~equal probability."""
        hits = np.zeros(100)
        for seed in range(300):
            r = ReservoirSampler(10, rng=seed)
            r.feed(np.arange(100.0)[:, None])
            hits[r.sample[:, 0].astype(int)] += 1
        expected = 300 * 10 / 100
        # Chi-square-ish sanity: no element wildly over/under-represented.
        assert hits.min() > expected * 0.3
        assert hits.max() < expected * 2.0

    def test_empty_errors(self):
        with pytest.raises(ValueError):
            ReservoirSampler(5).sample
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    def test_len_is_public(self):
        r = ReservoirSampler(8, rng=0)
        assert len(r) == 0
        r.feed(np.arange(3.0)[:, None])
        assert len(r) == 3
        r.feed(np.arange(20.0)[:, None])
        assert len(r) == 8

    def test_width_mismatch_raises(self):
        r = ReservoirSampler(4, rng=0)
        r.feed(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="width"):
            r.feed(np.zeros((3, 5)))

    def test_reservoir_rows_are_copies(self):
        chunk = np.arange(6.0).reshape(3, 2)
        r = ReservoirSampler(5, rng=0)
        r.feed(chunk)
        chunk[:] = -1.0
        assert r.sample.min() >= 0.0

    def test_algorithm_r_distribution_chi_square(self):
        """Satellite: the vectorized feed must preserve Algorithm R's
        uniform retention law — chi-square over element retention counts,
        with ragged chunk sizes so the batched path is exercised."""
        from scipy import stats

        n, cap, trials = 60, 12, 600
        chunks = [7, 1, 23, 4, 25]  # sums to 60; crosses the fill boundary
        hits = np.zeros(n)
        for seed in range(trials):
            r = ReservoirSampler(cap, rng=seed)
            stream = np.arange(float(n))[:, None]
            lo = 0
            for c in chunks:
                r.feed(stream[lo:lo + c])
                lo += c
            assert r.n_seen == n and len(r) == cap
            hits[r.sample[:, 0].astype(int)] += 1
        # Each element retained with probability cap/n; chi-square GoF.
        expected = trials * cap / n
        chi2 = ((hits - expected) ** 2 / expected).sum()
        p = stats.chi2.sf(chi2, df=n - 1)
        assert p > 1e-3, f"retention not uniform (chi2={chi2:.1f}, p={p:.2e})"

    def test_single_row_chunks_match_distribution_of_batched(self):
        """Feeding row-by-row and chunk-at-once draw from the same law."""
        means = []
        for chunked in (True, False):
            keep = []
            for seed in range(200):
                r = ReservoirSampler(5, rng=seed)
                stream = np.arange(50.0)[:, None]
                if chunked:
                    r.feed(stream)
                else:
                    for row in stream:
                        r.feed(row[None, :])
                keep.append(r.sample[:, 0].mean())
            means.append(np.mean(keep))
        # Uniform retention ⇒ both means near the stream mean (24.5).
        assert abs(means[0] - means[1]) < 2.0
        assert abs(means[0] - 24.5) < 2.0


class TestStreamingMaxEnt:
    def _bimodal_stream(self, seed=0, n_chunks=20, chunk=500, rare_frac=0.02):
        rng = np.random.default_rng(seed)
        for _ in range(n_chunks):
            n_rare = max(1, int(chunk * rare_frac))
            vals = np.concatenate([
                rng.standard_normal(chunk - n_rare) * 0.5,
                8.0 + rng.standard_normal(n_rare) * 0.5,
            ])
            rng.shuffle(vals)
            yield vals

    def test_single_pass_budget(self):
        s = StreamingMaxEnt(n_samples=300, value_range=(-4, 11), n_clusters=6, rng=0)
        for chunk in self._bimodal_stream():
            s.feed(chunk)
        out = s.finalize()
        assert out.shape[0] == 300
        assert s.n_seen == 20 * 500

    def test_oversamples_rare_mode_like_offline(self):
        """The streaming sampler must keep MaxEnt's tail-seeking behaviour."""
        s = StreamingMaxEnt(n_samples=300, value_range=(-4, 11), n_clusters=6, rng=0)
        for chunk in self._bimodal_stream():
            s.feed(chunk)
        vals = s.finalize()[:, 0]
        rare_share = (vals > 4.0).mean()
        assert rare_share > 0.1  # 5x the 2% population share

    def test_payload_carried(self):
        s = StreamingMaxEnt(n_samples=50, value_range=(0, 1), n_clusters=3, rng=0)
        rng = np.random.default_rng(2)
        vals = rng.random(500)
        payload = np.column_stack([np.arange(500.0), np.arange(500.0) * 2])
        s.feed(vals, payload)
        rows = s.finalize()
        assert rows.shape == (50, 3)
        # payload columns stay consistent (col2 = 2 * col1).
        assert np.allclose(rows[:, 2], 2 * rows[:, 1])

    def test_to_pointset(self):
        s = StreamingMaxEnt(n_samples=40, value_range=(0, 1), n_clusters=3, rng=0)
        rng = np.random.default_rng(3)
        coords = rng.random((400, 3))
        s.feed(rng.random(400), coords)
        ps = s.to_pointset(coords_cols=3)
        assert len(ps) == 40
        assert ps.coords.shape == (40, 3)
        assert ps.meta["method"] == "streaming-maxent"

    def test_small_stream_returns_what_exists(self):
        s = StreamingMaxEnt(n_samples=100, value_range=(0, 1), n_clusters=2, rng=0)
        s.feed(np.random.default_rng(4).random(30))
        assert s.finalize().shape[0] == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=0, value_range=(0, 1))
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=5, value_range=(1, 0))
        with pytest.raises(ValueError):
            StreamingMaxEnt(n_samples=5, value_range=(0, 1)).finalize()
        s = StreamingMaxEnt(n_samples=5, value_range=(0, 1))
        with pytest.raises(ValueError):
            s.feed(np.ones(4), np.ones((3, 1)))

    def test_matches_offline_maxent_tail_behaviour(self):
        """Streaming and offline MaxEnt enrich tails to a similar degree."""
        from repro.sampling import MaxEntSampler

        rng = np.random.default_rng(5)
        values = np.concatenate([
            rng.standard_normal(9800) * 0.5,
            8.0 + rng.standard_normal(200) * 0.5,
        ])
        offline_idx = MaxEntSampler(n_clusters=6).sample(values[:, None], 500, rng=0)
        offline_share = (values[offline_idx] > 4.0).mean()

        # Stream in shuffled order (in-situ chunks interleave regimes); a
        # sorted stream would starve the online clusters of early contrast.
        shuffled = values[np.random.default_rng(6).permutation(len(values))]
        s = StreamingMaxEnt(n_samples=500, value_range=(-4, 11), n_clusters=6, rng=0)
        for lo in range(0, 10000, 1000):
            s.feed(shuffled[lo : lo + 1000])
        stream_share = (s.finalize()[:, 0] > 4.0).mean()
        # Single-pass with bounded memory keeps a substantial fraction of the
        # offline sampler's tail enrichment, far above the 2% population share.
        assert stream_share > 0.4 * offline_share
        assert stream_share > 0.05

    def test_no_private_reservoir_access(self):
        """finalize() goes through the public len(); _items is gone."""
        r = ReservoirSampler(3, rng=0)
        assert not hasattr(r, "_items")


class TestStreamRegistry:
    def test_streaming_samplers_registered_under_offline_names(self):
        from repro.sampling import available_stream_samplers, get_stream_sampler

        names = available_stream_samplers()
        assert "maxent" in names and "random" in names
        s = get_stream_sampler("maxent", n_samples=10, value_range=(0, 1),
                               rng=0, n_clusters=3)
        assert isinstance(s, StreamingMaxEnt)
        r = get_stream_sampler("random", n_samples=10, rng=0)
        assert isinstance(r, ReservoirStream)

    def test_unknown_name_lists_available(self):
        from repro.sampling import get_stream_sampler

        with pytest.raises(KeyError, match="no streaming analogue"):
            get_stream_sampler("lhs", n_samples=10)

    def test_reservoir_stream_uniform_rows(self):
        s = ReservoirStream(20, rng=0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            vals = rng.random(100)
            s.feed(vals, np.column_stack([vals * 2, vals * 3]))
        rows = s.finalize()
        assert rows.shape == (20, 3)
        assert np.allclose(rows[:, 1], 2 * rows[:, 0])
        assert s.n_seen == 1000

    def test_third_party_stream_sampler_registers(self):
        from repro.sampling import (
            StreamSampler,
            get_stream_sampler,
            register_stream_sampler,
        )
        from repro.sampling.base import _STREAM_REGISTRY

        @register_stream_sampler("keep-first")
        class KeepFirst(StreamSampler):
            def __init__(self, n_samples, value_range=None, rng=None):
                self.n_samples, self.rows, self.n_seen = n_samples, [], 0

            def feed(self, values, payload=None):
                values = np.asarray(values, dtype=float).ravel()
                self.n_seen += values.size
                need = self.n_samples - len(self.rows)
                self.rows.extend(values[:need, None])

            def finalize(self):
                return np.stack(self.rows)

        try:
            s = get_stream_sampler("keep-first", n_samples=3)
            s.feed(np.arange(10.0))
            assert s.finalize().tolist() == [[0.0], [1.0], [2.0]]
        finally:
            del _STREAM_REGISTRY["keep-first"]


class TestStreamingOfflineFidelity:
    def test_sample_histograms_within_ks_bound(self):
        """Satellite: on a fixed dataset fed chunk-wise, the streaming
        MaxEnt sample-value distribution must track the offline maxent
        sampler's within a KS-style bound."""
        from repro.sampling import MaxEntSampler

        rng = np.random.default_rng(11)
        values = np.concatenate([
            rng.standard_normal(9500) * 0.6,
            6.0 + rng.standard_normal(500) * 0.4,
        ])
        values = values[np.random.default_rng(12).permutation(len(values))]

        offline_idx = MaxEntSampler(n_clusters=6).sample(values[:, None], 600, rng=0)
        offline_vals = np.sort(values[offline_idx])

        s = StreamingMaxEnt(n_samples=600, value_range=(-4, 9), n_clusters=6, rng=0)
        for lo in range(0, len(values), 500):
            s.feed(values[lo:lo + 500])
        stream_vals = np.sort(s.finalize()[:, 0])

        # Two-sample KS distance between the sample-value distributions.
        grid = np.linspace(values.min(), values.max(), 512)
        cdf_off = np.searchsorted(offline_vals, grid) / len(offline_vals)
        cdf_str = np.searchsorted(stream_vals, grid) / len(stream_vals)
        ks = np.abs(cdf_off - cdf_str).max()
        assert ks < 0.25, f"KS distance {ks:.3f} exceeds tolerance"
        # And both enrich the rare mode far beyond its 5% population share.
        assert (stream_vals > 3.0).mean() > 0.15
        assert (offline_vals > 3.0).mean() > 0.15


class TestStreamSubsample:
    def _case(self, method="maxent", arch="mlp_transformer", **overrides):
        from repro.utils.config import (
            CaseConfig,
            SharedConfig,
            SubsampleConfig,
            TrainConfig,
        )

        sub = dict(hypercubes="maxent", method=method, num_hypercubes=3,
                   num_samples=32, num_clusters=4, nxsl=8, nysl=8, nzsl=8)
        sub.update(overrides)
        return CaseConfig(
            shared=SharedConfig(dims=3),
            subsample=SubsampleConfig(**sub),
            train=TrainConfig(arch=arch),
        )

    @pytest.fixture(scope="class")
    def sst(self):
        from repro.data import build_dataset

        return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=3)

    @pytest.mark.parametrize("method", ["maxent", "random"])
    def test_single_pass_over_in_memory_source(self, sst, method):
        res = run_stream_subsample(sst, self._case(method), seed=0, chunk_rows=4096)
        assert res.n_samples == 3 * 32  # num_hypercubes * num_samples
        assert res.n_points_scanned == sst.n_snapshots * sst.n_points_per_snapshot
        assert res.meta["mode"] == "stream"
        assert res.points.meta["mode"] == "stream"
        assert res.n_candidate_cubes == 0 and len(res.selected_cube_ids) == 0
        # Per-point times map back to real snapshots.
        assert set(np.unique(np.asarray(res.points.time))) <= set(sst.times)
        # Carried variables are genuine field values at the carried coords.
        coords = res.points.coords.astype(int)
        t0 = sst.snapshots[0].time
        at_t0 = np.asarray(res.points.time) == t0
        if at_t0.any():
            pv = sst.snapshots[0].get("pv")
            got = res.points.values["pv"][at_t0]
            want = pv[tuple(coords[at_t0].T)]
            assert np.allclose(got, want)

    def test_subsample_mode_stream_entry_point(self, sst):
        """`subsample(source, case, mode='stream')` is the single entry."""
        from repro.sampling import subsample

        res = subsample(sst, self._case(), seed=0, mode="stream")
        assert res.meta["mode"] == "stream"
        with pytest.raises(ValueError, match="nranks"):
            subsample(sst, self._case(), nranks=2, seed=0, mode="stream")
        with pytest.raises(ValueError, match="mode"):
            subsample(sst, self._case(), seed=0, mode="banana")

    def test_full_method_rejected(self, sst):
        with pytest.raises(ValueError, match="streaming analogue"):
            run_stream_subsample(
                sst, self._case("full", arch="cnn_transformer"), seed=0
            )

    def test_random_stream_skips_value_range_hint(self, sst, monkeypatch):
        """Reservoir sampling ignores value ranges; the (potentially full
        extra scan) hint must not be computed for it."""
        from repro.data import InMemorySource

        src = InMemorySource(sst)
        calls = []
        monkeypatch.setattr(
            src, "value_range_hint",
            lambda var: calls.append(var) or (0.0, 1.0),
        )
        run_stream_subsample(src, self._case("random"), seed=0)
        assert calls == []
        run_stream_subsample(src, self._case("maxent"), seed=0)
        assert calls == ["pv"]

    def test_unsupported_method_fails_before_source_does_work(self):
        """Regression: a batch-only method must be rejected before the
        simulation generates even one snapshot."""
        from repro.data import stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2)
        with pytest.raises(KeyError, match="no streaming analogue"):
            run_stream_subsample(src, self._case("lhs"), seed=0)
        assert src.generated == 0

    def test_simulation_source_generates_each_snapshot_once(self):
        """True in-situ: one pass, nothing regenerated, nothing resident."""
        from repro.data import stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2,
                             max_cached=1)
        res = run_stream_subsample(src, self._case(), seed=0)
        assert res.n_samples > 0
        assert src.generated == 2
        assert src.restarts == 0

    def test_energy_metered(self, sst):
        res = run_stream_subsample(sst, self._case(), seed=0)
        assert res.energy is not None
        assert res.energy.total_energy > 0.0
