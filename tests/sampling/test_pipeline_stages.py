"""Seed-for-seed equivalence and composition tests for the stage pipeline.

The GOLDEN table below was captured by running the pre-refactor monolithic
``run_subsample()`` (repo state at commit f1093e4) on the synthetic case
defined here; the stage-based :class:`SubsamplePipeline` must keep producing
byte-identical cube selections and point sets for every method and rank
count.
"""

import hashlib

import numpy as np
import pytest

from repro.data import build_dataset
from repro.parallel import run_spmd
from repro.sampling import SubsamplePipeline, subsample
from repro.sampling.stages import (
    CubeIndexStage,
    CubeSelectStage,
    GatherStage,
    Phase1SummarizeStage,
    PointSampleStage,
    Stage,
)
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig

# (method, nranks) -> (selected_cube_ids, sha256[:16] of coords+time+values)
GOLDEN = {
    ("maxent", 1): ([0, 2, 3], "dd635605d60d8ac8"),
    ("maxent", 2): ([0, 2, 3], "75f443abd69bf8bc"),
    ("random", 1): ([0, 4, 6], "c305397eb4b1e76c"),
    ("random", 2): ([0, 4, 6], "027f4c0a9a500be8"),
    ("uips", 1): ([0, 2, 3], "a998b8bf1b00765d"),
    ("uips", 2): ([0, 2, 3], "9675a2ed73002126"),
}


@pytest.fixture(scope="module")
def sst():
    return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=2)


def make_case(method="maxent", hypercubes="maxent"):
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes=hypercubes,
            method=method,
            num_hypercubes=3,
            num_samples=32,
            num_clusters=5,
            nxsl=16, nysl=16, nzsl=16,
        ),
        train=TrainConfig(arch="mlp_transformer"),
    )


def points_digest(ps):
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(ps.coords).tobytes())
    h.update(np.ascontiguousarray(
        np.broadcast_to(np.asarray(ps.time), (len(ps),))).tobytes())
    for k in sorted(ps.values):
        h.update(k.encode())
        h.update(np.ascontiguousarray(ps.values[k]).tobytes())
    return h.hexdigest()[:16]


class TestSeedEquivalence:
    @pytest.mark.parametrize("method,nranks", sorted(GOLDEN))
    def test_matches_pre_refactor_golden(self, sst, method, nranks):
        ids, digest = GOLDEN[(method, nranks)]
        hypercubes = "random" if method == "random" else "maxent"
        res = subsample(sst, make_case(method, hypercubes), nranks=nranks, seed=0)
        assert list(map(int, res.selected_cube_ids)) == ids
        assert points_digest(res.points) == digest

    @pytest.mark.parametrize("method", ["maxent", "random", "uips"])
    def test_explicit_pipeline_equals_wrapper(self, sst, method):
        """Driving SubsamplePipeline directly must equal the subsample() wrapper."""
        hypercubes = "random" if method == "random" else "maxent"
        cfg = make_case(method, hypercubes)
        ref = subsample(sst, cfg, nranks=2, seed=0)

        pipe = SubsamplePipeline()
        spmd = run_spmd(pipe.run, 2, sst, cfg, seed=0)
        got = spmd[0]
        assert np.array_equal(got.selected_cube_ids, ref.selected_cube_ids)
        assert points_digest(got.points) == points_digest(ref.points)


class TestSourceEquivalence:
    """`subsample()` accepts every SnapshotSource kind; the in-memory source
    must reproduce the pre-refactor goldens byte-for-byte, and the
    out-of-core / in-situ sources must match it exactly."""

    @pytest.mark.parametrize("method,nranks", sorted(GOLDEN))
    def test_in_memory_source_matches_golden(self, sst, method, nranks):
        from repro.data import InMemorySource

        ids, digest = GOLDEN[(method, nranks)]
        hypercubes = "random" if method == "random" else "maxent"
        res = subsample(InMemorySource(sst), make_case(method, hypercubes),
                        nranks=nranks, seed=0)
        assert list(map(int, res.selected_cube_ids)) == ids
        assert points_digest(res.points) == digest

    def test_sharded_source_matches_golden(self, sst, tmp_path):
        from repro.data import ShardedNpzSource, save_dataset

        save_dataset(sst, str(tmp_path))
        src = ShardedNpzSource(str(tmp_path), max_cached=1)
        ids, digest = GOLDEN[("maxent", 2)]
        res = subsample(src, make_case(), nranks=2, seed=0)
        assert list(map(int, res.selected_cube_ids)) == ids
        assert points_digest(res.points) == digest

    def test_simulation_source_matches_golden(self):
        from repro.data import stream_dataset

        src = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=2)
        ids, digest = GOLDEN[("maxent", 1)]
        res = subsample(src, make_case(), nranks=1, seed=0)
        assert list(map(int, res.selected_cube_ids)) == ids
        assert points_digest(res.points) == digest
        # The two-phase pipeline revisits: the sim replayed, never stored all.
        assert src.restarts >= 1

    def test_shard_path_is_coerced(self, sst, tmp_path):
        from repro.data import save_dataset

        save_dataset(sst, str(tmp_path))
        ids, digest = GOLDEN[("maxent", 1)]
        res = subsample(str(tmp_path), make_case(), nranks=1, seed=0)
        assert list(map(int, res.selected_cube_ids)) == ids
        assert points_digest(res.points) == digest


class TestResultMeta:
    def test_meta_records_seed_and_config_snapshot(self, sst):
        cfg = make_case()
        res = subsample(sst, cfg, nranks=2, seed=17)
        assert res.meta["seed"] == 17
        assert res.meta["case"] == cfg.to_dict()
        # The snapshot is detached JSON-able data, not live config objects.
        assert res.meta["case"]["subsample"]["num_hypercubes"] == 3
        assert res.meta["case"]["train"]["arch"] == "mlp_transformer"


class TestComposition:
    def test_default_stage_names(self):
        names = [s.name for s in SubsamplePipeline().stages]
        assert names == [
            "cube-index", "phase1-summarize", "cube-select", "point-sample", "gather",
        ]
        assert all(isinstance(s, Stage) for s in SubsamplePipeline().stages)

    def test_selector_override_stage(self, sst):
        """A swapped CubeSelectStage overrides the case's hypercubes method."""
        cfg = make_case(hypercubes="maxent")
        pipe = SubsamplePipeline([
            CubeIndexStage(),
            Phase1SummarizeStage(),
            CubeSelectStage("random"),
            PointSampleStage(),
            GatherStage(),
        ])
        spmd = run_spmd(pipe.run, 1, sst, cfg, seed=0)
        forced = spmd[0]
        reference = subsample(sst, make_case(method="maxent", hypercubes="random"),
                              nranks=1, seed=0)
        assert np.array_equal(forced.selected_cube_ids, reference.selected_cube_ids)

    def test_custom_observer_stage(self, sst):
        """Arbitrary stages can be interleaved and see the shared context."""
        seen = {}

        class Spy:
            name = "spy"

            def run(self, ctx):
                seen["n_cubes"] = ctx.n_cubes
                seen["selected"] = np.asarray(ctx.selected).copy()

        stages = SubsamplePipeline.default_stages()
        stages.insert(4, Spy())  # after PointSample, before Gather
        pipe = SubsamplePipeline(stages)
        spmd = run_spmd(pipe.run, 1, sst, make_case(), seed=0)
        res = spmd[0]
        assert seen["n_cubes"] == res.n_candidate_cubes
        assert np.array_equal(seen["selected"], res.selected_cube_ids)
