"""Behavioural tests for all registered samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import (
    MaxEntSampler,
    Sampler,
    available_samplers,
    get_sampler,
    register_sampler,
)
from repro.sampling.stratified import allocate_counts

ALL_SAMPLERS = ["random", "lhs", "stratified", "uips", "maxent"]


def bimodal_features(n=2000, rare_frac=0.02, seed=0):
    """A dense mode at 0 plus a rare tail mode at 8 (1-D)."""
    rng = np.random.default_rng(seed)
    n_rare = max(1, int(n * rare_frac))
    dense = rng.standard_normal(n - n_rare) * 0.5
    rare = 8.0 + rng.standard_normal(n_rare) * 0.5
    return np.concatenate([dense, rare])[:, None]


class TestRegistry:
    def test_all_expected_registered(self):
        for name in ALL_SAMPLERS:
            assert name in available_samplers()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_sampler("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):

            @register_sampler("random")
            class Dup(Sampler):  # pragma: no cover - never used
                def select(self, features, n, rng):
                    return np.arange(n)

    def test_non_sampler_rejected(self):
        with pytest.raises(TypeError):
            register_sampler("notasampler")(object)  # type: ignore[arg-type]


@pytest.mark.parametrize("name", ALL_SAMPLERS)
class TestSamplerContract:
    def test_returns_n_unique_valid_indices(self, name):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((300, 2))
        idx = get_sampler(name).sample(features, 50, rng=1)
        assert idx.shape == (50,)
        assert len(np.unique(idx)) == 50
        assert idx.min() >= 0 and idx.max() < 300

    def test_deterministic_given_seed(self, name):
        rng = np.random.default_rng(1)
        features = rng.standard_normal((200, 2))
        a = get_sampler(name).sample(features, 40, rng=7)
        b = get_sampler(name).sample(features, 40, rng=7)
        assert np.array_equal(a, b)

    def test_full_budget_allowed(self, name):
        rng = np.random.default_rng(2)
        features = rng.standard_normal((64, 1))
        idx = get_sampler(name).sample(features, 64, rng=0)
        assert sorted(idx.tolist()) == list(range(64))

    def test_over_budget_rejected(self, name):
        with pytest.raises(ValueError):
            get_sampler(name).sample(np.zeros((10, 1)), 11, rng=0)

    def test_nonfinite_rejected(self, name):
        features = np.ones((10, 1))
        features[3] = np.nan
        with pytest.raises(ValueError):
            get_sampler(name).sample(features, 2, rng=0)

    def test_1d_features_accepted(self, name):
        rng = np.random.default_rng(3)
        idx = get_sampler(name).sample(rng.standard_normal(128), 16, rng=0)
        assert idx.shape == (16,)


class TestLatinHypercube:
    def test_marginal_stratification_1d(self):
        """On dense 1-D data each decile receives exactly one of 10 samples."""
        features = np.linspace(0, 1, 1000)[:, None]
        idx = get_sampler("lhs").sample(features, 10, rng=0)
        deciles = np.floor(features[idx, 0] * 10).astype(int).clip(0, 9)
        assert len(np.unique(deciles)) == 10

    def test_better_coverage_than_random_worst_gap(self):
        rng = np.random.default_rng(4)
        features = rng.random((2000, 1))
        lhs_idx = get_sampler("lhs").sample(features, 20, rng=0)
        gaps_lhs = np.diff(np.sort(features[lhs_idx, 0]), prepend=0, append=1).max()
        worst_random = np.median([
            np.diff(np.sort(features[
                get_sampler("random").sample(features, 20, rng=s), 0
            ]), prepend=0, append=1).max()
            for s in range(10)
        ])
        assert gaps_lhs <= worst_random


class TestAllocateCounts:
    def test_sums_to_budget(self):
        counts = allocate_counts(10, np.array([100, 100, 100]))
        assert counts.sum() == 10

    def test_respects_capacity(self):
        counts = allocate_counts(10, np.array([2, 100]), np.array([0.9, 0.1]))
        assert counts[0] <= 2
        assert counts.sum() == 10

    def test_insufficient_capacity_rejected(self):
        with pytest.raises(ValueError):
            allocate_counts(10, np.array([3, 3]))

    @given(
        n=st.integers(1, 50),
        sizes=st.lists(st.integers(0, 40), min_size=1, max_size=8),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property(self, n, sizes, seed):
        sizes = np.array(sizes)
        if sizes.sum() < n:
            with pytest.raises(ValueError):
                allocate_counts(n, sizes)
            return
        rng = np.random.default_rng(seed)
        weights = rng.random(len(sizes))
        counts = allocate_counts(n, sizes, weights)
        assert counts.sum() == n
        assert np.all(counts <= sizes)
        assert np.all(counts >= 0)


class TestMaxEntBehaviour:
    def test_oversamples_rare_mode(self):
        """MaxEnt must pick up the rare tail mode far above its data share."""
        features = bimodal_features(n=2000, rare_frac=0.02)
        n = 200
        idx = MaxEntSampler(n_clusters=8).sample(features, n, rng=0)
        rare_share = (features[idx, 0] > 4.0).mean()
        assert rare_share > 0.1  # 5x the 2% population share

    def test_random_matches_population_share(self):
        features = bimodal_features(n=2000, rare_frac=0.02)
        idx = get_sampler("random").sample(features, 200, rng=0)
        rare_share = (features[idx, 0] > 4.0).mean()
        assert rare_share < 0.08

    def test_tail_coverage_beats_random(self):
        """Fig 5's headline: MaxEnt covers tails that random misses."""
        rng = np.random.default_rng(5)
        features = rng.standard_normal((5000, 1)) ** 3  # heavy-tailed
        n = 250
        tail = np.abs(features[:, 0]) > np.quantile(np.abs(features[:, 0]), 0.98)
        me = MaxEntSampler(n_clusters=10).sample(features, n, rng=0)
        rd = get_sampler("random").sample(features, n, rng=0)
        assert tail[me].sum() >= tail[rd].sum()

    def test_tiny_input(self):
        features = np.arange(8.0)[:, None]
        idx = MaxEntSampler(n_clusters=4).sample(features, 4, rng=0)
        assert idx.shape == (4,)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MaxEntSampler(n_clusters=1)
        with pytest.raises(ValueError):
            MaxEntSampler(bins=1)


class TestUIPSBehaviour:
    def test_flattens_phase_space_2d(self):
        """Selected subset is closer to uniform over occupied bins than random."""
        from repro.cluster.histogram import joint_histogram

        rng = np.random.default_rng(6)
        features = rng.standard_normal((5000, 2))  # Gaussian: dense centre
        n = 400
        uips_idx = get_sampler("uips").sample(features, n, rng=0)
        rand_idx = get_sampler("random").sample(features, n, rng=0)

        def occupied_cv(idx):
            pdf = joint_histogram(features[idx], bins=8,
                                  ranges=[(-4, 4), (-4, 4)])
            occ = pdf.prob[pdf.prob > 0]
            return occ.std() / occ.mean()

        assert occupied_cv(uips_idx) < occupied_cv(rand_idx)

    def test_dim_cap(self):
        with pytest.raises(ValueError):
            get_sampler("uips").sample(np.zeros((100, 6)), 10, rng=0)

    def test_invalid_params(self):
        from repro.sampling.uips import UIPSSampler

        with pytest.raises(ValueError):
            UIPSSampler(bins=1)
        with pytest.raises(ValueError):
            UIPSSampler(n_iterations=0)


class TestStratifiedBehaviour:
    def test_equal_allocation_boosts_small_stratum(self):
        features = bimodal_features(n=1000, rare_frac=0.05, seed=7)
        from repro.sampling.stratified import StratifiedSampler

        idx = StratifiedSampler(n_clusters=2, allocation="equal").sample(features, 100, rng=0)
        rare_share = (features[idx, 0] > 4.0).mean()
        assert rare_share > 0.3  # ~half the budget lands in the 5% stratum

    def test_proportional_tracks_population(self):
        features = bimodal_features(n=1000, rare_frac=0.05, seed=8)
        from repro.sampling.stratified import StratifiedSampler

        idx = StratifiedSampler(n_clusters=2, allocation="proportional").sample(
            features, 100, rng=0
        )
        rare_share = (features[idx, 0] > 4.0).mean()
        assert rare_share < 0.2

    def test_invalid_allocation(self):
        from repro.sampling.stratified import StratifiedSampler

        with pytest.raises(ValueError):
            StratifiedSampler(allocation="magic")


class TestEnergyAccounting:
    def test_sampling_charges_meter(self):
        from repro.energy import EnergyMeter

        rng = np.random.default_rng(9)
        features = rng.standard_normal((500, 1))
        with EnergyMeter() as meter:
            get_sampler("maxent").sample(features, 50, rng=0)
        assert meter.flops_cpu > 0
