"""Tests for the entropy / KL / node-strength machinery."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sampling.entropy import (
    adjacency_graph,
    cluster_value_distributions,
    entropy_adjacency,
    kl_divergence,
    node_strengths,
    shannon_entropy,
    strength_weights,
)


class TestShannonEntropy:
    def test_uniform_is_max(self):
        assert shannon_entropy(np.full(8, 0.125), base=2) == pytest.approx(3.0)

    def test_delta_is_zero(self):
        assert shannon_entropy(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_unnormalized_accepted(self):
        assert shannon_entropy(np.array([2.0, 2.0]), base=2) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            shannon_entropy(np.array([-0.1, 1.1]))
        with pytest.raises(ValueError):
            shannon_entropy(np.zeros(3))

    @given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=32))
    def test_bounds(self, raw):
        p = np.array(raw)
        h = shannon_entropy(p)
        assert -1e-12 <= h <= np.log(len(p)) + 1e-9


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_different(self):
        assert kl_divergence(np.array([0.9, 0.1]), np.array([0.1, 0.9])) > 0

    def test_asymmetric(self):
        p = np.array([0.7, 0.2, 0.1])
        q = np.array([0.1, 0.1, 0.8])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_empty_q_bins_finite(self):
        """The eps floor keeps divergence finite on empty histogram bins."""
        d = kl_divergence(np.array([0.5, 0.5]), np.array([1.0, 0.0]))
        assert np.isfinite(d) and d > 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.ones(3), np.ones(4))

    @given(
        st.lists(st.floats(0.01, 1.0), min_size=3, max_size=3),
        st.lists(st.floats(0.01, 1.0), min_size=3, max_size=3),
    )
    def test_nonnegative(self, p_raw, q_raw):
        assert kl_divergence(np.array(p_raw), np.array(q_raw)) >= -1e-12


class TestClusterDistributions:
    def test_rows_normalized(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(1000)
        labels = rng.integers(0, 5, size=1000)
        dists = cluster_value_distributions(values, labels, 5, bins=20)
        assert dists.shape == (5, 20)
        assert np.allclose(dists.sum(axis=1), 1.0)

    def test_empty_cluster_uniform(self):
        values = np.array([0.0, 1.0])
        labels = np.array([0, 0])
        dists = cluster_value_distributions(values, labels, 3, bins=4)
        assert np.allclose(dists[1], 0.25)
        assert np.allclose(dists[2], 0.25)

    def test_separated_clusters_disjoint_support(self):
        values = np.concatenate([np.zeros(50), np.ones(50) * 10])
        labels = np.concatenate([np.zeros(50, int), np.ones(50, int)])
        dists = cluster_value_distributions(values, labels, 2, bins=10)
        assert (dists[0] * dists[1]).sum() == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cluster_value_distributions(np.ones(3), np.zeros(4, int), 2)

    def test_constant_values_handled(self):
        dists = cluster_value_distributions(np.ones(10), np.zeros(10, int), 1, bins=5)
        assert np.isfinite(dists).all()


class TestAdjacency:
    def test_diagonal_zero_nonnegative(self):
        rng = np.random.default_rng(1)
        dists = rng.dirichlet(np.ones(10), size=4)
        a = entropy_adjacency(dists)
        assert a.shape == (4, 4)
        assert np.all(np.diag(a) == 0)
        assert np.all(a >= 0)

    def test_matches_pairwise_kl(self):
        rng = np.random.default_rng(2)
        dists = rng.dirichlet(np.ones(6) * 2, size=3)
        a = entropy_adjacency(dists)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert a[i, j] == pytest.approx(kl_divergence(dists[i], dists[j]), abs=1e-6)

    def test_identical_rows_zero_matrix(self):
        dists = np.tile(np.full(5, 0.2), (3, 1))
        assert np.allclose(entropy_adjacency(dists), 0.0)


class TestNodeStrengths:
    def test_outlier_cluster_strongest(self):
        """A distribution far from the others must get the top strength."""
        base = np.array([0.5, 0.3, 0.15, 0.05])
        near = np.array([0.45, 0.35, 0.15, 0.05])
        outlier = np.array([0.02, 0.03, 0.15, 0.8])
        s = node_strengths(entropy_adjacency(np.stack([base, near, outlier])))
        assert np.argmax(s) == 2

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            node_strengths(np.ones((2, 3)))

    def test_graph_construction(self):
        a = np.array([[0.0, 1.0], [2.0, 0.0]])
        g = adjacency_graph(a)
        assert isinstance(g, nx.DiGraph)
        assert g[0][1]["weight"] == 1.0
        assert g[1][0]["weight"] == 2.0
        assert not g.has_edge(0, 0)


class TestStrengthWeights:
    def test_normalized(self):
        w = strength_weights(np.array([1.0, 3.0]))
        assert w.sum() == pytest.approx(1.0)
        assert w[1] == pytest.approx(0.75)

    def test_all_zero_falls_back_uniform(self):
        w = strength_weights(np.zeros(4))
        assert np.allclose(w, 0.25)

    def test_temperature_sharpens(self):
        s = np.array([1.0, 2.0])
        sharp = strength_weights(s, temperature=0.5)
        flat = strength_weights(s, temperature=2.0)
        assert sharp[1] > flat[1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            strength_weights(np.array([-1.0, 1.0]))
        with pytest.raises(ValueError):
            strength_weights(np.ones(2), temperature=0.0)
