"""Tests for temporal selection and the distributed subsample pipeline."""

import numpy as np
import pytest

from repro.data import build_dataset
from repro.sampling import select_snapshots, js_divergence, subsample
from repro.sampling.pipeline import run_subsample
from repro.parallel import run_spmd
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


@pytest.fixture(scope="module")
def of2d():
    return build_dataset("OF2D", scale=0.5, rng=0, n_snapshots=40)


@pytest.fixture(scope="module")
def sst():
    return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=3)


def make_case(method="maxent", hypercubes="maxent", num_hypercubes=4,
              num_samples=64, cube=16, dims=3, arch="mlp_transformer"):
    return CaseConfig(
        shared=SharedConfig(dims=dims),
        subsample=SubsampleConfig(
            hypercubes=hypercubes,
            method=method,
            num_hypercubes=num_hypercubes,
            num_samples=num_samples,
            num_clusters=5,
            nxsl=cube, nysl=cube, nzsl=cube,
        ),
        train=TrainConfig(arch=arch),
    )


class TestTemporal:
    def test_js_symmetric_bounded(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.1, 0.9])
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))
        assert 0 <= js_divergence(p, q) <= np.log(2) + 1e-12

    def test_uniform_selection(self, of2d):
        idx = select_snapshots(of2d.snapshots, 5, "p", method="uniform")
        assert idx[0] == 0 and idx[-1] == len(of2d.snapshots) - 1

    def test_random_selection_sorted_unique(self, of2d):
        idx = select_snapshots(of2d.snapshots, 7, "p", method="random", rng=0)
        assert len(np.unique(idx)) == 7
        assert np.all(np.diff(idx) > 0)

    def test_maxent_selection_spreads_over_phase(self, of2d):
        """Periodic shedding: greedily novel snapshots avoid duplicate phases."""
        period_frames = 20  # generate_cylinder default: 20 frames/period
        idx = select_snapshots(of2d.snapshots, 6, "wz", method="maxent", rng=0)
        phases = idx % period_frames
        # At least 4 distinct phases among 6 picks (uniform-cadence picks of
        # a 20-frame period can collapse to far fewer).
        assert len(np.unique(phases)) >= 4

    def test_invalid(self, of2d):
        with pytest.raises(ValueError):
            select_snapshots(of2d.snapshots, 0, "p")
        with pytest.raises(ValueError):
            select_snapshots(of2d.snapshots, 2, "p", method="psychic")


class TestPipelineSerial:
    @pytest.mark.parametrize("method", ["random", "maxent", "uips", "stratified", "lhs"])
    def test_point_methods_produce_pointsets(self, sst, method):
        cfg = make_case(method=method, num_hypercubes=3, num_samples=32)
        res = subsample(sst, cfg, nranks=1, seed=0)
        assert res.points is not None
        assert res.cubes is None
        assert len(res.points) == 3 * 32
        for var in ("u", "v", "w", "p", "pv"):
            assert var in res.points.values

    def test_full_method_produces_cubes(self, sst):
        cfg = make_case(method="full", num_hypercubes=2, arch="cnn_transformer")
        res = subsample(sst, cfg, nranks=1, seed=0)
        assert res.cubes is not None and len(res.cubes) == 2
        assert res.points is None
        assert res.cubes[0].shape == (16, 16, 16)

    def test_selected_ids_within_range(self, sst):
        cfg = make_case(num_hypercubes=4)
        res = subsample(sst, cfg, nranks=1, seed=0)
        assert len(res.selected_cube_ids) == 4
        assert len(np.unique(res.selected_cube_ids)) == 4
        assert res.selected_cube_ids.max() < res.n_candidate_cubes

    def test_energy_and_time_recorded(self, sst):
        cfg = make_case()
        res = subsample(sst, cfg, nranks=1, seed=0)
        assert res.energy is not None and res.energy.total_energy > 0
        assert res.virtual_time > 0
        assert res.n_points_scanned > 0

    def test_too_many_hypercubes_rejected(self, sst):
        cfg = make_case(num_hypercubes=10**6)
        with pytest.raises((ValueError, RuntimeError)):
            subsample(sst, cfg, nranks=1, seed=0)

    def test_sample_values_match_source(self, sst):
        """Every sampled point's value must equal the source field value."""
        cfg = make_case(method="random", num_hypercubes=2, num_samples=16)
        res = subsample(sst, cfg, nranks=1, seed=0)
        ps = res.points
        times = np.broadcast_to(np.asarray(ps.time), (len(ps),))
        snap_times = {s.time: s for s in sst.snapshots}
        for i in range(0, len(ps), 7):
            snap = snap_times[float(times[i])]
            coord = tuple(int(c) for c in ps.coords[i])
            assert ps.values["u"][i] == snap["u"][coord]


class TestPipelineParallel:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_matches_serial_sample_count(self, sst, nranks):
        cfg = make_case(num_hypercubes=4, num_samples=32)
        res = subsample(sst, cfg, nranks=nranks, seed=0)
        assert res.points is not None
        assert len(res.points) == 4 * 32

    def test_selection_identical_across_rank_counts(self, sst):
        """Phase 1 runs on rank 0's broadcast RNG: selected cubes must not
        depend on how many ranks participated."""
        cfg = make_case(num_hypercubes=4)
        ids = [
            set(subsample(sst, cfg, nranks=n, seed=0).selected_cube_ids.tolist())
            for n in (1, 2, 4)
        ]
        assert ids[0] == ids[1] == ids[2]

    def test_all_ranks_return_consistent_result(self, sst):
        cfg = make_case(num_hypercubes=4, num_samples=16)
        spmd = run_spmd(run_subsample, 3, sst, cfg, seed=0)
        for rank in range(3):
            res = spmd[rank]
            assert res.n_candidate_cubes == spmd[0].n_candidate_cubes
            assert np.array_equal(res.selected_cube_ids, spmd[0].selected_cube_ids)
        # Only rank 0 holds the gathered points.
        assert spmd[0].points is not None
        assert spmd[1].points is None

    def test_parallel_virtual_time_decreases(self, sst):
        """More ranks → shorter virtual makespan (in the scaling regime)."""
        cfg = make_case(num_hypercubes=8, num_samples=64)
        t1 = subsample(sst, cfg, nranks=1, seed=0).virtual_time
        t4 = subsample(sst, cfg, nranks=4, seed=0).virtual_time
        assert t4 < t1

    def test_energy_merged_across_ranks(self, sst):
        cfg = make_case(num_hypercubes=4)
        m1 = subsample(sst, cfg, nranks=1, seed=0).energy
        m4 = subsample(sst, cfg, nranks=4, seed=0).energy
        # Dynamic (op-count) energy is work-conserving across rank counts.
        dyn1 = m1.model.dynamic_energy(m1.flops_cpu, m1.bytes_cpu)
        dyn4 = m4.model.dynamic_energy(m4.flops_cpu, m4.bytes_cpu)
        # (kmeans iteration counts vary with the partition, so allow slack)
        assert dyn4 == pytest.approx(dyn1, rel=0.3)
        # Idle energy follows the (shorter) parallel makespan: total drops.
        assert m4.total_energy <= m1.total_energy


class TestHypercubeSelectionQuality:
    def test_hmaxent_prefers_structured_cubes(self):
        """On OF2D, Hmaxent must pick wake cubes (high-vorticity) more often
        than their population share."""
        from repro.sampling.maxent import select_hypercubes_maxent

        ds = build_dataset("OF2D", scale=1.0, rng=0, n_snapshots=6)
        cube = 30
        from repro.data.hypercubes import extract_all_hypercubes

        cubes = []
        for s in ds.snapshots:
            cubes.extend(extract_all_hypercubes(s, (cube, cube), ["wz"]))
        values = [c.variables["wz"] for c in cubes]
        activity = np.array([np.abs(v).mean() for v in values])
        interesting = activity > np.quantile(activity, 0.75)

        hits = []
        for seed in range(5):
            sel = select_hypercubes_maxent(values, num_hypercubes=6, rng=seed)
            hits.append(interesting[sel].mean())
        assert np.mean(hits) > 0.25  # population share is 0.25
