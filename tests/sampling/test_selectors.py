"""Tests for the phase-1 CubeSelector registry and the pluggable pipeline.

Covers the selector registry contract (mirroring the Sampler registry), the
three built-in selectors, the `hypercubes: entropy` bug fix (a genuinely
distinct selector rather than a silent alias of maxent), and the regression
for third-party registered strategies flowing through the full pipeline
without a cost-table KeyError.
"""

import numpy as np
import pytest

from repro.data import build_dataset
from repro.sampling import (
    CubeSelector,
    Sampler,
    available_selectors,
    get_selector,
    register_sampler,
    register_selector,
    subsample,
)
from repro.sampling import base as sampler_base
from repro.sampling import selectors as selector_mod
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


@pytest.fixture(scope="module")
def sst():
    return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=2)


def make_case(method="maxent", hypercubes="maxent", num_hypercubes=3,
              num_samples=32, cube=16):
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes=hypercubes,
            method=method,
            num_hypercubes=num_hypercubes,
            num_samples=num_samples,
            num_clusters=5,
            nxsl=cube, nysl=cube, nzsl=cube,
        ),
        train=TrainConfig(arch="mlp_transformer"),
    )


def stats(n_cubes=20, bins=16, rng=0):
    """Synthetic gathered phase-1 statistics."""
    r = np.random.default_rng(rng)
    summaries = r.normal(size=(n_cubes, 4))
    histograms = r.random((n_cubes, bins))
    histograms /= histograms.sum(axis=1, keepdims=True)
    return summaries, histograms


class TestRegistry:
    def test_builtins_registered(self):
        assert {"maxent", "random", "entropy"} <= set(available_selectors())

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown selector"):
            get_selector("psychic")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_selector("maxent")
            class Dup(CubeSelector):
                def select_cubes(self, summaries, histograms, n, num_clusters, rng):
                    return np.arange(n)

    def test_non_subclass_rejected(self):
        with pytest.raises(TypeError):
            register_selector("notacube")(object)

    def test_default_cost(self):
        class Plain(CubeSelector):
            def select_cubes(self, summaries, histograms, n, num_clusters, rng):
                return np.arange(n)

        assert Plain().cost_per_point == 1.0


class TestBuiltinSelectors:
    @pytest.mark.parametrize("name", ["maxent", "random", "entropy"])
    def test_sorted_unique_in_range(self, name):
        s, h = stats()
        sel = get_selector(name)
        idx = sel.select(s, h, 6, num_clusters=4, rng=0)
        assert idx.shape == (6,)
        assert np.all(np.diff(idx) > 0)
        assert idx.min() >= 0 and idx.max() < s.shape[0]

    def test_validation_errors(self):
        s, h = stats()
        sel = get_selector("random")
        with pytest.raises(ValueError, match="n must be"):
            sel.select(s, h, 0)
        with pytest.raises(ValueError, match="n must be"):
            sel.select(s, h, s.shape[0] + 1)
        with pytest.raises(ValueError, match="disagree"):
            sel.select(s, h[:-1], 3)
        with pytest.raises(ValueError, match="non-finite"):
            bad = s.copy()
            bad[0, 0] = np.nan
            sel.select(bad, h, 3)
        with pytest.raises(ValueError, match="no candidate"):
            sel.select(s[:0], h[:0], 1)

    def test_entropy_prefers_high_entropy_cubes(self):
        """The entropy selector is genuinely distinct: it keeps cubes with
        broad per-cube histograms and suppresses near-constant ones."""
        bins, n_cubes = 16, 20
        histograms = np.zeros((n_cubes, bins))
        histograms[:, 0] = 1.0                    # 15 delta (zero-entropy) cubes
        rich = [2, 5, 9, 13, 17]
        histograms[rich] = 1.0 / bins             # 5 maximum-entropy cubes
        summaries = np.zeros((n_cubes, 4))
        sel = get_selector("entropy")
        idx = sel.select(summaries, histograms, 5, rng=0)
        assert set(idx.tolist()) == set(rich)

    def test_entropy_runs_through_pipeline(self, sst):
        """`hypercubes: entropy` is a real registered selector end to end
        (previously it validated in config but silently ran the maxent path)."""
        cfg = make_case(hypercubes="entropy")
        res = subsample(sst, cfg, nranks=2, seed=0)
        assert res.points is not None and len(res.points) == 3 * 32
        assert res.meta["hypercubes"] == "entropy"

    def test_entropy_selector_differs_from_maxent_weights(self):
        """On stats where histogram entropy and cluster KL structure disagree,
        entropy and maxent must not collapse to the same policy."""
        bins, n_cubes = 16, 24
        r = np.random.default_rng(42)
        summaries = r.normal(size=(n_cubes, 4))
        histograms = np.zeros((n_cubes, bins))
        histograms[:, 0] = 1.0
        rich = np.arange(4)
        histograms[rich] = 1.0 / bins
        ent_pick = get_selector("entropy").select(
            summaries, histograms, 4, num_clusters=4, rng=np.random.default_rng(0))
        max_pick = get_selector("maxent").select(
            summaries, histograms, 4, num_clusters=4, rng=np.random.default_rng(0))
        assert set(ent_pick.tolist()) == set(rich.tolist())
        # maxent spreads mass across KL-derived clusters, so (with these
        # degenerate histograms) it cannot reproduce the pure-entropy pick.
        assert set(max_pick.tolist()) != set(ent_pick.tolist())


class TestThirdPartyPlugins:
    def test_custom_selector_through_pipeline(self, sst):
        @register_selector("first-cubes-test")
        class FirstCubes(CubeSelector):
            def select_cubes(self, summaries, histograms, n, num_clusters, rng):
                return np.arange(n)

        try:
            cfg = make_case(hypercubes="first-cubes-test")
            res = subsample(sst, cfg, nranks=2, seed=0)
            assert res.selected_cube_ids.tolist() == [0, 1, 2]
        finally:
            selector_mod._REGISTRY.pop("first-cubes-test", None)

    def test_custom_sampler_through_pipeline(self, sst):
        """Regression: a registered sampler absent from any cost table used to
        crash run_subsample with KeyError; cost now lives on the class."""

        @register_sampler("take-first-test")
        class TakeFirst(Sampler):
            # deliberately NOT setting cost_per_point: the default must hold
            def select(self, features, n, rng):
                return np.arange(n)

        try:
            cfg = make_case(method="take-first-test")
            res = subsample(sst, cfg, nranks=2, seed=0)
            assert res.points is not None
            assert len(res.points) == 3 * 32
            assert res.meta["method"] == "take-first-test"
            assert TakeFirst().cost_per_point == 1.0
        finally:
            sampler_base._REGISTRY.pop("take-first-test", None)

    def test_builtin_sampler_costs_on_classes(self):
        from repro.sampling import (
            LatinHypercubeSampler,
            MaxEntSampler,
            RandomSampler,
            StratifiedSampler,
            UIPSSampler,
        )

        assert RandomSampler.cost_per_point == 1.0
        assert LatinHypercubeSampler.cost_per_point == 4.0
        assert StratifiedSampler.cost_per_point == 8.0
        assert UIPSSampler.cost_per_point == 6.0
        assert MaxEntSampler.cost_per_point == 10.0
