"""Tests for the four dataset generators and FlowField."""

import numpy as np
import pytest

from repro.sim import (
    FlowField,
    generate_combustion,
    generate_cylinder,
    generate_isotropic,
    generate_stratified,
)
from repro.sim.cylinder import CylinderConfig


class TestFlowField:
    def test_basic_access(self):
        f = FlowField({"u": np.ones((4, 4))}, time=1.5)
        assert f.grid_shape == (4, 4)
        assert f.ndim == 2
        assert f.n_points == 16
        assert f["u"].sum() == 16

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FlowField({"u": np.ones((4, 4)), "v": np.ones((5, 4))})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FlowField({})

    def test_unknown_variable(self):
        f = FlowField({"u": np.ones((4, 4))})
        with pytest.raises(KeyError):
            f.get("zeta")

    def test_derived_wz_cached(self):
        rng = np.random.default_rng(0)
        f = FlowField({"u": rng.random((8, 8)), "v": rng.random((8, 8))})
        a = f.get("wz")
        b = f.get("wz")
        assert a is b

    def test_derived_requires_inputs(self):
        f = FlowField({"p": np.ones((4, 4))})
        with pytest.raises(KeyError):
            f.get("wz")

    def test_point_table(self):
        f = FlowField({"u": np.arange(4.0).reshape(2, 2), "v": np.ones((2, 2))})
        table = f.point_table(["u", "v"])
        assert table.shape == (4, 2)
        assert table[:, 0].tolist() == [0, 1, 2, 3]

    def test_contains(self):
        f = FlowField({"u": np.ones((4, 4)), "v": np.ones((4, 4))})
        assert "u" in f and "wz" in f and "nope" not in f


class TestIsotropic:
    def test_variables_present(self):
        f = generate_isotropic(shape=(16, 16, 16), spinup_steps=5, rng=0)
        for name in ("u", "v", "w", "p", "e", "enstrophy"):
            assert name in f.variables

    def test_statistically_isotropic(self):
        """Component energies agree within tens of percent (no special axis)."""
        f = generate_isotropic(shape=(24, 24, 24), spinup_steps=20, rng=1)
        energies = [float(np.mean(f[c] ** 2)) for c in ("u", "v", "w")]
        assert max(energies) / min(energies) < 2.0

    def test_skip_solve_path(self):
        f = generate_isotropic(shape=(16, 16, 16), spinup_steps=0, rng=2)
        assert f["u"].shape == (16, 16, 16)
        assert np.all(f["e"] >= 0)


class TestStratified:
    def test_snapshot_sequence(self):
        snaps = generate_stratified(shape=(16, 16, 16), n_snapshots=3, steps_per_snapshot=5, rng=0)
        assert len(snaps) == 3
        times = [s.time for s in snaps]
        assert times == sorted(times)
        for s in snaps:
            for name in ("u", "v", "w", "r", "p"):
                assert name in s.variables

    def test_anisotropic(self):
        """Stratified fields must be anisotropic: vertical motion suppressed."""
        snaps = generate_stratified(
            shape=(16, 16, 16), n_snapshots=4, steps_per_snapshot=15, n_buoyancy=4.0, rng=1
        )
        last = snaps[-1]
        horizontal = float(np.mean(last["u"] ** 2 + last["v"] ** 2)) / 2.0
        vertical = float(np.mean(last["w"] ** 2))
        assert vertical < horizontal

    def test_pv_derivable(self):
        snaps = generate_stratified(shape=(16, 16, 16), n_snapshots=1, rng=2)
        pv = snaps[0].get("pv")
        assert pv.shape == (16, 16, 16)
        assert np.all(np.isfinite(pv))

    def test_bad_snapshot_count(self):
        with pytest.raises(ValueError):
            generate_stratified(n_snapshots=0)


class TestCylinder:
    def test_snapshots_and_drag(self):
        snaps, drag = generate_cylinder(CylinderConfig(nx=40, ny=30), n_snapshots=10, rng=0)
        assert len(snaps) == 10
        assert drag.shape == (10,)
        for s in snaps:
            for name in ("u", "v", "p", "wz"):
                assert name in s.variables

    def test_interior_masked(self):
        cfg = CylinderConfig(nx=60, ny=45)
        snaps, _ = generate_cylinder(cfg, n_snapshots=1, rng=0)
        x = np.linspace(*cfg.x_range, cfg.nx)
        y = np.linspace(*cfg.y_range, cfg.ny)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        inside = xx**2 + yy**2 <= cfg.radius**2
        assert inside.any()
        assert np.all(snaps[0]["u"][inside] == 0)

    def test_wake_confined_downstream(self):
        """Vorticity concentrates behind the cylinder, not upstream."""
        cfg = CylinderConfig(nx=80, ny=60)
        snaps, _ = generate_cylinder(cfg, n_snapshots=30, rng=0)
        wz = np.abs(snaps[-1]["wz"])
        x = np.linspace(*cfg.x_range, cfg.nx)
        upstream = wz[x < -1.0, :].sum()
        downstream = wz[x > 1.0, :].sum()
        assert downstream > 10 * max(upstream, 1e-12)

    def test_drag_oscillates_at_double_shedding_frequency(self):
        cfg = CylinderConfig()
        snaps, drag = generate_cylinder(cfg, n_snapshots=200, rng=0)
        dt = snaps[1].time - snaps[0].time
        spec = np.abs(np.fft.rfft(drag - drag.mean()))
        freqs = np.fft.rfftfreq(len(drag), d=dt)
        f_peak = freqs[np.argmax(spec)]
        assert f_peak == pytest.approx(2.0 / cfg.shedding_period, rel=0.1)

    def test_free_stream_recovered_far_away(self):
        cfg = CylinderConfig(nx=60, ny=45)
        snaps, _ = generate_cylinder(cfg, n_snapshots=1, rng=0)
        # Upstream far corner should be close to (u_inf, 0).
        assert snaps[0]["u"][0, 0] == pytest.approx(cfg.u_inf, abs=0.2)
        assert snaps[0]["v"][0, 0] == pytest.approx(0.0, abs=0.2)

    def test_bad_config(self):
        with pytest.raises(ValueError):
            CylinderConfig(nx=2)
        with pytest.raises(ValueError):
            CylinderConfig(radius=-1.0)


class TestCombustion:
    def test_progress_variable_bounded(self):
        f = generate_combustion(shape=(64, 64), rng=0)
        c = f["c"]
        assert c.min() >= 0.0 and c.max() <= 1.0

    def test_bimodal_pdf(self):
        """Most mass near 0 and 1; the front interior is rare."""
        f = generate_combustion(shape=(128, 128), rng=1)
        c = f["c"].ravel()
        extremes = ((c < 0.1) | (c > 0.9)).mean()
        assert extremes > 0.7

    def test_variance_peaks_on_front(self):
        f = generate_combustion(shape=(128, 128), rng=2)
        c, cv = f["c"], f["c_var"]
        front = (c > 0.4) & (c < 0.6)
        if front.any():
            assert cv[front].mean() > 5 * cv[~front].mean()

    def test_variance_nonnegative(self):
        f = generate_combustion(shape=(64, 64), rng=3)
        assert np.all(f["c_var"] >= 0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            generate_combustion(shape=(8, 8, 8))  # type: ignore[arg-type]
