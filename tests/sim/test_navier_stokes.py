"""Physics tests for the pseudo-spectral NS solver."""

import numpy as np
import pytest

from repro.sim.navier_stokes import NSConfig, SpectralNS3D
from repro.sim.spectral import solenoidal_random_field
from repro.sim.stratified import taylor_green_velocity

SHAPE = (16, 16, 16)


class TestConfig:
    def test_defaults(self):
        cfg = NSConfig()
        assert cfg.kappa == cfg.nu  # Pr = 1 default

    def test_odd_grid_rejected(self):
        with pytest.raises(ValueError):
            NSConfig(shape=(15, 16, 16))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            NSConfig(nu=0.0)
        with pytest.raises(ValueError):
            NSConfig(dt=-1.0)
        with pytest.raises(ValueError):
            NSConfig(gravity="q")


class TestSolverInvariants:
    def test_stays_divergence_free(self):
        solver = SpectralNS3D(NSConfig(shape=SHAPE, nu=5e-3, dt=2e-3), rng=0)
        solver.step(10)
        assert solver.max_divergence() < 1e-10

    def test_unforced_energy_decays(self):
        solver = SpectralNS3D(NSConfig(shape=SHAPE, nu=2e-2, dt=2e-3), rng=1)
        e0 = solver.kinetic_energy()
        solver.step(20)
        assert solver.kinetic_energy() < e0

    def test_pure_viscous_decay_rate(self):
        """A single Fourier mode decays like exp(-2 nu k^2 t) in energy."""
        n = 16
        y = np.linspace(0, 2 * np.pi, n, endpoint=False)
        u = np.broadcast_to(np.sin(y)[None, :, None], (n, n, n)).copy()
        zero = np.zeros((n, n, n))
        nu, dt, steps = 0.05, 1e-3, 100
        solver = SpectralNS3D(NSConfig(shape=(n, n, n), nu=nu, dt=dt), velocity=(u, zero, zero.copy()))
        e0 = solver.kinetic_energy()
        solver.step(steps)
        expected = e0 * np.exp(-2.0 * nu * 1.0 * dt * steps)  # k^2 = 1
        assert solver.kinetic_energy() == pytest.approx(expected, rel=1e-3)

    def test_forcing_holds_energy(self):
        solver = SpectralNS3D(
            NSConfig(shape=SHAPE, nu=8e-3, dt=2e-3, forcing_kmax=2.0), rng=2
        )
        e0 = solver.kinetic_energy()
        solver.step(30)
        assert solver.kinetic_energy() == pytest.approx(e0, rel=0.35)

    def test_nonlinear_transfer_fills_small_scales(self):
        """Starting from a large-scale TG flow, energy must cascade to k > k0."""
        from repro.sim.spectral import radial_energy_spectrum

        u, v, w = taylor_green_velocity(SHAPE, k0=2)
        solver = SpectralNS3D(NSConfig(shape=SHAPE, nu=5e-3, dt=2.5e-3), velocity=(u, v, w))
        _, spec0 = radial_energy_spectrum(*solver.velocity())
        high0 = spec0[6:].sum()
        solver.step(40)
        _, spec1 = radial_energy_spectrum(*solver.velocity())
        assert spec1[6:].sum() > max(high0, 1e-12) * 10

    def test_time_advances(self):
        solver = SpectralNS3D(NSConfig(shape=SHAPE, dt=1e-3), rng=3)
        solver.step(5)
        assert solver.t == pytest.approx(5e-3)
        assert solver.step_count == 5

    def test_cfl_reported(self):
        solver = SpectralNS3D(NSConfig(shape=SHAPE, dt=1e-3), rng=4)
        assert 0 < solver.cfl() < 1.0


class TestStratified:
    def test_buoyancy_suppresses_vertical_velocity(self):
        """Strong stratification must damp w relative to the unstratified run."""
        u0, v0, w0 = solenoidal_random_field(SHAPE, rng=5)
        runs = {}
        for n_bv in (0.0, 4.0):
            solver = SpectralNS3D(
                NSConfig(shape=SHAPE, nu=5e-3, dt=2e-3, n_buoyancy=n_bv, gravity="z"),
                velocity=(u0.copy(), v0.copy(), w0.copy()),
            )
            solver.step(60)
            _, _, w = solver.velocity()
            runs[n_bv] = float(np.mean(w**2))
        assert runs[4.0] < runs[0.0]

    def test_buoyancy_field_develops(self):
        solver = SpectralNS3D(
            NSConfig(shape=SHAPE, nu=5e-3, dt=2e-3, n_buoyancy=2.0), rng=6
        )
        assert np.allclose(solver.buoyancy(), 0.0)
        solver.step(10)
        assert solver.buoyancy().std() > 0

    def test_gravity_axis_respected(self):
        u0, v0, w0 = solenoidal_random_field(SHAPE, rng=7)
        sol = SpectralNS3D(
            NSConfig(shape=SHAPE, nu=5e-3, dt=2e-3, n_buoyancy=4.0, gravity="x"),
            velocity=(u0.copy(), v0.copy(), w0.copy()),
        )
        sol.step(60)
        u, v, w = sol.velocity()
        # The damped component is u (gravity along x), not w.
        assert np.mean(u**2) < np.mean(w**2) * 1.5


class TestPressure:
    def test_pressure_zero_mean(self):
        solver = SpectralNS3D(NSConfig(shape=SHAPE), rng=8)
        solver.step(5)
        assert abs(solver.pressure().mean()) < 1e-12

    def test_pressure_matches_taylor_green_analytic(self):
        """For 2-D TG flow u = cos x sin y, v = -sin x cos y the exact
        incompressible pressure is p = -(cos 2x + cos 2y)/4."""
        n = 32
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)[:, None, None]
        y = np.linspace(0, 2 * np.pi, n, endpoint=False)[None, :, None]
        shape = (n, n, n)
        u = np.broadcast_to(np.cos(x) * np.sin(y), shape).copy()
        v = np.broadcast_to(-np.sin(x) * np.cos(y), shape).copy()
        w = np.zeros(shape)
        solver = SpectralNS3D(NSConfig(shape=shape), velocity=(u, v, w))
        p = solver.pressure()
        expected = np.broadcast_to(-(np.cos(2 * x) + np.cos(2 * y)) / 4.0, shape)
        assert np.allclose(p, expected - expected.mean(), atol=1e-10)

    def test_bad_velocity_shape_rejected(self):
        with pytest.raises(ValueError):
            SpectralNS3D(NSConfig(shape=SHAPE), velocity=tuple(np.zeros((8, 8, 8)) for _ in range(3)))
