"""Tests for spectral utilities."""

import numpy as np
import pytest

from repro.sim.spectral import (
    dissipation_rate,
    divergence,
    enstrophy,
    radial_energy_spectrum,
    solenoidal_random_field,
    spectral_gradient,
    von_karman_spectrum,
    vorticity,
    wavenumber_grid,
    wavenumber_magnitude,
)

SHAPE = (16, 16, 16)


class TestWavenumbers:
    def test_grid_shapes_broadcast(self):
        ks = wavenumber_grid(SHAPE)
        assert ks[0].shape == (16, 1, 1)
        assert ks[1].shape == (1, 16, 1)
        assert ks[2].shape == (1, 1, 9)  # rfft layout

    def test_magnitude_zero_at_origin(self):
        kmag = wavenumber_magnitude(SHAPE)
        assert kmag[0, 0, 0] == 0.0
        assert kmag.max() > 8

    def test_full_layout(self):
        ks = wavenumber_grid((8, 8), real=False)
        assert ks[1].shape == (1, 8)


class TestVonKarman:
    def test_peak_near_k_peak(self):
        k = np.linspace(0.1, 40, 400)
        spec = von_karman_spectrum(k, k_peak=4.0)
        assert 2.0 < k[np.argmax(spec)] < 8.0

    def test_inertial_range_slope(self):
        """Far above the peak the log-slope approaches -5/3."""
        k = np.array([40.0, 80.0])
        spec = von_karman_spectrum(k, k_peak=2.0)
        slope = np.log(spec[1] / spec[0]) / np.log(2.0)
        assert slope == pytest.approx(-5.0 / 3.0, abs=0.05)

    def test_cutoff_suppresses_high_k(self):
        with_cut = von_karman_spectrum(np.array([20.0]), k_peak=4.0, k_eta=8.0)
        without = von_karman_spectrum(np.array([20.0]), k_peak=4.0)
        assert with_cut < 1e-3 * without

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            von_karman_spectrum(np.array([1.0]), k_peak=0.0)
        with pytest.raises(ValueError):
            von_karman_spectrum(np.array([1.0]), k_eta=-1.0)


class TestSolenoidalField:
    def test_divergence_free(self):
        u, v, w = solenoidal_random_field(SHAPE, rng=0)
        div = divergence(u, v, w)
        assert np.abs(div).max() < 1e-10 * max(1.0, np.abs(u).max())

    def test_unit_rms(self):
        u, v, w = solenoidal_random_field(SHAPE, rng=1)
        rms = np.sqrt(np.mean(u**2 + v**2 + w**2))
        assert rms == pytest.approx(1.0)

    def test_spectrum_matches_target(self):
        u, v, w = solenoidal_random_field((32, 32, 32), k_peak=4.0, rng=2)
        k, spec = radial_energy_spectrum(u, v, w)
        # Spectral peak lands near k_peak.
        k_at_max = k[1:][np.argmax(spec[1:])]
        assert 2.0 <= k_at_max <= 7.0

    def test_anisotropy_suppresses_component(self):
        # The Leray projection couples components, so the requested 0.2 ratio
        # is diluted — but the vertical component must still be clearly weaker.
        u, v, w = solenoidal_random_field(SHAPE, anisotropy=(1.0, 1.0, 0.2), rng=3)
        assert w.std() < 0.7 * u.std()

    def test_deterministic(self):
        a = solenoidal_random_field(SHAPE, rng=5)
        b = solenoidal_random_field(SHAPE, rng=5)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            solenoidal_random_field((16, 16))  # type: ignore[arg-type]


class TestRadialSpectrum:
    def test_single_mode_lands_in_right_shell(self):
        n = 16
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        field = np.sin(3 * x)[:, None, None] * np.ones((1, n, n))
        k, spec = radial_energy_spectrum(field)
        assert np.argmax(spec) == 3

    def test_parseval(self):
        """Total spectral energy equals mean physical kinetic energy."""
        rng = np.random.default_rng(6)
        u = rng.standard_normal(SHAPE)
        k, spec = radial_energy_spectrum(u)
        assert spec.sum() == pytest.approx(0.5 * np.mean(u**2), rel=1e-10)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            radial_energy_spectrum(np.zeros((4, 4, 4)), np.zeros((8, 8, 8)))


class TestDerivatives:
    def test_gradient_of_sine(self):
        n = 32
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        field = np.sin(2 * x)[:, None, None] * np.ones((1, n, n))
        grad = spectral_gradient(field, 0)
        expected = 2 * np.cos(2 * x)[:, None, None] * np.ones((1, n, n))
        assert np.allclose(grad, expected, atol=1e-10)

    def test_vorticity_of_solid_rotation_mode(self):
        """u = (sin y, 0, 0) has w_z = -cos y."""
        n = 32
        y = np.linspace(0, 2 * np.pi, n, endpoint=False)
        u = np.broadcast_to(np.sin(y)[None, :, None], (n, n, n)).copy()
        v = np.zeros((n, n, n))
        w = np.zeros((n, n, n))
        _, _, wz = vorticity(u, v, w)
        assert np.allclose(wz, -np.cos(y)[None, :, None], atol=1e-10)

    def test_vorticity_2d(self):
        n = 32
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        v = np.broadcast_to(np.sin(x)[:, None], (n, n)).copy()
        (wz,) = vorticity(np.zeros((n, n)), v)
        assert np.allclose(wz, np.cos(x)[:, None], atol=1e-10)

    def test_dissipation_positive(self):
        u, v, w = solenoidal_random_field(SHAPE, rng=7)
        eps = dissipation_rate(u, v, w, nu=0.01)
        assert np.all(eps >= 0)
        assert eps.mean() > 0

    def test_enstrophy_nonnegative(self):
        u, v, w = solenoidal_random_field(SHAPE, rng=8)
        assert np.all(enstrophy(u, v, w) >= 0)
