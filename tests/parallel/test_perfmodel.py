"""Tests for the LogGP performance model and virtual clocks."""

import math

import pytest

from repro.parallel.perfmodel import CommStats, PerfModel, VirtualClock


class TestPerfModel:
    def test_compute_time_linear(self):
        m = PerfModel(compute_rate=1e6)
        assert m.compute_time(2e6) == pytest.approx(2.0)
        assert m.compute_time(0) == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            PerfModel().compute_time(-1)

    def test_p2p_latency_plus_bandwidth(self):
        m = PerfModel(alpha=1e-6, beta=1e-9)
        assert m.p2p_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_collective_single_rank_free(self):
        assert PerfModel().collective_time("allreduce", 1000, 1) == 0.0

    def test_collective_log_scaling(self):
        m = PerfModel(alpha=1e-6, beta=0.0)
        t4 = m.collective_time("bcast", 0, 4)
        t16 = m.collective_time("bcast", 0, 16)
        assert t16 == pytest.approx(2 * t4)  # log2(16)=4 vs log2(4)=2

    def test_alltoall_linear_in_p(self):
        m = PerfModel(alpha=1e-6, beta=0.0)
        assert m.collective_time("alltoall", 0, 9) == pytest.approx(8e-6)

    def test_allreduce_twice_bcast(self):
        m = PerfModel(alpha=1e-6, beta=1e-9)
        assert m.collective_time("allreduce", 64, 8) == pytest.approx(
            2 * m.collective_time("bcast", 64, 8)
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            PerfModel().collective_time("gossip", 0, 4)

    def test_imbalance_slows_collectives(self):
        fast = PerfModel(imbalance=0.0)
        slow = PerfModel(imbalance=0.2)
        assert slow.collective_time("barrier", 0, 64) > fast.collective_time("barrier", 0, 64)

    def test_rounds_are_ceil_log2(self):
        m = PerfModel(alpha=1.0, beta=0.0)
        assert m.collective_time("barrier", 0, 5) == pytest.approx(math.ceil(math.log2(5)))


class TestVirtualClock:
    def test_add_compute(self):
        c = VirtualClock(model=PerfModel(compute_rate=100.0))
        c.add_compute(50.0)
        assert c.t == pytest.approx(0.5)
        assert c.stats.compute_work == 50.0

    def test_sync_to_takes_max(self):
        c = VirtualClock(model=PerfModel(alpha=0.0, beta=0.0))
        c.add_compute(0)
        c.sync_to(7.0, "barrier", 0, 4)
        assert c.t >= 7.0
        assert c.stats.barriers == 1

    def test_p2p_counts(self):
        c = VirtualClock()
        c.add_p2p(128)
        assert c.stats.messages == 1
        assert c.stats.bytes_sent == 128
        assert c.t > 0

    def test_stats_merge(self):
        a = CommStats(messages=1, bytes_sent=10, collectives=2, barriers=3, compute_work=4.0)
        b = CommStats(messages=5, bytes_sent=6, collectives=7, barriers=8, compute_work=9.0)
        a.merge(b)
        assert (a.messages, a.bytes_sent, a.collectives, a.barriers, a.compute_work) == (6, 16, 9, 11, 13.0)
