"""Process-backend specifics the shared conformance grid cannot cover:
the shared-memory fast path, receive timeouts, hard worker deaths, and
end-to-end determinism of the pipelines against the thread backend.
"""

import glob
import os
import time

import numpy as np
import pytest

from repro.data import build_dataset
from repro.parallel import run_spmd
from repro.parallel.procomm import (
    DEFAULT_SHM_THRESHOLD,
    _dispose,
    _pack,
    _unpack,
    run_process_spmd,
)
from repro.sampling import subsample
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


def _shm_segments() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


class TestShmTransport:
    def test_small_payload_stays_inline(self):
        data, shm_name, spans = _pack(np.arange(10, dtype=np.float64), 1024)
        assert shm_name is None and spans == []
        assert np.array_equal(_unpack((data, shm_name, spans)), np.arange(10.0))

    def test_large_payload_goes_out_of_band(self):
        arr = np.arange(100_000, dtype=np.float64)
        before = _shm_segments()
        packed = _pack(arr, 1024)
        data, shm_name, spans = packed
        assert shm_name is not None
        assert sum(size for _, size in spans) >= arr.nbytes
        assert len(data) < arr.nbytes  # pickle stream itself is tiny
        out = _unpack(packed)
        assert np.array_equal(out, arr)
        # Attach/unlink balanced: nothing new left in /dev/shm.
        assert _shm_segments() == before

    def test_unpacked_arrays_are_private_and_writable(self):
        arr = np.ones(50_000, dtype=np.float64)
        a = _unpack(_pack(arr, 1024))
        b = _unpack(_pack(arr, 1024))
        a += 5.0  # value semantics: no view into shared state
        assert a[0] == 6.0 and b[0] == 1.0 and arr[0] == 1.0

    def test_mixed_container_roundtrip(self):
        obj = {"big": np.zeros((300, 300)), "small": np.arange(3), "s": "x"}
        out = _unpack(_pack(obj, 1024))
        assert np.array_equal(out["big"], obj["big"])
        assert np.array_equal(out["small"], obj["small"])
        assert out["s"] == "x"

    def test_dispose_unlinks_unconsumed_segment(self):
        before = _shm_segments()
        packed = _pack(np.zeros(100_000), 1024)
        assert packed[1] is not None
        _dispose(packed)
        assert _shm_segments() == before

    def test_collective_with_shm_sized_payload(self):
        """End-to-end: arrays above the threshold cross ranks intact."""

        def prog(comm):
            big = np.full(50_000, float(comm.rank))  # 400 KB > threshold
            got = comm.allgather(big)
            return [float(g[0]) for g in got]

        assert 50_000 * 8 > DEFAULT_SHM_THRESHOLD
        before = _shm_segments()
        res = run_spmd(prog, 2, backend="process")
        assert res.values == [[0.0, 1.0], [0.0, 1.0]]
        assert _shm_segments() == before


class TestTimeouts:
    def test_dead_worker_raises_instead_of_hanging(self):
        """A hard-killed worker must surface as an error on peers, fast."""

        def prog(comm):
            if comm.rank == 1:
                os._exit(17)  # no exception, no teardown: a real crash
            comm.barrier()
            return "ok"

        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(prog, 2, backend="process")
        assert time.monotonic() - t0 < 30.0
        # The originating cause names the death, not a secondary error.
        try:
            run_spmd(prog, 2, backend="process")
        except RuntimeError as exc:
            assert "died unexpectedly" in str(exc.__cause__)
            assert "exitcode 17" in str(exc.__cause__)

    def test_recv_timeout_fires(self):
        """With a timeout set, a never-arriving message raises, not hangs."""

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=9)  # rank 1 never sends
            time.sleep(60)

        t0 = time.monotonic()
        with pytest.raises(RuntimeError):
            run_spmd(prog, 2, backend="process", timeout=1.5)
        assert time.monotonic() - t0 < 30.0

    def test_env_var_sets_default_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROC_TIMEOUT", "1.5")

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=9)
            time.sleep(60)

        with pytest.raises(RuntimeError):
            run_process_spmd(prog, 2, (), {})

    def test_no_timeout_by_default_for_fast_programs(self):
        res = run_spmd(lambda c: c.allreduce(1), 2, backend="process")
        assert res.values == [2, 2]


def sst_case():
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes="maxent", method="maxent", num_hypercubes=6,
            num_samples=100, num_clusters=4, nxsl=8, nysl=8, nzsl=8,
        ),
        train=TrainConfig(arch="mlp_transformer", epochs=2, batch=4,
                          window=2, horizon=1),
    )


class TestPipelineDeterminism:
    """The acceptance bar: byte-identical results across backends."""

    @pytest.fixture(scope="class")
    def sst(self):
        return build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=4)

    def test_stream_subsample_byte_identical(self, sst):
        runs = {
            b: subsample(sst, sst_case(), nranks=4, seed=0, mode="stream", backend=b)
            for b in ("thread", "process")
        }
        t, p = runs["thread"], runs["process"]
        assert t.points.coords.tobytes() == p.points.coords.tobytes()
        assert np.asarray(t.points.time).tobytes() == np.asarray(p.points.time).tobytes()
        for name in t.points.values:
            assert t.points.values[name].tobytes() == p.points.values[name].tobytes()
        assert t.virtual_time == p.virtual_time

    def test_stream_subsample_with_rank_failure_byte_identical(self, sst):
        calls = {}

        def hook(rank, **ctx):
            calls[rank] = calls.get(rank, 0) + 1
            return rank == 1 and ctx.get("rows_fed", 0) > 0

        runs = {}
        for b in ("thread", "process"):
            runs[b] = subsample(
                sst, sst_case(), nranks=4, seed=0, mode="stream",
                on_rank_failure="reweight", fault_hook=hook, backend=b,
            )
        t, p = runs["thread"], runs["process"]
        assert t.meta["failed_ranks"] == p.meta["failed_ranks"] == [1]
        assert t.points.coords.tobytes() == p.points.coords.tobytes()
        for name in t.points.values:
            assert t.points.values[name].tobytes() == p.points.values[name].tobytes()

    def test_batch_subsample_byte_identical(self, sst):
        runs = {
            b: subsample(sst, sst_case(), nranks=2, seed=0, backend=b)
            for b in ("thread", "process")
        }
        t, p = runs["thread"], runs["process"]
        assert t.points.coords.tobytes() == p.points.coords.tobytes()
        for name in t.points.values:
            assert t.points.values[name].tobytes() == p.points.values[name].tobytes()
        assert t.virtual_time == p.virtual_time

    def test_ddp_train_losses_identical(self, sst):
        from repro.api import Experiment

        losses = {}
        for b in ("thread", "process"):
            exp = (
                Experiment(sst_case()).with_dataset(sst).with_seed(0)
                .with_train_ranks(2).with_backend(b).with_epochs(2)
            )
            exp.subsample().train()
            losses[b] = exp.artifacts["train"].result.train_losses
        assert np.asarray(losses["thread"]).tobytes() == \
            np.asarray(losses["process"]).tobytes()
