"""Opt-in runtime sanitizer for the parallel suite.

``REPRO_SANITIZE=1 pytest tests/parallel`` instruments the lock-owning
classes and the shared-memory transport for the whole session (see
:mod:`repro.lint.runtime`), then asserts at teardown that no guarded
attribute was touched off-lock under contention and that every shm
segment was unlinked.  Without the environment variable this conftest is
inert — the suite runs exactly as before.
"""

import pytest

from repro.lint import runtime


@pytest.fixture(scope="session", autouse=True)
def runtime_sanitizer():
    if not runtime.enabled():
        yield
        return
    runtime.install()
    try:
        yield
        runtime.check(strict=True)
    finally:
        runtime.uninstall()
