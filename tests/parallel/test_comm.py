"""Collective-semantics tests for the simulated MPI runtime.

Every collective is exercised on the serial communicator and — through one
shared parameterization — on both SPMD substrates: the threaded backend
(2-8 ranks so real interleavings occur) and the forked-process backend
(shared-memory transport).  The same programs must produce the same values,
clocks, and failure surfaces on either, which is the backend-conformance
contract ``run_spmd(backend=...)`` promises.
"""

import numpy as np
import pytest

from repro.parallel import SerialComm, run_spmd
from repro.parallel.comm import payload_nbytes

# (backend, nranks) grid shared by every conformance class below.  The
# process backend uses smaller rank counts: each case forks real workers.
BACKEND_RANKS = [
    ("thread", 2),
    ("thread", 4),
    ("thread", 7),
    ("process", 2),
    ("process", 3),
]

BACKENDS = ["thread", "process"]


class TestSerialComm:
    def test_identity_collectives(self):
        comm = SerialComm()
        assert comm.rank == 0 and comm.size == 1
        assert comm.bcast(42) == 42
        assert comm.gather("x") == ["x"]
        assert comm.allgather(3) == [3]
        assert comm.allreduce(5) == 5
        assert comm.scatter([7]) == 7
        assert comm.alltoall([1]) == [1]
        comm.barrier()

    def test_scatter_needs_exactly_one_chunk(self):
        with pytest.raises(ValueError):
            SerialComm().scatter([1, 2])

    def test_send_recv_unavailable(self):
        with pytest.raises(RuntimeError):
            SerialComm().send(1, dest=0)

    def test_reduce_ops(self):
        comm = SerialComm()
        assert comm.allreduce(np.array([1.0, 2.0]), op="max").tolist() == [1.0, 2.0]
        with pytest.raises(ValueError):
            comm.allreduce(1, op="bogus")


@pytest.mark.parametrize("backend,nranks", BACKEND_RANKS)
class TestCollectives:
    def test_bcast(self, backend, nranks):
        def prog(comm):
            data = np.arange(5) * 10 if comm.rank == 2 % comm.size else None
            return comm.bcast(data, root=2 % comm.size)

        res = run_spmd(prog, nranks, backend=backend)
        for v in res.values:
            assert np.array_equal(v, np.arange(5) * 10)

    def test_bcast_receivers_get_copies(self, backend, nranks):
        def prog(comm):
            data = np.zeros(3) if comm.rank == 0 else None
            out = comm.bcast(data, root=0)
            if comm.rank == 1:
                out += 99  # must not corrupt peers
            comm.barrier()
            return float(out.sum())

        res = run_spmd(prog, nranks, backend=backend)
        assert res.values[0] == 0.0

    def test_scatter_gather_roundtrip(self, backend, nranks):
        def prog(comm):
            chunks = [np.full(2, r) for r in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(chunks, root=0)
            assert np.all(mine == comm.rank)
            gathered = comm.gather(mine * 2, root=0)
            if comm.rank == 0:
                return [g.tolist() for g in gathered]
            assert gathered is None
            return None

        res = run_spmd(prog, nranks, backend=backend)
        assert res.values[0] == [[2 * r, 2 * r] for r in range(nranks)]

    def test_allgather(self, backend, nranks):
        res = run_spmd(lambda comm: comm.allgather(comm.rank**2), nranks,
                       backend=backend)
        expected = [r**2 for r in range(nranks)]
        assert all(v == expected for v in res.values)

    def test_allreduce_sum_array(self, backend, nranks):
        def prog(comm):
            return comm.allreduce(np.full(3, comm.rank + 1.0))

        res = run_spmd(prog, nranks, backend=backend)
        total = sum(range(1, nranks + 1))
        for v in res.values:
            assert np.allclose(v, total)

    def test_allreduce_min_max(self, backend, nranks):
        res = run_spmd(
            lambda c: (c.allreduce(c.rank, op="min"), c.allreduce(c.rank, op="max")),
            nranks, backend=backend,
        )
        assert all(v == (0, nranks - 1) for v in res.values)

    def test_reduce_root_only(self, backend, nranks):
        res = run_spmd(lambda c: c.reduce(1, op="sum", root=0), nranks,
                       backend=backend)
        assert res.values[0] == nranks
        assert all(v is None for v in res.values[1:])

    def test_alltoall(self, backend, nranks):
        def prog(comm):
            out = comm.alltoall([100 * comm.rank + dst for dst in range(comm.size)])
            return out

        res = run_spmd(prog, nranks, backend=backend)
        for dst, received in enumerate(res.values):
            assert received == [100 * src + dst for src in range(nranks)]

    def test_send_recv_ring(self, backend, nranks):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([comm.rank]), dest=right, tag=5)
            got = comm.recv(source=left, tag=5)
            return int(got[0])

        res = run_spmd(prog, nranks, backend=backend)
        assert res.values == [(r - 1) % nranks for r in range(nranks)]

    def test_sequential_collectives_do_not_cross(self, backend, nranks):
        """Values from one collective must never bleed into the next."""

        def prog(comm):
            a = comm.allgather(("first", comm.rank))
            b = comm.allgather(("second", comm.rank))
            return a[0][0], b[0][0]

        res = run_spmd(prog, nranks, backend=backend)
        assert all(v == ("first", "second") for v in res.values)

    def test_empty_partition_rank(self, backend, nranks):
        """Ranks whose block partition is empty still join every collective."""

        def prog(comm):
            from repro.parallel.partition import block_bounds

            lo, hi = block_bounds(1, comm.size, comm.rank)  # 1 item, n ranks
            local = np.arange(lo, hi, dtype=np.float64)  # empty on most ranks
            total = comm.allreduce(float(local.sum()), op="sum")
            counts = comm.allgather(len(local))
            return total, counts

        res = run_spmd(prog, nranks, backend=backend)
        for total, counts in res.values:
            assert total == 0.0
            assert sum(counts) == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestErrorPropagation:
    def test_rank_failure_propagates(self, backend):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            run_spmd(prog, 3, backend=backend)

    def test_bad_root_rejected(self, backend):
        with pytest.raises(RuntimeError):
            run_spmd(lambda c: c.bcast(1, root=99), 2, backend=backend)

    def test_scatter_wrong_chunk_count(self, backend):
        def prog(comm):
            chunks = [1] if comm.rank == 0 else None
            return comm.scatter(chunks, root=0)

        with pytest.raises(RuntimeError):
            run_spmd(prog, 3, backend=backend)


@pytest.mark.parametrize("backend", BACKENDS)
class TestVirtualTime:
    """The virtual-time model is computed identically on both substrates."""

    def test_compute_advances_clock(self, backend):
        def prog(comm):
            comm.account_compute(2.0e6)
            return comm.clock.t

        res = run_spmd(prog, 2, backend=backend)
        assert all(t == pytest.approx(1.0) for t in res.values)  # 2e6 work / 2e6 rate

    def test_collective_synchronizes_clocks(self, backend):
        def prog(comm):
            comm.account_compute(1.0e6 * (comm.rank + 1))  # rank 1 is slower
            comm.barrier()
            return comm.clock.t

        res = run_spmd(prog, 2, backend=backend)
        # Both ranks end at >= the slow rank's arrival time.
        assert min(res.values) >= 1.0
        assert res.values[0] == pytest.approx(res.values[1])

    def test_virtual_makespan(self, backend):
        res = run_spmd(lambda c: c.account_compute(4.0e6), 2, backend=backend)
        assert res.virtual_time == pytest.approx(2.0)

    def test_stats_counted(self, backend):
        def prog(comm):
            comm.barrier()
            comm.allreduce(1.0)
            return comm.clock.stats

        res = run_spmd(prog, 2, backend=backend)
        for stats in res.values:
            assert stats.barriers == 1
            assert stats.collectives == 1


class TestBackendParity:
    """Thread and process runs of one program agree bit-for-bit."""

    def test_clocks_and_comm_stats_identical(self):
        def prog(comm):
            comm.account_compute(1.0e6 * (comm.rank + 1))
            comm.bcast(np.arange(1000, dtype=np.float64), root=0)
            comm.allreduce(np.full(200, comm.rank + 0.5), op="sum")
            comm.alltoall([np.full(3, comm.rank * 10 + d) for d in range(comm.size)])
            comm.barrier()
            return comm.clock.t, comm.clock.stats

        a = run_spmd(prog, 3, backend="thread")
        b = run_spmd(prog, 3, backend="process")
        for (ta, sa), (tb, sb) in zip(a.values, b.values):
            assert ta == tb  # exact, not approx: same float ops in same order
            assert sa.collectives == sb.collectives
            assert sa.barriers == sb.barriers
            assert sa.bytes_sent == sb.bytes_sent
        assert a.virtual_time == b.virtual_time

    def test_payload_accounting_identical(self):
        """payload_nbytes drives the clock the same way on both backends."""

        def prog(comm):
            comm.gather(np.zeros(50 * (comm.rank + 1)), root=0)
            return comm.clock.stats.bytes_sent

        a = run_spmd(prog, 4, backend="thread")
        b = run_spmd(prog, 4, backend="process")
        assert a.values == b.values


class TestPayloadNbytes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_scalars_and_containers(self):
        assert payload_nbytes(1) == 8
        assert payload_nbytes("ab") == 2
        assert payload_nbytes([1, 2]) == 16
        assert payload_nbytes({"a": 1}) == 9
        assert payload_nbytes(None) == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestFaultHook:
    """Fault injection through run_spmd and Communicator.maybe_fail."""

    def test_hook_kills_named_rank(self, backend):
        from repro.parallel import RankFailure

        def prog(comm):
            try:
                comm.maybe_fail(step=7)
            except RankFailure as exc:
                return f"died: {exc}"
            return "alive"

        res = run_spmd(prog, 3, fault_hook=lambda rank, step: rank == 1,
                       backend=backend)
        assert res.values[0] == "alive" and res.values[2] == "alive"
        assert res.values[1].startswith("died: rank 1 killed by fault hook")
        assert "'step': 7" in res.values[1]

    def test_uncaught_failure_propagates_like_any_rank_error(self, backend):
        from repro.parallel import RankFailure

        def prog(comm):
            comm.maybe_fail()
            return "alive"

        with pytest.raises(RuntimeError, match="rank 1 failed") as excinfo:
            run_spmd(prog, 2, fault_hook=lambda rank: rank == 1, backend=backend)
        assert isinstance(excinfo.value.__cause__, RankFailure)

    def test_no_hook_is_noop(self, backend):
        res = run_spmd(lambda c: c.maybe_fail(step=1) or "ok", 2, backend=backend)
        assert res.values == ["ok", "ok"]

    def test_serial_comm_never_injects(self, backend):
        comm = SerialComm()
        assert comm.maybe_fail(step=0) is None
        # run_spmd(nranks=1) ignores the hook: no peer survives a serial kill.
        res = run_spmd(lambda c: c.maybe_fail() or "ok", 1,
                       fault_hook=lambda rank: True, backend=backend)
        assert res.values == ["ok"]
