"""Collective-semantics tests for the simulated MPI runtime.

Every collective is exercised on both the serial and the threaded
communicator; threaded runs use 2-8 ranks so real interleavings occur.
"""

import numpy as np
import pytest

from repro.parallel import SerialComm, run_spmd
from repro.parallel.comm import payload_nbytes


class TestSerialComm:
    def test_identity_collectives(self):
        comm = SerialComm()
        assert comm.rank == 0 and comm.size == 1
        assert comm.bcast(42) == 42
        assert comm.gather("x") == ["x"]
        assert comm.allgather(3) == [3]
        assert comm.allreduce(5) == 5
        assert comm.scatter([7]) == 7
        assert comm.alltoall([1]) == [1]
        comm.barrier()

    def test_scatter_needs_exactly_one_chunk(self):
        with pytest.raises(ValueError):
            SerialComm().scatter([1, 2])

    def test_send_recv_unavailable(self):
        with pytest.raises(RuntimeError):
            SerialComm().send(1, dest=0)

    def test_reduce_ops(self):
        comm = SerialComm()
        assert comm.allreduce(np.array([1.0, 2.0]), op="max").tolist() == [1.0, 2.0]
        with pytest.raises(ValueError):
            comm.allreduce(1, op="bogus")


@pytest.mark.parametrize("nranks", [2, 4, 7])
class TestThreadCollectives:
    def test_bcast(self, nranks):
        def prog(comm):
            data = np.arange(5) * 10 if comm.rank == 2 % comm.size else None
            return comm.bcast(data, root=2 % comm.size)

        res = run_spmd(prog, nranks)
        for v in res.values:
            assert np.array_equal(v, np.arange(5) * 10)

    def test_bcast_receivers_get_copies(self, nranks):
        def prog(comm):
            data = np.zeros(3) if comm.rank == 0 else None
            out = comm.bcast(data, root=0)
            if comm.rank == 1:
                out += 99  # must not corrupt peers
            comm.barrier()
            return float(out.sum())

        res = run_spmd(prog, nranks)
        assert res.values[0] == 0.0

    def test_scatter_gather_roundtrip(self, nranks):
        def prog(comm):
            chunks = [np.full(2, r) for r in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(chunks, root=0)
            assert np.all(mine == comm.rank)
            gathered = comm.gather(mine * 2, root=0)
            if comm.rank == 0:
                return [g.tolist() for g in gathered]
            assert gathered is None
            return None

        res = run_spmd(prog, nranks)
        assert res.values[0] == [[2 * r, 2 * r] for r in range(nranks)]

    def test_allgather(self, nranks):
        res = run_spmd(lambda comm: comm.allgather(comm.rank**2), nranks)
        expected = [r**2 for r in range(nranks)]
        assert all(v == expected for v in res.values)

    def test_allreduce_sum_array(self, nranks):
        def prog(comm):
            return comm.allreduce(np.full(3, comm.rank + 1.0))

        res = run_spmd(prog, nranks)
        total = sum(range(1, nranks + 1))
        for v in res.values:
            assert np.allclose(v, total)

    def test_allreduce_min_max(self, nranks):
        res = run_spmd(lambda c: (c.allreduce(c.rank, op="min"), c.allreduce(c.rank, op="max")), nranks)
        assert all(v == (0, nranks - 1) for v in res.values)

    def test_reduce_root_only(self, nranks):
        res = run_spmd(lambda c: c.reduce(1, op="sum", root=0), nranks)
        assert res.values[0] == nranks
        assert all(v is None for v in res.values[1:])

    def test_alltoall(self, nranks):
        def prog(comm):
            out = comm.alltoall([100 * comm.rank + dst for dst in range(comm.size)])
            return out

        res = run_spmd(prog, nranks)
        for dst, received in enumerate(res.values):
            assert received == [100 * src + dst for src in range(nranks)]

    def test_send_recv_ring(self, nranks):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([comm.rank]), dest=right, tag=5)
            got = comm.recv(source=left, tag=5)
            return int(got[0])

        res = run_spmd(prog, nranks)
        assert res.values == [(r - 1) % nranks for r in range(nranks)]

    def test_sequential_collectives_do_not_cross(self, nranks):
        """Values from one collective must never bleed into the next."""

        def prog(comm):
            a = comm.allgather(("first", comm.rank))
            b = comm.allgather(("second", comm.rank))
            return a[0][0], b[0][0]

        res = run_spmd(prog, nranks)
        assert all(v == ("first", "second") for v in res.values)


class TestErrorPropagation:
    def test_rank_failure_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            run_spmd(prog, 3)

    def test_bad_root_rejected(self):
        with pytest.raises(RuntimeError):
            run_spmd(lambda c: c.bcast(1, root=99), 2)

    def test_scatter_wrong_chunk_count(self):
        def prog(comm):
            chunks = [1] if comm.rank == 0 else None
            return comm.scatter(chunks, root=0)

        with pytest.raises(RuntimeError):
            run_spmd(prog, 3)


class TestVirtualTime:
    def test_compute_advances_clock(self):
        def prog(comm):
            comm.account_compute(2.0e6)
            return comm.clock.t

        res = run_spmd(prog, 2)
        assert all(t == pytest.approx(1.0) for t in res.values)  # 2e6 work / 2e6 rate

    def test_collective_synchronizes_clocks(self):
        def prog(comm):
            comm.account_compute(1.0e6 * (comm.rank + 1))  # rank 1 is slower
            comm.barrier()
            return comm.clock.t

        res = run_spmd(prog, 2)
        # Both ranks end at >= the slow rank's arrival time.
        assert min(res.values) >= 1.0
        assert res.values[0] == pytest.approx(res.values[1])

    def test_virtual_makespan(self):
        res = run_spmd(lambda c: c.account_compute(4.0e6), 2)
        assert res.virtual_time == pytest.approx(2.0)

    def test_stats_counted(self):
        def prog(comm):
            comm.barrier()
            comm.allreduce(1.0)
            return comm.clock.stats

        res = run_spmd(prog, 2)
        for stats in res.values:
            assert stats.barriers == 1
            assert stats.collectives == 1


class TestPayloadNbytes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_scalars_and_containers(self):
        assert payload_nbytes(1) == 8
        assert payload_nbytes("ab") == 2
        assert payload_nbytes([1, 2]) == 16
        assert payload_nbytes({"a": 1}) == 9
        assert payload_nbytes(None) == 0


class TestFaultHook:
    """Fault injection through run_spmd / ThreadComm.maybe_fail."""

    def test_hook_kills_named_rank(self):
        from repro.parallel import RankFailure

        def prog(comm):
            try:
                comm.maybe_fail(step=7)
            except RankFailure as exc:
                return f"died: {exc}"
            return "alive"

        res = run_spmd(prog, 3, fault_hook=lambda rank, step: rank == 1)
        assert res.values[0] == "alive" and res.values[2] == "alive"
        assert res.values[1].startswith("died: rank 1 killed by fault hook")
        assert "'step': 7" in res.values[1]

    def test_uncaught_failure_propagates_like_any_rank_error(self):
        from repro.parallel import RankFailure

        def prog(comm):
            comm.maybe_fail()
            return "alive"

        with pytest.raises(RuntimeError, match="rank 1 failed") as excinfo:
            run_spmd(prog, 2, fault_hook=lambda rank: rank == 1)
        assert isinstance(excinfo.value.__cause__, RankFailure)

    def test_no_hook_is_noop(self):
        res = run_spmd(lambda c: c.maybe_fail(step=1) or "ok", 2)
        assert res.values == ["ok", "ok"]

    def test_serial_comm_never_injects(self):
        comm = SerialComm()
        assert comm.maybe_fail(step=0) is None
        # run_spmd(nranks=1) ignores the hook: no peer survives a serial kill.
        res = run_spmd(lambda c: c.maybe_fail() or "ok", 1,
                       fault_hook=lambda rank: True)
        assert res.values == ["ok"]
