"""Tests for block decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.partition import (
    Partition,
    ProducerReport,
    block_bounds,
    block_partition,
    owner_of,
    partition_list,
    stream_partitions,
)


class TestBlockPartition:
    def test_even_split(self):
        assert block_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert block_partition(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_ranks_than_items(self):
        parts = block_partition(2, 5)
        sizes = [hi - lo for lo, hi in parts]
        assert sizes == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert all(lo == hi for lo, hi in block_partition(0, 3))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            block_bounds(10, 4, 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            block_bounds(10, 0, 0)

    @given(st.integers(0, 1000), st.integers(1, 64))
    def test_partition_covers_range_exactly(self, n, size):
        parts = block_partition(n, size)
        assert parts[0][0] == 0
        assert parts[-1][1] == n
        for (_al, ah), (bl, _bh) in zip(parts, parts[1:]):
            assert ah == bl  # contiguous, no gaps or overlap
        sizes = [hi - lo for lo, hi in parts]
        assert max(sizes) - min(sizes) <= 1  # balanced

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_owner_consistent_with_bounds(self, n, size):
        for idx in range(0, n, max(1, n // 7)):
            r = owner_of(idx, n, size)
            lo, hi = block_bounds(n, size, r)
            assert lo <= idx < hi

    def test_owner_out_of_range(self):
        with pytest.raises(ValueError):
            owner_of(5, 5, 2)

    def test_partition_list(self):
        assert partition_list([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]


class TestStreamPartitions:
    def test_spans_match_block_partition(self):
        parts = stream_partitions(10, 4)
        assert [(p.lo, p.hi) for p in parts] == block_partition(10, 4)
        assert [p.rank for p in parts] == [0, 1, 2, 3]
        assert all(p.size == 4 for p in parts)

    def test_span_accessors(self):
        p = Partition(rank=1, size=3, lo=4, hi=7)
        assert p.n == 3 and not p.empty
        assert list(p.indices()) == [4, 5, 6]
        assert 4 in p and 6 in p and 7 not in p and 3 not in p

    def test_more_ranks_than_items_gives_empty_tails(self):
        parts = stream_partitions(2, 5)
        assert [p.n for p in parts] == [1, 1, 0, 0, 0]
        assert parts[-1].empty
        assert list(parts[-1].indices()) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition(rank=3, size=3, lo=0, hi=1)
        with pytest.raises(ValueError):
            Partition(rank=0, size=1, lo=4, hi=2)

    @given(st.integers(0, 300), st.integers(1, 32))
    def test_spans_cover_exactly(self, n, size):
        parts = stream_partitions(n, size)
        seen = [i for p in parts for i in p.indices()]
        assert seen == list(range(n))


class TestProducerReport:
    def test_complete_producer(self):
        part = Partition(rank=1, size=3, lo=4, hi=7)
        rep = ProducerReport(partition=part, snapshots_done=3, n_seen=300,
                             stream_mass=300.0)
        assert rep.rank == 1
        assert rep.complete
        assert rep.covered == (4, 7)

    def test_partial_producer(self):
        part = Partition(rank=0, size=2, lo=0, hi=5)
        rep = ProducerReport(partition=part, snapshots_done=2, n_seen=250,
                             stream_mass=250.0, failed=True, error="boom")
        assert not rep.complete
        assert rep.covered == (0, 2)  # only fully delivered snapshots
        meta = rep.to_meta()
        assert meta["failed"] and meta["error"] == "boom"
        assert meta["span"] == [0, 5] and meta["covered"] == [0, 2]
        assert meta["n_seen"] == 250

    def test_empty_span_is_complete(self):
        part = Partition(rank=4, size=5, lo=3, hi=3)
        rep = ProducerReport(partition=part, snapshots_done=0)
        assert rep.complete and rep.covered == (3, 3)

    def test_validation(self):
        part = Partition(rank=0, size=1, lo=0, hi=2)
        with pytest.raises(ValueError, match="snapshots_done"):
            ProducerReport(partition=part, snapshots_done=3)
