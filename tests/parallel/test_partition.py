"""Tests for block decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.partition import block_bounds, block_partition, owner_of, partition_list


class TestBlockPartition:
    def test_even_split(self):
        assert block_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert block_partition(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_ranks_than_items(self):
        parts = block_partition(2, 5)
        sizes = [hi - lo for lo, hi in parts]
        assert sizes == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert all(lo == hi for lo, hi in block_partition(0, 3))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            block_bounds(10, 4, 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            block_bounds(10, 0, 0)

    @given(st.integers(0, 1000), st.integers(1, 64))
    def test_partition_covers_range_exactly(self, n, size):
        parts = block_partition(n, size)
        assert parts[0][0] == 0
        assert parts[-1][1] == n
        for (al, ah), (bl, bh) in zip(parts, parts[1:]):
            assert ah == bl  # contiguous, no gaps or overlap
        sizes = [hi - lo for lo, hi in parts]
        assert max(sizes) - min(sizes) <= 1  # balanced

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_owner_consistent_with_bounds(self, n, size):
        for idx in range(0, n, max(1, n // 7)):
            r = owner_of(idx, n, size)
            lo, hi = block_bounds(n, size, r)
            assert lo <= idx < hi

    def test_owner_out_of_range(self):
        with pytest.raises(ValueError):
            owner_of(5, 5, 2)

    def test_partition_list(self):
        assert partition_list([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
