"""Tests for KMeans / MiniBatchKMeans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import KMeans, MiniBatchKMeans, kmeans_plus_plus


def three_blobs(rng, n_per=100, sep=10.0):
    centers = np.array([[0.0, 0.0], [sep, 0.0], [0.0, sep]])
    pts = np.concatenate([c + rng.standard_normal((n_per, 2)) for c in centers])
    labels = np.repeat(np.arange(3), n_per)
    return pts, labels, centers


class TestKMeansPlusPlus:
    def test_right_count_and_from_data(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((50, 3))
        centers = kmeans_plus_plus(x, 5, rng)
        assert centers.shape == (5, 3)
        # Every center is an actual data point.
        for c in centers:
            assert np.min(np.linalg.norm(x - c, axis=1)) < 1e-12

    def test_degenerate_identical_points(self):
        x = np.ones((10, 2))
        centers = kmeans_plus_plus(x, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)
        assert np.allclose(centers, 1.0)

    def test_k_bounds(self):
        x = np.zeros((4, 1))
        with pytest.raises(ValueError):
            kmeans_plus_plus(x, 5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            kmeans_plus_plus(x, 0, np.random.default_rng(0))


class TestKMeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(1)
        x, true_labels, true_centers = three_blobs(rng)
        km = KMeans(n_clusters=3, rng=2).fit(x)
        # Each found center is within 1 unit of a true center.
        d = np.linalg.norm(km.cluster_centers_[:, None, :] - true_centers[None], axis=2)
        assert np.all(d.min(axis=1) < 1.0)
        # Cluster assignments are pure w.r.t. true labels.
        for j in range(3):
            members = true_labels[km.labels_ == j]
            assert (members == members[0]).mean() > 0.99

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((200, 2))
        inertias = [KMeans(n_clusters=k, rng=0).fit(x).inertia_ for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_predict_matches_fit_labels(self):
        rng = np.random.default_rng(4)
        x, _, _ = three_blobs(rng)
        km = KMeans(n_clusters=3, rng=0).fit(x)
        assert np.array_equal(km.predict(x), km.labels_)

    def test_k_larger_than_n_clamped(self):
        x = np.arange(3, dtype=float)[:, None]
        km = KMeans(n_clusters=10, rng=0).fit(x)
        assert km.cluster_centers_.shape[0] == 3
        assert km.inertia_ == pytest.approx(0.0)

    def test_1d_input_accepted(self):
        km = KMeans(n_clusters=2, rng=0).fit(np.array([0.0, 0.1, 5.0, 5.1]))
        assert sorted(np.round(km.cluster_centers_.ravel(), 2)) == [0.05, 5.05]

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.array([[1.0], [np.nan]]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.empty((0, 2)))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((100, 2))
        a = KMeans(n_clusters=4, rng=7).fit(x)
        b = KMeans(n_clusters=4, rng=7).fit(x)
        assert np.allclose(a.cluster_centers_, b.cluster_centers_)

    def test_n_init_picks_best(self):
        rng = np.random.default_rng(6)
        x, _, _ = three_blobs(rng)
        multi = KMeans(n_clusters=3, n_init=5, rng=0).fit(x)
        single = KMeans(n_clusters=3, n_init=1, rng=0).fit(x)
        assert multi.inertia_ <= single.inertia_ * 1.001

    @given(
        n=st.integers(8, 60),
        d=st.integers(1, 4),
        k=st.integers(1, 6),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=20, deadline=None)
    def test_labels_valid_and_every_cluster_nonempty(self, n, d, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, d))
        km = KMeans(n_clusters=k, rng=seed).fit(x)
        k_eff = km.cluster_centers_.shape[0]
        assert km.labels_.shape == (n,)
        assert km.labels_.min() >= 0 and km.labels_.max() < k_eff
        assert km.inertia_ >= 0


class TestMiniBatchKMeans:
    def test_close_to_lloyd_on_blobs(self):
        rng = np.random.default_rng(7)
        x, _, _ = three_blobs(rng, n_per=300)
        full = KMeans(n_clusters=3, rng=0).fit(x)
        mb = MiniBatchKMeans(n_clusters=3, batch_size=128, max_iter=150, rng=0).fit(x)
        assert mb.inertia_ <= full.inertia_ * 1.5

    def test_partial_fit_streaming(self):
        rng = np.random.default_rng(8)
        x, _, _ = three_blobs(rng)
        mb = MiniBatchKMeans(n_clusters=3, rng=0)
        for lo in range(0, len(x), 50):
            mb.partial_fit(x[lo : lo + 50])
        labels = mb.predict(x)
        assert len(np.unique(labels)) == 3

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            MiniBatchKMeans(n_clusters=2).predict(np.zeros((3, 1)))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal((300, 2))
        a = MiniBatchKMeans(n_clusters=4, rng=3).fit(x)
        b = MiniBatchKMeans(n_clusters=4, rng=3).fit(x)
        assert np.allclose(a.cluster_centers_, b.cluster_centers_)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            MiniBatchKMeans(n_clusters=0)
        with pytest.raises(ValueError):
            MiniBatchKMeans(n_clusters=2, batch_size=0)


class TestEnergyInstrumentation:
    def test_clustering_charges_active_meter(self):
        from repro.energy import EnergyMeter

        rng = np.random.default_rng(10)
        x = rng.standard_normal((500, 3))
        with EnergyMeter() as meter:
            KMeans(n_clusters=4, rng=0).fit(x)
        assert meter.flops_cpu > 0
        assert meter.bytes_cpu > 0
