"""Tests for histogram PDFs and KDE."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import GaussianKDE, HistogramPDF, histogram_pdf, joint_histogram


class TestHistogramPDF:
    def test_prob_sums_to_one(self):
        rng = np.random.default_rng(0)
        pdf = histogram_pdf(rng.standard_normal(10000), bins=100)
        assert pdf.prob.sum() == pytest.approx(1.0)

    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(1)
        pdf = histogram_pdf(rng.standard_normal(10000), bins=50)
        integral = (pdf.density * pdf.bin_volume).sum()
        assert integral == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram_pdf(np.array([]))

    def test_bin_index_roundtrip(self):
        pdf = histogram_pdf(np.linspace(0, 1, 101), bins=10, range_=(0.0, 1.0))
        idx = pdf.bin_index(np.array([[0.05], [0.55], [0.95]]))
        assert idx.tolist() == [0, 5, 9]

    def test_out_of_range_clipped(self):
        pdf = histogram_pdf(np.linspace(0, 1, 11), bins=5, range_=(0.0, 1.0))
        idx = pdf.bin_index(np.array([[-10.0], [10.0]]))
        assert idx.tolist() == [0, 4]

    def test_prob_at_uniform(self):
        x = np.repeat(np.linspace(0.05, 0.95, 10), 10)
        pdf = histogram_pdf(x, bins=10, range_=(0.0, 1.0))
        assert np.allclose(pdf.prob_at(x[:, None]), 0.1)

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError):
            HistogramPDF(edges=[np.arange(4)], counts=np.zeros(5))

    def test_weights(self):
        pdf = histogram_pdf(np.array([0.1, 0.9]), bins=2, range_=(0, 1), weights=np.array([3.0, 1.0]))
        assert pdf.prob.tolist() == [0.75, 0.25]


class TestJointHistogram:
    def test_2d_mass(self):
        rng = np.random.default_rng(2)
        x = rng.random((5000, 2))
        pdf = joint_histogram(x, bins=10)
        assert pdf.counts.shape == (10, 10)
        assert pdf.prob.sum() == pytest.approx(1.0)

    def test_density_at_matches_structure(self):
        """Points in dense regions report higher density than sparse regions."""
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((5000, 2)) * 0.2
        sparse = rng.standard_normal((100, 2)) * 3.0 + 6.0
        x = np.vstack([dense, sparse])
        pdf = joint_histogram(x, bins=20)
        assert pdf.density_at(np.array([[0.0, 0.0]]))[0] > pdf.density_at(np.array([[6.0, 6.0]]))[0]

    @given(st.integers(2, 5), st.integers(1, 3), st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_mass_conserved_any_dim(self, bins, d, seed):
        rng = np.random.default_rng(seed)
        pdf = joint_histogram(rng.random((200, d)), bins=bins)
        assert pdf.prob.sum() == pytest.approx(1.0)
        assert pdf.counts.sum() == 200


class TestGaussianKDE:
    def test_density_positive_and_peaked_at_mode(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal(2000)
        kde = GaussianKDE(data)
        at_mode = kde.evaluate(np.array([0.0]))[0]
        at_tail = kde.evaluate(np.array([4.0]))[0]
        assert at_mode > at_tail > 0

    def test_matches_scipy(self):
        from scipy.stats import gaussian_kde

        rng = np.random.default_rng(5)
        data = rng.standard_normal(500)
        ours = GaussianKDE(data)
        theirs = gaussian_kde(data, bw_method="scott")
        q = np.linspace(-2, 2, 9)
        assert np.allclose(ours.evaluate(q), theirs(q), rtol=0.05)

    def test_2d_integrates_roughly_to_one(self):
        rng = np.random.default_rng(6)
        data = rng.standard_normal((500, 2))
        kde = GaussianKDE(data)
        grid = np.linspace(-5, 5, 41)
        xx, yy = np.meshgrid(grid, grid)
        pts = np.column_stack([xx.ravel(), yy.ravel()])
        dx = grid[1] - grid[0]
        integral = kde.evaluate(pts).sum() * dx * dx
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_sample_shape_and_spread(self):
        rng = np.random.default_rng(7)
        data = rng.standard_normal((300, 2))
        draws = GaussianKDE(data).sample(1000, rng=0)
        assert draws.shape == (1000, 2)
        assert abs(draws.mean()) < 0.3

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE(np.array([1.0]))

    def test_dim_mismatch_rejected(self):
        kde = GaussianKDE(np.random.default_rng(8).standard_normal((50, 2)))
        with pytest.raises(ValueError):
            kde.evaluate(np.zeros((3, 3)))
