"""Tests for the step-based TrainLoop, BatchFeed implementations, and
callbacks — the stream-first training redesign's unit layer."""

import numpy as np
import pytest

from repro.data import build_dataset
from repro.data.sources import as_source
from repro.nn import LSTMRegressor, MLPTransformer
from repro.nn.tensor import Tensor
from repro.sampling import subsample
from repro.train import (
    ArrayFeed,
    EarlyStopping,
    ShardedFeed,
    StreamFeed,
    Trainer,
    TrainLoop,
    build_drag_data,
    stream_assembler,
    stream_sensor_layout,
)
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


@pytest.fixture(scope="module")
def of2d():
    return build_dataset("OF2D", scale=0.4, rng=0, n_snapshots=30)


@pytest.fixture(scope="module")
def sst():
    return build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=6)


def lstm_case(epochs=3, window=3):
    return CaseConfig(
        shared=SharedConfig(dims=2),
        subsample=SubsampleConfig(
            hypercubes="random", method="random", num_hypercubes=3,
            num_samples=16, num_clusters=4, nxsl=12, nysl=12, nzsl=1,
        ),
        train=TrainConfig(epochs=epochs, batch=4, window=window, arch="lstm"),
    )


def sst_case(epochs=3, window=2):
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes="maxent", method="maxent", num_hypercubes=3,
            num_samples=64, num_clusters=4, nxsl=8, nysl=8, nzsl=8,
        ),
        train=TrainConfig(epochs=epochs, batch=4, window=window, horizon=1,
                          arch="mlp_transformer"),
    )


@pytest.fixture(scope="module")
def drag_xy(of2d):
    res = subsample(of2d, lstm_case(), seed=0)
    return build_drag_data(of2d, res, window=3)


class TestArrayFeedEquivalence:
    """The tentpole invariant: the feed/loop refactor is byte-identical to
    the classic epoch loop (golden: Trainer's documented RNG protocol)."""

    def test_trainer_shim_equals_trainloop(self, drag_xy):
        x, y = drag_xy
        r1 = Trainer(
            LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0),
            epochs=5, batch=8, lr=5e-3, seed=0,
        ).fit(x, y)
        model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
        loop = TrainLoop(model, lr=5e-3, seed=0)
        feed = ArrayFeed(x, y, batch=8, seed=0)
        r2 = loop.fit(feed, epochs=5)
        assert r1.train_losses == r2.train_losses
        assert r1.test_losses == r2.test_losses
        assert r1.final_test_loss == r2.final_test_loss
        assert r1.energy.flops_gpu == r2.energy.flops_gpu
        assert r1.energy.elapsed == r2.energy.elapsed

    def test_fit_is_deterministic_per_seed(self, drag_xy):
        x, y = drag_xy

        def run():
            model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
            return Trainer(model, epochs=4, batch=8, seed=3).fit(x, y)

        a, b = run(), run()
        assert a.train_losses == b.train_losses
        assert a.test_losses == b.test_losses
        assert a.final_test_loss == b.final_test_loss

    def test_feed_state_roundtrip_replays_permutations(self, drag_xy):
        x, y = drag_xy
        feed = ArrayFeed(x, y, batch=8, seed=0)
        list(feed.train_batches(0))  # advance the permutation RNG one epoch
        state = feed.state()
        next_epoch = [xb.copy() for xb, _ in feed.train_batches(1)]
        fresh = ArrayFeed(x, y, batch=8, seed=0)
        fresh.load_state(state)
        replayed = [xb for xb, _ in fresh.train_batches(1)]
        for a, b in zip(next_epoch, replayed):
            assert np.array_equal(a, b)

    def test_feed_rejects_foreign_cursor(self, drag_xy):
        x, y = drag_xy
        feed = ArrayFeed(x, y, batch=8, seed=0)
        with pytest.raises(ValueError, match="ArrayFeed"):
            feed.load_state({"kind": "StreamFeed", "epochs_streamed": 1})

    def test_refit_starts_fresh(self, drag_xy):
        """fit() twice on one trainer (warm restart) must not accumulate the
        first fit's losses or double-count its energy."""
        x, y = drag_xy
        trainer = Trainer(LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0),
                          epochs=3, batch=8, seed=0)
        r1 = trainer.fit(x, y)
        r2 = trainer.fit(x, y)
        assert r1.epochs_run == r2.epochs_run == 3
        assert len(r2.train_losses) == 3
        # Same FLOP count per fit — the meter was reset, not accumulated.
        assert r1.energy.flops_gpu == r2.energy.flops_gpu
        # Warm restart: weights continued from fit 1, so losses improved.
        assert r2.train_losses[0] < r1.train_losses[0]

    def test_trainer_compat_attributes(self, drag_xy):
        x, y = drag_xy
        trainer = Trainer(LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0),
                          epochs=2, seed=0)
        assert trainer.optimizer is trainer.loop.optimizer
        assert trainer.scheduler is not None
        assert trainer.comm.size == 1
        r = trainer.fit(x, y)
        assert trainer.evaluate(x, y) > 0
        assert "Evaluation on test set" in r.report()
        assert r.meta["feed"]["kind"] == "ArrayFeed"


class TestCallbacks:
    def test_early_stopping_halts_fit(self, drag_xy):
        x, y = drag_xy
        model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
        loop = TrainLoop(model, seed=0, callbacks=[EarlyStopping(patience=0)])
        result = loop.fit(ArrayFeed(x, y, batch=8, seed=0), epochs=50)
        assert result.epochs_run < 50
        assert len(result.train_losses) == result.epochs_run

    def test_plateau_reductions_reported(self, drag_xy):
        x, y = drag_xy
        model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
        loop = TrainLoop(model, lr=1e-3, patience=0, seed=0)
        result = loop.fit(ArrayFeed(x, y, batch=8, seed=0), epochs=8)
        assert result.lr_reductions == loop.scheduler.n_reductions
        assert loop.lr <= 1e-3

    def test_invalid_epochs(self, drag_xy):
        x, y = drag_xy
        model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
        with pytest.raises(ValueError):
            TrainLoop(model, seed=0).fit(ArrayFeed(x, y, seed=0), epochs=0)


class TestSensorLayout:
    def test_layout_from_stream_points(self, sst):
        res = subsample(sst, sst_case(), seed=0, mode="stream")
        layout = stream_sensor_layout(
            res.points.coords, sst.grid_shape, (8, 8, 8), max_cubes=4,
        )
        assert 1 <= len(layout.origins) <= 4
        assert layout.n_points >= 1
        for origin, rel in zip(layout.origins, layout.rel):
            assert len(rel) == layout.n_points
            assert np.all(rel >= 0) and np.all(rel < np.array(layout.cube_shape))
            assert all(o % c == 0 for o, c in zip(origin, layout.cube_shape))

    def test_layout_deterministic(self, sst):
        res = subsample(sst, sst_case(), seed=0, mode="stream")
        a = stream_sensor_layout(res.points.coords, sst.grid_shape, (8, 8, 8))
        b = stream_sensor_layout(res.points.coords, sst.grid_shape, (8, 8, 8))
        assert a.origins == b.origins
        for ra, rb in zip(a.rel, b.rel):
            assert np.array_equal(ra, rb)

    def test_empty_coords_rejected(self):
        with pytest.raises(ValueError):
            stream_sensor_layout(np.empty((0, 3)), (16, 16, 16), (8, 8, 8))


class TestStreamFeed:
    def _feed(self, sst, **kwargs):
        res = subsample(sst, sst_case(), seed=0, mode="stream")
        assembler = stream_assembler(sst, sst_case(), res.points)
        return StreamFeed(as_source(sst), assembler, batch=4, test_frac=0.2,
                          seed=0, **kwargs)

    def test_batch_shapes_and_counts(self, sst):
        feed = self._feed(sst)
        batches = list(feed.train_batches(0))
        n_train = sum(len(xb) for xb, _ in batches)
        tests = list(feed.eval_batches())
        n_test = sum(len(xb) for xb, _ in tests)
        assert n_train == feed.n_train_local
        assert n_test == feed.n_test_local
        assert n_train + n_test == feed.local_samples
        xb, yb = batches[0]
        # [B, T, C, N] sensors in, [B, T', C', H, W, D] dense cubes out.
        assert xb.ndim == 4 and xb.shape[1] == 2 and xb.shape[2] == 3
        assert yb.shape[1:3] == (1, 1) and yb.shape[3:] == (8, 8, 8)

    def test_epochs_are_identical_passes(self, sst):
        feed = self._feed(sst)
        a = [xb.copy() for xb, _ in feed.train_batches(0)]
        b = [xb for xb, _ in feed.train_batches(1)]
        assert len(a) == len(b)
        for xa, xb_ in zip(a, b):
            assert np.array_equal(xa, xb_)

    def test_spec_matches_model_needs(self, sst):
        feed = self._feed(sst)
        spec = feed.spec
        model = MLPTransformer(
            in_channels=spec.in_channels, n_points=spec.n_points,
            out_channels=spec.out_channels, grid=spec.grid,
            window=2, horizon=1, d_model=16, depth=1, n_heads=2, rng=0,
        )
        xb, yb = next(iter(feed.train_batches(0)))
        out = model(Tensor(xb))
        assert out.data.shape == yb.shape

    def test_too_few_windows_rejected(self, sst):
        res = subsample(sst, sst_case(window=2), seed=0, mode="stream")
        case = sst_case(window=8)  # longer than the 6-snapshot stream
        assembler = stream_assembler(sst, case, res.points)
        with pytest.raises(ValueError, match="at least 2 window samples"):
            StreamFeed(as_source(sst), assembler, batch=4, seed=0)

    def test_unsupported_arch_rejected(self, sst):
        res = subsample(sst, sst_case(), seed=0, mode="stream")
        case = CaseConfig(
            shared=SharedConfig(dims=3),
            subsample=SubsampleConfig(
                hypercubes="maxent", method="full", num_hypercubes=2,
                num_clusters=4, nxsl=8, nysl=8, nzsl=8,
            ),
            train=TrainConfig(epochs=2, arch="cnn_transformer"),
        )
        with pytest.raises(ValueError, match="stream training supports"):
            stream_assembler(sst, case, res.points)


class TestShardedFeed:
    def test_for_rank_agrees_on_global_facts(self, sst):
        from repro.data.sources import PartitionedSource, as_source
        from repro.parallel.partition import stream_partitions

        res = subsample(sst, sst_case(), seed=0, mode="stream")
        case = sst_case()
        source = as_source(sst)
        parts = stream_partitions(source.n_snapshots, 2)

        class FakeComm:
            size = 2

            def __init__(self, rank):
                self.rank = rank

        feeds = []
        for rank in (0, 1):
            rank_source = PartitionedSource(source, parts[rank].lo, parts[rank].hi)
            assembler = stream_assembler(rank_source, case, res.points)
            feeds.append(ShardedFeed.for_rank(
                FakeComm(rank), rank_source, assembler, source.n_snapshots,
                batch=4, test_frac=0.2, seed=0,
            ))
        f0, f1 = feeds
        assert f0.total_samples == f1.total_samples
        assert f0._test_ids == f1._test_ids
        assert f0._steps == f1._steps
        assert f0.sample_offset == 0
        assert f1.sample_offset > 0
        # Both ranks emit exactly the agreed number of batches.
        assert len(list(f0.train_batches(0))) == f0._steps
        assert len(list(f1.train_batches(0))) == f1._steps
        # Union of test shards is the global test count.
        assert f0.n_test_local + f1.n_test_local == f0.n_test_global

    def test_starved_rank_rejected(self, sst):
        from repro.data.sources import PartitionedSource, as_source
        from repro.parallel.partition import stream_partitions

        res = subsample(sst, sst_case(), seed=0, mode="stream")
        case = sst_case(window=3)
        source = as_source(sst)
        nranks = 4  # 6 snapshots / 4 ranks -> spans of 1-2 < window 3
        parts = stream_partitions(source.n_snapshots, nranks)

        class FakeComm:
            size = nranks
            rank = 0

        rank_source = PartitionedSource(source, parts[0].lo, parts[0].hi)
        assembler = stream_assembler(rank_source, case, res.points)
        with pytest.raises(ValueError, match="no full training window|window samples"):
            ShardedFeed.for_rank(FakeComm(), rank_source, assembler,
                                 source.n_snapshots, batch=4, seed=0)


class TestWindowCounts:
    def test_counts_match_partitions(self):
        from repro.parallel.partition import stream_partitions, window_counts

        parts = stream_partitions(10, 3)
        counts = window_counts(10, 3, window=2, per_window=3)
        for part, count in zip(parts, counts):
            assert count == max(0, part.n - 1) * 3

    def test_validation(self):
        from repro.parallel.partition import window_counts

        with pytest.raises(ValueError):
            window_counts(10, 2, window=0)
        with pytest.raises(ValueError):
            window_counts(10, 2, window=1, per_window=0)
