"""Acceptance tests for stream-first training: fitting directly off the
merged stream with bounded memory, and staying statistically faithful to
the offline (resident-array) fit."""

import tracemalloc

import numpy as np
import pytest

from repro.api import Experiment, build_model_for_case
from repro.data import ShardedNpzSource, build_dataset, save_dataset
from repro.data.sources import as_source
from repro.nn.tensor import Tensor, no_grad
from repro.sampling import subsample
from repro.train import (
    ArrayFeed,
    StreamFeed,
    TrainLoop,
    build_reconstruction_data,
    stream_assembler,
)
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


def sst_case(epochs=3, window=2, num_hypercubes=3):
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes="maxent", method="maxent",
            num_hypercubes=num_hypercubes, num_samples=64, num_clusters=4,
            nxsl=8, nysl=8, nzsl=8,
        ),
        train=TrainConfig(epochs=epochs, batch=4, window=window, horizon=1,
                          arch="mlp_transformer"),
    )


class TestStreamTrainingAcceptance:
    def test_stream_fit_bounded_memory(self, tmp_path):
        """The headline acceptance: subsample(mode='stream', ranks=N) →
        train(mode='stream') completes end-to-end with peak memory below
        the resident-dataset footprint."""
        shard_dir = str(tmp_path / "shards")
        ds = build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=16)
        save_dataset(ds, shard_dir)
        footprint = ds.nbytes()
        del ds

        with ShardedNpzSource(shard_dir, max_cached=2) as src:
            tracemalloc.start()
            exp = (
                Experiment.from_case(sst_case())
                .with_source(src)
                .with_seed(0)
                .subsample(mode="stream", ranks=2)
                .train(mode="stream")
            )
            peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
        result = exp.train_artifact.result
        assert np.isfinite(result.final_test_loss)
        assert result.meta["feed"]["kind"] == "StreamFeed"
        assert peak < footprint, (
            f"stream training peaked at {peak / 1e6:.1f} MB, above the "
            f"{footprint / 1e6:.1f} MB resident footprint it must undercut"
        )
        # The shard LRU honoured its bound the whole way through.
        assert src.cache_info()["gauges"]["max_resident"] <= 2

    def test_stream_loss_ks_bounded_vs_offline(self):
        """The stream fit's test-error distribution stays within a KS bound
        of the offline fit's (and the final losses within a factor)."""
        case = sst_case(epochs=5, num_hypercubes=6)
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=10)

        def pointwise_errors(model, batches):
            errs = []
            model.eval()
            with no_grad():
                for xb, yb in batches:
                    pred = model(Tensor(xb)).data
                    errs.append(np.abs(pred - yb).ravel())
            return np.sort(np.concatenate(errs))

        sres = subsample(ds, case, seed=0, mode="stream", nranks=2)
        assembler = stream_assembler(as_source(ds), case, sres.points)
        sfeed = StreamFeed(as_source(ds), assembler, batch=4, test_frac=0.2,
                           seed=0)
        smodel = build_model_for_case(case, sfeed.spec, rng=0)
        sfit = TrainLoop(smodel, seed=0).fit(sfeed, epochs=5)
        errs_s = pointwise_errors(smodel, sfeed.eval_batches())

        bres = subsample(ds, case, seed=0)
        data = build_reconstruction_data(ds, bres, window=2, horizon=1)
        bmodel = build_model_for_case(case, data, rng=0)
        bfeed = ArrayFeed(data.x, data.y, batch=4, test_frac=0.2, seed=0)
        bfit = TrainLoop(bmodel, seed=0).fit(bfeed, epochs=5)
        errs_b = pointwise_errors(bmodel, bfeed.eval_batches())

        ratio = sfit.final_test_loss / bfit.final_test_loss
        assert 0.2 < ratio < 5.0, f"stream/offline loss ratio {ratio:.2f}"
        grid = np.linspace(0.0, max(errs_s.max(), errs_b.max()), 512)
        cdf_s = np.searchsorted(errs_s, grid) / len(errs_s)
        cdf_b = np.searchsorted(errs_b, grid) / len(errs_b)
        ks = float(np.abs(cdf_s - cdf_b).max())
        assert ks < 0.35, f"KS distance {ks:.3f} exceeds tolerance"


class TestExperimentStreamTraining:
    def _ds(self, n=6):
        return build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=n)

    def test_stream_train_after_stream_subsample(self):
        exp = (Experiment.from_case(sst_case())
               .with_dataset(self._ds()).with_seed(0)
               .subsample(mode="stream", ranks=2)
               .train(mode="stream"))
        result = exp.train_artifact.result
        assert np.isfinite(result.final_test_loss)
        assert exp.train_artifact.meta["mode"] == "stream"
        assert result.meta["feed"]["kind"] == "StreamFeed"
        assert result.meta["feed"]["samples"] > 0
        assert "Evaluation on test set" in exp.report()

    def test_stream_train_implies_stream_subsample(self):
        exp = (Experiment.from_case(sst_case())
               .with_dataset(self._ds()).with_seed(0)
               .train(mode="stream"))
        assert exp.subsample_artifact.result.meta["mode"] == "stream"
        assert np.isfinite(exp.train_artifact.result.final_test_loss)

    def test_batch_train_from_stream_subsample_still_fails_clearly(self):
        exp = (Experiment.from_case(sst_case())
               .with_dataset(self._ds()).with_seed(0)
               .subsample(mode="stream"))
        with pytest.raises(ValueError, match="stream-mode subsample"):
            exp.train()

    def test_invalid_mode_rejected(self):
        exp = Experiment.from_case(sst_case()).with_dataset(self._ds())
        with pytest.raises(ValueError, match="mode"):
            exp.train(mode="banana")

    def test_stream_ddp_uses_sharded_feed(self):
        exp = (Experiment.from_case(sst_case())
               .with_dataset(self._ds()).with_seed(0).with_train_ranks(2)
               .subsample(mode="stream", ranks=2)
               .train(mode="stream"))
        result = exp.train_artifact.result
        assert result.meta["feed"]["kind"] == "ShardedFeed"
        assert result.meta["ranks"] == 2
        assert np.isfinite(result.final_test_loss)

    def test_stream_ddp_owned_shards_per_rank(self, tmp_path):
        """Sharded sources give each DDP rank a private owned-shard source."""
        shard_dir = str(tmp_path / "shards")
        save_dataset(self._ds(), shard_dir)
        with ShardedNpzSource(shard_dir, max_cached=2) as src:
            exp = (Experiment.from_case(sst_case())
                   .with_source(src).with_seed(0).with_train_ranks(2)
                   .subsample(mode="stream", ranks=2)
                   .train(mode="stream"))
        result = exp.train_artifact.result
        assert result.meta["feed"]["kind"] == "ShardedFeed"
        # per-rank owned sources are reopened as the codec-agnostic class
        assert result.meta["feed"]["source"] == "ShardDirSource"
        assert np.isfinite(result.final_test_loss)

    def test_stream_serial_vs_ddp_both_finite_and_deterministic(self):
        def run(ranks):
            exp = (Experiment.from_case(sst_case())
                   .with_dataset(self._ds()).with_seed(0).with_train_ranks(ranks)
                   .subsample(mode="stream")
                   .train(mode="stream"))
            return exp.train_artifact.result

        a, b = run(2), run(2)
        assert a.train_losses == b.train_losses
        assert a.final_test_loss == b.final_test_loss

    def test_lstm_stream_training_on_drag(self):
        of2d = build_dataset("OF2D", scale=0.4, rng=0, n_snapshots=20)
        case = CaseConfig(
            shared=SharedConfig(dims=2),
            subsample=SubsampleConfig(
                hypercubes="random", method="random", num_hypercubes=3,
                num_samples=16, num_clusters=4, nxsl=12, nysl=12, nzsl=1,
            ),
            train=TrainConfig(epochs=3, batch=4, window=3, arch="lstm"),
        )
        exp = (Experiment.from_case(case)
               .with_dataset(of2d).with_seed(0)
               .subsample(mode="stream")
               .train(mode="stream"))
        result = exp.train_artifact.result
        assert np.isfinite(result.final_test_loss)
        assert result.meta["feed"]["window"] == 3


class TestExperimentTune:
    def test_tune_records_artifact_with_best_config(self):
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)
        exp = (Experiment.from_case(sst_case(window=1))
               .with_dataset(ds).with_seed(0)
               .tune(n_trials=3, epochs=2))
        art = exp.tune_artifact
        assert len(art.trials) == 3
        assert art.best.score == min(t.score for t in art.trials)
        assert "lr" in art.best.config and "batch" in art.best.config
        assert "Best of 3 trials" in exp.report()

    def test_tune_roundtrip(self, tmp_path):
        from repro.api import TuneArtifact

        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)
        exp = (Experiment.from_case(sst_case(window=1))
               .with_dataset(ds).with_seed(0)
               .tune(n_trials=2, epochs=2))
        path = exp.tune_artifact.save(str(tmp_path / "tune"))
        loaded = TuneArtifact.load(path)
        assert loaded.best.config == exp.tune_artifact.best.config
        assert loaded.best.score == pytest.approx(exp.tune_artifact.best.score)
        assert len(loaded.trials) == 2
        assert loaded.meta["n_trials"] == 2

    def test_tune_deterministic_per_seed(self):
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)

        def run():
            return (Experiment.from_case(sst_case(window=1))
                    .with_dataset(ds).with_seed(0)
                    .tune(n_trials=2, epochs=2)).tune_artifact

        a, b = run(), run()
        assert a.best.config == b.best.config
        assert a.best.score == b.best.score

    def test_tune_rejects_stream_subsample(self):
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)
        exp = (Experiment.from_case(sst_case(window=1))
               .with_dataset(ds).subsample(mode="stream"))
        with pytest.raises(ValueError, match="batch mode"):
            exp.tune(n_trials=1)

    def test_tune_rejects_unsupported_space_params(self):
        from repro.train import SearchSpace

        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)
        exp = Experiment.from_case(sst_case(window=1)).with_dataset(ds)
        with pytest.raises(ValueError, match="patience"):
            exp.tune(n_trials=1, space=SearchSpace({
                "lr": ("log", 1e-4, 1e-2), "patience": ("int", 5, 30),
            }))

    def test_tune_rejects_train_ranks(self):
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)
        exp = (Experiment.from_case(sst_case(window=1))
               .with_dataset(ds).with_train_ranks(2))
        with pytest.raises(ValueError, match="serially"):
            exp.tune(n_trials=1)

    def test_tune_honors_epochs_override(self):
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)
        exp = (Experiment.from_case(sst_case(window=1))
               .with_dataset(ds).with_seed(0).with_epochs(1)
               .tune(n_trials=1))
        assert exp.tune_artifact.meta["epochs_per_trial"] == 1

    def test_tune_artifact_nonfinite_score_roundtrip(self, tmp_path):
        from repro.api import TuneArtifact
        from repro.train import Trial

        art = TuneArtifact(
            meta={"n_trials": 2},
            best=Trial(config={"lr": 1e-3}, score=0.5),
            trials=[Trial(config={"lr": 1e-3}, score=0.5),
                    Trial(config={"lr": 9.0}, score=float("inf"))],
        )
        path = art.save(str(tmp_path / "tune"))
        # The document must be strict RFC JSON (no bare Infinity token).
        import json

        with open(path, encoding="utf-8") as fh:
            json.load(fh, parse_constant=lambda s: pytest.fail(f"non-RFC {s}"))
        loaded = TuneArtifact.load(path)
        assert loaded.trials[1].score == float("inf")
        assert loaded.best.score == 0.5

class TestShuffleBuffer:
    """Bounded streaming shuffle between the window assembler and batcher."""

    def test_yields_input_multiset_bounded_displacement(self):
        from repro.train import ShuffleBuffer

        cap = 8
        out = list(ShuffleBuffer(cap, np.random.default_rng(5))(iter(range(1000))))
        assert sorted(out) == list(range(1000))
        assert out != list(range(1000))
        # An item cannot be emitted before the buffer has seen it: position
        # of item v is at least v - capacity, the memory bound's signature.
        for pos, v in enumerate(out):
            assert pos >= v - cap

    def test_full_permutation_when_stream_fits(self):
        from repro.train import ShuffleBuffer

        out = list(ShuffleBuffer(100, np.random.default_rng(0))(iter(range(30))))
        assert sorted(out) == list(range(30)) and out != list(range(30))

    def test_deterministic_per_rng(self):
        from repro.train import ShuffleBuffer

        runs = [
            list(ShuffleBuffer(8, np.random.default_rng(5))(iter(range(500))))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_capacity_validation(self):
        from repro.train import ShuffleBuffer

        with pytest.raises(ValueError):
            ShuffleBuffer(0, np.random.default_rng(0))

    def test_stream_feed_shuffle_reorders_not_resamples(self):
        """A shuffled feed emits the same sample multiset per epoch, in a
        different (but seed-deterministic) order, and shuffle=0 stays the
        byte-identical arrival-order stream."""
        case = sst_case()
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=8)
        sres = subsample(ds, case, seed=0, mode="stream")

        def batches(shuffle):
            assembler = stream_assembler(as_source(ds), case, sres.points)
            feed = StreamFeed(as_source(ds), assembler, batch=4, seed=0,
                              shuffle=shuffle)
            return [x for xb, _ in feed.train_batches(0) for x in xb]

        plain, shuffled, shuffled2 = batches(0), batches(32), batches(32)
        key = lambda xs: sorted(x.tobytes() for x in xs)
        assert key(plain) == key(shuffled)  # same samples...
        assert [x.tobytes() for x in plain] != [x.tobytes() for x in shuffled]
        assert [x.tobytes() for x in shuffled] == [x.tobytes() for x in shuffled2]

    def test_shuffled_stream_loss_ks_bounded_vs_offline(self):
        """Acceptance: with the shuffle buffer on, the stream fit stays
        within the same KS bound of the offline (fully shuffled) fit that
        the arrival-order stream fit is held to."""
        case = sst_case(epochs=5, num_hypercubes=6)
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=10)

        def pointwise_errors(model, batches):
            errs = []
            model.eval()
            with no_grad():
                for xb, yb in batches:
                    pred = model(Tensor(xb)).data
                    errs.append(np.abs(pred - yb).ravel())
            return np.sort(np.concatenate(errs))

        sres = subsample(ds, case, seed=0, mode="stream", nranks=2)
        assembler = stream_assembler(as_source(ds), case, sres.points)
        sfeed = StreamFeed(as_source(ds), assembler, batch=4, test_frac=0.2,
                           seed=0, shuffle=64)
        smodel = build_model_for_case(case, sfeed.spec, rng=0)
        sfit = TrainLoop(smodel, seed=0).fit(sfeed, epochs=5)
        errs_s = pointwise_errors(smodel, sfeed.eval_batches())

        bres = subsample(ds, case, seed=0)
        data = build_reconstruction_data(ds, bres, window=2, horizon=1)
        bmodel = build_model_for_case(case, data, rng=0)
        bfeed = ArrayFeed(data.x, data.y, batch=4, test_frac=0.2, seed=0)
        bfit = TrainLoop(bmodel, seed=0).fit(bfeed, epochs=5)
        errs_b = pointwise_errors(bmodel, bfeed.eval_batches())

        ratio = sfit.final_test_loss / bfit.final_test_loss
        assert 0.2 < ratio < 5.0, f"stream/offline loss ratio {ratio:.2f}"
        grid = np.linspace(0.0, max(errs_s.max(), errs_b.max()), 512)
        cdf_s = np.searchsorted(errs_s, grid) / len(errs_s)
        cdf_b = np.searchsorted(errs_b, grid) / len(errs_b)
        ks = float(np.abs(cdf_s - cdf_b).max())
        assert ks < 0.35, f"KS distance {ks:.3f} exceeds tolerance"

    def test_shuffle_state_roundtrip_resumes_draws(self):
        """The feed cursor carries the shuffle RNG: restoring it replays
        the identical remaining shuffle sequence."""
        case = sst_case()
        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=8)
        sres = subsample(ds, case, seed=0, mode="stream")

        def feed():
            assembler = stream_assembler(as_source(ds), case, sres.points)
            return StreamFeed(as_source(ds), assembler, batch=4, seed=0,
                              shuffle=32)

        a, b = feed(), feed()
        list(a.train_batches(0))  # advance epoch 0
        b.load_state(a.state())  # b never streamed; jump to a's cursor
        xa = [x.tobytes() for xb, _ in a.train_batches(1) for x in xb]
        xb_ = [x.tobytes() for xb, _ in b.train_batches(1) for x in xb]
        assert xa == xb_
