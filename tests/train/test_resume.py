"""Resume determinism: a fit interrupted at epoch k and resumed from its
checkpoint must match an uninterrupted fit bitwise — per seed, per rank
count — including the plateau scheduler's counters and the energy meter."""

import os

import numpy as np
import pytest

from repro.data import build_dataset
from repro.nn import LSTMRegressor
from repro.sampling import subsample
from repro.train import (
    ArrayFeed,
    Checkpoint,
    Trainer,
    TrainLoop,
    build_drag_data,
    peek_checkpoint,
)
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


@pytest.fixture(scope="module")
def drag_xy():
    of2d = build_dataset("OF2D", scale=0.4, rng=0, n_snapshots=30)
    case = CaseConfig(
        shared=SharedConfig(dims=2),
        subsample=SubsampleConfig(
            hypercubes="random", method="random", num_hypercubes=3,
            num_samples=16, num_clusters=4, nxsl=12, nysl=12, nzsl=1,
        ),
        train=TrainConfig(arch="lstm", window=3),
    )
    res = subsample(of2d, case, seed=0)
    return build_drag_data(of2d, res, window=3)


def _fit(x, y, epochs, seed=0, patience=20, comm=None, checkpoint=None,
         resume=None, every=1):
    model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=seed)
    callbacks = [Checkpoint(checkpoint, every=every)] if checkpoint else []
    loop = TrainLoop(model, lr=5e-3, patience=patience, comm=comm, seed=seed,
                     callbacks=callbacks)
    feed = ArrayFeed(x, y, batch=8, seed=seed, comm=loop.comm)
    result = loop.fit(feed, epochs=epochs, resume=resume)
    return loop, result


def assert_bitwise_equal(a, b):
    assert a.train_losses == b.train_losses
    assert a.test_losses == b.test_losses
    assert a.final_test_loss == b.final_test_loss
    assert a.best_test_loss == b.best_test_loss
    assert a.epochs_run == b.epochs_run
    assert a.lr_reductions == b.lr_reductions
    assert a.energy.flops_gpu == b.energy.flops_gpu
    assert a.energy.flops_cpu == b.energy.flops_cpu
    assert a.energy.bytes_gpu == b.energy.bytes_gpu
    # The virtual clock is summed in two segments on resume, so elapsed may
    # differ by float non-associativity (one ulp); counters stay bitwise.
    assert a.energy.elapsed == pytest.approx(b.energy.elapsed, rel=1e-12, abs=1e-18)


class TestSerialResume:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_interrupt_and_resume_matches_uninterrupted(self, drag_xy, tmp_path, seed):
        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        _, full = _fit(x, y, epochs=6, seed=seed)
        _fit(x, y, epochs=3, seed=seed, checkpoint=ck)
        loop, resumed = _fit(x, y, epochs=6, seed=seed, resume=ck)
        assert_bitwise_equal(full, resumed)
        assert resumed.meta["resumed_from"].startswith(str(tmp_path))
        assert resumed.meta["resumed_at_epoch"] == 3

    def test_model_weights_match_bitwise(self, drag_xy, tmp_path):
        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        full_loop, _ = _fit(x, y, epochs=5)
        _fit(x, y, epochs=2, checkpoint=ck)
        res_loop, _ = _fit(x, y, epochs=5, resume=ck)
        for name, p in full_loop.model.state_dict().items():
            assert np.array_equal(p, res_loop.model.state_dict()[name]), name

    def test_plateau_scheduler_state_survives(self, drag_xy, tmp_path):
        """patience=0 forces LR reductions; the resumed fit must replay the
        same reduction schedule bit-for-bit."""
        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        _, full = _fit(x, y, epochs=8, patience=0)
        assert full.lr_reductions > 0  # the scenario actually exercises it
        _fit(x, y, epochs=4, patience=0, checkpoint=ck)
        _, resumed = _fit(x, y, epochs=8, patience=0, resume=ck)
        assert_bitwise_equal(full, resumed)

    def test_checkpoint_every_k(self, drag_xy, tmp_path):
        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        _, full = _fit(x, y, epochs=6)
        _fit(x, y, epochs=4, checkpoint=ck, every=2)
        assert peek_checkpoint(ck)["next_epoch"] == 4
        _, resumed = _fit(x, y, epochs=6, resume=ck)
        assert_bitwise_equal(full, resumed)

    def test_checkpoint_is_atomic_file(self, drag_xy, tmp_path):
        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        _fit(x, y, epochs=2, checkpoint=ck)
        assert os.path.isfile(ck)
        assert not os.path.exists(ck + ".tmp")
        meta = peek_checkpoint(ck)
        assert meta["ranks"] == 1
        assert meta["next_epoch"] == 2
        assert "plateau" in meta["callbacks"]

    def test_early_stop_writes_final_checkpoint(self, drag_xy, tmp_path):
        """An early stop off the save cadence must still persist the last
        epoch's state (the docstring's 'and the last one')."""
        from repro.nn import LSTMRegressor
        from repro.train import EarlyStopping

        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
        loop = TrainLoop(model, lr=5e-3, seed=0,
                         callbacks=[Checkpoint(ck, every=50),
                                    EarlyStopping(patience=0)])
        feed = ArrayFeed(x, y, batch=8, seed=0)
        result = loop.fit(feed, epochs=40)
        assert result.epochs_run < 40
        assert peek_checkpoint(ck)["next_epoch"] == result.epochs_run

    def test_warm_restart_checkpoints_again(self, drag_xy, tmp_path):
        """A second fit() on the same loop must write its own checkpoint
        (the save-epoch memo resets per fit)."""
        import os

        from repro.nn import LSTMRegressor

        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
        loop = TrainLoop(model, lr=5e-3, seed=0, callbacks=[Checkpoint(ck, every=3)])
        feed = ArrayFeed(x, y, batch=8, seed=0)
        loop.fit(feed, epochs=3)
        first = os.stat(ck).st_mtime_ns
        loop.fit(ArrayFeed(x, y, batch=8, seed=0), epochs=3)
        assert os.stat(ck).st_mtime_ns > first

    def test_resume_missing_file_raises(self, drag_xy, tmp_path):
        x, y = drag_xy
        with pytest.raises(FileNotFoundError):
            _fit(x, y, epochs=2, resume=str(tmp_path / "nope.npz"))

    def test_resume_wrong_seed_raises(self, drag_xy, tmp_path):
        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        _fit(x, y, epochs=2, seed=0, checkpoint=ck)
        with pytest.raises(ValueError, match="seed"):
            _fit(x, y, epochs=4, seed=1, resume=ck)

    def test_resume_wrong_rank_count_raises(self, drag_xy, tmp_path):
        from repro.parallel import run_spmd

        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        run_spmd(lambda comm: _fit(x, y, epochs=2, comm=comm, checkpoint=ck)[1], 2)
        with pytest.raises(ValueError, match="rank count"):
            _fit(x, y, epochs=4, resume=ck)


class TestDistributedResume:
    def test_ddp_resume_matches_uninterrupted(self, drag_xy, tmp_path):
        from repro.parallel import run_spmd

        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")

        def prog(comm, epochs, checkpoint=None, resume=None):
            return _fit(x, y, epochs=epochs, comm=comm, checkpoint=checkpoint,
                        resume=resume)[1]

        # Checkpoint gathers are discounted from the energy clock, so the
        # resumed run matches a reference that never checkpointed at all.
        full = run_spmd(lambda c: prog(c, 5), 2)
        run_spmd(lambda c: prog(c, 2, checkpoint=ck), 2)
        resumed = run_spmd(lambda c: prog(c, 5, checkpoint=ck, resume=ck), 2)
        # Every rank's result (losses, energy, per-rank shard history)
        # matches the uninterrupted run bitwise.
        for rank in range(2):
            assert_bitwise_equal(full[rank], resumed[rank])

    def test_ddp_checkpoint_stores_per_rank_state(self, drag_xy, tmp_path):
        from repro.parallel import run_spmd

        x, y = drag_xy
        ck = str(tmp_path / "ck.npz")
        run_spmd(lambda c: _fit(x, y, epochs=2, comm=c, checkpoint=ck)[1], 2)
        meta = peek_checkpoint(ck)
        assert meta["ranks"] == 2
        assert len(meta["per_rank"]) == 2
        # Ranks shard the training split, so their loss histories differ.
        assert (meta["per_rank"][0]["train_losses"]
                != meta["per_rank"][1]["train_losses"])


class TestStreamResume:
    def _exp(self, epochs, seed=0, ranks=1, checkpoint=None, resume=None):
        from repro.api import Experiment

        ds = build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=6)
        case = CaseConfig(
            shared=SharedConfig(dims=3),
            subsample=SubsampleConfig(
                hypercubes="maxent", method="maxent", num_hypercubes=3,
                num_samples=64, num_clusters=4, nxsl=8, nysl=8, nzsl=8,
            ),
            train=TrainConfig(epochs=epochs, batch=4, window=2, horizon=1,
                              arch="mlp_transformer"),
        )
        exp = (Experiment.from_case(case).with_dataset(ds).with_seed(seed)
               .with_train_ranks(ranks)
               .subsample(mode="stream")
               .train(mode="stream", checkpoint=checkpoint, resume=resume))
        return exp.train_artifact.result

    def test_stream_resume_matches_uninterrupted(self, tmp_path):
        ck = str(tmp_path / "ck.npz")
        full = self._exp(epochs=4)
        self._exp(epochs=2, checkpoint=ck)
        resumed = self._exp(epochs=4, resume=ck)
        assert_bitwise_equal(full, resumed)

    def test_stream_ddp_resume_matches_uninterrupted(self, tmp_path):
        ck = str(tmp_path / "ck.npz")
        full = self._exp(epochs=3, ranks=2)
        self._exp(epochs=1, ranks=2, checkpoint=ck)
        resumed = self._exp(epochs=3, ranks=2, resume=ck)
        assert_bitwise_equal(full, resumed)
