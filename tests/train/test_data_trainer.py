"""Tests for training-data assembly and the Trainer loop."""

import numpy as np
import pytest

from repro.data import build_dataset
from repro.nn import LSTMRegressor, MLPTransformer, CNNTransformer
from repro.sampling import subsample
from repro.train import (
    Trainer,
    build_drag_data,
    build_reconstruction_data,
    train_test_split,
)
from repro.train.data import _windows
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


@pytest.fixture(scope="module")
def sst():
    return build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)


@pytest.fixture(scope="module")
def of2d():
    return build_dataset("OF2D", scale=0.4, rng=0, n_snapshots=30)


def case(method="random", cube=8, num_hypercubes=4, num_samples=24, arch="mlp_transformer"):
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes="random", method=method, num_hypercubes=num_hypercubes,
            num_samples=num_samples, num_clusters=4, nxsl=cube, nysl=cube, nzsl=cube,
        ),
        train=TrainConfig(arch=arch),
    )


class TestWindows:
    def test_window_one(self):
        pairs = _windows(3, 1, 1)
        assert pairs == [([0], [0]), ([1], [1]), ([2], [2])]

    def test_window_two_horizon_one(self):
        pairs = _windows(4, 2, 1)
        assert pairs[0] == ([0, 1], [1])
        assert len(pairs) == 3

    def test_horizon_capped(self):
        with pytest.raises(ValueError):
            _windows(5, 2, 3)

    def test_too_few_snapshots(self):
        with pytest.raises(ValueError):
            _windows(1, 2, 1)


class TestSplit:
    def test_shapes_and_disjoint(self):
        x = np.arange(100)[:, None].astype(float)
        y = np.arange(100)[:, None].astype(float)
        xtr, ytr, xte, yte = train_test_split(x, y, test_frac=0.1, rng=0)
        assert len(xte) == 10 and len(xtr) == 90
        assert set(xtr[:, 0]) | set(xte[:, 0]) == set(range(100))
        assert not set(xtr[:, 0]) & set(xte[:, 0])

    def test_invalid_frac(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros((4, 1)), test_frac=1.0)


class TestReconstructionData:
    def test_unstructured_shapes(self, sst):
        res = subsample(sst, case(), seed=0)
        data = build_reconstruction_data(sst, res, window=2, horizon=1)
        b, t, c, n = data.x.shape
        assert t == 2 and c == 3  # u, v, w
        assert data.y.shape[1:3] == (1, 1)  # T'=1, p only
        assert data.y.shape[3:] == (8, 8, 8)
        assert data.n_points == n
        # One sample per selected cube with enough history.
        assert b <= len(res.selected_cube_ids)

    def test_structured_shapes(self, sst):
        res = subsample(sst, case(method="full", arch="cnn_transformer"), seed=0)
        data = build_reconstruction_data(sst, res, window=1, horizon=1)
        assert data.x.shape[0] == len(res.cubes)
        assert data.x.shape[2:] == (3, 8, 8, 8)
        assert data.y.shape[2:] == (1, 8, 8, 8)
        assert data.n_points is None

    def test_selection_determines_samples(self, sst):
        """Different cube selections must yield different training sets."""
        a = subsample(sst, case(method="full", arch="cnn_transformer"), seed=0)
        b = subsample(sst, case(method="full", arch="cnn_transformer"), seed=3)
        da = build_reconstruction_data(sst, a, window=1, horizon=1)
        db = build_reconstruction_data(sst, b, window=1, horizon=1)
        if not np.array_equal(a.selected_cube_ids, b.selected_cube_ids):
            assert da.x.shape != db.x.shape or not np.allclose(da.x, db.x)

    def test_sensors_fixed_across_window(self, sst):
        """Within a window the same sensor locations are observed each step."""
        res = subsample(sst, case(num_hypercubes=4, num_samples=8), seed=0)
        data = build_reconstruction_data(sst, res, window=2, horizon=1)
        assert data.x.shape[1] == 2
        # Different timesteps of the same sample differ in values (flow
        # evolves) while the shape/sensor count is constant.
        assert not np.allclose(data.x[0, 0], data.x[0, 1])

    def test_requires_output_vars(self, of2d):
        res = subsample(of2d, _of2d_case(), seed=0)
        with pytest.raises(ValueError, match="no output variables"):
            build_reconstruction_data(of2d, res)


def _of2d_case(num_samples=16):
    return CaseConfig(
        shared=SharedConfig(dims=2),
        subsample=SubsampleConfig(
            hypercubes="random", method="random", num_hypercubes=3,
            num_samples=num_samples, num_clusters=4, nxsl=12, nysl=12, nzsl=1,
        ),
        train=TrainConfig(arch="lstm"),
    )


class TestDragData:
    def test_shapes(self, of2d):
        res = subsample(of2d, _of2d_case(), seed=0)
        x, y = build_drag_data(of2d, res, window=3)
        assert x.ndim == 3 and x.shape[1] == 3
        assert y.shape == (x.shape[0], 1, 1)
        assert x.shape[0] == of2d.n_snapshots - 2

    def test_targets_are_drag(self, of2d):
        res = subsample(of2d, _of2d_case(), seed=0)
        _, y = build_drag_data(of2d, res, window=1)
        assert np.allclose(y[:, 0, 0], of2d.target)

    def test_requires_target(self, sst):
        res = subsample(sst, case(), seed=0)
        with pytest.raises(ValueError, match="no global target"):
            build_drag_data(sst, res)


class TestTrainer:
    def test_fit_lstm_on_drag(self, of2d):
        res = subsample(of2d, _of2d_case(), seed=0)
        x, y = build_drag_data(of2d, res, window=3)
        model = LSTMRegressor(input_dim=x.shape[2], hidden=16, rng=0)
        trainer = Trainer(model, epochs=30, batch=8, lr=5e-3, seed=0)
        result = trainer.fit(x, y)
        assert result.final_test_loss < result.test_losses[0]
        assert result.energy.total_energy > 0
        assert len(result.train_losses) == 30

    def test_fit_mlp_transformer(self, sst):
        res = subsample(sst, case(num_samples=16, num_hypercubes=3), seed=0)
        data = build_reconstruction_data(sst, res, window=1, horizon=1)
        model = MLPTransformer(
            in_channels=data.in_channels, n_points=data.n_points,
            out_channels=data.out_channels, grid=data.grid,
            window=1, horizon=1, d_model=16, depth=1, n_heads=2, rng=0,
        )
        trainer = Trainer(model, epochs=4, batch=4, seed=0)
        result = trainer.fit(data.x, data.y)
        assert np.isfinite(result.final_test_loss)

    def test_fit_cnn_transformer(self, sst):
        res = subsample(sst, case(method="full", arch="cnn_transformer", num_hypercubes=3), seed=0)
        data = build_reconstruction_data(sst, res, window=1, horizon=1)
        model = CNNTransformer(
            in_channels=data.in_channels, out_channels=data.out_channels,
            grid=data.grid, window=1, horizon=1, d_model=16, depth=1, n_heads=2, rng=0,
        )
        trainer = Trainer(model, epochs=2, batch=2, seed=0)
        result = trainer.fit(data.x, data.y)
        assert np.isfinite(result.final_test_loss)

    def test_report_greppable(self, of2d):
        res = subsample(of2d, _of2d_case(), seed=0)
        x, y = build_drag_data(of2d, res, window=2)
        model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
        result = Trainer(model, epochs=2, seed=0).fit(x, y)
        text = result.report()
        assert "Evaluation on test set" in text
        assert "Total Energy Consumed" in text

    def test_ddp_trainer_matches_serial_loss_scale(self, of2d):
        """Distributed fit must produce a comparable loss to serial."""
        from repro.parallel import run_spmd

        res = subsample(of2d, _of2d_case(), seed=0)
        x, y = build_drag_data(of2d, res, window=2)

        def prog(comm):
            model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
            trainer = Trainer(model, epochs=10, batch=8, comm=comm, seed=0)
            return trainer.fit(x, y).final_test_loss

        serial = prog(__import__("repro.parallel", fromlist=["SerialComm"]).SerialComm())
        dist = run_spmd(prog, 2)
        assert np.isfinite(dist.values[0])
        # Same seed/protocol: losses in the same ballpark.
        assert dist.values[0] < max(10 * serial, serial + 1.0)

    def test_precision_flag(self, of2d):
        res = subsample(of2d, _of2d_case(), seed=0)
        x, y = build_drag_data(of2d, res, window=2)
        model = LSTMRegressor(input_dim=x.shape[2], hidden=8, rng=0)
        result = Trainer(model, epochs=2, precision="bf16", seed=0).fit(x, y)
        assert np.isfinite(result.final_test_loss)

    def test_invalid_params(self):
        model = LSTMRegressor(input_dim=2, rng=0)
        with pytest.raises(ValueError):
            Trainer(model, epochs=0)


class TestTuning:
    def test_finds_minimum_of_quadratic(self):
        from repro.train import SearchSpace, tune

        space = SearchSpace({"a": ("float", -2.0, 2.0), "b": ("log", 1e-3, 1e1)})

        def objective(cfg):
            return (cfg["a"] - 0.5) ** 2 + (np.log10(cfg["b"]) + 1) ** 2

        best, trials = tune(objective, space, n_trials=40, strategy="bayes", rng=0)
        assert len(trials) == 40
        assert abs(best.config["a"] - 0.5) < 0.5
        assert best.score < 0.5

    def test_bayes_beats_or_matches_random(self):
        from repro.train import SearchSpace, tune

        space = SearchSpace({"x": ("float", 0.0, 1.0), "y": ("float", 0.0, 1.0)})

        def objective(cfg):
            return (cfg["x"] - 0.3) ** 2 + (cfg["y"] - 0.7) ** 2

        scores_b, scores_r = [], []
        for seed in range(5):
            b, _ = tune(objective, space, n_trials=25, strategy="bayes", rng=seed)
            r, _ = tune(objective, space, n_trials=25, strategy="random", rng=seed)
            scores_b.append(b.score)
            scores_r.append(r.score)
        assert np.mean(scores_b) <= np.mean(scores_r) * 1.5

    def test_choice_and_int_params(self):
        from repro.train import SearchSpace, tune

        space = SearchSpace({
            "layers": ("int", 1, 4),
            "act": ("choice", ["relu", "tanh"]),
        })
        best, _ = tune(lambda c: c["layers"] + (0 if c["act"] == "tanh" else 1),
                       space, n_trials=15, rng=0)
        assert best.config["layers"] == 1
        assert best.config["act"] == "tanh"

    def test_nonfinite_scores_survived(self):
        from repro.train import SearchSpace, tune

        space = SearchSpace({"x": ("float", 0.0, 1.0)})
        best, trials = tune(
            lambda c: float("nan") if c["x"] > 0.5 else c["x"],
            space, n_trials=10, rng=0,
        )
        assert np.isfinite(best.score)
