"""Tests for the YAML-subset parser/emitter."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.miniyaml import MiniYamlError, dumps, loads, parse_scalar


class TestScalars:
    def test_int(self):
        assert parse_scalar("42") == 42

    def test_negative_int(self):
        assert parse_scalar("-7") == -7

    def test_float(self):
        assert parse_scalar("3.14") == pytest.approx(3.14)

    def test_scientific(self):
        assert parse_scalar("1e-3") == pytest.approx(1e-3)

    def test_bools(self):
        assert parse_scalar("true") is True
        assert parse_scalar("False") is False

    def test_null_variants(self):
        assert parse_scalar("null") is None
        assert parse_scalar("~") is None

    def test_quoted_string_keeps_type(self):
        assert parse_scalar('"42"') == "42"
        assert parse_scalar("'true'") == "true"

    def test_bare_string(self):
        assert parse_scalar("maxent") == "maxent"


class TestDocuments:
    def test_flat_mapping(self):
        assert loads("a: 1\nb: two\n") == {"a": 1, "b": "two"}

    def test_nested_mapping(self):
        doc = loads("outer:\n  inner: 5\n  other: x\ntop: 1\n")
        assert doc == {"outer": {"inner": 5, "other": "x"}, "top": 1}

    def test_flow_sequence(self):
        assert loads("vars: [u, v, w, r]\n") == {"vars": ["u", "v", "w", "r"]}

    def test_flow_mapping(self):
        assert loads("m: {a: 1, b: 2}\n") == {"m": {"a": 1, "b": 2}}

    def test_block_sequence(self):
        assert loads("items:\n  - 1\n  - 2\n  - three\n") == {"items": [1, 2, "three"]}

    def test_sequence_of_mappings(self):
        doc = loads("runs:\n  - name: a\n    n: 1\n  - name: b\n    n: 2\n")
        assert doc == {"runs": [{"name": "a", "n": 1}, {"name": "b", "n": 2}]}

    def test_comments_and_blanks(self):
        doc = loads("# header\na: 1  # trailing\n\nb: 2\n")
        assert doc == {"a": 1, "b": 2}

    def test_hash_inside_quotes_kept(self):
        assert loads('key: "a#b"\n') == {"key": "a#b"}

    def test_empty_document(self):
        assert loads("") == {}
        assert loads("# only a comment\n") == {}

    def test_null_value_key(self):
        assert loads("a:\nb: 1\n") == {"a": None, "b": 1}

    def test_tabs_rejected(self):
        with pytest.raises(MiniYamlError):
            loads("a:\n\tb: 1\n")

    def test_missing_colon_rejected(self):
        with pytest.raises(MiniYamlError):
            loads("just a line\n")

    def test_unterminated_flow_rejected(self):
        with pytest.raises(MiniYamlError):
            loads("a: [1, 2\n")

    def test_nested_flow(self):
        assert loads("a: [[1, 2], [3]]\n") == {"a": [[1, 2], [3]]}

    def test_paper_sst_case(self):
        """The sample YAML from the paper's appendix parses faithfully."""
        text = """
shared:
  dims: 3
  dtype: sst-binary
  input_vars: [u, v, w, r]
  output_vars: p
  cluster_var: pv
  nx: 514
  ny: 512
  nz: 256
  gravity: z
  fileprefix: "SST-P1-H{hypercubes}-C{num_hypercubes}"+\\
    "-X{method}-ns{num_samples}-window{window}"
subsample:
  hypercubes: maxent
  num_hypercubes: 32
  method: maxent
  path: /path/to/P1F4R32_testing/raw_data/
  num_samples: 3277
  num_clusters: 20
  nxsl: 32
  nysl: 32
  nzsl: 32
train:
  epochs: 1000
  batch: 16
  target: p_full
  window: 1
  arch: MLP_transformer
  sequence: true
"""
        doc = loads(text)
        assert doc["shared"]["nx"] == 514
        assert doc["shared"]["input_vars"] == ["u", "v", "w", "r"]
        assert doc["shared"]["fileprefix"] == (
            "SICKLE" and "SST-P1-H{hypercubes}-C{num_hypercubes}-X{method}-ns{num_samples}-window{window}"
        )
        assert doc["subsample"]["num_samples"] == 3277
        assert doc["train"]["sequence"] is True


class TestRoundTrip:
    def test_simple_roundtrip(self):
        doc = {"a": 1, "b": [1, 2, 3], "c": {"d": "x", "e": 2.5}, "f": True, "g": None}
        assert loads(dumps(doc)) == doc

    def test_string_needing_quotes(self):
        doc = {"k": "a: b # c"}
        assert loads(dumps(doc)) == doc

    scalars = st.one_of(
        st.integers(min_value=-(10**9), max_value=10**9),
        st.booleans(),
        st.none(),
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=12,
        ),
    )

    @given(
        st.dictionaries(
            st.text(alphabet="abcdefghij_", min_size=1, max_size=8),
            st.one_of(
                scalars,
                st.lists(scalars, max_size=4),
                st.dictionaries(
                    st.text(alphabet="klmnop", min_size=1, max_size=6), scalars, max_size=3
                ),
            ),
            max_size=6,
        )
    )
    def test_roundtrip_property(self, doc):
        assert loads(dumps(doc)) == doc
