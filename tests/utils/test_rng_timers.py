"""Tests for RNG management and timers."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, resolve_rng, spawn_rngs
from repro.utils.timers import Timer


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(7), make_rng(7)
        assert np.array_equal(a.random(16), b.random(16))

    def test_spawned_streams_differ(self):
        rngs = spawn_rngs(123, 4)
        draws = [r.random(8) for r in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_deterministic(self):
        a = [r.random(4) for r in spawn_rngs(5, 3)]
        b = [r.random(4) for r in spawn_rngs(5, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_resolve_passthrough(self):
        rng = make_rng(1)
        assert resolve_rng(rng) is rng

    def test_resolve_seed(self):
        assert np.array_equal(resolve_rng(9).random(4), make_rng(9).random(4))


class TestTimer:
    def test_context_accumulates(self):
        t = Timer()
        with t:
            sum(range(1000))
        first = t.elapsed
        assert first > 0
        with t:
            sum(range(1000))
        assert t.elapsed > first

    def test_double_start_rejected(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
