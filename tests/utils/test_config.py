"""Tests for typed case configuration."""

import pytest

from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


class TestSharedConfig:
    def test_defaults(self):
        cfg = SharedConfig()
        assert cfg.dims == 3
        assert cfg.grid_shape == (64, 64, 32)
        assert cfg.n_points == 64 * 64 * 32

    def test_2d_forces_nz_one(self):
        cfg = SharedConfig(dims=2, nx=100, ny=50, nz=999)
        assert cfg.nz == 1
        assert cfg.grid_shape == (100, 50)
        assert cfg.n_points == 5000

    def test_bad_dims(self):
        with pytest.raises(ValueError, match="dims"):
            SharedConfig(dims=4)

    def test_bad_gravity(self):
        with pytest.raises(ValueError, match="gravity"):
            SharedConfig(gravity="w")

    def test_bad_grid(self):
        with pytest.raises(ValueError, match="nx"):
            SharedConfig(nx=0)


class TestSubsampleConfig:
    def test_defaults(self):
        cfg = SubsampleConfig()
        assert cfg.hypercube_shape == (32, 32, 32)
        assert cfg.points_per_hypercube == 32768

    def test_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            SubsampleConfig(method="bogus")

    def test_bad_hypercube_selector(self):
        with pytest.raises(ValueError, match="hypercubes"):
            SubsampleConfig(hypercubes="bogus")

    def test_num_clusters_minimum(self):
        with pytest.raises(ValueError, match="num_clusters"):
            SubsampleConfig(num_clusters=1)

    def test_sampling_rate_bounds(self):
        with pytest.raises(ValueError, match="sampling_rate"):
            SubsampleConfig(sampling_rate=1.5)
        assert SubsampleConfig(sampling_rate=0.1).sampling_rate == 0.1


class TestTrainConfig:
    def test_window_one_forces_no_sequence(self):
        # Paper rule: "When --window 1 use --sequence false".
        cfg = TrainConfig(window=1, sequence=True)
        assert cfg.sequence is False

    def test_window_two_keeps_sequence(self):
        cfg = TrainConfig(window=2, sequence=True)
        assert cfg.sequence is True

    def test_arch_case_insensitive(self):
        assert TrainConfig(arch="MLP_Transformer").arch == "mlp_transformer"

    def test_bad_arch(self):
        with pytest.raises(ValueError, match="arch"):
            TrainConfig(arch="resnet")

    def test_bad_precision(self):
        with pytest.raises(ValueError, match="precision"):
            TrainConfig(precision="fp8")

    def test_bad_test_frac(self):
        with pytest.raises(ValueError, match="test_frac"):
            TrainConfig(test_frac=0.0)


class TestCaseConfig:
    def test_full_method_requires_cnn(self):
        # Paper rule: "When --method full use --arch CNN_Transformer".
        with pytest.raises(ValueError, match="structured hypercubes"):
            CaseConfig(
                subsample=SubsampleConfig(method="full"),
                train=TrainConfig(arch="lstm"),
            )

    def test_full_method_with_cnn_ok(self):
        cfg = CaseConfig(
            subsample=SubsampleConfig(method="full"),
            train=TrainConfig(arch="cnn_transformer"),
        )
        assert cfg.subsample.method == "full"

    def test_num_samples_capped_by_hypercube(self):
        with pytest.raises(ValueError, match="exceeds points per"):
            CaseConfig(subsample=SubsampleConfig(num_samples=10**6, nxsl=8, nysl=8, nzsl=8))

    def test_from_yaml_paper_case(self):
        text = """
shared:
  dims: 3
  dtype: sst-binary
  input_vars: [u, v, w, r]
  output_vars: p
  cluster_var: pv
  nx: 64
  ny: 64
  nz: 32
  gravity: z
subsample:
  hypercubes: maxent
  num_hypercubes: 32
  method: maxent
  num_samples: 3277
  num_clusters: 20
  nxsl: 32
  nysl: 32
  nzsl: 32
train:
  epochs: 10
  batch: 16
  target: p_full
  window: 1
  arch: MLP_transformer
  sequence: true
"""
        cfg = CaseConfig.from_yaml(text)
        assert cfg.shared.input_vars == ["u", "v", "w", "r"]
        assert cfg.shared.output_vars == ["p"]
        assert cfg.subsample.num_samples == 3277
        assert cfg.train.arch == "mlp_transformer"
        assert cfg.train.sequence is False  # window 1 rule applied

    def test_space_separated_vars(self):
        cfg = CaseConfig.from_dict({"shared": {"input_vars": "u v w r", "output_vars": "p"}})
        assert cfg.shared.input_vars == ["u", "v", "w", "r"]

    def test_roundtrip_dict(self):
        cfg = CaseConfig()
        again = CaseConfig.from_dict(cfg.to_dict())
        assert again.to_dict() == cfg.to_dict()

    def test_unknown_keys_ignored(self):
        cfg = CaseConfig.from_dict({"shared": {"dims": 2, "mystery": 1}, "train": {"epochs": 3}})
        assert cfg.shared.dims == 2
        assert cfg.train.epochs == 3
