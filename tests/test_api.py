"""End-to-end tests for the repro.api Experiment facade and Artifacts."""

import numpy as np
import pytest

from repro.api import Experiment, SubsampleArtifact, TrainArtifact
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig

CASE_YAML = """
shared:
  dims: 3
  dtype: sst-binary
  input_vars: [u, v, w]
  output_vars: p
  cluster_var: pv
  gravity: z
  fileprefix: "api-test"
subsample:
  hypercubes: maxent
  num_hypercubes: 3
  method: maxent
  num_samples: 64
  num_clusters: 4
  nxsl: 8
  nysl: 8
  nzsl: 8
train:
  epochs: 2
  batch: 4
  window: 1
  arch: MLP_transformer
"""


def make_case(**sub_overrides):
    sub = dict(
        hypercubes="maxent", method="maxent", num_hypercubes=3,
        num_samples=64, num_clusters=4, nxsl=8, nysl=8, nzsl=8,
    )
    sub.update(sub_overrides)
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(**sub),
        train=TrainConfig(epochs=2, batch=4, window=1, arch="mlp_transformer"),
    )


@pytest.fixture()
def case_file(tmp_path):
    path = tmp_path / "case.yaml"
    path.write_text(CASE_YAML)
    return str(path)


class TestConstruction:
    def test_from_case_accepts_path_dict_and_config(self, case_file):
        for case in (case_file, {"subsample": {"num_hypercubes": 3}}, make_case()):
            exp = Experiment.from_case(case)
            assert isinstance(exp.case, CaseConfig)

    def test_fluent_builders_chain(self, case_file):
        exp = (Experiment.from_case(case_file)
               .with_ranks(2).with_train_ranks(2).with_seed(7)
               .with_scale(0.5).with_epochs(3))
        assert (exp.ranks, exp.train_ranks, exp.seed, exp.scale, exp.epochs) == \
            (2, 2, 7, 0.5, 3)

    def test_builder_validation(self):
        exp = Experiment.from_case(make_case())
        with pytest.raises(ValueError):
            exp.with_ranks(0)
        with pytest.raises(ValueError):
            exp.with_scale(0.0)
        with pytest.raises(ValueError):
            exp.with_epochs(0)

    def test_dataset_mutation_after_stage_refused(self):
        """Once a stage has run, seed/scale/dataset changes would desync the
        recorded artifacts from the dataset — they must be rejected."""
        from repro.data import build_dataset

        exp = Experiment.from_case(make_case()).with_scale(0.5).subsample()
        with pytest.raises(RuntimeError, match="after a stage has run"):
            exp.with_seed(7)
        with pytest.raises(RuntimeError, match="after a stage has run"):
            exp.with_scale(0.25)
        with pytest.raises(RuntimeError, match="after a stage has run"):
            exp.with_dataset(build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=2))
        # stage-only knobs stay adjustable between stages
        exp.with_epochs(2).with_train_ranks(1).train()
        assert "train" in exp.artifacts

    def test_artifact_access_before_run_raises(self):
        exp = Experiment.from_case(make_case())
        with pytest.raises(KeyError, match="subsample"):
            exp.subsample_artifact
        with pytest.raises(KeyError, match="train"):
            exp.train_artifact


class TestEndToEnd:
    def test_subsample_train_report_chain(self, case_file):
        report = (
            Experiment.from_case(case_file)
            .with_ranks(2)
            .with_seed(0)
            .with_scale(0.5)
            .with_epochs(2)
            .subsample()
            .train()
            .report()
        )
        assert "Subsampled" in report
        assert "Elapsed Time" in report
        assert "Total Energy Consumed" in report
        assert "Evaluation on test set" in report

    def test_train_implies_subsample(self, case_file):
        exp = (Experiment.from_case(case_file)
               .with_scale(0.5).with_epochs(2).train())
        assert "subsample" in exp.artifacts
        assert "train" in exp.artifacts
        assert np.isfinite(exp.train_artifact.result.final_test_loss)

    def test_matches_direct_pipeline(self, case_file):
        """The facade must be a facade: same result as calling subsample()."""
        from repro.data import load_dataset
        from repro.sampling import subsample

        exp = (Experiment.from_case(case_file)
               .with_ranks(2).with_seed(3).with_scale(0.5).subsample())
        case = exp.case
        ds = load_dataset(case.shared.dtype, path=None, scale=0.5, rng=3)
        ref = subsample(ds, case, nranks=2, seed=3)
        got = exp.subsample_artifact.result
        assert np.array_equal(got.selected_cube_ids, ref.selected_cube_ids)
        assert len(got.points) == len(ref.points)

    def test_entropy_selector_via_facade(self):
        exp = (Experiment.from_case(make_case(hypercubes="entropy"))
               .with_scale(0.5).subsample())
        res = exp.subsample_artifact.result
        assert res.meta["hypercubes"] == "entropy"
        assert res.points is not None


class TestSources:
    """The facade accepts all three SnapshotSource kinds (acceptance)."""

    def _dataset(self):
        from repro.data import build_dataset

        return build_dataset("SST-P1F4", scale=0.5, rng=0, n_snapshots=4)

    def test_with_source_accepts_all_three_kinds(self, tmp_path):
        from repro.data import (
            InMemorySource,
            ShardedNpzSource,
            save_dataset,
            stream_dataset,
        )

        ds = self._dataset()
        save_dataset(ds, str(tmp_path))
        sources = [
            InMemorySource(ds),
            ShardedNpzSource(str(tmp_path), max_cached=2),
            stream_dataset("sst-binary", scale=0.5, seed=0, n_snapshots=4),
        ]
        results = []
        for src in sources:
            exp = Experiment.from_case(make_case()).with_source(src).subsample()
            res = exp.subsample_artifact.result
            results.append(res)
            assert exp.subsample_artifact.meta["source"] == type(src).__name__
        # All three ingestion modes agree exactly.
        for other in results[1:]:
            assert np.array_equal(results[0].selected_cube_ids, other.selected_cube_ids)
            assert np.array_equal(results[0].points.coords, other.points.coords)

    def test_with_source_coerces_dataset_and_path(self, tmp_path):
        from repro.data import save_dataset
        from repro.data.sources import InMemorySource, ShardDirSource

        ds = self._dataset()
        exp = Experiment.from_case(make_case()).with_source(ds)
        assert isinstance(exp.source, InMemorySource)
        assert exp.dataset is ds  # with_dataset sugar keeps working
        save_dataset(ds, str(tmp_path))
        exp2 = Experiment.from_case(make_case()).with_source(str(tmp_path))
        assert isinstance(exp2.source, ShardDirSource)

    def test_dataset_property_refuses_non_resident_sources(self, tmp_path):
        from repro.data import save_dataset

        save_dataset(self._dataset(), str(tmp_path))
        exp = Experiment.from_case(make_case()).with_source(str(tmp_path))
        with pytest.raises(RuntimeError, match="never\\s+materializes"):
            exp.dataset

    def test_with_source_refused_after_stage(self):
        exp = Experiment.from_case(make_case()).with_scale(0.5).subsample()
        with pytest.raises(RuntimeError, match="after a stage has run"):
            exp.with_source(self._dataset())

    def test_stream_mode_records_artifact(self):
        exp = (Experiment.from_case(make_case())
               .with_dataset(self._dataset())
               .subsample(mode="stream"))
        res = exp.subsample_artifact.result
        assert res.meta["mode"] == "stream"
        assert exp.subsample_artifact.meta["mode"] == "stream"
        n = make_case().subsample
        assert res.n_samples == n.num_hypercubes * n.num_samples
        assert "Subsampled" in exp.report()

    def test_train_after_stream_subsample_fails_clearly(self):
        """Regression: the fluent chain must not die deep in train/data.py
        with a 'cube_shape' KeyError — stream results have no cubes."""
        exp = (Experiment.from_case(make_case())
               .with_dataset(self._dataset())
               .subsample(mode="stream"))
        with pytest.raises(ValueError, match="stream-mode subsample"):
            exp.train()

    def test_stream_mode_multirank(self):
        """Stream mode is rank-parallel: with_ranks / the ranks= override
        both drive the multi-producer merge path."""
        exp = (Experiment.from_case(make_case())
               .with_dataset(self._dataset()).with_ranks(2)
               .subsample(mode="stream"))
        res = exp.subsample_artifact.result
        assert res.meta["mode"] == "stream" and res.meta["ranks"] == 2
        assert exp.subsample_artifact.meta["ranks"] == 2
        n = make_case().subsample
        assert res.n_samples == n.num_hypercubes * n.num_samples

        exp2 = (Experiment.from_case(make_case())
                .with_dataset(self._dataset())
                .subsample(mode="stream", ranks=3))
        assert exp2.subsample_artifact.result.meta["ranks"] == 3
        assert exp2.ranks == 1  # per-call override leaves the config alone
        with pytest.raises(ValueError, match="ranks"):
            Experiment.from_case(make_case()).subsample(mode="stream", ranks=0)

    def test_train_from_sharded_source(self, tmp_path):
        """Training windows assemble straight from an out-of-core source."""
        from repro.data import ShardedNpzSource, save_dataset

        save_dataset(self._dataset(), str(tmp_path))
        src = ShardedNpzSource(str(tmp_path), max_cached=2)
        exp = (Experiment.from_case(make_case())
               .with_source(src).with_epochs(2).train())
        assert np.isfinite(exp.train_artifact.result.final_test_loss)
        assert src.cache_info()["gauges"]["max_resident"] <= 2


class TestArtifacts:
    def test_subsample_artifact_roundtrip(self, tmp_path):
        exp = (Experiment.from_case(make_case())
               .with_scale(0.5).with_seed(5).subsample())
        art = exp.subsample_artifact
        path = art.save(str(tmp_path / "sub"))
        loaded = SubsampleArtifact.load(path)

        assert loaded.meta["seed"] == 5
        assert loaded.meta["case"] == exp.case.to_dict()
        assert np.array_equal(loaded.result.selected_cube_ids,
                              art.result.selected_cube_ids)
        assert np.array_equal(loaded.result.points.coords, art.result.points.coords)
        for k, v in art.result.points.values.items():
            assert np.array_equal(loaded.result.points.values[k], v)
        assert loaded.result.n_points_scanned == art.result.n_points_scanned
        # Stored metadata alone reproduces the run.
        case = CaseConfig.from_dict(loaded.meta["case"])
        redo = (Experiment.from_case(case)
                .with_scale(loaded.meta["scale"])
                .with_seed(loaded.meta["seed"])
                .subsample())
        assert np.array_equal(redo.subsample_artifact.result.selected_cube_ids,
                              loaded.result.selected_cube_ids)

    def test_full_method_artifact_roundtrip(self, tmp_path):
        """method='full' results hold dense cubes, not points; they must
        survive save/load instead of being silently dropped."""
        case = CaseConfig(
            shared=SharedConfig(dims=3),
            subsample=SubsampleConfig(
                hypercubes="maxent", method="full", num_hypercubes=2,
                num_clusters=4, nxsl=8, nysl=8, nzsl=8,
            ),
            train=TrainConfig(epochs=2, batch=4, window=1, arch="cnn_transformer"),
        )
        exp = Experiment.from_case(case).with_scale(0.5).subsample()
        art = exp.subsample_artifact
        assert art.result.cubes is not None and art.result.n_samples > 0
        loaded = SubsampleArtifact.load(art.save(str(tmp_path / "full")))
        assert loaded.result.n_samples == art.result.n_samples
        assert len(loaded.result.cubes) == len(art.result.cubes)
        for got, ref in zip(loaded.result.cubes, art.result.cubes):
            assert got.origin == ref.origin
            assert got.meta["cube_id"] == ref.meta["cube_id"]
            for var, block in ref.variables.items():
                assert np.array_equal(got.variables[var], block)

    def test_seed_change_invalidates_cached_dataset(self):
        """with_seed after the dataset was lazily loaded must reload it, or
        the artifact's 'reproducible from metadata' guarantee breaks."""
        exp = Experiment.from_case(make_case()).with_scale(0.5)
        _ = exp.dataset  # force the lazy load at seed 0
        ids_cached = exp.with_seed(7).subsample().subsample_artifact.result.selected_cube_ids
        ids_fresh = (Experiment.from_case(make_case()).with_scale(0.5).with_seed(7)
                     .subsample().subsample_artifact.result.selected_cube_ids)
        assert np.array_equal(ids_cached, ids_fresh)

    def test_train_artifact_roundtrip(self, tmp_path):
        exp = (Experiment.from_case(make_case())
               .with_scale(0.5).with_epochs(2).train())
        art = exp.train_artifact
        path = art.save(str(tmp_path / "fit"))
        loaded = TrainArtifact.load(path)
        assert loaded.result.train_losses == [float(v) for v in art.result.train_losses]
        assert loaded.result.final_test_loss == pytest.approx(art.result.final_test_loss)
        assert loaded.result.epochs_run == art.result.epochs_run
        assert loaded.meta["case"] == exp.case.to_dict()

    def test_train_result_meta_survives_roundtrip(self, tmp_path):
        """Regression: the fit's provenance — feed kind/geometry, resume and
        checkpoint info — must survive TrainArtifact.save/load intact."""
        ck = str(tmp_path / "ck.npz")
        exp = (Experiment.from_case(make_case())
               .with_scale(0.5).with_epochs(2).train(checkpoint=ck))
        art = exp.train_artifact
        assert art.result.meta["feed"]["kind"] == "ArrayFeed"
        assert art.meta["mode"] == "batch"
        assert art.meta["checkpoint"] == ck
        loaded = TrainArtifact.load(art.save(str(tmp_path / "fit")))
        assert loaded.result.meta == art.result.meta
        assert loaded.meta["mode"] == "batch"
        assert loaded.meta["checkpoint"] == ck

        # Stream-mode provenance (feed cursor geometry) round-trips too.
        exp2 = (Experiment.from_case(make_case())
                .with_scale(0.5).with_epochs(2)
                .subsample(mode="stream").train(mode="stream"))
        art2 = exp2.train_artifact
        assert art2.result.meta["feed"]["kind"] == "StreamFeed"
        loaded2 = TrainArtifact.load(art2.save(str(tmp_path / "fit2")))
        assert loaded2.result.meta == art2.result.meta
        assert loaded2.result.meta["feed"]["samples"] > 0
        assert loaded2.meta["mode"] == "stream"

    def test_experiment_save_all(self, tmp_path):
        exp = (Experiment.from_case(make_case())
               .with_scale(0.5).with_epochs(2).train())
        paths = exp.save(str(tmp_path / "run"))
        assert set(paths) == {"subsample", "train"}
        assert SubsampleArtifact.load(paths["subsample"]).result.points is not None
        assert TrainArtifact.load(paths["train"]).result.epochs_run >= 1

    def test_lazy_package_export(self):
        import repro

        assert repro.Experiment is Experiment
        with pytest.raises(AttributeError):
            repro.not_a_real_name
