"""Tests for modules, layers, convs, LSTM, attention."""

import numpy as np
import pytest

from repro.nn import (
    Conv3d,
    ConvTranspose3d,
    Dropout,
    LayerNorm,
    Linear,
    LSTM,
    MultiHeadAttention,
    Sequential,
    TransformerEncoder,
)
from repro.nn.tensor import Tensor
from tests.nn.gradcheck import gradcheck

RNG = np.random.default_rng(1)


class TestModule:
    def test_parameter_discovery_recursive(self):
        model = Sequential(Linear(4, 8, rng=RNG), Linear(8, 2, rng=RNG))
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == 4  # 2 weights + 2 biases
        assert model.n_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        a = Linear(3, 3, rng=np.random.default_rng(2))
        b = Linear(3, 3, rng=np.random.default_rng(3))
        b.load_state_dict(a.state_dict())
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_rejected(self):
        a = Linear(3, 3, rng=RNG)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((3, 3))})

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.modules())

    def test_zero_grad(self):
        lin = Linear(2, 2, rng=RNG)
        out = lin(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


class TestLinear:
    def test_shapes(self):
        lin = Linear(5, 3, rng=RNG)
        out = lin(Tensor(RNG.standard_normal((7, 5))))
        assert out.shape == (7, 3)

    def test_batched_leading_dims(self):
        lin = Linear(5, 3, rng=RNG)
        out = lin(Tensor(RNG.standard_normal((2, 4, 5))))
        assert out.shape == (2, 4, 3)

    def test_wrong_dim_rejected(self):
        with pytest.raises(ValueError):
            Linear(5, 3, rng=RNG)(Tensor(np.zeros((2, 4))))

    def test_gradcheck_through_layer(self):
        lin = Linear(4, 2, rng=np.random.default_rng(4))
        x = RNG.standard_normal((3, 4))
        gradcheck(lambda t: (lin(t) ** 2).sum(), x)

    def test_weight_gradient_correct(self):
        lin = Linear(2, 1, bias=False, rng=RNG)
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        lin(Tensor(x)).sum().backward()
        assert np.allclose(lin.weight.grad, x.sum(axis=0))


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(16)
        x = Tensor(RNG.standard_normal((4, 16)) * 10 + 5)
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self):
        ln = LayerNorm(6)
        x = RNG.standard_normal((2, 6))
        gradcheck(lambda t: (ln(t) ** 2).sum(), x, rtol=1e-3)

    def test_dim_checked(self):
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(np.zeros((2, 5))))


class TestDropout:
    def test_eval_identity(self):
        d = Dropout(0.9, rng=RNG)
        d.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.array_equal(d(x).data, x.data)

    def test_train_masks_and_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(5))
        out = d(Tensor(np.ones((100, 100)))).data
        kept = out > 0
        assert 0.4 < kept.mean() < 0.6
        assert np.allclose(out[kept], 2.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConv3d:
    def test_output_shape(self):
        conv = Conv3d(2, 4, kernel_size=3, stride=1, padding=1, rng=RNG)
        out = conv(Tensor(RNG.standard_normal((2, 2, 6, 6, 6))))
        assert out.shape == (2, 4, 6, 6, 6)

    def test_stride_downsamples(self):
        conv = Conv3d(1, 3, kernel_size=4, stride=2, padding=1, rng=RNG)
        out = conv(Tensor(RNG.standard_normal((1, 1, 8, 8, 8))))
        assert out.shape == (1, 3, 4, 4, 4)

    def test_known_value_identity_kernel(self):
        conv = Conv3d(1, 1, kernel_size=1, bias=False, rng=RNG)
        conv.weight.data[:] = 2.0
        x = RNG.standard_normal((1, 1, 3, 3, 3))
        out = conv(Tensor(x))
        assert np.allclose(out.data, 2 * x)

    def test_gradcheck_input(self):
        conv = Conv3d(1, 2, kernel_size=2, stride=1, rng=np.random.default_rng(6))
        x = RNG.standard_normal((1, 1, 4, 4, 4))
        gradcheck(lambda t: (conv(t) ** 2).sum(), x, rtol=1e-3)

    def test_gradcheck_strided(self):
        conv = Conv3d(1, 1, kernel_size=2, stride=2, rng=np.random.default_rng(7))
        x = RNG.standard_normal((1, 1, 4, 4, 4))
        gradcheck(lambda t: (conv(t) ** 2).sum(), x, rtol=1e-3)

    def test_weight_gradcheck(self):
        x_data = Tensor(RNG.standard_normal((1, 1, 4, 4, 4)))
        conv = Conv3d(1, 1, kernel_size=3, padding=1, bias=False, rng=np.random.default_rng(8))
        w0 = conv.weight.data.copy()

        def build(t):
            conv.weight.data = t.data
            out = conv(x_data)
            # Route grads through the weight tensor we control.
            conv.weight.grad = None
            return (out * out).sum()

        # Manual check: finite differences on the weight.
        from tests.nn.gradcheck import numeric_grad

        conv.weight.data = w0
        out = (conv(x_data) ** 2).sum()
        out.backward()
        analytic = conv.weight.grad.copy()

        def f(w):
            conv.weight.data = w
            return float(((conv(x_data) ** 2).sum()).data)

        numeric = numeric_grad(f, w0.copy(), eps=1e-6)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-6)

    def test_bad_input_shape(self):
        with pytest.raises(ValueError):
            Conv3d(2, 2, rng=RNG)(Tensor(np.zeros((1, 3, 4, 4, 4))))


class TestConvTranspose3d:
    def test_inverts_conv_shape(self):
        down = Conv3d(1, 2, kernel_size=4, stride=2, padding=1, rng=RNG)
        up = ConvTranspose3d(2, 1, kernel_size=4, stride=2, padding=1, rng=RNG)
        x = Tensor(RNG.standard_normal((1, 1, 8, 8, 8)))
        assert up(down(x)).shape == x.shape

    def test_upsamples(self):
        up = ConvTranspose3d(1, 1, kernel_size=4, stride=2, padding=1, rng=RNG)
        out = up(Tensor(RNG.standard_normal((1, 1, 4, 4, 4))))
        assert out.shape == (1, 1, 8, 8, 8)

    def test_gradcheck_input(self):
        up = ConvTranspose3d(1, 1, kernel_size=2, stride=2, rng=np.random.default_rng(9))
        x = RNG.standard_normal((1, 1, 3, 3, 3))
        gradcheck(lambda t: (up(t) ** 2).sum(), x, rtol=1e-3)

    def test_adjoint_of_conv(self):
        """<conv(x), y> == <x, convT(y)> when sharing the same weights."""
        rng = np.random.default_rng(10)
        # k=4/s=2/p=1 is exact-fit geometry (no output_padding ambiguity).
        conv = Conv3d(1, 1, kernel_size=4, stride=2, padding=1, bias=False, rng=rng)
        up = ConvTranspose3d(1, 1, kernel_size=4, stride=2, padding=1, bias=False, rng=rng)
        up.weight.data = conv.weight.data.transpose(1, 0, 2, 3, 4).copy()
        x = Tensor(rng.standard_normal((1, 1, 8, 8, 8)))
        y_shape = conv(x).shape
        y = Tensor(rng.standard_normal(y_shape))
        lhs = float((conv(x).data * y.data).sum())
        rhs = float((x.data * up(y).data).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(3, 8, num_layers=2, rng=RNG)
        out = lstm(Tensor(RNG.standard_normal((4, 5, 3))))
        assert out.shape == (4, 5, 8)

    def test_gradient_flows_through_time(self):
        lstm = LSTM(2, 4, rng=np.random.default_rng(11))
        x = Tensor(RNG.standard_normal((1, 6, 2)), requires_grad=True)
        lstm(x)[:, -1, :].sum().backward()
        # Early timesteps must receive gradient (BPTT).
        assert np.abs(x.grad[0, 0]).sum() > 0

    def test_gradcheck_small(self):
        lstm = LSTM(2, 3, rng=np.random.default_rng(12))
        x = RNG.standard_normal((1, 3, 2))
        gradcheck(lambda t: (lstm(t) ** 2).sum(), x, rtol=1e-3)

    def test_forget_bias_initialized(self):
        lstm = LSTM(2, 4, rng=RNG)
        assert np.all(lstm.cells[0].bias.data[4:8] == 1.0)


class TestAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(16, 4, rng=RNG)
        out = mha(Tensor(RNG.standard_normal((2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, rng=RNG)

    def test_gradcheck(self):
        mha = MultiHeadAttention(4, 2, rng=np.random.default_rng(13))
        x = RNG.standard_normal((1, 3, 4))
        gradcheck(lambda t: (mha(t) ** 2).sum(), x, rtol=1e-3)

    def test_permutation_equivariance(self):
        """Self-attention without positional encoding is permutation-equivariant."""
        mha = MultiHeadAttention(8, 2, rng=np.random.default_rng(14))
        x = RNG.standard_normal((1, 6, 8))
        perm = np.random.default_rng(15).permutation(6)
        out = mha(Tensor(x)).data
        out_perm = mha(Tensor(x[:, perm])).data
        assert np.allclose(out[:, perm], out_perm, atol=1e-10)

    def test_transformer_encoder(self):
        enc = TransformerEncoder(8, depth=2, n_heads=2, rng=RNG)
        out = enc(Tensor(RNG.standard_normal((2, 4, 8))))
        assert out.shape == (2, 4, 8)
        assert len(enc.layers) == 2
