"""Finite-difference gradient checking for the autograd engine."""

import numpy as np

from repro.nn.tensor import Tensor


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def gradcheck(
    build, x: np.ndarray, rtol: float = 1e-4, atol: float = 1e-6, eps: float = 1e-6
) -> None:
    """Compare autograd's gradient against finite differences.

    ``build(tensor) -> Tensor`` must return a scalar tensor.
    """
    x = np.asarray(x, dtype=np.float64)
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    if out.size != 1:
        raise ValueError("gradcheck target must be scalar")
    out.backward()
    analytic = t.grad

    def scalar_fn(arr: np.ndarray) -> float:
        return float(build(Tensor(arr.copy())).data)

    numeric = numeric_grad(scalar_fn, x.copy(), eps=eps)
    # Central differences cannot resolve partials below the cancellation
    # floor ~ulp(|f|)/eps: for chains whose output is huge (e.g. stacked
    # exp/square), f(x±eps) rounds to f(x) and the FD reference reads 0 even
    # though the analytic gradient is correct.  Only the elements whose FD
    # value sits below that floor get the relaxed tolerance; resolvable
    # elements keep the caller's rtol/atol.
    f0 = abs(scalar_fn(x.copy()))
    fd_floor = 4.0 * f0 * np.finfo(np.float64).eps / eps
    unresolvable = np.abs(numeric) < fd_floor
    np.testing.assert_allclose(
        analytic[~unresolvable], numeric[~unresolvable], rtol=rtol, atol=atol
    )
    np.testing.assert_allclose(
        analytic[unresolvable], numeric[unresolvable],
        rtol=rtol, atol=max(atol, fd_floor),
    )
