"""Property-based fuzzing of the autograd engine.

Composes random chains of differentiable ops and checks the analytic
gradient against central differences — the strongest single guard an
autograd engine can have.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.nn.tensor import Tensor
from tests.nn.gradcheck import gradcheck

# Unary ops that are smooth on (safe) inputs, as (name, fn, needs_positive).
_UNARY = [
    ("tanh", lambda t: t.tanh(), False),
    ("sigmoid", lambda t: t.sigmoid(), False),
    ("exp", lambda t: (t * 0.3).exp(), False),
    ("square", lambda t: t * t, False),
    ("scale", lambda t: t * 1.7 + 0.3, False),
    ("neg", lambda t: -t, False),
    ("softmax", lambda t: t.softmax(axis=-1), False),
    ("log", lambda t: (t * t + 1.0).log(), False),
    ("sqrt", lambda t: (t * t + 0.5).sqrt(), False),
]


@given(
    ops=st.lists(st.integers(0, len(_UNARY) - 1), min_size=1, max_size=4),
    rows=st.integers(1, 3),
    cols=st.integers(1, 4),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_random_unary_chains_gradcheck(ops, rows, cols, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols))

    def build(t):
        out = t
        for i in ops:
            out = _UNARY[i][1](out)
        return (out * out).sum()

    # Chains like exp∘square∘square blow past float range (or into such
    # violent curvature that central differences are pure truncation error)
    # within a few ops; a finite-difference reference is only meaningful
    # where the forward value stays well-scaled, so discard the rest.
    with np.errstate(over="ignore", invalid="ignore"):
        f0 = float(build(Tensor(x.copy())).data)
    assume(np.isfinite(f0) and abs(f0) < 1e4)
    gradcheck(build, x, rtol=5e-3, atol=1e-6)


@given(
    m=st.integers(1, 3), k=st.integers(1, 4), n=st.integers(1, 3),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_matmul_then_reduction_gradcheck(m, k, n, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, k))
    w = Tensor(rng.standard_normal((k, n)))

    def build(t):
        return ((t @ w).tanh() ** 2).mean()

    gradcheck(build, x, rtol=5e-3)


@given(
    shape=st.sampled_from([(2, 3), (3, 2), (4, 1), (1, 4)]),
    seed=st.integers(0, 50),
)
@settings(max_examples=20, deadline=None)
def test_broadcast_add_mul_gradcheck(shape, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    row = Tensor(rng.standard_normal((1, shape[1])))
    col = Tensor(rng.standard_normal((shape[0], 1)))

    def build(t):
        return ((t + row) * col).sum()

    gradcheck(build, x)


@given(seed=st.integers(0, 30))
@settings(max_examples=15, deadline=None)
def test_shared_subexpression_gradcheck(seed):
    """Diamond graphs: a node feeding several consumers accumulates grads."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((3, 3))

    def build(t):
        h = t.tanh()
        return (h * h.sigmoid() + h.sum(axis=0)).sum()

    gradcheck(build, x, rtol=5e-3)


@given(seed=st.integers(0, 30))
@settings(max_examples=10, deadline=None)
def test_gradients_deterministic(seed):
    """Same graph, same seed -> bit-identical gradients (no hidden state)."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((4, 4))

    def grad_of_run():
        t = Tensor(base.copy(), requires_grad=True)
        ((t.tanh() @ Tensor(np.eye(4))) ** 2).sum().backward()
        return t.grad.copy()

    assert np.array_equal(grad_of_run(), grad_of_run())
