"""Tests for optimizers, AMP, DDP, and the Table 2 architectures."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CNNTransformer,
    DistributedDataParallel,
    LSTMRegressor,
    Linear,
    MATEY,
    MLPTransformer,
    ReduceLROnPlateau,
    SGD,
    Tensor,
    autocast,
    build_model,
    clip_grad_norm,
    mae_loss,
    mse_loss,
    no_grad,
    quantize,
    shard_indices,
)
from repro.parallel import run_spmd

RNG = np.random.default_rng(0)


def quadratic_params():
    return [type("P", (), {})]  # placeholder, unused


class TestOptimizers:
    def _train_linear(self, opt_cls, **kwargs):
        rng = np.random.default_rng(1)
        lin = Linear(3, 1, rng=rng)
        x = Tensor(rng.standard_normal((64, 3)))
        true_w = np.array([[1.5, -2.0, 0.5]])
        y = Tensor(x.data @ true_w.T)
        opt = opt_cls(lin.parameters(), **kwargs)
        for _ in range(300):
            opt.zero_grad()
            loss = mse_loss(lin(x), y)
            loss.backward()
            opt.step()
        return lin, float(mse_loss(lin(x), y).data)

    def test_sgd_converges(self):
        _, loss = self._train_linear(SGD, lr=0.05, momentum=0.9)
        assert loss < 1e-4

    def test_adam_converges(self):
        lin, loss = self._train_linear(Adam, lr=0.05)
        assert loss < 1e-4
        assert np.allclose(lin.weight.data, [[1.5, -2.0, 0.5]], atol=0.05)

    def test_adam_weight_decay_shrinks(self):
        rng = np.random.default_rng(2)
        lin = Linear(4, 1, bias=False, rng=rng)
        big = np.linalg.norm(lin.weight.data)
        opt = Adam(lin.parameters(), lr=0.01, weight_decay=10.0)
        x = Tensor(rng.standard_normal((8, 4)))
        for _ in range(50):
            opt.zero_grad()
            mse_loss(lin(x), Tensor(np.zeros((8, 1)))).backward()
            opt.step()
        assert np.linalg.norm(lin.weight.data) < big

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_clip_grad_norm(self):
        lin = Linear(10, 10, rng=RNG)
        mse_loss(lin(Tensor(RNG.standard_normal((4, 10)) * 100)),
                 Tensor(np.zeros((4, 10)))).backward()
        norm_before = clip_grad_norm(lin.parameters(), max_norm=1.0)
        total = sum(float((p.grad**2).sum()) for p in lin.parameters() if p.grad is not None)
        assert norm_before > 1.0
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)


class TestScheduler:
    def test_reduces_after_patience(self):
        lin = Linear(2, 1, rng=RNG)
        opt = Adam(lin.parameters(), lr=1e-3)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)
        for _ in range(3):
            sched.step(1.0)  # no improvement
        assert opt.lr == pytest.approx(5e-4)

    def test_improvement_resets(self):
        lin = Linear(2, 1, rng=RNG)
        opt = Adam(lin.parameters(), lr=1e-3)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
        for metric in [1.0, 0.9, 0.8, 0.7, 0.6]:
            sched.step(metric)
        assert opt.lr == pytest.approx(1e-3)

    def test_min_lr_floor(self):
        lin = Linear(2, 1, rng=RNG)
        opt = Adam(lin.parameters(), lr=1e-5)
        sched = ReduceLROnPlateau(opt, factor=0.1, patience=0, min_lr=1e-6)
        for _ in range(10):
            sched.step(1.0)
        assert opt.lr == pytest.approx(1e-6)

    def test_nan_metric_treated_as_bad(self):
        lin = Linear(2, 1, rng=RNG)
        opt = Adam(lin.parameters(), lr=1e-3)
        sched = ReduceLROnPlateau(opt, patience=0)
        sched.step(float("nan"))
        assert opt.lr < 1e-3


class TestLosses:
    def test_mse_value(self):
        assert float(mse_loss(Tensor([1.0, 3.0]), Tensor([0.0, 0.0])).data) == pytest.approx(5.0)

    def test_mae_value(self):
        assert float(mae_loss(Tensor([1.0, -3.0]), Tensor([0.0, 0.0])).data) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.zeros(3)), Tensor(np.zeros(4)))


class TestAMP:
    def test_quantize_fp16_rounds(self):
        x = np.array([1.0 + 1e-5])
        assert quantize(x, "fp16")[0] != x[0]

    def test_quantize_bf16_coarser_than_fp16(self):
        x = np.array([1.2345678])
        err16 = abs(quantize(x, "fp16")[0] - x[0])
        errbf = abs(quantize(x, "bf16")[0] - x[0])
        assert errbf >= err16

    def test_int8_bounded_error(self):
        x = RNG.standard_normal(100)
        q = quantize(x, "int8")
        assert np.abs(q - x).max() <= np.abs(x).max() / 127.0 + 1e-12

    def test_autocast_context(self):
        from repro.nn import current_precision

        assert current_precision() == "fp32"
        with autocast("bf16"):
            assert current_precision() == "bf16"
        assert current_precision() == "fp32"

    def test_linear_under_autocast_still_trains(self):
        rng = np.random.default_rng(3)
        lin = Linear(3, 1, rng=rng)
        x = Tensor(rng.standard_normal((32, 3)))
        y = Tensor(x.data @ np.array([[1.0, 2.0, -1.0]]).T)
        opt = Adam(lin.parameters(), lr=0.05)
        with autocast("fp16"):
            for _ in range(200):
                opt.zero_grad()
                mse_loss(lin(x), y).backward()
                opt.step()
            final = float(mse_loss(lin(x), y).data)
        assert final < 1e-2  # converges, with quantization-limited floor


class TestDDP:
    def test_replicas_start_identical(self):
        def prog(comm):
            rng = np.random.default_rng(100 + comm.rank)  # different init per rank
            model = Linear(4, 2, rng=rng)
            ddp = DistributedDataParallel(model, comm)
            return ddp.state_dict()["weight"]

        res = run_spmd(prog, 3)
        for w in res.values[1:]:
            assert np.array_equal(res.values[0], w)

    def test_gradient_averaging(self):
        def prog(comm):
            model = Linear(2, 1, bias=False, rng=np.random.default_rng(7))
            ddp = DistributedDataParallel(model, comm)
            x = Tensor(np.full((1, 2), float(comm.rank + 1)))
            mse_loss(ddp(x), Tensor(np.zeros((1, 1)))).backward()
            ddp.sync_gradients()
            return model.weight.grad.copy()

        res = run_spmd(prog, 2)
        assert np.allclose(res.values[0], res.values[1])

    def test_training_stays_in_lockstep(self):
        def prog(comm):
            rng = np.random.default_rng(8)
            model = Linear(3, 1, rng=rng)
            ddp = DistributedDataParallel(model, comm)
            opt = Adam(model.parameters(), lr=0.01)
            data_rng = np.random.default_rng(comm.rank)  # each rank: own shard
            for _ in range(5):
                x = Tensor(data_rng.standard_normal((8, 3)))
                y = Tensor(np.zeros((8, 1)))
                opt.zero_grad()
                mse_loss(ddp(x), y).backward()
                ddp.sync_gradients()
                opt.step()
            return model.weight.data.copy()

        res = run_spmd(prog, 3)
        for w in res.values[1:]:
            assert np.allclose(res.values[0], w)

    def test_shard_indices_partition(self):
        def prog(comm):
            return shard_indices(10, comm, seed=0).tolist()

        res = run_spmd(prog, 3)
        combined = sorted(i for chunk in res.values for i in chunk)
        assert combined == list(range(10))


class TestArchitectures:
    def test_lstm_regressor_shapes(self):
        model = LSTMRegressor(input_dim=6, out_dim=1, horizon=2, hidden=16, rng=0)
        out = model(Tensor(RNG.standard_normal((3, 4, 6))))
        assert out.shape == (3, 2, 1)

    def test_mlp_transformer_shapes(self):
        model = MLPTransformer(
            in_channels=3, n_points=20, out_channels=1, grid=(8, 8, 8),
            window=2, horizon=1, d_model=32, depth=1, n_heads=2, rng=0,
        )
        out = model(Tensor(RNG.standard_normal((2, 2, 3, 20))))
        assert out.shape == (2, 1, 1, 8, 8, 8)

    def test_cnn_transformer_shapes(self):
        model = CNNTransformer(
            in_channels=2, out_channels=1, grid=(8, 8, 8),
            window=2, horizon=2, d_model=32, depth=1, n_heads=2, rng=0,
        )
        out = model(Tensor(RNG.standard_normal((1, 2, 2, 8, 8, 8))))
        assert out.shape == (1, 2, 1, 8, 8, 8)

    def test_matey_shapes_and_scale_choice(self):
        model = MATEY(
            in_channels=1, out_channels=1, grid=(8, 8, 8), patch=4,
            window=1, horizon=1, d_model=32, depth=1, n_heads=2, rng=0,
        )
        smooth = np.ones((1, 1, 1, 8, 8, 8))
        out = model(Tensor(smooth))
        assert out.shape == (1, 1, 1, 8, 8, 8)
        assert model.last_scale == 4  # smooth field -> coarse patches

        rough = RNG.standard_normal((1, 1, 1, 8, 8, 8))
        model(Tensor(rough))
        assert model.last_scale == 2  # rough field -> fine patches

    def test_grid_divisibility_enforced(self):
        with pytest.raises(ValueError):
            CNNTransformer(in_channels=1, out_channels=1, grid=(6, 8, 8), rng=0)
        with pytest.raises(ValueError):
            MATEY(in_channels=1, out_channels=1, grid=(10, 8, 8), patch=4, rng=0)

    def test_build_model_factory(self):
        model = build_model("lstm", input_dim=4, rng=0)
        assert isinstance(model, LSTMRegressor)
        with pytest.raises(ValueError):
            build_model("gan")

    def test_models_train_one_step(self):
        """Every architecture must run a full train step without error."""
        cases = [
            (LSTMRegressor(input_dim=4, hidden=8, rng=0), (2, 3, 4), (2, 1, 1)),
            (
                MLPTransformer(in_channels=2, n_points=10, out_channels=1,
                               grid=(4, 4, 4), d_model=16, depth=1, n_heads=2, rng=0),
                (2, 1, 2, 10),
                (2, 1, 1, 4, 4, 4),
            ),
        ]
        for model, in_shape, out_shape in cases:
            opt = Adam(model.parameters(), lr=1e-3)
            x = Tensor(RNG.standard_normal(in_shape))
            y = Tensor(RNG.standard_normal(out_shape))
            loss0 = mse_loss(model(x), y)
            loss0.backward()
            opt.step()
            with no_grad():
                loss1 = mse_loss(model(x), y)
            assert np.isfinite(float(loss1.data))

    def test_lstm_overfits_tiny_dataset(self):
        """Sanity: the sample-single model can memorize 4 sequences."""
        rng = np.random.default_rng(9)
        model = LSTMRegressor(input_dim=2, hidden=16, rng=1)
        x = Tensor(rng.standard_normal((4, 3, 2)))
        y = Tensor(rng.standard_normal((4, 1, 1)))
        opt = Adam(model.parameters(), lr=0.02)
        for _ in range(150):
            opt.zero_grad()
            mse_loss(model(x), y).backward()
            opt.step()
        assert float(mse_loss(model(x), y).data) < 0.05
