"""Autograd engine tests: op correctness via finite differences."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad
from tests.nn.gradcheck import gradcheck

RNG = np.random.default_rng(0)


class TestBasics:
    def test_construction(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        assert t.shape == (2,)
        assert t.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 3
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad

    def test_grad_accumulates_over_reuse(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t).backward()  # d(t^2)/dt = 4
        assert t.grad[0] == pytest.approx(4.0)

    def test_diamond_graph(self):
        """y = a*b + a: gradient wrt a must combine both paths."""
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b + a).backward()
        assert a.grad[0] == pytest.approx(6.0)
        assert b.grad[0] == pytest.approx(3.0)


class TestElementwiseGradients:
    def test_add_broadcast(self):
        x = RNG.standard_normal((3, 4))
        gradcheck(lambda t: (t + Tensor(np.ones(4))).sum(), x)

    def test_mul(self):
        x = RNG.standard_normal((2, 5))
        other = RNG.standard_normal((2, 5))
        gradcheck(lambda t: (t * Tensor(other)).sum(), x)

    def test_div(self):
        x = RNG.standard_normal((4,)) + 3.0
        gradcheck(lambda t: (Tensor([2.0, 1.0, 3.0, 4.0]) / t).sum(), x)

    def test_pow(self):
        x = np.abs(RNG.standard_normal(6)) + 0.5
        gradcheck(lambda t: (t**3).sum(), x)

    def test_exp_log(self):
        x = np.abs(RNG.standard_normal(5)) + 0.5
        gradcheck(lambda t: (t.log() * 2).exp().sum(), x)

    def test_tanh_sigmoid_relu(self):
        x = RNG.standard_normal(8)
        gradcheck(lambda t: t.tanh().sum(), x)
        gradcheck(lambda t: t.sigmoid().sum(), x)
        x_off_kink = x + np.where(np.abs(x) < 1e-3, 0.1, 0.0)
        gradcheck(lambda t: t.relu().sum(), x_off_kink)

    def test_abs_sqrt(self):
        x = np.abs(RNG.standard_normal(5)) + 0.3
        gradcheck(lambda t: t.sqrt().sum(), x)
        gradcheck(lambda t: t.abs().sum(), x)

    def test_neg_sub(self):
        x = RNG.standard_normal(4)
        gradcheck(lambda t: (5.0 - t).sum(), x)


class TestReductionsAndShape:
    def test_sum_axis(self):
        x = RNG.standard_normal((3, 4, 2))
        gradcheck(lambda t: (t.sum(axis=1) ** 2).sum(), x)

    def test_mean_keepdims(self):
        x = RNG.standard_normal((3, 4))
        gradcheck(lambda t: (t - t.mean(axis=1, keepdims=True)).pow(2).sum()
                  if hasattr(t, "pow") else ((t - t.mean(axis=1, keepdims=True)) ** 2).sum(), x)

    def test_max(self):
        x = RNG.standard_normal((4, 5))
        gradcheck(lambda t: (t.max(axis=1) ** 2).sum(), x)

    def test_reshape_transpose(self):
        x = RNG.standard_normal((2, 3, 4))
        gradcheck(lambda t: (t.reshape(6, 4).transpose() ** 2).sum(), x)

    def test_getitem(self):
        x = RNG.standard_normal((5, 3))
        gradcheck(lambda t: (t[1:4, :2] ** 2).sum(), x)

    def test_concat(self):
        x = RNG.standard_normal((2, 3))
        other = Tensor(RNG.standard_normal((2, 2)))
        gradcheck(lambda t: (Tensor.concat([t, other], axis=1) ** 2).sum(), x)

    def test_pad(self):
        x = RNG.standard_normal((2, 3))
        gradcheck(lambda t: (t.pad(((1, 1), (0, 2))) ** 2).sum(), x)


class TestMatmulSoftmax:
    def test_matmul_2d(self):
        x = RNG.standard_normal((3, 4))
        w = Tensor(RNG.standard_normal((4, 2)))
        gradcheck(lambda t: ((t @ w) ** 2).sum(), x)

    def test_matmul_batched(self):
        x = RNG.standard_normal((2, 3, 4))
        w = Tensor(RNG.standard_normal((2, 4, 5)))
        gradcheck(lambda t: ((t @ w) ** 2).sum(), x)

    def test_matmul_broadcast_weight_grad(self):
        """Batched x against unbatched w: w's grad must sum over the batch."""
        x = Tensor(RNG.standard_normal((2, 3, 4)))
        w = RNG.standard_normal((4, 2))
        gradcheck(lambda t: ((x @ t) ** 2).sum(), w)

    def test_softmax_rows_sum_one(self):
        t = Tensor(RNG.standard_normal((5, 7)))
        s = t.softmax(axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)

    def test_softmax_gradient(self):
        x = RNG.standard_normal((3, 4))
        target = RNG.standard_normal((3, 4))
        gradcheck(lambda t: (t.softmax(axis=-1) * Tensor(target)).sum(), x)

    def test_softmax_stable_large_logits(self):
        s = Tensor(np.array([1000.0, 1001.0])).softmax()
        assert np.isfinite(s.data).all()


class TestEnergyAccounting:
    def test_matmul_charges_flops(self):
        from repro.energy import EnergyMeter

        a = Tensor(np.ones((8, 8)), requires_grad=True)
        b = Tensor(np.ones((8, 8)))
        with EnergyMeter() as meter:
            (a @ b).sum().backward()
        # Forward 2*8*8*8 plus backward 4*...
        assert meter.flops_gpu >= 2 * 8 * 8 * 8
