"""In-situ streaming subsample: sample while the simulation runs.

The paper's first future-work item is "integration with in-situ, streaming,
and online training frameworks": selecting the information-rich points as
the solver produces them, without ever materializing the full dataset.
This example demonstrates that path end-to-end with a
:class:`~repro.data.sources.SimulationSource`:

  1. ``stream_dataset`` wraps the SST stratified-turbulence solver as a
     replayable snapshot source — each snapshot is handed over the moment
     the pseudo-spectral solver reaches it, and at most one generated
     snapshot is ever resident,
  2. ``subsample(mode="stream")`` pipes the stream through the online
     MaxEnt sampler (mini-batch K-means centroids + per-cluster histograms
     and reservoirs): one pass, bounded memory, no phase-2 revisit,
  3. the batch two-phase pipeline runs over the *same* simulation source
     for comparison (it replays the deterministic sim for its second
     phase — trading compute for memory, the standard in-situ move),
  4. both samples' tail enrichment of the cluster variable is reported,
  5. the stream re-runs with **multiple producers**: each SPMD rank streams
     its own snapshot partition through its own sampler and the per-rank
     states merge by weighted draw — same distribution, parallel scan,
  6. training runs **directly off the in-situ stream**
     (``train(mode="stream")``): the sampled points become fixed sensors,
     windows are assembled incrementally as the solver produces snapshots,
     and only a rolling window is ever resident — online training with no
     resident dataset.

CLI equivalents of steps 2, 5, and 6::

    python -m repro.cli subsample case.yaml --source sim --stream
    python -m repro.cli subsample case.yaml --stream --ranks 4
    python -m repro.cli train case.yaml --source sim --stream --epochs 5

Run:  python examples/streaming_insitu.py
"""

import numpy as np

from repro.api import Experiment
from repro.data import stream_dataset
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig


def make_case() -> CaseConfig:
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes="maxent",
            method="maxent",       # resolves to StreamingMaxEnt in stream mode
            num_hypercubes=6,
            num_samples=64,
            num_clusters=6,
            nxsl=16, nysl=16, nzsl=16,
        ),
        train=TrainConfig(arch="mlp_transformer"),
    )


def tail_share(points, population, q=0.98) -> float:
    cut = np.quantile(np.abs(population), q)
    return float((np.abs(points.values["pv"]) >= cut).mean())


def main() -> None:
    print("In-situ source: SST stratified turbulence, generated on demand...")
    source = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=4,
                            max_cached=1)
    print(f"  {source.n_snapshots} snapshots of grid {source.grid_shape} "
          f"(~{source.nbytes() / 1e6:.1f} MB if materialized — it never is)")

    print("\nStreaming subsample (single pass, online MaxEnt)...")
    exp = (
        Experiment.from_case(make_case())
        .with_source(source)
        .with_seed(0)
        .subsample(mode="stream")
    )
    stream_res = exp.subsample_artifact.result
    print(f"  kept {stream_res.n_samples} of {stream_res.n_points_scanned} "
          f"streamed points; snapshots generated: {source.generated}, "
          f"replays: {source.restarts}")
    assert source.generated == source.n_snapshots  # one pass, truly in-situ

    print("\nBatch two-phase pipeline over the same simulation source...")
    batch_source = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=4,
                                  max_cached=1)
    batch = (
        Experiment.from_case(make_case())
        .with_source(batch_source)
        .with_seed(0)
        .subsample()
    )
    batch_res = batch.subsample_artifact.result
    print(f"  kept {batch_res.n_samples} points; snapshots generated: "
          f"{batch_source.generated} (replays: {batch_source.restarts} — "
          f"phase 1 edges/stats + phase 2 revisit the stream)")

    # Compare tail enrichment against the population the solver produced.
    population = np.concatenate([
        batch_source.snapshot(i).get("pv").ravel()
        for i in range(batch_source.n_snapshots)
    ])
    print("\nTail coverage of the cluster variable (|pv| above its 98th pct):")
    print("  population share : 2.0%")
    print(f"  streaming maxent : {100 * tail_share(stream_res.points, population):.1f}%")
    print(f"  batch maxent     : {100 * tail_share(batch_res.points, population):.1f}%")
    print("\nBoth ingestion modes ran through the same subsample()/Experiment "
          "entry points; only the source changed.")

    print("\nMulti-producer stream: 4 SPMD ranks, per-rank reservoirs merged "
          "by weighted draw...")
    multi_source = stream_dataset("sst-binary", scale=1.0, seed=0, n_snapshots=4,
                                  max_cached=4)
    multi = (
        Experiment.from_case(make_case())
        .with_source(multi_source)
        .with_seed(0)
        .subsample(mode="stream", ranks=4)
    )
    multi_res = multi.subsample_artifact.result
    print(f"  kept {multi_res.n_samples} of {multi_res.n_points_scanned} "
          f"streamed points across {multi_res.meta['ranks']} producers; "
          f"virtual makespan {multi_res.virtual_time:.3f} s "
          f"(single-producer: {stream_res.virtual_time:.3f} s)")
    print(f"  multi-rank maxent tail share: "
          f"{100 * tail_share(multi_res.points, population):.1f}%")

    print("\nTraining directly off the in-situ stream "
          "(train(mode='stream'))...")
    train_source = stream_dataset("sst-binary", scale=1.0, seed=0,
                                  n_snapshots=4, max_cached=1)
    fit = (
        Experiment.from_case(make_case())
        .with_source(train_source)
        .with_seed(0)
        .with_epochs(3)
        .subsample(mode="stream")
        .train(mode="stream")
    )
    train_res = fit.train_artifact.result
    feed_meta = train_res.meta["feed"]
    print(f"  {feed_meta['samples']} window samples assembled incrementally "
          f"from the stream ({feed_meta['kind']}, window "
          f"{feed_meta['window']}); only a rolling window was resident")
    print(f"  final test loss after {train_res.epochs_run} epochs: "
          f"{train_res.final_test_loss:.5f}")
    print("  " + train_res.report().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
