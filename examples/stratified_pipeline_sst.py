"""End-to-end SST pipeline: parallel sampling -> sparse reconstruction -> energy.

The paper's flagship workflow (Figs 3, 7, 8) on the stratified-turbulence
dataset: distribute the two-phase MaxEnt sampler over simulated MPI ranks,
train the MLP-Transformer to reconstruct the dense pressure field from the
sparse samples, and compare against training on fully dense hypercubes
(the CNN-Transformer 'full' baseline) on both loss and energy.

Run:  python examples/stratified_pipeline_sst.py
"""

from repro.data import build_dataset
from repro.metrics import ScalingSeries, find_knee, speedup_series
from repro.nn import CNNTransformer, MLPTransformer
from repro.sampling import subsample
from repro.train import Trainer, build_reconstruction_data
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig
from repro.viz import format_table

CUBE = 16
EPOCHS = 12


def case(method: str) -> CaseConfig:
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes="maxent" if method != "full" else "random",
            method=method, num_hypercubes=4, num_samples=410,
            num_clusters=5, nxsl=CUBE, nysl=CUBE, nzsl=CUBE,
        ),
        train=TrainConfig(
            arch="cnn_transformer" if method == "full" else "mlp_transformer"
        ),
    )


def main() -> None:
    print("Generating SST-P1F4 (Taylor-Green under stable stratification)...")
    dataset = build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=6)

    # --- Parallel sampling scalability (cf. Fig 7) -------------------------
    print("\nSampling scalability (virtual time):")
    ranks = [1, 2, 4, 8]
    times = [subsample(dataset, case("maxent"), nranks=p, seed=0).virtual_time
             for p in ranks]
    series: ScalingSeries = speedup_series(ranks, times)
    rows = [series.row(i) for i in range(len(ranks))]
    print(format_table(rows))
    print(f"knee (efficiency >= 0.5): {find_knee(series)} ranks")

    # --- Sampled vs full training (cf. Fig 8) ------------------------------
    print("\nTraining comparison (sampled MLP-Transformer vs full CNN-Transformer):")
    rows = []
    for method in ("maxent", "full"):
        result = subsample(dataset, case(method), seed=0)
        data = build_reconstruction_data(dataset, result, window=1, horizon=1)
        if method == "full":
            model = CNNTransformer(in_channels=data.in_channels,
                                   out_channels=data.out_channels, grid=data.grid,
                                   d_model=16, depth=1, n_heads=2, rng=0)
        else:
            model = MLPTransformer(in_channels=data.in_channels,
                                   n_points=data.n_points,
                                   out_channels=data.out_channels, grid=data.grid,
                                   d_model=16, depth=1, n_heads=2, rng=0)
        trainer = Trainer(model, epochs=EPOCHS, batch=4, patience=6, seed=0,
                          gpu_flops_rate=2.0e9)
        fit = trainer.fit(data.x, data.y)
        print(fit.report())
        rows.append({
            "method": method,
            "test_loss": fit.final_test_loss,
            "train_energy_J": fit.energy.total_energy,
            "sample_energy_J": result.energy.total_energy,
            "n_parameters": model.n_parameters(),
        })
    print()
    print(format_table(rows, title="Loss vs energy (cf. paper Fig 8)"))
    ratio = rows[1]["train_energy_J"] / rows[0]["train_energy_J"]
    print(f"\nfull training consumed {ratio:.1f}x MaxEnt's training energy "
          "(paper: up to 38x at 32^3 scale)")


if __name__ == "__main__":
    main()
