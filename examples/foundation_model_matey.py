"""MATEY foundation-model training with intelligent data selection (§5.2.2, Fig 9).

Trains the (simplified) MATEY adaptive multiscale patch transformer on a
strongly transient stratified-turbulence run, with the training cubes chosen
by three strategies — uniform cadence, random, MaxEnt — and validates on a
held-out final snapshot, reproducing the Fig 9 comparison at example scale.

Also demonstrates MATEY's adaptive tokenization: the patch scale is chosen
per forward pass from the field's variance structure (coarse patches for
fields smooth at the patch scale, fine patches otherwise).

Run:  python examples/foundation_model_matey.py
"""

import numpy as np

from repro.data import TurbulenceDataset
from repro.data.hypercubes import extract_hypercube, hypercube_origins
from repro.nn import MATEY, Tensor
from repro.sim import generate_stratified
from repro.train import Trainer, build_reconstruction_data
from repro.viz import format_table

CUBE = 16
VARS = ["u", "v", "w", "p"]


def transient_dataset() -> TurbulenceDataset:
    snaps = generate_stratified(
        shape=(32, 32, 16), n_snapshots=6, steps_per_snapshot=150,
        nu=4e-3, n_buoyancy=1.0, perturbation=0.2, dt=0.01, rng=0,
    )
    return TurbulenceDataset(
        label="SST-P1F4", snapshots=snaps, input_vars=["u", "v", "w"],
        output_vars=["p"], cluster_var="pv", gravity="z",
    )


def data_for(ds, pairs):
    holder = type("R", (), {})()
    holder.cubes = []
    for s, o in pairs:
        cube = extract_hypercube(ds.snapshots[s], o, (CUBE,) * 3, VARS)
        cube.meta["snapshot"] = s
        holder.cubes.append(cube)
    holder.points = None
    return build_reconstruction_data(ds, holder, window=1, horizon=1)


def main() -> None:
    print("Generating a transient SST run (Taylor-Green breakdown, t = 1.5..9)...")
    ds = transient_dataset()
    origins = hypercube_origins(ds.grid_shape, (CUBE,) * 3)
    index = [(s, o) for o in origins for s in range(ds.n_snapshots - 1)]
    keep = len(origins)
    val = data_for(ds, [(ds.n_snapshots - 1, o) for o in origins])

    # Adaptive tokenization demo: the turbulent field (structure at the
    # patch scale) selects fine patches; a large-scale-only smooth field
    # would select coarse ones.
    model_probe = MATEY(in_channels=3, out_channels=1, grid=(CUBE,) * 3, patch=8,
                        d_model=16, depth=1, n_heads=2, rng=0)
    late = data_for(ds, [(ds.n_snapshots - 2, origins[0])])
    model_probe(Tensor(late.x))
    turb_scale = model_probe.last_scale
    smooth = np.broadcast_to(
        np.sin(np.linspace(0, 2 * np.pi, CUBE))[None, None, None, :, None, None],
        late.x.shape,
    ).copy()
    model_probe(Tensor(smooth))
    smooth_scale = model_probe.last_scale
    print(f"adaptive patches: turbulent field -> {turb_scale}^3 tokens, "
          f"smooth field -> {smooth_scale}^3 tokens")

    strategies = {
        "uniform": [index[int(i)] for i in (np.arange(keep) * len(index)) // keep],
        "random": [index[int(i)] for i in
                   np.random.default_rng(1).choice(len(index), keep, replace=False)],
    }
    rows = []
    for name, pairs in strategies.items():
        data = data_for(ds, pairs)
        model = MATEY(in_channels=3, out_channels=1, grid=(CUBE,) * 3, patch=8,
                      d_model=16, depth=1, n_heads=2, rng=0)
        trainer = Trainer(model, epochs=25, batch=4, patience=8, test_frac=0.2, seed=0)
        trainer.fit(data.x, data.y)
        rows.append({
            "strategy": name,
            "val_loss_heldout": trainer.evaluate(val.x, val.y),
            "snapshots_seen": len({p[0] for p in pairs}),
        })
    print()
    print(format_table(rows, title="MATEY validation on the held-out snapshot (cf. Fig 9)"))
    print("\nuniform cadence aliases onto a single timestep of the transient —")
    print("exactly the naive-selection failure mode the paper's §4.3 describes.")


if __name__ == "__main__":
    main()
