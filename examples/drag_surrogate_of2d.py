"""OF2D drag surrogate: the paper's sample-single learning problem (§5, Fig 6).

Sparse probes in the cylinder wake feed an LSTM that predicts the drag
coefficient — the "predicting drag on a cylinder given samples from the
flowfield" use case.  Compares MaxEnt against random probe placement over
three seeds, reproducing Fig 6's mean ± std comparison at example scale.

Run:  python examples/drag_surrogate_of2d.py
"""

import numpy as np

from repro.data import build_dataset
from repro.nn import LSTMRegressor
from repro.sampling import subsample
from repro.train import Trainer, build_drag_data
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig
from repro.viz import ascii_bar, format_table

WINDOW = 3  # paper: --window 3
EPOCHS = 40
SEEDS = (0, 1, 2)


def case(method: str) -> CaseConfig:
    return CaseConfig(
        shared=SharedConfig(dims=2),
        subsample=SubsampleConfig(
            hypercubes="random", method=method, num_hypercubes=4,
            num_samples=48, num_clusters=5, nxsl=18, nysl=18, nzsl=1,
        ),
        train=TrainConfig(arch="lstm", window=WINDOW),
    )


def main() -> None:
    print("Generating OF2D (Karman vortex street + drag signal)...")
    dataset = build_dataset("OF2D", scale=0.6, rng=0, n_snapshots=60)
    print(f"  {dataset.n_snapshots} snapshots, drag mean "
          f"{dataset.target.mean():.3f} +- {dataset.target.std():.3f}")

    rows = []
    for method in ("random", "maxent"):
        losses = []
        for seed in SEEDS:
            result = subsample(dataset, case(method), seed=seed)
            x, y = build_drag_data(dataset, result, window=WINDOW, max_features=256)
            model = LSTMRegressor(input_dim=x.shape[2], hidden=24, rng=seed)
            trainer = Trainer(model, epochs=EPOCHS, batch=8, lr=5e-3,
                              patience=10, seed=seed)
            fit = trainer.fit(x, y)
            losses.append(fit.final_test_loss)
            print(f"  {method} seed {seed}: test loss {fit.final_test_loss:.5f} "
                  f"({fit.energy.total_energy:.2f} J)")
        rows.append({
            "method": method,
            "mean_loss": float(np.mean(losses)),
            "std_loss": float(np.std(losses)),
        })

    print()
    print(format_table(rows, title="Drag surrogate, 3 seeds (cf. paper Fig 6)"))
    print()
    print(ascii_bar([r["method"] for r in rows], [r["mean_loss"] for r in rows],
                    title="mean test loss (lower is better)"))


if __name__ == "__main__":
    main()
