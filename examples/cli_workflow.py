"""Drive the paper's YAML-cased CLI workflow end to end.

Writes a SICKLE-style case file (the appendix's SST-P1F4 schema), then runs
the ``subsample.py`` and ``train.py`` equivalents against it — the exact
T1 -> T2 task chain of the paper's artifact description.  Both CLI commands
are thin shells over :class:`repro.api.Experiment`; step T3 shows the same
chain driven directly from Python.

Run:  python examples/cli_workflow.py
"""

import os
import tempfile

from repro.api import Experiment
from repro.cli import subsample_main, train_main

CASE_YAML = """
shared:
  dims: 3
  dtype: sst-binary
  input_vars: [u, v, w]
  output_vars: p
  cluster_var: pv
  nx: 32
  ny: 32
  nz: 16
  gravity: z
  fileprefix: "SST-P1-Hmaxent-Xmaxent-demo"
subsample:
  hypercubes: maxent
  num_hypercubes: 4
  method: maxent
  num_samples: 410
  num_clusters: 8
  nxsl: 16
  nysl: 16
  nzsl: 16
train:
  epochs: 8
  batch: 4
  target: p_full
  window: 1
  arch: MLP_transformer
  sequence: false
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        case_path = os.path.join(tmp, "case.yaml")
        with open(case_path, "w", encoding="utf-8") as fh:
            fh.write(CASE_YAML)

        print("== T1: srun -n 2 python subsample.py case.yaml ==")
        subsample_main([case_path, "--ranks", "2", "--output_dir", os.path.join(tmp, "snapshots")])

        print("\n== T2: python train.py case.yaml ==")
        train_main([case_path, "--epochs", "8"])

        print("\n== T3: the same chain via the Experiment facade ==")
        report = (
            Experiment.from_case(case_path)
            .with_ranks(2)
            .with_seed(0)
            .with_epochs(8)
            .subsample()
            .train()
            .report()
        )
        print(report)


if __name__ == "__main__":
    main()
