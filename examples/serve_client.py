"""repro-serve walkthrough: submit -> poll -> fetch-artifact, twice.

Demonstrates the service contract end to end, self-contained (the server
runs in-process on an ephemeral port, so this needs no prior setup):

  1. start a ``ReproServer`` over a content-keyed ``ArtifactStore``,
  2. submit a subsample job spec over HTTP and poll it to completion,
  3. download the artifact and load it with the ordinary facade classes,
  4. submit the *identical* spec again — different dict ordering, other
     SPMD backend — and observe ``cache_hit: true``: the bytes come from
     the store, no new compute runs,
  5. read ``/v1/stats``: counters, budget state, energy and shard-cache
     aggregates across every job the service executed.

Against a standalone daemon the client half is identical — point
``ServeClient`` at the printed URL::

    python -m repro.serve --port 8750 &
    python -m repro.cli submit case.yaml --seed 7 --output sample.npz

Run:  PYTHONPATH=src python examples/serve_client.py
"""

import os
import shutil
import tempfile

from repro.api import SubsampleArtifact
from repro.serve import ArtifactStore, ReproServer, Scheduler, ServeClient

CASE = {
    "shared": {
        "dims": 3,
        "dtype": "sst-binary",
        "input_vars": ["u", "v", "w"],
        "output_vars": "p",
        "cluster_var": "pv",
        "gravity": "z",
        "fileprefix": "serve-example",
    },
    "subsample": {
        "hypercubes": "maxent",
        "num_hypercubes": 3,
        "method": "maxent",
        "num_samples": 64,
        "num_clusters": 4,
        "nxsl": 8,
        "nysl": 8,
        "nzsl": 8,
    },
    "train": {"epochs": 2, "batch": 4, "window": 1, "arch": "MLP_transformer"},
}


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-serve-example-")
    try:
        _run(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _run(workdir: str) -> None:
    store = ArtifactStore(os.path.join(workdir, "store"))
    scheduler = Scheduler(store, spool=os.path.join(workdir, "spool"),
                          workers=2)
    with ReproServer("127.0.0.1", 0, scheduler) as server:
        print(f"server up at {server.url}")
        client = ServeClient(server.url)

        # -- 2: submit and poll -------------------------------------------
        spec = {"kind": "subsample", "case": CASE, "seed": 7, "ranks": 2,
                "scale": 0.5}
        job = client.submit(spec)
        print(f"submitted {job['id']}: {job['status']}")
        job = client.wait(job["id"])
        result = job["result"]
        print(f"finished {job['id']}: {job['status']} "
              f"({result['n_samples']} samples, "
              f"virtual_time={result['virtual_time']:.3f}s)")

        # -- 3: fetch and load the artifact -------------------------------
        path = client.fetch_artifact(job["id"], os.path.join(workdir,
                                                             "sample"))
        artifact = SubsampleArtifact.load(path)
        print(f"artifact -> {path}")
        print(artifact.summary())

        # -- 4: identical resubmission is a cache hit ----------------------
        shuffled = {
            "backend": "process",  # identity excludes the SPMD backend
            "scale": 0.5, "ranks": 2, "seed": 7,
            "case": {k: CASE[k] for k in reversed(list(CASE))},
            "kind": "subsample",
        }
        again = client.submit(shuffled)
        assert again["cache_hit"], again
        print(f"resubmitted as {again['id']}: cache_hit={again['cache_hit']} "
              "(no new compute, bytes identical to a direct run)")

        # -- 5: service-wide stats ----------------------------------------
        stats = client.stats()
        print(f"stats: {stats['counters']['completed']} computed, "
              f"{stats['counters']['cache_hits']} cache hit(s), "
              f"{stats['store']['entries']} store entr(y/ies), "
              f"energy_total={stats['energy_total']:.3f} J")
    print("server drained and closed cleanly")


if __name__ == "__main__":
    main()
