"""Quickstart: subsample a turbulence dataset and inspect what MaxEnt keeps.

Covers the 60-second SICKLE path through the :class:`repro.api.Experiment`
facade and the stream-first :class:`~repro.data.sources.SnapshotSource`
ingestion protocol:
  1. build a dataset from the Table 1 catalog and hand it to an Experiment
     via ``with_source`` (an in-memory source — the batch mode),
  2. run the two-phase MaxEnt pipeline (hypercube selection + point
     selection) at a 10% rate via ``Experiment...subsample()``,
  3. re-run the *same* pipeline out-of-core: shard the dataset to disk and
     subsample through a ``ShardedNpzSource`` that never holds more than
     two decoded shards — identical selections, bounded memory,
  4. compare the sampled subset's PDF against the population,
  5. persist the subsample as a first-class Artifact and report the
     storage reduction.

(For the third ingestion mode — in-situ sampling while the simulation
runs, including the multi-producer ``subsample(mode="stream", ranks=N)``
path where SPMD ranks stream concurrently and merge by weighted draw —
see ``examples/streaming_insitu.py`` and the README's "Multi-rank
streaming" section.)

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.api import Experiment
from repro.data import ShardedNpzSource, build_dataset, save_dataset
from repro.metrics import pdf_match_js, tail_coverage
from repro.sampling import get_sampler
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig
from repro.viz import format_table


def make_case() -> CaseConfig:
    return CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes="maxent",     # phase 1: entropy-weighted cube choice
            method="maxent",         # phase 2: MaxEnt point selection
            num_hypercubes=6,
            num_samples=410,         # ~10% of a 16^3 cube
            num_clusters=8,
            nxsl=16, nysl=16, nzsl=16,
        ),
        train=TrainConfig(arch="mlp_transformer"),
    )


def main() -> None:
    print("Building SST-P1F4 (stratified turbulence) at reduced resolution...")
    dataset = build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=4)
    print(f"  grid {dataset.grid_shape}, {dataset.n_snapshots} snapshots, "
          f"{dataset.nbytes() / 1e6:.1f} MB raw")

    print("Running the two-phase pipeline on 2 simulated MPI ranks (batch)...")
    exp = (
        Experiment.from_case(make_case())
        .with_source(dataset)    # a TurbulenceDataset coerces to InMemorySource
        .with_ranks(2)
        .with_seed(0)
        .subsample()
    )
    result = exp.subsample_artifact.result
    print(f"  kept {result.n_samples} points from "
          f"{result.n_points_scanned} scanned ({result.meta['method']})")
    print(f"  virtual time {result.virtual_time:.3f} s; "
          f"energy {result.energy.total_energy:.2f} J")

    # The same subsample() runs out-of-core: shard the dataset to disk and
    # stream it back through a bounded LRU of decoded shards.
    with tempfile.TemporaryDirectory() as tmp:
        shard_dir = os.path.join(tmp, "shards")
        save_dataset(dataset, shard_dir)
        source = ShardedNpzSource(shard_dir, max_cached=2)
        ooc = (Experiment.from_case(make_case())
               .with_source(source).with_ranks(2).with_seed(0).subsample())
        ooc_result = ooc.subsample_artifact.result
        info = source.cache_info()
        assert np.array_equal(ooc_result.selected_cube_ids, result.selected_cube_ids)
        print(f"Out-of-core rerun over {source.n_snapshots} shards: identical "
              f"selections, never more than {info['max_resident']} decoded "
              f"shard(s) resident ({info['evictions']} evictions).")

    # How well does the sample represent the population PDF?
    population = np.concatenate([s.get("pv").ravel() for s in dataset.snapshots])
    rows = []
    for method in ("random", "maxent"):
        feats = population.reshape(-1, 1)
        idx = get_sampler(method).sample(feats, 4000, rng=0)
        rows.append({
            "method": method,
            "js_divergence": pdf_match_js(population, population[idx]),
            "tail_coverage": tail_coverage(population, idx),
        })
    print()
    print(format_table(rows, title="Sample vs population PDF (cluster variable pv)"))

    # Artifacts are first-class: save, reload, and the metadata alone (seed +
    # config snapshot) is enough to reproduce the run.
    from repro.api import SubsampleArtifact

    with tempfile.TemporaryDirectory() as tmp:
        path = exp.subsample_artifact.save(os.path.join(tmp, "sst_maxent_10pct"))
        reloaded = SubsampleArtifact.load(path)
        assert reloaded.result.n_samples == result.n_samples
        factor = dataset.nbytes() / os.path.getsize(path)
        print(f"\nStored artifact is {factor:.0f}x smaller than the raw fields "
              f"(seed={reloaded.meta['seed']}, reproducible from metadata).")


if __name__ == "__main__":
    main()
