"""Quickstart: subsample a turbulence dataset and inspect what MaxEnt keeps.

Covers the 60-second SICKLE path:
  1. build (or load) a dataset from the Table 1 catalog,
  2. run the two-phase MaxEnt pipeline (hypercube selection + point
     selection) at a 10% rate,
  3. compare the sampled subset's PDF against the population,
  4. store the feature-rich subsample and report the storage reduction.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.data import SubsampleStore, build_dataset
from repro.metrics import pdf_match_js, tail_coverage
from repro.sampling import get_sampler, subsample
from repro.utils.config import CaseConfig, SharedConfig, SubsampleConfig, TrainConfig
from repro.viz import format_table


def main() -> None:
    print("Building SST-P1F4 (stratified turbulence) at reduced resolution...")
    dataset = build_dataset("SST-P1F4", scale=1.0, rng=0, n_snapshots=4)
    print(f"  grid {dataset.grid_shape}, {dataset.n_snapshots} snapshots, "
          f"{dataset.nbytes() / 1e6:.1f} MB raw")

    case = CaseConfig(
        shared=SharedConfig(dims=3),
        subsample=SubsampleConfig(
            hypercubes="maxent",     # phase 1: entropy-weighted cube choice
            method="maxent",         # phase 2: MaxEnt point selection
            num_hypercubes=6,
            num_samples=410,         # ~10% of a 16^3 cube
            num_clusters=8,
            nxsl=16, nysl=16, nzsl=16,
        ),
        train=TrainConfig(arch="mlp_transformer"),
    )

    print("Running the two-phase pipeline on 2 simulated MPI ranks...")
    result = subsample(dataset, case, nranks=2, seed=0)
    print(f"  kept {result.n_samples} points from "
          f"{result.n_points_scanned} scanned ({result.meta['method']})")
    print(f"  virtual time {result.virtual_time:.3f} s; "
          f"energy {result.energy.total_energy:.2f} J")

    # How well does the sample represent the population PDF?
    population = np.concatenate([s.get("pv").ravel() for s in dataset.snapshots])
    rows = []
    for method in ("random", "maxent"):
        feats = population.reshape(-1, 1)
        idx = get_sampler(method).sample(feats, 4000, rng=0)
        rows.append({
            "method": method,
            "js_divergence": pdf_match_js(population, population[idx]),
            "tail_coverage": tail_coverage(population, idx),
        })
    print()
    print(format_table(rows, title="Sample vs population PDF (cluster variable pv)"))

    # Feature-rich subsample storage: the paper's file-reduction feature.
    with tempfile.TemporaryDirectory() as tmp:
        store = SubsampleStore(os.path.join(tmp, "store"))
        store.save("sst_maxent_10pct", result.points)
        factor = store.reduction_factor("sst_maxent_10pct", raw_bytes=dataset.nbytes())
        print(f"\nStored subsample is {factor:.0f}x smaller than the raw fields.")


if __name__ == "__main__":
    main()
