"""Setup shim so legacy editable installs work offline (no `wheel` package).

Also the home of the console entry points: ``repro-subsample`` /
``repro-train`` mirror ``python -m repro.cli``'s subcommands, and
``repro-lint`` runs the in-tree determinism/concurrency checker
(``python -m repro.lint``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-insitu-subsample",
    version="1.1.0",
    description=(
        "Reproduction of streaming in-situ subsampling with loss-based "
        "importance sampling, SPMD-parallel and bit-deterministic"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    entry_points={
        "console_scripts": [
            "repro-subsample = repro.cli:subsample_main",
            "repro-train = repro.cli:train_main",
            "repro-lint = repro.lint.cli:main",
            "repro-serve = repro.serve.cli:serve_main",
            "repro-submit = repro.serve.cli:submit_main",
        ],
    },
)
