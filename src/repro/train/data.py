"""Building training arrays from subsample results (paper §5's three tasks).

* **sample-single** (LSTM): per-snapshot subsampled probe values →
  sequences [B, T, C] predicting a global scalar (OF2D drag).
* **sample-full** (MLP-Transformer): subsampled points inside a hypercube →
  the dense output field of that cube ([B, T, C, N] → [B, T', C', H, W, D]);
  this is the sparse-sensor-reconstruction task, so the sampled point
  *locations* are held fixed across time per cube (sensors don't move).
* **full-full** (CNN-Transformer / MATEY): dense hypercubes in, dense
  hypercubes out.

Targets are the dense fields at the last ``horizon`` steps of each input
window (same-time reconstruction, which also covers the single-snapshot
GESTS datasets with window = horizon = 1).

Both builders accept any :class:`~repro.data.sources.SnapshotSource` (or a
resident dataset, coerced) — snapshots are fetched through the source on
demand in time order, so training windows can be assembled from out-of-core
shards or an in-situ simulation without a resident dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TurbulenceDataset
from repro.data.hypercubes import extract_hypercube
from repro.data.sources import SnapshotSource, as_source
from repro.sampling.pipeline import SubsampleResult

__all__ = ["ReconstructionData", "build_reconstruction_data", "build_drag_data", "train_test_split"]


@dataclass
class ReconstructionData:
    """Training arrays plus the geometry the model needs."""

    x: np.ndarray  # [B, T, C, N] (points) or [B, T, C, H, W, D] (cubes)
    y: np.ndarray  # [B, T', C', H, W, D]
    grid: tuple[int, int, int]
    in_channels: int
    out_channels: int
    n_points: int | None  # None for structured inputs

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x and y batch sizes differ")


def _windows(n_times: int, window: int, horizon: int) -> list[tuple[list[int], list[int]]]:
    """Input/target time-index pairs: targets are the window's last h steps."""
    if window < 1 or horizon < 1:
        raise ValueError("window and horizon must be >= 1")
    if horizon > window:
        raise ValueError("horizon must be <= window (same-time reconstruction)")
    if n_times < window:
        raise ValueError(f"need at least {window} snapshots, have {n_times}")
    return [
        (list(range(t, t + window)), list(range(t + window - horizon, t + window)))
        for t in range(n_times - window + 1)
    ]


def _window_ending_at(s: int, window: int, horizon: int) -> tuple[list[int], list[int]] | None:
    """The input/target time indices for a sample anchored at snapshot s."""
    if s < window - 1:
        return None
    t_in = list(range(s - window + 1, s + 1))
    return t_in, t_in[-horizon:]


def _cube_shape_of(result: SubsampleResult) -> tuple[int, ...]:
    if result.points is None:
        raise ValueError("result has no point samples (was method='full'?)")
    cube_shape = result.points.meta.get("cube_shape")
    if cube_shape is None:
        raise ValueError("result points missing 'cube_shape' meta")
    return tuple(int(c) for c in cube_shape)


def _snapshot_index(source: SnapshotSource, times: np.ndarray) -> np.ndarray:
    """Map per-point snapshot times back to snapshot indices."""
    ds_times = source.times
    idx = np.searchsorted(ds_times, times)
    idx = np.clip(idx, 0, len(ds_times) - 1)
    # searchsorted can land one slot right of the match for float times.
    left = np.clip(idx - 1, 0, len(ds_times) - 1)
    use_left = np.abs(ds_times[left] - times) < np.abs(ds_times[idx] - times)
    idx = np.where(use_left, left, idx)
    if not np.allclose(ds_times[idx], times):
        raise ValueError("sample times do not match any dataset snapshot")
    return idx


def _cube_groups(
    result: SubsampleResult, source: SnapshotSource
) -> dict[tuple[int, tuple[int, ...]], np.ndarray]:
    """Sampled *relative* coordinates per selected (snapshot, origin) cube."""
    pts = result.points
    cube_shape = _cube_shape_of(result)
    coords = pts.coords.astype(int)
    origins = (coords // np.array(cube_shape)) * np.array(cube_shape)
    rel = coords - origins
    times = np.broadcast_to(np.asarray(pts.time, dtype=np.float64), (len(pts),))
    snaps = _snapshot_index(source, times)
    groups: dict[tuple[int, tuple[int, ...]], np.ndarray] = {}
    keys = np.column_stack([snaps, origins])
    for key in np.unique(keys, axis=0):
        mask = np.all(keys == key, axis=1)
        groups[(int(key[0]), tuple(int(o) for o in key[1:]))] = rel[mask]
    return groups


def _origin_groups(
    result: SubsampleResult, source: SnapshotSource
) -> dict[tuple[int, ...], np.ndarray]:
    """Sensor layout per spatial origin (union over selected snapshots)."""
    merged: dict[tuple[int, ...], np.ndarray] = {}
    for (_, origin), rel in sorted(_cube_groups(result, source).items()):
        if origin not in merged:
            merged[origin] = rel
    return merged


def build_reconstruction_data(
    data: "SnapshotSource | TurbulenceDataset",
    result: SubsampleResult,
    window: int = 1,
    horizon: int = 1,
    structured: bool | None = None,
) -> ReconstructionData:
    """Assemble reconstruction training arrays from a pipeline result.

    `data` is the snapshot source (or resident dataset) the result was
    sampled from; windows are fetched through it snapshot-by-snapshot.
    """
    source = as_source(data)
    in_vars = source.input_vars
    out_vars = source.output_vars
    if not out_vars:
        raise ValueError(f"dataset {source.label} has no output variables")

    if structured is None:
        structured = result.cubes is not None

    def _block(t: int, origin, cube_shape, names) -> np.ndarray:
        snap = source.snapshot(t)
        return np.stack([
            extract_hypercube(snap, origin, cube_shape, [v]).variables[v]
            for v in names
        ])

    if structured:
        if result.cubes is None:
            raise ValueError("structured data requested but result has no cubes")
        cube_shape = result.cubes[0].shape
        xs, ys = [], []
        for cube in result.cubes:
            s = cube.meta.get("snapshot")
            if s is None:
                s = int(_snapshot_index(source, np.array([cube.time]))[0])
            pair = _window_ending_at(int(s), window, horizon)
            if pair is None:
                continue  # selected cube lacks temporal history for the window
            t_in, t_out = pair
            xs.append(np.stack([_block(t, cube.origin, cube_shape, in_vars) for t in t_in]))
            ys.append(np.stack([_block(t, cube.origin, cube_shape, out_vars) for t in t_out]))
        if not xs:
            raise ValueError("no selected cube has enough history for the window")
        return ReconstructionData(
            x=np.stack(xs), y=np.stack(ys), grid=tuple(cube_shape),
            in_channels=len(in_vars), out_channels=len(out_vars), n_points=None,
        )

    groups = _cube_groups(result, source)
    if not groups:
        raise ValueError("no sampled cubes found in result")
    n_pts = min(len(rel) for rel in groups.values())
    cube_shape = _cube_shape_of(result)
    xs, ys = [], []
    for (s, origin), rel in sorted(groups.items()):
        pair = _window_ending_at(s, window, horizon)
        if pair is None:
            continue
        t_in, t_out = pair
        rel = rel[:n_pts]
        idx = tuple(rel[:, d] + origin[d] for d in range(len(origin)))
        # Fixed sensors: the same point locations observed at every window step.
        xs.append(np.stack([
            np.stack([source.snapshot(t).get(v)[idx] for v in in_vars]) for t in t_in
        ]))
        ys.append(np.stack([_block(t, origin, cube_shape, out_vars) for t in t_out]))
    if not xs:
        raise ValueError("no selected cube has enough history for the window")
    return ReconstructionData(
        x=np.stack(xs), y=np.stack(ys), grid=tuple(cube_shape),
        in_channels=len(in_vars), out_channels=len(out_vars), n_points=n_pts,
    )


def build_drag_data(
    data: "SnapshotSource | TurbulenceDataset",
    result: SubsampleResult,
    window: int = 3,
    horizon: int = 1,
    max_features: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample-single arrays: [B, T, C*N] sequences → [B, T', 1] drag targets.

    Uses the sampled point locations of the first cube group as fixed probes
    across all snapshots (sparse sensors measuring the wake); snapshots are
    streamed through the source in time order.
    """
    source = as_source(data)
    if source.target is None:
        raise ValueError(f"dataset {source.label} has no global target")
    groups = _origin_groups(result, source)
    # Concatenate probes from all groups, capped to keep the LSTM input sane.
    rel_all = []
    for origin, rel in sorted(groups.items()):
        for r in rel:
            rel_all.append(tuple(r[d] + origin[d] for d in range(len(origin))))
    probes = rel_all[: max(1, max_features // max(1, len(source.input_vars)))]
    idx = tuple(np.array([p[d] for p in probes]) for d in range(source.ndim))

    feats = np.stack([
        np.concatenate([snap.get(v)[idx] for v in source.input_vars])
        for _, snap in source.iter_snapshots()
    ])  # [T_total, C*N]
    pairs = _windows(source.n_snapshots, window, horizon)
    x = np.stack([feats[t_in] for t_in, _ in pairs])
    y = np.stack([source.target[t_out] for _, t_out in pairs])[..., None]
    return x, y


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_frac: float = 0.1, rng: np.random.Generator | int | None = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled 90:10 (by default) split, matching the paper's protocol."""
    if not (0.0 < test_frac < 1.0):
        raise ValueError("test_frac must lie in (0, 1)")
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_frac)))
    test, train = perm[:n_test], perm[n_test:]
    if len(train) == 0:
        raise ValueError("split left no training samples")
    return x[train], y[train], x[test], y[test]
