"""Building training arrays from subsample results (paper §5's three tasks).

* **sample-single** (LSTM): per-snapshot subsampled probe values →
  sequences [B, T, C] predicting a global scalar (OF2D drag).
* **sample-full** (MLP-Transformer): subsampled points inside a hypercube →
  the dense output field of that cube ([B, T, C, N] → [B, T', C', H, W, D]);
  this is the sparse-sensor-reconstruction task, so the sampled point
  *locations* are held fixed across time per cube (sensors don't move).
* **full-full** (CNN-Transformer / MATEY): dense hypercubes in, dense
  hypercubes out.

Targets are the dense fields at the last ``horizon`` steps of each input
window (same-time reconstruction, which also covers the single-snapshot
GESTS datasets with window = horizon = 1).

Both builders accept any :class:`~repro.data.sources.SnapshotSource` (or a
resident dataset, coerced) — snapshots are fetched through the source on
demand in time order, so training windows can be assembled from out-of-core
shards or an in-situ simulation without a resident dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TurbulenceDataset
from repro.data.hypercubes import extract_hypercube
from repro.data.sources import SnapshotSource, as_source
from repro.sampling.pipeline import SubsampleResult

__all__ = [
    "ReconstructionData",
    "build_reconstruction_data",
    "build_drag_data",
    "train_test_split",
    "FeedSpec",
    "WindowAssembler",
    "ReconWindows",
    "DragWindows",
    "stream_sensor_layout",
    "stream_assembler",
]


@dataclass
class ReconstructionData:
    """Training arrays plus the geometry the model needs."""

    x: np.ndarray  # [B, T, C, N] (points) or [B, T, C, H, W, D] (cubes)
    y: np.ndarray  # [B, T', C', H, W, D]
    grid: tuple[int, int, int]
    in_channels: int
    out_channels: int
    n_points: int | None  # None for structured inputs

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x and y batch sizes differ")


def _windows(n_times: int, window: int, horizon: int) -> list[tuple[list[int], list[int]]]:
    """Input/target time-index pairs: targets are the window's last h steps."""
    if window < 1 or horizon < 1:
        raise ValueError("window and horizon must be >= 1")
    if horizon > window:
        raise ValueError("horizon must be <= window (same-time reconstruction)")
    if n_times < window:
        raise ValueError(f"need at least {window} snapshots, have {n_times}")
    return [
        (list(range(t, t + window)), list(range(t + window - horizon, t + window)))
        for t in range(n_times - window + 1)
    ]


def _window_ending_at(s: int, window: int, horizon: int) -> tuple[list[int], list[int]] | None:
    """The input/target time indices for a sample anchored at snapshot s."""
    if s < window - 1:
        return None
    t_in = list(range(s - window + 1, s + 1))
    return t_in, t_in[-horizon:]


def _cube_shape_of(result: SubsampleResult) -> tuple[int, ...]:
    if result.points is None:
        raise ValueError("result has no point samples (was method='full'?)")
    cube_shape = result.points.meta.get("cube_shape")
    if cube_shape is None:
        raise ValueError("result points missing 'cube_shape' meta")
    return tuple(int(c) for c in cube_shape)


def _snapshot_index(source: SnapshotSource, times: np.ndarray) -> np.ndarray:
    """Map per-point snapshot times back to snapshot indices."""
    ds_times = source.times
    idx = np.searchsorted(ds_times, times)
    idx = np.clip(idx, 0, len(ds_times) - 1)
    # searchsorted can land one slot right of the match for float times.
    left = np.clip(idx - 1, 0, len(ds_times) - 1)
    use_left = np.abs(ds_times[left] - times) < np.abs(ds_times[idx] - times)
    idx = np.where(use_left, left, idx)
    if not np.allclose(ds_times[idx], times):
        raise ValueError("sample times do not match any dataset snapshot")
    return idx


def _cube_groups(
    result: SubsampleResult, source: SnapshotSource
) -> dict[tuple[int, tuple[int, ...]], np.ndarray]:
    """Sampled *relative* coordinates per selected (snapshot, origin) cube."""
    pts = result.points
    cube_shape = _cube_shape_of(result)
    coords = pts.coords.astype(int)
    origins = (coords // np.array(cube_shape)) * np.array(cube_shape)
    rel = coords - origins
    times = np.broadcast_to(np.asarray(pts.time, dtype=np.float64), (len(pts),))
    snaps = _snapshot_index(source, times)
    groups: dict[tuple[int, tuple[int, ...]], np.ndarray] = {}
    keys = np.column_stack([snaps, origins])
    for key in np.unique(keys, axis=0):
        mask = np.all(keys == key, axis=1)
        groups[(int(key[0]), tuple(int(o) for o in key[1:]))] = rel[mask]
    return groups


def _origin_groups(
    result: SubsampleResult, source: SnapshotSource
) -> dict[tuple[int, ...], np.ndarray]:
    """Sensor layout per spatial origin (union over selected snapshots)."""
    merged: dict[tuple[int, ...], np.ndarray] = {}
    for (_, origin), rel in sorted(_cube_groups(result, source).items()):
        if origin not in merged:
            merged[origin] = rel
    return merged


def build_reconstruction_data(
    data: SnapshotSource | TurbulenceDataset,
    result: SubsampleResult,
    window: int = 1,
    horizon: int = 1,
    structured: bool | None = None,
) -> ReconstructionData:
    """Assemble reconstruction training arrays from a pipeline result.

    `data` is the snapshot source (or resident dataset) the result was
    sampled from; windows are fetched through it snapshot-by-snapshot.
    """
    source = as_source(data)
    in_vars = source.input_vars
    out_vars = source.output_vars
    if not out_vars:
        raise ValueError(f"dataset {source.label} has no output variables")

    if structured is None:
        structured = result.cubes is not None

    def _block(t: int, origin, cube_shape, names) -> np.ndarray:
        snap = source.snapshot(t)
        return np.stack([
            extract_hypercube(snap, origin, cube_shape, [v]).variables[v]
            for v in names
        ])

    if structured:
        if result.cubes is None:
            raise ValueError("structured data requested but result has no cubes")
        cube_shape = result.cubes[0].shape
        xs, ys = [], []
        for cube in result.cubes:
            s = cube.meta.get("snapshot")
            if s is None:
                s = int(_snapshot_index(source, np.array([cube.time]))[0])
            pair = _window_ending_at(int(s), window, horizon)
            if pair is None:
                continue  # selected cube lacks temporal history for the window
            t_in, t_out = pair
            xs.append(np.stack([_block(t, cube.origin, cube_shape, in_vars) for t in t_in]))
            ys.append(np.stack([_block(t, cube.origin, cube_shape, out_vars) for t in t_out]))
        if not xs:
            raise ValueError("no selected cube has enough history for the window")
        return ReconstructionData(
            x=np.stack(xs), y=np.stack(ys), grid=tuple(cube_shape),
            in_channels=len(in_vars), out_channels=len(out_vars), n_points=None,
        )

    groups = _cube_groups(result, source)
    if not groups:
        raise ValueError("no sampled cubes found in result")
    n_pts = min(len(rel) for rel in groups.values())
    cube_shape = _cube_shape_of(result)
    xs, ys = [], []
    for (s, origin), rel in sorted(groups.items()):
        pair = _window_ending_at(s, window, horizon)
        if pair is None:
            continue
        t_in, t_out = pair
        rel = rel[:n_pts]
        idx = tuple(rel[:, d] + origin[d] for d in range(len(origin)))
        # Fixed sensors: the same point locations observed at every window step.
        xs.append(np.stack([
            np.stack([source.snapshot(t).get(v)[idx] for v in in_vars]) for t in t_in
        ]))
        ys.append(np.stack([_block(t, origin, cube_shape, out_vars) for t in t_out]))
    if not xs:
        raise ValueError("no selected cube has enough history for the window")
    return ReconstructionData(
        x=np.stack(xs), y=np.stack(ys), grid=tuple(cube_shape),
        in_channels=len(in_vars), out_channels=len(out_vars), n_points=n_pts,
    )


def build_drag_data(
    data: SnapshotSource | TurbulenceDataset,
    result: SubsampleResult,
    window: int = 3,
    horizon: int = 1,
    max_features: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample-single arrays: [B, T, C*N] sequences → [B, T', 1] drag targets.

    Uses the sampled point locations of the first cube group as fixed probes
    across all snapshots (sparse sensors measuring the wake); snapshots are
    streamed through the source in time order.
    """
    source = as_source(data)
    if source.target is None:
        raise ValueError(f"dataset {source.label} has no global target")
    groups = _origin_groups(result, source)
    # Concatenate probes from all groups, capped to keep the LSTM input sane.
    rel_all = []
    for origin, rel in sorted(groups.items()):
        for r in rel:
            rel_all.append(tuple(r[d] + origin[d] for d in range(len(origin))))
    probes = rel_all[: max(1, max_features // max(1, len(source.input_vars)))]
    idx = tuple(np.array([p[d] for p in probes]) for d in range(source.ndim))

    feats = np.stack([
        np.concatenate([snap.get(v)[idx] for v in source.input_vars])
        for _, snap in source.iter_snapshots()
    ])  # [T_total, C*N]
    pairs = _windows(source.n_snapshots, window, horizon)
    x = np.stack([feats[t_in] for t_in, _ in pairs])
    y = np.stack([source.target[t_out] for _, t_out in pairs])[..., None]
    return x, y


# ---------------------------------------------------------------------------
# Incremental window builders (stream-mode training)
# ---------------------------------------------------------------------------
#
# The batch builders above materialize every window up front; the classes
# below build the *same shapes* one snapshot at a time, so a
# :class:`~repro.train.feeds.StreamFeed` can train directly off a streaming
# source with only a rolling ``window``-deep buffer resident.  The sampled
# point locations of a stream-mode subsample become fixed sensors, exactly
# as the batch builders treat sampled coordinates.


@dataclass(frozen=True)
class FeedSpec:
    """Model-building geometry a feed exposes before any data streams.

    Mirrors what :func:`repro.api.build_model_for_case` reads off a
    :class:`ReconstructionData` (``grid`` / channels / ``n_points``), plus
    ``input_dim`` for the LSTM's flat feature sequences.
    """

    grid: tuple[int, ...] | None
    in_channels: int
    out_channels: int
    n_points: int | None
    input_dim: int | None = None


@dataclass(frozen=True)
class SensorLayout:
    """Fixed sensor locations grouped by hypercube origin.

    ``origins[i]`` is a cube origin and ``rel[i]`` its (n_points, ndim)
    within-cube sensor offsets — every origin carries the same number of
    sensors so samples stack into rectangular batches.
    """

    cube_shape: tuple[int, ...]
    origins: tuple[tuple[int, ...], ...]
    rel: tuple[np.ndarray, ...]

    @property
    def n_points(self) -> int:
        return len(self.rel[0]) if self.rel else 0

    def index_tuples(self) -> list[tuple[np.ndarray, ...]]:
        """Per-origin global fancy-index tuples into a snapshot array."""
        out = []
        for origin, rel in zip(self.origins, self.rel):
            out.append(tuple(rel[:, d] + origin[d] for d in range(len(origin))))
        return out


def stream_sensor_layout(
    coords: np.ndarray,
    grid_shape: tuple[int, ...],
    cube_shape: tuple[int, ...],
    max_cubes: int = 8,
) -> SensorLayout:
    """Derive a fixed sensor layout from stream-sampled point coordinates.

    Stream-mode subsamples carry no hypercube structure, so the cube tiling
    is reimposed here: points are binned by the case's cube shape, the
    ``max_cubes`` best-populated cubes (fully inside the grid) are kept, and
    each keeps the same number of sensors (the smallest kept group, so
    batches are rectangular).  Deterministic: groups order by size then
    origin, sensor offsets sort lexicographically.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2 or len(coords) == 0:
        raise ValueError("coords must be a non-empty (n, ndim) array")
    d = len(grid_shape)
    if coords.shape[1] != d:
        raise ValueError(f"coords are {coords.shape[1]}-D but the grid is {d}-D")
    cube = np.minimum(np.asarray(cube_shape[:d], dtype=int), np.asarray(grid_shape))
    if np.any(cube < 1):
        raise ValueError("cube shape must be >= 1 along every axis")
    icoords = np.rint(coords).astype(int)
    origins_all = (icoords // cube) * cube
    groups: dict[tuple[int, ...], np.ndarray] = {}
    for key in np.unique(origins_all, axis=0):
        origin = tuple(int(o) for o in key)
        if any(o + c > g for o, c, g in zip(origin, cube, grid_shape)):
            continue  # partial boundary tile: no full dense target block
        mask = np.all(origins_all == key, axis=1)
        rel = np.unique(icoords[mask] - key, axis=0)  # dedupe + lex order
        groups[origin] = rel
    if not groups:
        raise ValueError("no sampled point falls inside a full cube tile")
    ranked = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))[:max_cubes]
    n_pts = min(len(rel) for _, rel in ranked)
    kept = sorted((origin, rel[:n_pts]) for origin, rel in ranked)
    return SensorLayout(
        cube_shape=tuple(int(c) for c in cube),
        origins=tuple(origin for origin, _ in kept),
        rel=tuple(rel for _, rel in kept),
    )


class WindowAssembler:
    """Turns a rolling buffer of per-snapshot records into training samples.

    Subclasses define :meth:`read` (one compact record per streamed
    snapshot — sensor readings, dense target blocks) and :meth:`assemble`
    (the samples for the window the buffer currently holds); ``spec`` gives
    the model geometry up front, before any data streams.
    """

    window: int
    horizon: int
    n_per_window: int
    spec: FeedSpec

    def read(self, snap, index: int):
        raise NotImplementedError

    def assemble(self, records) -> list[tuple[np.ndarray, np.ndarray]]:
        raise NotImplementedError


class ReconWindows(WindowAssembler):
    """Sparse-sensor reconstruction windows, one sample per (window, cube).

    Per streamed snapshot, :meth:`read` keeps each cube's sensor readings
    ([C, N]) and its dense output block ([C', *cube]); :meth:`assemble`
    stacks the window into ``x = [T, C, N]`` and the last ``horizon``
    blocks into ``y = [T', C', *cube]`` — the shapes
    :func:`build_reconstruction_data` produces, built incrementally.
    """

    def __init__(
        self,
        layout: SensorLayout,
        in_vars: list[str],
        out_vars: list[str],
        window: int = 1,
        horizon: int = 1,
    ) -> None:
        if window < 1 or horizon < 1 or horizon > window:
            raise ValueError("need 1 <= horizon <= window")
        if not out_vars:
            raise ValueError("reconstruction windows need output variables")
        self.layout = layout
        self.in_vars = list(in_vars)
        self.out_vars = list(out_vars)
        self.window = window
        self.horizon = horizon
        self.n_per_window = len(layout.origins)
        self._idx = layout.index_tuples()
        self.spec = FeedSpec(
            grid=layout.cube_shape,
            in_channels=len(self.in_vars),
            out_channels=len(self.out_vars),
            n_points=layout.n_points,
        )

    def read(self, snap, index: int):
        sens = [
            np.stack([snap.get(v)[idx] for v in self.in_vars])
            for idx in self._idx
        ]
        blocks = [
            np.stack([
                extract_hypercube(snap, origin, self.layout.cube_shape, [v]).variables[v]
                for v in self.out_vars
            ])
            for origin in self.layout.origins
        ]
        return sens, blocks

    def assemble(self, records) -> list[tuple[np.ndarray, np.ndarray]]:
        records = list(records)
        out = []
        for i in range(len(self.layout.origins)):
            x = np.stack([sens[i] for sens, _ in records])
            y = np.stack([blocks[i] for _, blocks in records[-self.horizon:]])
            out.append((x, y))
        return out


class DragWindows(WindowAssembler):
    """Sample-single (LSTM) windows: probe sequences → global-target steps.

    Mirrors :func:`build_drag_data`: the sampled locations become fixed
    probes; per snapshot the record is one flat feature row plus the
    snapshot's global target, and a window assembles into
    ``x = [T, C*N]`` / ``y = [T', 1]``.
    """

    def __init__(
        self,
        layout: SensorLayout,
        in_vars: list[str],
        window: int = 3,
        horizon: int = 1,
        max_features: int = 512,
    ) -> None:
        if window < 1 or horizon < 1 or horizon > window:
            raise ValueError("need 1 <= horizon <= window")
        self.in_vars = list(in_vars)
        self.window = window
        self.horizon = horizon
        self.n_per_window = 1
        probes = [
            tuple(int(rel[d] + origin[d]) for d in range(len(origin)))
            for origin, rel_block in zip(layout.origins, layout.rel)
            for rel in rel_block
        ]
        probes = probes[: max(1, max_features // max(1, len(self.in_vars)))]
        ndim = len(layout.cube_shape)
        self._idx = tuple(
            np.array([p[d] for p in probes]) for d in range(ndim)
        )
        self.spec = FeedSpec(
            grid=None,
            in_channels=len(self.in_vars),
            out_channels=1,
            n_points=len(probes),
            input_dim=len(probes) * len(self.in_vars),
        )

    def read(self, snap, index: int):
        feats = np.concatenate([snap.get(v)[self._idx] for v in self.in_vars])
        return feats, index

    def assemble(self, records) -> list[tuple[np.ndarray, np.ndarray]]:
        records = list(records)
        x = np.stack([feats for feats, _ in records])
        y = np.array(
            [self._target(idx) for _, idx in records[-self.horizon:]],
            dtype=np.float64,
        )[:, None]
        return [(x, y)]

    def bind_target(self, target: np.ndarray) -> DragWindows:
        """Attach the (span-local) per-snapshot global target array."""
        if target is None:
            raise ValueError("drag windows need a source with a global target")
        self._targets = np.asarray(target, dtype=np.float64)
        return self

    def _target(self, index: int) -> float:
        return float(self._targets[index])


def stream_assembler(
    source: SnapshotSource,
    case,
    points,
    max_cubes: int = 8,
) -> WindowAssembler:
    """Build the window assembler for a case's architecture and stream points.

    ``points`` is the stream-mode subsample's
    :class:`~repro.data.points.PointSet` (the sampled locations become the
    fixed sensors/probes).  Supports the unstructured architectures:
    ``lstm`` (drag sequences) and ``mlp_transformer`` (sparse-sensor
    reconstruction); the dense-cube architectures need ``method='full'``,
    which has no streaming analogue.
    """
    arch = case.train.arch
    if arch not in ("lstm", "mlp_transformer"):
        raise ValueError(
            f"stream training supports arch 'lstm' and 'mlp_transformer'; "
            f"{arch!r} needs dense cubes (method 'full'), which have no "
            "single-pass streaming analogue — use mode='batch'"
        )
    if points is None or len(points) == 0:
        raise ValueError("stream training needs a subsample with point samples")
    layout = stream_sensor_layout(
        points.coords, source.grid_shape, case.subsample.hypercube_shape,
        max_cubes=max_cubes,
    )
    window, horizon = case.train.window, case.train.horizon
    if arch == "lstm":
        if source.target is None:
            raise ValueError(
                f"dataset {source.label} has no global target (lstm trains "
                "on a per-snapshot scalar)"
            )
        return DragWindows(
            layout, source.input_vars, window=window, horizon=horizon,
        ).bind_target(source.target)
    return ReconWindows(
        layout, source.input_vars, source.output_vars,
        window=window, horizon=horizon,
    )


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_frac: float = 0.1, rng: np.random.Generator | int | None = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled 90:10 (by default) split, matching the paper's protocol."""
    if not (0.0 < test_frac < 1.0):
        raise ValueError("test_frac must lie in (0, 1)")
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_frac)))
    test, train = perm[:n_test], perm[n_test:]
    if len(train) == 0:
        raise ValueError("split left no training samples")
    return x[train], y[train], x[test], y[test]
