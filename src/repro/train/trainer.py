"""The classic array trainer (= the paper's train.py), now a thin shim.

Implements the §5.2 protocol: Adam at lr 1e-3, reduce-on-plateau with
patience 20, batch size 16, 90:10 train/test split, MSE loss, optional
mixed-precision emulation and DDP over the simulated communicator.  Energy
is metered around the whole fit and reported with the paper's greppable
lines (``Total Energy Consumed``, ``Evaluation on test set``).

Since the stream-first training redesign the loop itself lives in
:class:`~repro.train.loop.TrainLoop`, driven by the
:class:`~repro.train.feeds.BatchFeed` protocol; :class:`Trainer` keeps the
historical ``fit(x, y)`` surface as an :class:`~repro.train.feeds.ArrayFeed`
over the new loop — bit-identical to the pre-redesign epoch loop under the
seed goldens (pinned by the equivalence tests).
"""

from __future__ import annotations

import numpy as np

from repro.nn.loss import mse_loss
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.parallel.comm import Communicator
from repro.train.callbacks import Callback
from repro.train.feeds import ArrayFeed
from repro.train.loop import TrainLoop, TrainResult

__all__ = ["TrainResult", "Trainer"]


class Trainer:
    """Configurable training loop over numpy arrays (shim over TrainLoop)."""

    def __init__(
        self,
        model: Module,
        epochs: int = 100,
        batch: int = 16,
        lr: float = 1e-3,
        patience: int = 20,
        precision: str = "fp32",
        grad_clip: float = 10.0,
        test_frac: float = 0.1,
        comm: Communicator | None = None,
        seed: int = 0,
        verbose: bool = False,
        gpu_flops_rate: float = 20.0e12,
        callbacks: list[Callback] | None = None,
    ) -> None:
        if epochs < 1 or batch < 1:
            raise ValueError("epochs and batch must be >= 1")
        if gpu_flops_rate <= 0:
            raise ValueError("gpu_flops_rate must be positive")
        self.loop = TrainLoop(
            model, lr=lr, patience=patience, precision=precision,
            grad_clip=grad_clip, comm=comm, seed=seed, verbose=verbose,
            gpu_flops_rate=gpu_flops_rate, callbacks=callbacks,
        )
        self.model = model
        self.epochs = epochs
        self.batch = batch
        self.test_frac = test_frac
        self.seed = seed
        self.gpu_flops_rate = gpu_flops_rate

    # Historical attributes, forwarded to the loop --------------------------

    @property
    def comm(self):
        return self.loop.comm

    @property
    def ddp(self):
        return self.loop.ddp

    @property
    def optimizer(self):
        return self.loop.optimizer

    @property
    def scheduler(self):
        return self.loop.scheduler

    @property
    def precision(self) -> str:
        return self.loop.precision

    @property
    def grad_clip(self) -> float:
        return self.loop.grad_clip

    def fit(self, x: np.ndarray, y: np.ndarray, resume: str | None = None) -> TrainResult:
        """Split, train with plateau LR, meter energy, evaluate on test.

        ``resume`` continues from a checkpoint written during an earlier
        (interrupted) fit of the same data and seed — see
        :class:`~repro.train.callbacks.Checkpoint`.
        """
        feed = ArrayFeed(
            x, y, batch=self.batch, test_frac=self.test_frac,
            seed=self.seed, comm=self.loop.comm,
        )
        return self.loop.fit(feed, epochs=self.epochs, resume=resume)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean MSE over the given set (no grad, eval mode)."""
        self.model.eval()
        total, count = 0.0, 0
        with no_grad():
            for lo in range(0, x.shape[0], self.batch):
                xb = x[lo : lo + self.batch]
                yb = y[lo : lo + self.batch]
                loss = mse_loss(self.loop._forward(xb), Tensor(yb))
                total += float(loss.data) * len(xb)
                count += len(xb)
        self.model.train()
        return total / max(count, 1)
