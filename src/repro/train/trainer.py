"""The training loop (= the paper's train.py).

Implements the §5.2 protocol: Adam at lr 1e-3, reduce-on-plateau with
patience 20, batch size 16, 90:10 train/test split, MSE loss, optional
mixed-precision emulation and DDP over the simulated communicator.  Energy
is metered around the whole fit and reported with the paper's greppable
lines (``Total Energy Consumed``, ``Evaluation on test set``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.energy.meter import EnergyMeter
from repro.nn.amp import autocast
from repro.nn.ddp import DistributedDataParallel, shard_indices
from repro.nn.loss import mse_loss
from repro.nn.module import Module
from repro.nn.optim import Adam, ReduceLROnPlateau, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.parallel.comm import Communicator, SerialComm
from repro.train.data import train_test_split
from repro.utils.log import get_logger

__all__ = ["TrainResult", "Trainer"]

_LOG = get_logger("repro.train")


@dataclass
class TrainResult:
    """Fit outcome: losses, energy, and the paper's report lines."""

    train_losses: list[float]
    test_losses: list[float]
    best_test_loss: float
    final_test_loss: float
    epochs_run: int
    energy: EnergyMeter
    lr_reductions: int
    meta: dict = field(default_factory=dict)

    def report(self) -> str:
        return (
            f"Evaluation on test set: {self.final_test_loss:.6f}\n"
            + self.energy.report()
        )


class Trainer:
    """Configurable training loop over numpy arrays."""

    def __init__(
        self,
        model: Module,
        epochs: int = 100,
        batch: int = 16,
        lr: float = 1e-3,
        patience: int = 20,
        precision: str = "fp32",
        grad_clip: float = 10.0,
        test_frac: float = 0.1,
        comm: Communicator | None = None,
        seed: int = 0,
        verbose: bool = False,
        gpu_flops_rate: float = 20.0e12,
    ) -> None:
        if epochs < 1 or batch < 1:
            raise ValueError("epochs and batch must be >= 1")
        self.comm = comm or SerialComm()
        self.model = model
        self.ddp = DistributedDataParallel(model, self.comm) if self.comm.size > 1 else None
        self.epochs = epochs
        self.batch = batch
        self.precision = precision
        self.grad_clip = grad_clip
        self.test_frac = test_frac
        self.seed = seed
        self.verbose = verbose
        if gpu_flops_rate <= 0:
            raise ValueError("gpu_flops_rate must be positive")
        self.gpu_flops_rate = gpu_flops_rate
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.scheduler = ReduceLROnPlateau(self.optimizer, patience=patience)

    def _forward(self, x: np.ndarray) -> Tensor:
        target_model = self.ddp if self.ddp is not None else self.model
        return target_model(Tensor(x))

    def _epoch(self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> float:
        order = rng.permutation(x.shape[0])
        total, count = 0.0, 0
        for lo in range(0, len(order), self.batch):
            idx = order[lo : lo + self.batch]
            self.optimizer.zero_grad()
            loss = mse_loss(self._forward(x[idx]), Tensor(y[idx]))
            loss.backward()
            if self.ddp is not None:
                self.ddp.sync_gradients()
            clip_grad_norm(self.optimizer.params, self.grad_clip)
            self.optimizer.step()
            total += float(loss.data) * len(idx)
            count += len(idx)
        return total / max(count, 1)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean MSE over the given set (no grad, eval mode)."""
        self.model.eval()
        total, count = 0.0, 0
        with no_grad():
            for lo in range(0, x.shape[0], self.batch):
                xb = x[lo : lo + self.batch]
                yb = y[lo : lo + self.batch]
                loss = mse_loss(self._forward(xb), Tensor(yb))
                total += float(loss.data) * len(xb)
                count += len(xb)
        self.model.train()
        return total / max(count, 1)

    def fit(self, x: np.ndarray, y: np.ndarray) -> TrainResult:
        """Split, train with plateau LR, meter energy, evaluate on test."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, self.test_frac, rng=self.seed)
        # DDP: each rank trains on its shard of the training split.
        if self.comm.size > 1:
            mine = shard_indices(len(x_tr), self.comm, seed=self.seed)
            x_tr, y_tr = x_tr[mine], y_tr[mine]

        rng = np.random.default_rng(self.seed + 1)
        train_losses: list[float] = []
        test_losses: list[float] = []
        best = np.inf
        with EnergyMeter() as meter:
            clock_start = self.comm.clock.t
            for epoch in range(self.epochs):
                with autocast(self.precision):
                    tr = self._epoch(x_tr, y_tr, rng)
                te = self.evaluate(x_te, y_te)
                self.scheduler.step(te)
                train_losses.append(tr)
                test_losses.append(te)
                best = min(best, te)
                if self.verbose and (epoch % 10 == 0 or epoch == self.epochs - 1):
                    _LOG.info(
                        "epoch %d: train %.5f test %.5f lr %.2e", epoch, tr, te, self.scheduler.lr
                    )
            # Virtual wall time: GPU-seconds from metered FLOPs at the
            # configured sustained rate (default: MI250X-class 20 TFLOP/s;
            # benches lower it to reflect small-kernel effective throughput).
            gpu_seconds = meter.flops_gpu / self.gpu_flops_rate
            meter.add_elapsed(gpu_seconds + (self.comm.clock.t - clock_start))

        final = self.evaluate(x_te, y_te)
        return TrainResult(
            train_losses=train_losses,
            test_losses=test_losses,
            best_test_loss=float(best),
            final_test_loss=float(final),
            epochs_run=self.epochs,
            energy=meter,
            lr_reductions=self.scheduler.n_reductions,
            meta={"ranks": self.comm.size, "precision": self.precision},
        )
