"""Hyperparameter search (the paper's DeepHyper ``--tune`` substitute).

Implements random search plus a lightweight TPE-style Bayesian strategy:
after a warmup of random trials, candidates are proposed near the
best-quantile configurations (kernel density in normalized space) and the
candidate maximizing the good/bad density ratio is evaluated.  No GP library
required, same asymptotic behaviour class as DeepHyper's default for
low-dimensional spaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.utils.rng import resolve_rng

__all__ = ["SearchSpace", "Trial", "tune", "default_search_space"]


@dataclass(frozen=True)
class SearchSpace:
    """Box space: per-parameter (low, high, kind) with kind in
    {'float', 'log', 'int', 'choice'} (choice uses `options`)."""

    params: dict[str, tuple] = field(default_factory=dict)

    def sample(self, rng: np.random.Generator) -> dict:
        out = {}
        for name, spec in self.params.items():
            kind = spec[0]
            if kind == "float":
                out[name] = float(rng.uniform(spec[1], spec[2]))
            elif kind == "log":
                out[name] = float(np.exp(rng.uniform(np.log(spec[1]), np.log(spec[2]))))
            elif kind == "int":
                out[name] = int(rng.integers(spec[1], spec[2] + 1))
            elif kind == "choice":
                out[name] = spec[1][rng.integers(len(spec[1]))]
            else:
                raise ValueError(f"unknown param kind {kind!r} for {name!r}")
        return out

    def normalize(self, config: dict) -> np.ndarray:
        """Map a config to [0, 1]^d for density modeling."""
        vec = []
        for name, spec in self.params.items():
            kind, v = spec[0], config[name]
            if kind == "float":
                vec.append((v - spec[1]) / max(spec[2] - spec[1], 1e-12))
            elif kind == "log":
                vec.append(
                    (np.log(v) - np.log(spec[1])) / max(np.log(spec[2]) - np.log(spec[1]), 1e-12)
                )
            elif kind == "int":
                vec.append((v - spec[1]) / max(spec[2] - spec[1], 1))
            elif kind == "choice":
                vec.append(spec[1].index(v) / max(len(spec[1]) - 1, 1))
        return np.asarray(vec)


def default_search_space() -> SearchSpace:
    """The search space ``repro-train --tune`` / ``Experiment.tune`` use by
    default: learning rate (log-uniform around the paper's 1e-3) and batch
    size — the two §5.2 knobs the paper's DeepHyper runs sweep."""
    return SearchSpace({
        "lr": ("log", 1e-4, 1e-2),
        "batch": ("choice", [4, 8, 16, 32]),
    })


@dataclass
class Trial:
    config: dict
    score: float


def tune(
    objective: Callable[[dict], float],
    space: SearchSpace,
    n_trials: int = 20,
    strategy: str = "bayes",
    warmup: int = 5,
    n_candidates: int = 32,
    gamma: float = 0.3,
    rng: np.random.Generator | int | None = None,
) -> tuple[Trial, list[Trial]]:
    """Minimize `objective`; returns (best trial, all trials)."""
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    if strategy not in ("random", "bayes"):
        raise ValueError("strategy must be 'random' or 'bayes'")
    rng = resolve_rng(rng)
    trials: list[Trial] = []

    def density(point: np.ndarray, refs: np.ndarray, bw: float = 0.15) -> float:
        if len(refs) == 0:
            return 1e-9
        d2 = ((refs - point) ** 2).sum(axis=1)
        return float(np.exp(-d2 / (2 * bw**2)).mean()) + 1e-9

    for t in range(n_trials):
        if strategy == "random" or t < warmup:
            config = space.sample(rng)
        else:
            scores = np.array([tr.score for tr in trials])
            order = np.argsort(scores)
            n_good = max(1, int(np.ceil(gamma * len(trials))))
            good = np.stack([space.normalize(trials[i].config) for i in order[:n_good]])
            bad = np.stack([space.normalize(trials[i].config) for i in order[n_good:]]) \
                if len(trials) > n_good else np.empty((0, good.shape[1]))
            candidates = [space.sample(rng) for _ in range(n_candidates)]
            ratios = [
                density(space.normalize(c), good) / density(space.normalize(c), bad)
                for c in candidates
            ]
            config = candidates[int(np.argmax(ratios))]
        score = float(objective(config))
        if not np.isfinite(score):
            score = np.inf
        trials.append(Trial(config=config, score=score))
    best = min(trials, key=lambda tr: tr.score)
    return best, trials
