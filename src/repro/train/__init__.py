"""Training pipeline: feeds, the step-based loop, callbacks, and HPO.

Stream-first training mirrors the ingestion redesign: a
:class:`~repro.train.feeds.BatchFeed` delivers minibatches to
:class:`~repro.train.loop.TrainLoop` — :class:`~repro.train.feeds.ArrayFeed`
for resident arrays (the classic path, byte-identical under the seed
goldens), :class:`~repro.train.feeds.StreamFeed` for incremental windows
off a streaming source, :class:`~repro.train.feeds.ShardedFeed` for
per-rank DDP feeds.  Episodic behaviour (plateau LR, early stop, energy,
logging, checkpoint/resume) lives in :mod:`~repro.train.callbacks`.

:func:`~repro.train.data.build_reconstruction_data` and
:func:`~repro.train.data.build_drag_data` turn a
:class:`~repro.sampling.pipeline.SubsampleResult` into resident arrays for
the three learning problems of §5 (sample-single, sample-full, full-full);
:class:`~repro.train.trainer.Trainer` keeps the historical ``fit(x, y)``
surface; :func:`~repro.train.tuning.tune` replaces DeepHyper's ``--tune``.
"""

from repro.train.callbacks import (
    Callback,
    Checkpoint,
    EarlyStopping,
    EnergyCallback,
    LoggingCallback,
    ReduceLROnPlateauCallback,
    peek_checkpoint,
)
from repro.train.data import (
    DragWindows,
    FeedSpec,
    ReconstructionData,
    ReconWindows,
    build_drag_data,
    build_reconstruction_data,
    stream_assembler,
    stream_sensor_layout,
    train_test_split,
)
from repro.train.feeds import (
    ArrayFeed,
    BatchFeed,
    ShardedFeed,
    ShuffleBuffer,
    StreamFeed,
)
from repro.train.loop import TrainLoop, TrainResult
from repro.train.trainer import Trainer
from repro.train.tuning import SearchSpace, Trial, default_search_space, tune

__all__ = [
    "ReconstructionData",
    "build_drag_data",
    "build_reconstruction_data",
    "train_test_split",
    "FeedSpec",
    "ReconWindows",
    "DragWindows",
    "stream_assembler",
    "stream_sensor_layout",
    "BatchFeed",
    "ArrayFeed",
    "StreamFeed",
    "ShardedFeed",
    "ShuffleBuffer",
    "TrainLoop",
    "TrainResult",
    "Trainer",
    "Callback",
    "Checkpoint",
    "EarlyStopping",
    "EnergyCallback",
    "LoggingCallback",
    "ReduceLROnPlateauCallback",
    "peek_checkpoint",
    "SearchSpace",
    "Trial",
    "tune",
    "default_search_space",
]
