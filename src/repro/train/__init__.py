"""Training pipeline: data assembly, the Trainer loop, and HPO.

:func:`~repro.train.data.build_reconstruction_data` and
:func:`~repro.train.data.build_drag_data` turn a
:class:`~repro.sampling.pipeline.SubsampleResult` into arrays for the three
learning problems of §5 (sample-single, sample-full, full-full);
:class:`~repro.train.trainer.Trainer` runs the §5.2 protocol with energy
metering; :func:`~repro.train.tuning.tune` replaces DeepHyper's ``--tune``.
"""

from repro.train.data import (
    ReconstructionData,
    build_drag_data,
    build_reconstruction_data,
    train_test_split,
)
from repro.train.trainer import TrainResult, Trainer
from repro.train.tuning import SearchSpace, Trial, tune

__all__ = [
    "ReconstructionData",
    "build_drag_data",
    "build_reconstruction_data",
    "train_test_split",
    "TrainResult",
    "Trainer",
    "SearchSpace",
    "Trial",
    "tune",
]
