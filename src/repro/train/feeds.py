"""Batch feeds: the training-side twin of the SnapshotSource redesign.

A :class:`BatchFeed` is to :class:`~repro.train.loop.TrainLoop` what a
:class:`~repro.data.sources.SnapshotSource` is to the subsample pipeline —
one protocol behind which batch, streaming, and distributed data delivery
are interchangeable:

* :class:`ArrayFeed` — today's resident ``x, y`` arrays: the paper's §5.2
  protocol (shuffled 90:10 split, per-epoch permutation, DDP sharding),
  byte-identical to the pre-feed epoch loop under the seed goldens.
* :class:`StreamFeed` — builds LSTM/reconstruction windows *incrementally*
  as snapshots arrive from a source: a rolling window of sensor readings
  (and dense target blocks) is all that is ever resident, so training runs
  directly off the merged stream a ``subsample(mode="stream")`` produced —
  bounded memory, no resident dataset.  Each epoch re-streams the source
  (sharded sources re-read from disk, in-situ simulations replay — the
  standard in-situ trade of compute for memory).
* :class:`ShardedFeed` — the DDP flavour of :class:`StreamFeed`: each rank
  streams only its own contiguous snapshot span (a
  :class:`~repro.data.sources.PartitionedSource` view, or a private
  per-rank source over an :class:`~repro.data.store.OwnedShardLayout`),
  with globally agreed test membership and step counts so gradient
  synchronization stays in lock-step across ranks.

Feeds expose ``state()`` / ``load_state()`` — the *feed cursor* — so a
checkpointed fit resumes with the exact RNG/stream position it stopped at.
"""

from __future__ import annotations

import abc
from collections import deque
from collections.abc import Iterator

import numpy as np

from repro.data.sources import SnapshotSource
from repro.nn.ddp import shard_indices
from repro.parallel.comm import Communicator, SerialComm
from repro.parallel.partition import stream_partitions, window_counts
from repro.train.data import WindowAssembler, train_test_split

__all__ = ["BatchFeed", "ArrayFeed", "ShuffleBuffer", "StreamFeed", "ShardedFeed"]

Batch = tuple[np.ndarray, np.ndarray]


class ShuffleBuffer:
    """Bounded streaming shuffle (the ``tf.data.Dataset.shuffle`` scheme).

    Holds at most ``capacity`` items: once full, each arriving item evicts
    (and yields) a uniformly random resident, and the buffer drains in random
    order at end of stream.  Memory stays O(capacity) however long the stream
    is, and a stream shorter than ``capacity`` comes out fully shuffled.  The
    draw sequence is a pure function of the generator passed in, so a feed
    that checkpoints its RNG replays the identical shuffle on resume.
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.rng = rng

    def __call__(self, items: Iterator) -> Iterator:
        buf: list = []
        for item in items:
            if len(buf) < self.capacity:
                buf.append(item)
                continue
            j = int(self.rng.integers(len(buf)))
            out, buf[j] = buf[j], item
            yield out
        while buf:
            j = int(self.rng.integers(len(buf)))
            buf[j], buf[-1] = buf[-1], buf[j]
            yield buf.pop()


class BatchFeed(abc.ABC):
    """Delivers minibatches to the loop; owns split, shuffle, and cursor."""

    #: True when :meth:`eval_batches` yields only this rank's shard of the
    #: test set, so the loop must all-reduce the evaluation sums.
    eval_sharded: bool = False

    @abc.abstractmethod
    def train_batches(self, epoch: int) -> Iterator[Batch]:
        """Yield the epoch's training minibatches ``(x, y)`` in order."""

    @abc.abstractmethod
    def eval_batches(self) -> Iterator[Batch]:
        """Yield the test set as minibatches (deterministic order)."""

    @property
    def meta(self) -> dict:
        """Provenance recorded into ``TrainResult.meta['feed']``."""
        return {"kind": type(self).__name__}

    def state(self) -> dict:
        """JSON-serializable feed cursor for checkpoints."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore a cursor produced by :meth:`state`."""


class ArrayFeed(BatchFeed):
    """Resident-array feed reproducing the classic epoch loop bit-for-bit.

    Splits with :func:`~repro.train.data.train_test_split` at ``rng=seed``,
    shards the training split across DDP ranks, and draws one permutation
    per epoch from ``default_rng(seed + 1)`` — the exact RNG sequence of the
    pre-feed trainer, pinned by the equivalence tests.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch: int = 16,
        test_frac: float = 0.1,
        seed: int = 0,
        comm: Communicator | None = None,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, test_frac, rng=seed)
        comm = comm or SerialComm()
        if comm.size > 1:
            # DDP: each rank trains on its shard of the training split.
            mine = shard_indices(len(x_tr), comm, seed=seed)
            x_tr, y_tr = x_tr[mine], y_tr[mine]
        self.x_tr, self.y_tr = x_tr, y_tr
        self.x_te, self.y_te = x_te, y_te
        self.batch = batch
        self.seed = seed
        self._rng = np.random.default_rng(seed + 1)
        self._epochs_streamed = 0

    @property
    def n_train(self) -> int:
        return len(self.x_tr)

    @property
    def n_test(self) -> int:
        return len(self.x_te)

    def train_batches(self, epoch: int) -> Iterator[Batch]:
        order = self._rng.permutation(self.x_tr.shape[0])
        for lo in range(0, len(order), self.batch):
            idx = order[lo : lo + self.batch]
            yield self.x_tr[idx], self.y_tr[idx]
        self._epochs_streamed += 1

    def eval_batches(self) -> Iterator[Batch]:
        for lo in range(0, self.x_te.shape[0], self.batch):
            yield self.x_te[lo : lo + self.batch], self.y_te[lo : lo + self.batch]

    @property
    def meta(self) -> dict:
        return {
            "kind": "ArrayFeed",
            "n_train": int(self.n_train),
            "n_test": int(self.n_test),
            "batch": int(self.batch),
        }

    def state(self) -> dict:
        # The permutation generator's exact position: restoring it replays
        # epochs k.. with the same shuffles an uninterrupted fit would draw.
        return {
            "kind": "ArrayFeed",
            "rng": self._rng.bit_generator.state,
            "epochs_streamed": self._epochs_streamed,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != "ArrayFeed":
            raise ValueError(
                f"checkpoint feed cursor is {state.get('kind')!r}, not ArrayFeed"
            )
        self._rng.bit_generator.state = state["rng"]
        self._epochs_streamed = int(state["epochs_streamed"])


class StreamFeed(BatchFeed):
    """Assemble training windows on the fly from a streaming snapshot source.

    Per epoch the source is visited once, in snapshot order; a rolling
    buffer of the last ``window`` per-snapshot records (sensor readings +
    dense target blocks, built by a
    :class:`~repro.train.data.WindowAssembler`) is the only training state —
    nothing proportional to the dataset is ever resident.  Emitted samples
    carry a deterministic global index; a seed-derived permutation marks
    ``test_frac`` of them as the test set (cached after the first pass — the
    test set is subsample-sized, tiny next to the dataset), and the rest
    stream into minibatches in arrival order (online training: the data is
    consumed as it is produced).

    ``shuffle`` inserts a :class:`ShuffleBuffer` of that capacity between
    the window assembler and the batcher, decorrelating online-training
    minibatches from snapshot arrival order without unbounded memory; the
    draws come from ``default_rng([seed + 2, sample_offset])`` (carried in
    the feed cursor) so shuffled fits stay bit-deterministic and resumable.
    The default (``0``) streams in arrival order, byte-identical to
    pre-shuffle fits.

    ``sample_offset`` / ``total_samples`` / ``steps`` support the sharded
    multi-rank flavour (see :class:`ShardedFeed`): they pin the global
    numbering and the per-epoch step count so every DDP rank agrees on test
    membership and takes the same number of optimizer steps.
    """

    def __init__(
        self,
        source: SnapshotSource,
        assembler: WindowAssembler,
        batch: int = 16,
        test_frac: float = 0.1,
        seed: int = 0,
        sample_offset: int = 0,
        total_samples: int | None = None,
        steps: int | None = None,
        shuffle: int = 0,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if shuffle < 0:
            raise ValueError("shuffle must be >= 0 (0 disables the buffer)")
        if not (0.0 < test_frac < 1.0):
            raise ValueError("test_frac must lie in (0, 1)")
        self.source = source
        self.assembler = assembler
        self.batch = batch
        self.test_frac = test_frac
        self.seed = seed
        self.sample_offset = int(sample_offset)
        window = assembler.window
        self.local_windows = max(0, source.n_snapshots - window + 1)
        self.local_samples = self.local_windows * assembler.n_per_window
        self.total_samples = (
            int(total_samples) if total_samples is not None else self.local_samples
        )
        if self.total_samples < 2:
            raise ValueError(
                f"stream feed needs at least 2 window samples to split, got "
                f"{self.total_samples} ({source.n_snapshots} snapshots, "
                f"window {window})"
            )
        # Global test membership mirrors train_test_split's count rule, drawn
        # from the same seed on every rank so the split needs no agreement
        # round: it is a pure function of (seed, total_samples, test_frac).
        n_test = max(1, int(round(self.total_samples * test_frac)))
        perm = np.random.default_rng(seed).permutation(self.total_samples)
        self._test_ids = frozenset(int(i) for i in perm[:n_test])
        self.n_test_global = n_test
        lo, hi = self.sample_offset, self.sample_offset + self.local_samples
        self.n_test_local = sum(1 for g in self._test_ids if lo <= g < hi)
        self.n_train_local = self.local_samples - self.n_test_local
        if self.n_train_local < 1:
            raise ValueError(
                "stream feed has no local training samples (span of "
                f"{source.n_snapshots} snapshots, window {window}); use a "
                "longer span, fewer ranks, or a smaller window"
            )
        self._steps = int(steps) if steps is not None else None
        self.shuffle = int(shuffle)
        # sample_offset is rank-unique under ShardedFeed, so DDP ranks draw
        # decorrelated shuffle streams from the same case seed.
        self._shuffle_rng = np.random.default_rng([seed + 2, self.sample_offset])
        self._test_cache: list[Batch] | None = None
        self._epochs_streamed = 0

    @property
    def spec(self):
        """Model-building geometry (see :class:`~repro.train.data.FeedSpec`)."""
        return self.assembler.spec

    # ---- streaming core ---------------------------------------------------

    def _stream_samples(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(global_index, x, y)`` for every local window sample."""
        window = self.assembler.window
        buf: deque = deque(maxlen=window)
        k = 0
        for i, snap in self.source.iter_snapshots():
            buf.append(self.assembler.read(snap, i))
            if len(buf) == window:
                for x, y in self.assembler.assemble(buf):
                    yield self.sample_offset + k, x, y
                    k += 1

    def _collect_test(self) -> None:
        """One pass caching only the test samples (skipping train work)."""
        samples: list[tuple[np.ndarray, np.ndarray]] = []
        for gid, x, y in self._stream_samples():
            if gid in self._test_ids:
                samples.append((x, y))
        # not checkpoint state: a derived cache, rebuilt deterministically
        # from (seed, stream) on the first eval after resume
        self._test_cache = self._to_batches(samples)  # repro-lint: ignore[RPL008]

    def _to_batches(self, samples: list[tuple[np.ndarray, np.ndarray]]) -> list[Batch]:
        return [
            (
                np.stack([s[0] for s in samples[lo : lo + self.batch]]),
                np.stack([s[1] for s in samples[lo : lo + self.batch]]),
            )
            for lo in range(0, len(samples), self.batch)
        ]

    def train_batches(self, epoch: int) -> Iterator[Batch]:
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        test_acc: list[tuple[np.ndarray, np.ndarray]] | None = (
            [] if self._test_cache is None else None
        )
        emitted = 0
        last_batch: Batch | None = None

        def train_samples() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            for gid, x, y in self._stream_samples():
                if gid in self._test_ids:
                    if test_acc is not None:
                        test_acc.append((x, y))
                    continue
                yield x, y

        samples: Iterator[tuple[np.ndarray, np.ndarray]] = train_samples()
        if self.shuffle:
            samples = ShuffleBuffer(self.shuffle, self._shuffle_rng)(samples)
        for x, y in samples:
            xs.append(x)
            ys.append(y)
            if len(xs) == self.batch:
                last_batch = (np.stack(xs), np.stack(ys))
                xs, ys = [], []
                emitted += 1
                yield last_batch
        if xs:
            last_batch = (np.stack(xs), np.stack(ys))
            emitted += 1
            yield last_batch
        if test_acc is not None:
            # derived cache (see _collect_test): deterministic rebuild, not state
            self._test_cache = self._to_batches(test_acc)  # repro-lint: ignore[RPL008]
        # DDP lock-step: ranks short of the agreed step count replay their
        # last batch so every rank joins every gradient all-reduce.
        if self._steps is not None and last_batch is not None:
            while emitted < self._steps:
                emitted += 1
                yield last_batch
        self._epochs_streamed += 1

    def eval_batches(self) -> Iterator[Batch]:
        if self._test_cache is None:
            self._collect_test()
        yield from self._test_cache

    @property
    def meta(self) -> dict:
        return {
            "kind": type(self).__name__,
            "source": type(self.source).__name__,
            "window": int(self.assembler.window),
            "horizon": int(self.assembler.horizon),
            "samples": int(self.total_samples),
            "local_samples": int(self.local_samples),
            "n_test": int(self.n_test_global),
            "batch": int(self.batch),
            "steps": self._steps,
            "shuffle": int(self.shuffle),
        }

    def state(self) -> dict:
        # Test membership is a pure function of the seed and the stream; the
        # cursor is the epoch count plus (when shuffling) the exact position
        # of the shuffle generator, so a resumed fit replays the same draws.
        state = {"kind": type(self).__name__, "epochs_streamed": self._epochs_streamed}
        if self.shuffle:
            state["shuffle_rng"] = self._shuffle_rng.bit_generator.state
        return state

    def load_state(self, state: dict) -> None:
        if state.get("kind") != type(self).__name__:
            raise ValueError(
                f"checkpoint feed cursor is {state.get('kind')!r}, "
                f"not {type(self).__name__}"
            )
        self._epochs_streamed = int(state["epochs_streamed"])
        if "shuffle_rng" in state:
            self._shuffle_rng.bit_generator.state = state["shuffle_rng"]


class ShardedFeed(StreamFeed):
    """Per-rank stream feed for DDP training over a partitioned source.

    Built via :meth:`for_rank`: the global snapshot sequence is
    block-partitioned (:func:`~repro.parallel.partition.stream_partitions`),
    rank ``r`` streams windows fully contained in its span (boundary windows
    are dropped, exactly like the subsample partitioning), test membership
    is drawn from the *global* sample numbering — a pure function of
    ``(seed, total samples)``, so every rank of a run agrees on it without
    communication and reruns are bit-deterministic per ``(seed, nranks)``
    (the numbering itself depends on the rank count: boundary windows
    dropped at span joints shift it, so fits with different rank counts
    see different test members) — and the per-epoch step count is the max
    over ranks so no rank truncates and gradient all-reduces stay
    symmetric.  Evaluation is rank-local over the rank's share of the test
    set; the loop all-reduces the sums (``eval_sharded``).
    """

    eval_sharded = True

    @classmethod
    def for_rank(
        cls,
        comm: Communicator,
        rank_source: SnapshotSource,
        assembler: WindowAssembler,
        n_snapshots_total: int,
        batch: int = 16,
        test_frac: float = 0.1,
        seed: int = 0,
        shuffle: int = 0,
    ) -> ShardedFeed:
        """Build this rank's feed; all ranks derive identical global facts.

        ``rank_source`` is the rank's own view/source over its span
        (``PartitionedSource`` or an owned-shard rank source); its length
        must match the rank's partition of ``n_snapshots_total``.
        """
        window = assembler.window
        per_window = assembler.n_per_window
        parts = stream_partitions(n_snapshots_total, comm.size)
        counts = window_counts(n_snapshots_total, comm.size, window, per_window)
        part = parts[comm.rank]
        if rank_source.n_snapshots != part.n:
            raise ValueError(
                f"rank {comm.rank} source has {rank_source.n_snapshots} "
                f"snapshots but its partition spans {part.n}"
            )
        total = sum(counts)
        if total < 2:
            raise ValueError(
                f"{n_snapshots_total} snapshots yield only {total} window "
                f"samples across {comm.size} ranks (window {window})"
            )
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int)
        # Deterministic global test membership, identical on every rank.
        n_test = max(1, int(round(total * test_frac)))
        perm = np.random.default_rng(seed).permutation(total)
        test_sorted = np.sort(perm[:n_test])
        train_counts = [
            counts[r]
            - int(
                np.searchsorted(test_sorted, offsets[r] + counts[r])
                - np.searchsorted(test_sorted, offsets[r])
            )
            for r in range(comm.size)
        ]
        if min(train_counts) < 1:
            starved = [r for r, c in enumerate(train_counts) if c < 1]
            raise ValueError(
                f"rank(s) {starved} have no full training window "
                f"({n_snapshots_total} snapshots / {comm.size} ranks, window "
                f"{window}); use fewer train ranks or a smaller window"
            )
        steps = max(-(-c // batch) for c in train_counts)
        return cls(
            rank_source, assembler, batch=batch, test_frac=test_frac, seed=seed,
            sample_offset=int(offsets[comm.rank]), total_samples=total, steps=steps,
            shuffle=shuffle,
        )
