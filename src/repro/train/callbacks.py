"""Callbacks for the step-based training loop (:mod:`repro.train.loop`).

The loop itself only knows how to run epochs over a
:class:`~repro.train.feeds.BatchFeed`; everything episodic — LR scheduling,
early stopping, energy metering, logging, checkpointing — hangs off the
callback hooks::

    on_fit_start(loop)                # before the first epoch
    on_epoch_start(loop, epoch)
    on_epoch_end(loop, epoch, logs)   # logs = {"train_loss", "test_loss", ...}
    on_fit_end(loop)                  # after the last epoch (also on error)

Callbacks that carry state across a checkpoint/resume boundary declare a
``state_key`` and implement :meth:`Callback.state` /
:meth:`Callback.load_state`; the loop persists them inside the checkpoint so
a resumed fit is bit-identical to an uninterrupted one (the plateau
scheduler's patience counter and the energy meter's FLOP counters included).

:class:`EnergyCallback` and :class:`ReduceLROnPlateauCallback` are installed
by default by :class:`~repro.train.loop.TrainLoop` — they reproduce the
paper's §5.2 protocol (energy metered around the whole fit, reduce-on-plateau
with patience 20) exactly as the pre-callback trainer did.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.energy.meter import EnergyMeter
from repro.nn.optim import ReduceLROnPlateau
from repro.utils.log import get_logger

__all__ = [
    "Callback",
    "CallbackList",
    "EnergyCallback",
    "ReduceLROnPlateauCallback",
    "EarlyStopping",
    "LoggingCallback",
    "StopOnSignal",
    "Checkpoint",
    "peek_checkpoint",
]

_LOG = get_logger("repro.train")

#: npz member holding the checkpoint's JSON metadata (shared with the loop)
META_KEY = "__checkpoint_meta__"


class Callback:
    """Base class: every hook is a no-op; override what you need."""

    #: set to a string to have the loop persist :meth:`state` in checkpoints
    state_key: str | None = None

    def bind(self, loop) -> None:
        """Called once when the loop adopts the callback (loop is built)."""

    def on_fit_start(self, loop) -> None: ...

    def on_epoch_start(self, loop, epoch: int) -> None: ...

    def on_epoch_end(self, loop, epoch: int, logs: dict) -> None: ...

    def on_stop(self, loop, epoch: int, logs: dict) -> None:
        """Fired after ``on_epoch_end`` when the epoch ended with
        ``loop.stop_training`` set (early stop) — runs for every callback
        regardless of list order, so e.g. a checkpoint can still persist
        the final state even though it ran before the stopper."""

    def on_fit_end(self, loop) -> None: ...

    def state(self) -> dict | None:
        """JSON-serializable state for checkpoints (None = nothing)."""
        return None

    def load_state(self, state: dict) -> None: ...


class CallbackList:
    """Ordered fan-out over a list of callbacks."""

    def __init__(self, callbacks: list[Callback]) -> None:
        for cb in callbacks:
            if not isinstance(cb, Callback):
                raise TypeError(f"expected Callback, got {type(cb).__name__}")
        self.callbacks = list(callbacks)

    def __iter__(self):
        return iter(self.callbacks)

    def find(self, cls: type) -> Callback | None:
        """First callback of the given class, if any."""
        for cb in self.callbacks:
            if isinstance(cb, cls):
                return cb
        return None

    def bind(self, loop) -> None:
        for cb in self.callbacks:
            cb.bind(loop)

    def on_fit_start(self, loop) -> None:
        for cb in self.callbacks:
            cb.on_fit_start(loop)

    def on_epoch_start(self, loop, epoch: int) -> None:
        for cb in self.callbacks:
            cb.on_epoch_start(loop, epoch)

    def on_epoch_end(self, loop, epoch: int, logs: dict) -> None:
        for cb in self.callbacks:
            cb.on_epoch_end(loop, epoch, logs)

    def on_stop(self, loop, epoch: int, logs: dict) -> None:
        for cb in self.callbacks:
            cb.on_stop(loop, epoch, logs)

    def on_fit_end(self, loop) -> None:
        for cb in self.callbacks:
            cb.on_fit_end(loop)

    def states(self) -> dict:
        """All checkpointable callback states, keyed by ``state_key``."""
        out = {}
        for cb in self.callbacks:
            if cb.state_key is not None:
                state = cb.state()
                if state is not None:
                    out[cb.state_key] = state
        return out

    def load_states(self, states: dict) -> None:
        for cb in self.callbacks:
            if cb.state_key is not None and cb.state_key in states:
                cb.load_state(states[cb.state_key])


class EnergyCallback(Callback):
    """Meters the whole fit (the paper's 'Total Energy Consumed' lines).

    Opens an :class:`~repro.energy.meter.EnergyMeter` around the epoch loop
    and, at fit end, converts metered GPU FLOPs to virtual GPU-seconds at
    ``gpu_flops_rate`` and adds the communicator's virtual-clock delta —
    byte-identical to the pre-callback trainer's accounting.  Across a
    checkpoint/resume boundary the FLOP/byte counters and the already-spent
    clock time are carried over, so interrupted + resumed energy equals the
    uninterrupted run's.
    """

    def __init__(self, gpu_flops_rate: float = 20.0e12) -> None:
        if gpu_flops_rate <= 0:
            raise ValueError("gpu_flops_rate must be positive")
        self.gpu_flops_rate = gpu_flops_rate
        self.meter = EnergyMeter()
        self._carry_clock = 0.0  # virtual seconds spent before a resume
        self._clock_start = 0.0
        self._excluded = 0.0  # checkpoint/restore comm time, not training work
        self._open = False

    def reset(self) -> None:
        """Zero the meter for a fresh fit (a loop can fit more than once)."""
        if self._open:
            raise RuntimeError("cannot reset a meter mid-fit")
        self.meter = EnergyMeter()
        self._carry_clock = 0.0
        self._excluded = 0.0

    def on_fit_start(self, loop) -> None:
        self.meter.__enter__()
        self._open = True
        self._clock_start = loop.comm.clock.t

    def on_fit_end(self, loop) -> None:
        if not self._open:
            return
        self._open = False
        # Virtual wall time: GPU-seconds from metered FLOPs at the configured
        # sustained rate, plus the communicator clock (comms + accounted
        # compute), plus whatever a previous fit segment already spent.
        gpu_seconds = self.meter.flops_gpu / self.gpu_flops_rate
        self.meter.add_elapsed(
            gpu_seconds + self._carry_clock + self._clock_delta(loop)
        )
        self.meter.__exit__(None, None, None)

    def _clock_delta(self, loop) -> float:
        return loop.comm.clock.t - self._clock_start - self._excluded

    def exclude(self, seconds: float) -> None:
        """Discount virtual-clock time that is not training work.

        The loop calls this around checkpoint gathers and resume broadcasts
        so that metered energy is invariant to the checkpoint cadence — an
        interrupted + resumed fit reports the same joules as an
        uninterrupted one regardless of how often either saved.
        """
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._excluded += seconds

    # -- per-rank checkpoint state (meters are thread-local per SPMD rank) --

    def rank_state(self, loop) -> dict:
        return {
            "flops_cpu": self.meter.flops_cpu,
            "flops_gpu": self.meter.flops_gpu,
            "bytes_cpu": self.meter.bytes_cpu,
            "bytes_gpu": self.meter.bytes_gpu,
            "clock": self._carry_clock + self._clock_delta(loop),
        }

    def load_rank_state(self, state: dict) -> None:
        self.meter.flops_cpu = float(state["flops_cpu"])
        self.meter.flops_gpu = float(state["flops_gpu"])
        self.meter.bytes_cpu = float(state["bytes_cpu"])
        self.meter.bytes_gpu = float(state["bytes_gpu"])
        self._carry_clock = float(state["clock"])


class ReduceLROnPlateauCallback(Callback):
    """Steps a :class:`~repro.nn.optim.ReduceLROnPlateau` on the test loss."""

    state_key = "plateau"

    def __init__(
        self,
        patience: int = 20,
        factor: float = 0.5,
        min_lr: float = 1e-6,
        threshold: float = 1e-4,
    ) -> None:
        self.patience = patience
        self.factor = factor
        self.min_lr = min_lr
        self.threshold = threshold
        self.scheduler: ReduceLROnPlateau | None = None

    def bind(self, loop) -> None:
        self.scheduler = ReduceLROnPlateau(
            loop.optimizer, factor=self.factor, patience=self.patience,
            min_lr=self.min_lr, threshold=self.threshold,
        )

    def on_epoch_end(self, loop, epoch: int, logs: dict) -> None:
        assert self.scheduler is not None, "callback was never bound to a loop"
        self.scheduler.step(logs["test_loss"])

    def state(self) -> dict | None:
        s = self.scheduler
        if s is None:
            return None
        return {
            "best": float(s.best),
            "bad_epochs": int(s.bad_epochs),
            "n_reductions": int(s.n_reductions),
            "lr": float(s.optimizer.lr),
        }

    def load_state(self, state: dict) -> None:
        assert self.scheduler is not None, "callback was never bound to a loop"
        self.scheduler.best = float(state["best"])
        self.scheduler.bad_epochs = int(state["bad_epochs"])
        self.scheduler.n_reductions = int(state["n_reductions"])
        self.scheduler.optimizer.lr = float(state["lr"])


class EarlyStopping(Callback):
    """Stop the fit after `patience` epochs without test-loss improvement."""

    state_key = "early_stop"

    def __init__(self, patience: int = 10, min_delta: float = 0.0) -> None:
        if patience < 0:
            raise ValueError("patience must be >= 0")
        self.patience = patience
        self.min_delta = min_delta
        self.best = np.inf
        self.bad_epochs = 0

    def on_epoch_end(self, loop, epoch: int, logs: dict) -> None:
        te = logs["test_loss"]
        if te < self.best - self.min_delta:
            self.best = te
            self.bad_epochs = 0
            return
        self.bad_epochs += 1
        if self.bad_epochs > self.patience:
            loop.stop_training = True

    def state(self) -> dict:
        return {"best": float(self.best), "bad_epochs": int(self.bad_epochs)}

    def load_state(self, state: dict) -> None:
        self.best = float(state["best"])
        self.bad_epochs = int(state["bad_epochs"])


class StopOnSignal(Callback):
    """Stop the fit cleanly when an external condition becomes true.

    ``should_stop`` is polled on rank 0 at every epoch end and the
    decision broadcast to every rank, so all ranks leave the epoch loop
    together — the predicate may be rank-dependent (a file only the
    driver touches) without desynchronizing a DDP fit.  Pairs with
    :class:`Checkpoint`, whose ``on_stop`` hook persists the final state:
    the combination turns a drain request (e.g. ``repro-serve`` shutdown)
    into a resumable checkpoint instead of a killed job.

    Carries no checkpoint state on purpose: whether a *previous* fit
    segment was interrupted is not part of the training state.
    """

    def __init__(self, should_stop) -> None:
        if not callable(should_stop):
            raise TypeError("should_stop must be callable")
        self._should_stop = should_stop
        self.triggered = False

    def on_epoch_end(self, loop, epoch: int, logs: dict) -> None:
        decision = bool(self._should_stop()) if loop.comm.rank == 0 else False
        if loop.comm.size > 1:
            decision = bool(loop.comm.bcast(decision, root=0))
        if decision:
            self.triggered = True
            loop.stop_training = True


class LoggingCallback(Callback):
    """Periodic epoch logging (the old ``verbose=True`` behaviour)."""

    def __init__(self, every: int = 10) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every

    def on_epoch_end(self, loop, epoch: int, logs: dict) -> None:
        if loop.comm.rank != 0:
            return
        if epoch % self.every == 0 or epoch == loop.epochs_target - 1:
            _LOG.info(
                "epoch %d: train %.5f test %.5f lr %.2e",
                epoch, logs["train_loss"], logs["test_loss"], loop.lr,
            )


class Checkpoint(Callback):
    """Write a resumable checkpoint every `every` epochs (and the last one).

    The checkpoint bundles the model parameters, the optimizer moments, the
    RNG / feed cursor of every rank, the scheduler's plateau counters, the
    per-rank energy counters, and the loss history — everything
    :meth:`~repro.train.loop.TrainLoop.fit` needs so that ``resume=path``
    continues bit-for-bit where the interrupted fit stopped.  With DDP the
    save is collective (per-rank feed states are gathered); only rank 0
    writes, atomically (tmp file + rename), so a kill mid-save never leaves
    a torn checkpoint.  The gather's clock time is discounted from the
    energy meter (see :meth:`EnergyCallback.exclude`), so metered energy is
    invariant to the checkpoint cadence.
    """

    def __init__(self, path: str, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = path
        self.every = every
        self.last_saved: str | None = None
        self._saved_epoch: int | None = None

    def on_fit_start(self, loop) -> None:
        # A loop can fit more than once; forget the previous fit's save
        # epoch or a warm restart could silently skip its own checkpoint.
        self._saved_epoch = None

    def _save(self, loop, epoch: int) -> None:
        if self._saved_epoch == epoch:
            return
        self._saved_epoch = epoch
        saved = loop.save_checkpoint(self.path)
        if saved is not None:
            self.last_saved = saved

    def on_epoch_end(self, loop, epoch: int, logs: dict) -> None:
        if (epoch + 1) % self.every == 0 or epoch == loop.epochs_target - 1:
            self._save(loop, epoch)

    def on_stop(self, loop, epoch: int, logs: dict) -> None:
        # "The last one" includes an early stop off the save cadence: the
        # loop fires on_stop after every callback's on_epoch_end, so this
        # persists the final state even when the stopper ran after us.
        self._save(loop, epoch)


def peek_checkpoint(path: str) -> dict:
    """Read a checkpoint's metadata (no arrays) — epoch, ranks, losses."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    if not os.path.isfile(path):
        raise FileNotFoundError(f"no checkpoint at {path!r}")
    with np.load(path, allow_pickle=False) as data:
        return json.loads(str(data[META_KEY]))
