"""The step-based training loop: one ``fit(feed)`` for every data delivery.

The training-side twin of the stream-first ingestion redesign: where the
old :class:`~repro.train.trainer.Trainer` hard-wired resident ``x, y``
arrays, :class:`TrainLoop` runs the paper's §5.2 protocol (Adam, MSE,
reduce-on-plateau, gradient clipping, emulated mixed precision, DDP over
the simulated communicator, energy metering) over any
:class:`~repro.train.feeds.BatchFeed` — resident arrays, incremental
stream windows, or per-rank sharded feeds — with episodic behaviour
delegated to :mod:`~repro.train.callbacks` and bit-deterministic
checkpoint/resume:

* :meth:`fit` drives epochs of ``feed.train_batches(epoch)`` followed by an
  evaluation pass over ``feed.eval_batches()``.
* :class:`~repro.train.callbacks.EnergyCallback` and
  :class:`~repro.train.callbacks.ReduceLROnPlateauCallback` are installed by
  default, reproducing the pre-callback trainer's numbers exactly (the
  equivalence tests pin batch fits to the seed goldens bit-for-bit).
* :meth:`save_checkpoint` / ``fit(..., resume=path)`` persist and restore
  model weights, optimizer moments, scheduler counters, per-rank feed
  cursors, and per-rank energy counters — a fit interrupted at epoch *k*
  and resumed matches an uninterrupted fit bitwise.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.energy.meter import EnergyMeter
from repro.nn.amp import autocast
from repro.nn.ddp import DistributedDataParallel
from repro.nn.loss import mse_loss
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam
from repro.nn.optim import clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.parallel.comm import Communicator, SerialComm
from repro.train.callbacks import (
    META_KEY as _META_KEY,
)
from repro.train.callbacks import (
    Callback,
    CallbackList,
    EnergyCallback,
    LoggingCallback,
    ReduceLROnPlateauCallback,
)
from repro.train.feeds import BatchFeed

__all__ = ["TrainResult", "TrainLoop"]

_CHECKPOINT_VERSION = 1


@dataclass
class TrainResult:
    """Fit outcome: losses, energy, and the paper's report lines."""

    train_losses: list[float]
    test_losses: list[float]
    best_test_loss: float
    final_test_loss: float
    epochs_run: int
    energy: EnergyMeter
    lr_reductions: int
    meta: dict = field(default_factory=dict)

    def report(self) -> str:
        return (
            f"Evaluation on test set: {self.final_test_loss:.6f}\n"
            + self.energy.report()
        )


class TrainLoop:
    """Step-based fit over a :class:`~repro.train.feeds.BatchFeed`."""

    def __init__(
        self,
        model: Module,
        lr: float = 1e-3,
        patience: int = 20,
        precision: str = "fp32",
        grad_clip: float = 10.0,
        comm: Communicator | None = None,
        seed: int = 0,
        verbose: bool = False,
        gpu_flops_rate: float = 20.0e12,
        callbacks: list[Callback] | None = None,
    ) -> None:
        self.comm = comm or SerialComm()
        self.model = model
        self.ddp = DistributedDataParallel(model, self.comm) if self.comm.size > 1 else None
        self.precision = precision
        self.grad_clip = grad_clip
        self.seed = seed
        self.optimizer = Adam(model.parameters(), lr=lr)
        # Default stack reproduces the classic trainer: energy metered around
        # the whole fit, plateau LR on the test loss.  User callbacks of the
        # same class replace the defaults rather than doubling them up.
        user = list(callbacks or [])
        stack: list[Callback] = []
        if not any(isinstance(cb, EnergyCallback) for cb in user):
            stack.append(EnergyCallback(gpu_flops_rate))
        if not any(isinstance(cb, ReduceLROnPlateauCallback) for cb in user):
            stack.append(ReduceLROnPlateauCallback(patience=patience))
        if verbose and not any(isinstance(cb, LoggingCallback) for cb in user):
            stack.append(LoggingCallback(every=10))
        self.callbacks = CallbackList(stack + user)
        self.callbacks.bind(self)
        self.train_losses: list[float] = []
        self.test_losses: list[float] = []
        self.stop_training = False
        self.epoch = 0
        self.epochs_target = 0
        self._feed: BatchFeed | None = None
        self._resumed_from: str | None = None

    # ---- conveniences ------------------------------------------------------

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    @property
    def scheduler(self):
        """The plateau scheduler, if the plateau callback is installed."""
        cb = self.callbacks.find(ReduceLROnPlateauCallback)
        return cb.scheduler if cb is not None else None

    @property
    def _energy_cb(self) -> EnergyCallback | None:
        return self.callbacks.find(EnergyCallback)

    # ---- epoch mechanics ---------------------------------------------------

    def _forward(self, x: np.ndarray) -> Tensor:
        target_model = self.ddp if self.ddp is not None else self.model
        return target_model(Tensor(x))

    def _train_epoch(self, feed: BatchFeed, epoch: int) -> float:
        total, count = 0.0, 0
        for xb, yb in feed.train_batches(epoch):
            self.optimizer.zero_grad()
            loss = mse_loss(self._forward(xb), Tensor(yb))
            loss.backward()
            if self.ddp is not None:
                self.ddp.sync_gradients()
            clip_grad_norm(self.optimizer.params, self.grad_clip)
            self.optimizer.step()
            total += float(loss.data) * len(xb)
            count += len(xb)
        return total / max(count, 1)

    def evaluate(self, feed: BatchFeed) -> float:
        """Mean MSE over the feed's test set (no grad, eval mode)."""
        self.model.eval()
        total, count = 0.0, 0
        with no_grad():
            for xb, yb in feed.eval_batches():
                loss = mse_loss(self._forward(xb), Tensor(yb))
                total += float(loss.data) * len(xb)
                count += len(xb)
        self.model.train()
        if feed.eval_sharded and self.comm.size > 1:
            # Rank-local test shards: combine the sums so every rank sees the
            # same global test loss (keeps the plateau scheduler in lock-step).
            total = float(self.comm.allreduce(total, op="sum"))
            count = int(self.comm.allreduce(count, op="sum"))
        return total / max(count, 1)

    # ---- the fit -----------------------------------------------------------

    def fit(self, feed: BatchFeed, epochs: int, resume: str | None = None) -> TrainResult:
        """Train for `epochs` epochs over `feed`; optionally resume.

        ``resume`` names a checkpoint written by
        :class:`~repro.train.callbacks.Checkpoint` (or
        :meth:`save_checkpoint`); training continues from its next epoch
        with model/optimizer/scheduler/feed-cursor/energy state restored, so
        the completed fit is bitwise identical to an uninterrupted one.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self._feed = feed
        self.epochs_target = epochs
        # A fresh fit starts from clean histories and counters, so calling
        # fit() twice on one loop (warm restart) never accumulates the
        # previous fit's losses or double-counts its energy; resume then
        # restores the interrupted fit's state on top.
        self.train_losses = []
        self.test_losses = []
        self._resumed_from = None
        if self._energy_cb is not None:
            self._energy_cb.reset()
        start_epoch = 0
        if resume is not None:
            start_epoch = self.load_checkpoint(resume, feed)
        self.stop_training = False
        self.callbacks.on_fit_start(self)
        try:
            for epoch in range(start_epoch, epochs):
                self.epoch = epoch
                self.callbacks.on_epoch_start(self, epoch)
                with autocast(self.precision):
                    tr = self._train_epoch(feed, epoch)
                te = self.evaluate(feed)
                self.train_losses.append(tr)
                self.test_losses.append(te)
                logs = {"epoch": epoch, "train_loss": tr, "test_loss": te}
                self.callbacks.on_epoch_end(self, epoch, logs)
                if self.stop_training:
                    self.callbacks.on_stop(self, epoch, logs)
                    break
        finally:
            self.callbacks.on_fit_end(self)
        final = self.evaluate(feed)
        energy_cb = self._energy_cb
        scheduler = self.scheduler
        meta = {
            "ranks": self.comm.size,
            "precision": self.precision,
            "seed": self.seed,
            "feed": feed.meta,
        }
        if self._resumed_from is not None:
            meta["resumed_from"] = self._resumed_from
            meta["resumed_at_epoch"] = start_epoch
        return TrainResult(
            train_losses=list(self.train_losses),
            test_losses=list(self.test_losses),
            best_test_loss=float(min(self.test_losses, default=np.inf)),
            final_test_loss=float(final),
            epochs_run=len(self.train_losses),
            energy=energy_cb.meter if energy_cb is not None else EnergyMeter(),
            lr_reductions=scheduler.n_reductions if scheduler is not None else 0,
            meta=meta,
        )

    # ---- checkpoint / resume ----------------------------------------------

    def _optimizer_arrays(self) -> dict[str, np.ndarray]:
        opt = self.optimizer
        if isinstance(opt, Adam):
            out = {}
            for i, (m, v) in enumerate(zip(opt._m, opt._v)):
                out[f"opt::m{i}"] = m
                out[f"opt::v{i}"] = v
            return out
        if isinstance(opt, SGD):
            return {f"opt::vel{i}": v for i, v in enumerate(opt._velocity)}
        raise TypeError(
            f"checkpointing supports Adam and SGD, got {type(opt).__name__}"
        )

    def _restore_optimizer(self, arrays: dict[str, np.ndarray], meta: dict) -> None:
        opt = self.optimizer
        if meta["optimizer"] != type(opt).__name__:
            raise ValueError(
                f"checkpoint optimizer {meta['optimizer']!r} != {type(opt).__name__!r}"
            )
        opt.lr = float(meta["lr"])
        if isinstance(opt, Adam):
            opt._t = int(meta["adam_t"])
            for i in range(len(opt.params)):
                opt._m[i][...] = arrays[f"opt::m{i}"]
                opt._v[i][...] = arrays[f"opt::v{i}"]
        elif isinstance(opt, SGD):
            for i in range(len(opt.params)):
                opt._velocity[i][...] = arrays[f"opt::vel{i}"]

    def save_checkpoint(self, path: str) -> str | None:
        """Write a resumable checkpoint; collective under DDP (rank 0 writes).

        Returns the written path on rank 0, None on other ranks.
        """
        if self._feed is None:
            raise RuntimeError("no fit in progress — nothing to checkpoint")
        energy_cb = self._energy_cb
        local = {
            "feed": self._feed.state(),
            "energy": energy_cb.rank_state(self) if energy_cb is not None else None,
            "train_losses": [float(v) for v in self.train_losses],
        }
        # The state gather is bookkeeping, not training work: discount its
        # clock time so energy is invariant to the checkpoint cadence.
        t0 = self.comm.clock.t
        blobs = self.comm.gather(local, root=0) if self.comm.size > 1 else [local]
        if energy_cb is not None:
            energy_cb.exclude(self.comm.clock.t - t0)
        if blobs is None:
            return None  # non-root DDP rank
        meta = {
            "version": _CHECKPOINT_VERSION,
            "next_epoch": len(self.test_losses),
            "ranks": self.comm.size,
            "seed": self.seed,
            "precision": self.precision,
            "optimizer": type(self.optimizer).__name__,
            "lr": float(self.optimizer.lr),
            "adam_t": int(getattr(self.optimizer, "_t", 0)),
            "test_losses": [float(v) for v in self.test_losses],
            "callbacks": self.callbacks.states(),
            "per_rank": blobs,
            "feed_meta": self._feed.meta,
        }
        payload: dict[str, np.ndarray] = {_META_KEY: np.array(json.dumps(meta))}
        for name, arr in self.model.state_dict().items():
            payload[f"param::{name}"] = arr
        payload.update(self._optimizer_arrays())
        if not path.endswith(".npz"):
            path = path + ".npz"
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        # Atomic write: a kill mid-save must never leave a torn checkpoint.
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, path)
        return path

    def load_checkpoint(self, path: str, feed: BatchFeed) -> int:
        """Restore a checkpoint into this loop + feed; returns next epoch."""
        if not path.endswith(".npz"):
            path = path + ".npz"
        if not os.path.isfile(path):
            raise FileNotFoundError(f"no checkpoint at {path!r}")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data[_META_KEY]))
            arrays = {k: data[k] for k in data.files if k != _META_KEY}
        if meta.get("version") != _CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {meta.get('version')!r}"
            )
        if meta["ranks"] != self.comm.size:
            raise ValueError(
                f"checkpoint was written by a {meta['ranks']}-rank fit; "
                f"resume with the same rank count (got {self.comm.size})"
            )
        if meta["seed"] != self.seed:
            raise ValueError(
                f"checkpoint was written by a seed-{meta['seed']} fit; "
                f"resuming under seed {self.seed} would rebuild the feed "
                "and model against different randomness — use the same seed"
            )
        params = {
            name[len("param::"):]: arr
            for name, arr in arrays.items() if name.startswith("param::")
        }
        self.model.load_state_dict(params)
        if self.ddp is not None:
            # Every rank read the same file, but re-broadcast to guarantee
            # replicas are identical even if the file changed underfoot.
            # (Runs before on_fit_start opens the energy clock window, so
            # restore traffic never lands on the metered elapsed time.)
            self.ddp.sync_parameters()
        self._restore_optimizer(arrays, meta)
        self.callbacks.load_states(meta.get("callbacks") or {})
        blob = meta["per_rank"][self.comm.rank]
        feed.load_state(blob["feed"])
        energy_cb = self._energy_cb
        if energy_cb is not None and blob.get("energy") is not None:
            energy_cb.load_rank_state(blob["energy"])
        self.train_losses = [float(v) for v in blob["train_losses"]]
        self.test_losses = [float(v) for v in meta["test_losses"]]
        self._resumed_from = path
        return int(meta["next_epoch"])
