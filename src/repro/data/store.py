"""Persistence for fields, datasets, and subsampled point sets.

The paper highlights that SICKLE "provides a convenient way to significantly
reduce file storage requirements, by storing feature-rich subsampled
datasets"; :class:`SubsampleStore` implements that: compressed npz files of
PointSets plus the bookkeeping to report the storage-reduction factor
against the raw fields they came from.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import zipfile
from collections.abc import Callable, Iterable, Mapping

import numpy as np
from numpy.lib import format as _npformat

from repro.data.points import PointSet
from repro.sim.fields import FlowField

__all__ = [
    "SubsampleStore",
    "save_field",
    "load_field",
    "load_field_lazy",
    "LazyMembers",
    "LazyField",
    "LazyNpzField",
    "OwnedShardLayout",
    "points_payload",
    "points_from_npz",
    "read_manifest",
    "write_manifest",
    "META_KEY",
    "MANIFEST",
]

#: npz entry holding the JSON-encoded metadata, shared by every serializer
#: in this repo (SubsampleStore, field snapshots, repro.api artifacts).
META_KEY = "__meta_json__"
_META_KEYS = META_KEY

#: dataset-directory manifest name, shared by save_dataset/load_dataset and
#: the out-of-core :class:`repro.data.sources.ShardDirSource`.
MANIFEST = "manifest.json"


def write_manifest(path: str, manifest: dict) -> None:
    """Atomically write a shard-directory manifest (tmp file + rename).

    The manifest is the last thing a writer produces and the first thing
    :class:`~repro.data.sources.ShardDirSource` validates, so it doubles as
    the directory's commit record: a writer killed mid-``json.dump`` must
    not leave a truncated ``manifest.json`` that readers would silently
    open.  ``os.replace`` makes the final step atomic on POSIX and Windows.
    """
    final = os.path.join(path, MANIFEST)
    tmp = final + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)


def read_manifest(path: str) -> dict:
    """Read a shard-directory manifest, failing clearly when absent."""
    manifest_path = os.path.join(path, MANIFEST)
    if not os.path.isfile(manifest_path):
        raise FileNotFoundError(
            f"no {MANIFEST} under {path!r} — not a save_dataset() directory"
        )
    with open(manifest_path, encoding="utf-8") as fh:
        return json.load(fh)


def points_payload(points: PointSet) -> dict[str, np.ndarray]:
    """The canonical npz array payload for one PointSet (sans meta).

    Shared by :class:`SubsampleStore` and :mod:`repro.api` artifacts so the
    on-disk format has exactly one definition.
    """
    payload: dict[str, np.ndarray] = {f"val_{k}": v for k, v in points.values.items()}
    payload["coords"] = points.coords
    payload["time"] = np.asarray(points.time)
    return payload


def points_from_npz(data, meta: dict | None = None) -> PointSet:
    """Rebuild a PointSet from an open npz written with :func:`points_payload`."""
    values = {k[4:]: data[k] for k in data.files if k.startswith("val_")}
    time = data["time"]
    return PointSet(
        coords=data["coords"],
        values=values,
        time=float(time) if time.ndim == 0 else time,
        meta=dict(meta) if meta else {},
    )


def save_field(path: str, field: FlowField) -> None:
    """Save one snapshot as a compressed npz."""
    payload: dict[str, np.ndarray] = {f"var_{k}": v for k, v in field.variables.items()}
    payload["time"] = np.array(field.time)
    payload[_META_KEYS] = np.array(json.dumps(field.meta))
    np.savez_compressed(path, **payload)


def load_field(path: str) -> FlowField:
    """Load a snapshot saved by :func:`save_field`."""
    with np.load(path, allow_pickle=False) as data:
        variables = {k[4:]: data[k] for k in data.files if k.startswith("var_")}
        time = float(data["time"])
        meta = json.loads(str(data[_META_KEYS])) if _META_KEYS in data.files else {}
    return FlowField(variables=variables, time=time, meta=meta)


def _npz_member_header(path: str, member: str) -> tuple[tuple[int, ...], np.dtype]:
    """(shape, dtype) of one npz member from its npy header — the zip entry
    is opened but the (compressed) array payload is never read."""
    with zipfile.ZipFile(path) as zf:
        with zf.open(member + ".npy") as fh:
            version = _npformat.read_magic(fh)
            if version == (1, 0):
                shape, _, dtype = _npformat.read_array_header_1_0(fh)
            else:
                shape, _, dtype = _npformat.read_array_header_2_0(fh)
    return tuple(int(s) for s in shape), dtype


class LazyMembers(Mapping):
    """Mapping of variable name → array that decodes members on first
    access, whatever the codec underneath.

    ``load_one(name)`` decodes a single member; the optional
    ``load_all(names)`` decodes several in one I/O pass (e.g. one npz open
    instead of V zip-directory rescans) and is what :meth:`decode_all`
    batches through.  A consumer that only reads the cluster variable pays
    for exactly that member.  Iteration/`in`/`len` reflect the full member
    list without decoding; anything that needs the arrays (``[key]``,
    ``get``, ``values()``, ``items()``, ``dict(...)``) decodes what it
    touches.  A real :class:`collections.abc.Mapping` (not a dict
    subclass), so every generic mapping operation routes through
    ``__getitem__`` — there is no C fast path that could silently skip the
    decode.
    """

    def __init__(
        self,
        members: Iterable[str],
        load_one: Callable[[str], np.ndarray],
        load_all: Callable[[list[str]], dict[str, np.ndarray]] | None = None,
    ) -> None:
        self._members = tuple(members)
        self._load_one = load_one
        self._load_all = load_all
        self._decoded: dict[str, np.ndarray] = {}
        self._decode_lock = threading.Lock()

    def __getitem__(self, key: str) -> np.ndarray:
        # Benign race: atomic dict read of an immutable entry — a miss just
        # falls through to the locked decode path below.
        arr = self._decoded.get(key)  # repro-lint: ignore[RPL003]
        if arr is not None:
            return arr
        if key not in self._members:
            raise KeyError(key)
        with self._decode_lock:
            if key in self._decoded:  # racing thread decoded it
                return self._decoded[key]
            arr = self._load_one(key)
            self._decoded[key] = arr
            return arr

    def __contains__(self, key: object) -> bool:
        return key in self._members

    def __iter__(self):
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def before_load(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` before every deferred member read (already-decoded
        members are unaffected).  Tiered sources use this to re-stage shard
        files a bounded staging tier may have evicted since decode time."""
        load_one, load_all = self._load_one, self._load_all

        def hooked_one(key: str) -> np.ndarray:
            hook()
            return load_one(key)

        self._load_one = hooked_one
        if load_all is not None:
            def hooked_all(missing: list[str]) -> dict[str, np.ndarray]:
                hook()
                return load_all(missing)

            self._load_all = hooked_all

    def decode_all(self) -> None:
        """Decode every member, batched through ``load_all`` when the codec
        provides one (the prefetcher's path)."""
        with self._decode_lock:
            missing = [k for k in self._members if k not in self._decoded]
            if not missing:
                return
            if self._load_all is not None:
                self._decoded.update(self._load_all(missing))
            else:
                for k in missing:
                    self._decoded[k] = self._load_one(k)

    def decoded(self) -> list[str]:
        """Members decoded so far (test/diagnostic hook)."""
        with self._decode_lock:
            return sorted(self._decoded)


class LazyField(FlowField):
    """A :class:`FlowField` view with per-variable lazy decode: geometry
    comes from shard metadata, and each stored variable is read only when
    first accessed (derived variables still compose on top via
    :meth:`FlowField.get`).  Codecs build these through
    :class:`LazyMembers` with their own member loaders."""

    def __init__(
        self,
        members: LazyMembers,
        grid_shape: tuple[int, ...],
        itemsize: int,
        time: float,
        meta: dict | None = None,
    ) -> None:
        # Deliberately skip FlowField.__init__: nothing is decoded yet, so
        # there are no arrays to validate against each other.
        self.variables = members
        self.time = float(time)
        self.meta = dict(meta or {})
        self._cache = {}
        self._lazy_shape = tuple(grid_shape)
        self._itemsize = int(itemsize)

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self._lazy_shape

    def nbytes(self) -> int:
        """Would-be decoded footprint, from metadata alone (no decode)."""
        return int(np.prod(self._lazy_shape)) * self._itemsize * len(self.variables)

    def materialize(self) -> LazyField:
        """Decode every stored member in one I/O pass (the prefetcher's
        eager path)."""
        self.variables.decode_all()
        return self

    def decoded_members(self) -> list[str]:
        return self.variables.decoded()


class LazyNpzField(LazyField):
    """:class:`LazyField` over one npz shard: members are individually
    compressed zip entries, so decoding one variable never decompresses
    the others, and :meth:`materialize` batches through a single open."""

    def __init__(
        self,
        path: str,
        members: list[str],
        grid_shape: tuple[int, ...],
        itemsize: int,
        time: float,
        meta: dict | None = None,
    ) -> None:
        def load_one(key: str) -> np.ndarray:
            with np.load(path, allow_pickle=False) as data:
                return data[f"var_{key}"]

        def load_all(missing: list[str]) -> dict[str, np.ndarray]:
            with np.load(path, allow_pickle=False) as data:
                return {k: data[f"var_{k}"] for k in missing}

        super().__init__(
            LazyMembers(members, load_one, load_all),
            grid_shape, itemsize, time, meta,
        )


def load_field_lazy(path: str) -> LazyNpzField:
    """Open a snapshot saved by :func:`save_field` without decoding fields.

    Only the scalar ``time`` and JSON meta members are decompressed (both
    tiny); array members decode individually on first access.
    """
    with np.load(path, allow_pickle=False) as data:
        members = [k[4:] for k in data.files if k.startswith("var_")]
        if not members:
            raise ValueError(f"{path!r} holds no field variables")
        time = float(data["time"])
        meta = json.loads(str(data[_META_KEYS])) if _META_KEYS in data.files else {}
    shape, dtype = _npz_member_header(path, f"var_{members[0]}")
    return LazyNpzField(path, members, shape, dtype.itemsize, time, meta)


class OwnedShardLayout:
    """Disjoint per-rank ownership of one ``save_dataset`` shard directory.

    Distributed shard *ownership*: instead of every SPMD rank reading
    through one shared :class:`~repro.data.sources.ShardDirSource` cache,
    each rank gets its own shard directory holding exactly its contiguous
    snapshot span — so each rank runs a private bounded LRU and a private
    prefetch thread over a disjoint file set, with zero cross-rank cache
    traffic.

    :meth:`build` materializes the layout in a fresh run-scoped temp
    directory (or an explicit ``dest``) — never inside the base directory,
    which may be a read-only dataset mount: one subdirectory per rank,
    shards hardlinked (copied when the filesystem refuses links) and
    renumbered ``snapshot_00000.* ...`` within the rank's span by the
    directory's own shard codec, plus a per-rank manifest — each rank
    directory is itself a valid ``save_dataset`` directory of the same
    codec, so an ordinary ``ShardDirSource`` opens it directly, and
    :meth:`remove` cleans the whole layout up.  Spans follow
    :func:`repro.parallel.partition.stream_partitions` (sizes differ by at
    most one; trailing ranks own empty directories when
    ``nranks > n_snapshots``).
    """

    def __init__(self, root: str, base_path: str, spans: list[tuple[int, int]]) -> None:
        self.root = root
        self.base_path = base_path
        self.spans = [(int(lo), int(hi)) for lo, hi in spans]

    @property
    def nranks(self) -> int:
        return len(self.spans)

    def rank_dir(self, rank: int) -> str:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
        return os.path.join(self.root, f"rank_{rank:03d}")

    def rank_span(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
        return self.spans[rank]

    @classmethod
    def build(
        cls, path: str, nranks: int, dest: str | None = None
    ) -> OwnedShardLayout:
        """Split the shard directory at `path` into `nranks` owned sets.

        The layout lands in a fresh unique temp directory by default (never
        inside `path` — the base directory may be a read-only dataset
        mount, and concurrent runs must not clobber each other), so call
        :meth:`remove` when done.  An explicit `dest` is rebuilt from
        scratch (any stale layout there is removed).  Hardlinks keep the
        build O(nranks) in disk regardless of shard sizes (falling back to
        copies when `dest` is on a different filesystem).
        """
        import tempfile

        from repro.data.codecs import get_codec
        from repro.parallel.partition import stream_partitions

        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        manifest = read_manifest(path)
        codec = get_codec(manifest.get("codec", "npz"))
        n = int(manifest["n_snapshots"])
        if dest is None:
            root = tempfile.mkdtemp(prefix=f"owned_r{nranks}_")
        else:
            root = dest
            if os.path.isdir(root):
                shutil.rmtree(root)
            os.makedirs(root)
        target = manifest.get("target")
        spans = []
        try:
            for part in stream_partitions(n, nranks):
                rank_dir = os.path.join(root, f"rank_{part.rank:03d}")
                os.makedirs(rank_dir)
                for j, i in enumerate(part.indices()):
                    codec.link_shard(path, i, rank_dir, j)
                rank_manifest = {
                    **manifest,
                    "n_snapshots": part.n,
                    "target": target[part.lo : part.hi] if target is not None else None,
                }
                write_manifest(rank_dir, rank_manifest)
                spans.append((part.lo, part.hi))
        except BaseException:
            # Don't leak a half-built layout (mkdtemp or explicit dest).
            shutil.rmtree(root, ignore_errors=True)
            raise
        return cls(root, path, spans)

    def rank_source(
        self, rank: int, max_cached: int = 2, prefetch: int = 0, lazy: bool = True
    ):
        """Open rank `rank`'s owned directory as a private
        :class:`~repro.data.sources.ShardDirSource` (its own LRU and, with
        ``prefetch > 0``, its own background decode thread — close it when
        the rank is done).  The shard codec is auto-detected from the
        per-rank manifest."""
        from repro.data.sources import ShardDirSource

        return ShardDirSource(
            self.rank_dir(rank), max_cached=max_cached, prefetch=prefetch, lazy=lazy
        )

    def remove(self) -> None:
        """Delete the materialized layout (the base directory is untouched)."""
        if os.path.isdir(self.root):
            shutil.rmtree(self.root)


class SubsampleStore:
    """Directory of compressed subsampled PointSets with size accounting."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        if os.sep in name or name.startswith("."):
            raise ValueError(f"invalid store entry name {name!r}")
        return os.path.join(self.root, f"{name}.npz")

    def save(self, name: str, points: PointSet) -> str:
        """Persist one PointSet; returns the file path."""
        payload = points_payload(points)
        payload[_META_KEYS] = np.array(json.dumps(points.meta))
        path = self._path(name)
        np.savez_compressed(path, **payload)
        return path

    def load(self, name: str) -> PointSet:
        path = self._path(name)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data[_META_KEYS])) if _META_KEYS in data.files else {}
            points = points_from_npz(data, meta)
        return points

    def entries(self) -> list[str]:
        return sorted(
            os.path.splitext(f)[0] for f in os.listdir(self.root) if f.endswith(".npz")
        )

    def stored_bytes(self, name: str) -> int:
        """On-disk (compressed) size of one entry."""
        return os.path.getsize(self._path(name))

    def reduction_factor(self, name: str, raw_bytes: int) -> float:
        """Raw-field bytes divided by stored subsample bytes."""
        stored = self.stored_bytes(name)
        if stored <= 0:
            raise ValueError("stored entry is empty")
        return raw_bytes / stored
