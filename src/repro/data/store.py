"""Persistence for fields, datasets, and subsampled point sets.

The paper highlights that SICKLE "provides a convenient way to significantly
reduce file storage requirements, by storing feature-rich subsampled
datasets"; :class:`SubsampleStore` implements that: compressed npz files of
PointSets plus the bookkeeping to report the storage-reduction factor
against the raw fields they came from.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.data.points import PointSet
from repro.sim.fields import FlowField

__all__ = [
    "SubsampleStore",
    "save_field",
    "load_field",
    "points_payload",
    "points_from_npz",
    "META_KEY",
    "MANIFEST",
]

#: npz entry holding the JSON-encoded metadata, shared by every serializer
#: in this repo (SubsampleStore, field snapshots, repro.api artifacts).
META_KEY = "__meta_json__"
_META_KEYS = META_KEY

#: dataset-directory manifest name, shared by save_dataset/load_dataset and
#: the out-of-core :class:`repro.data.sources.ShardedNpzSource`.
MANIFEST = "manifest.json"


def points_payload(points: PointSet) -> dict[str, np.ndarray]:
    """The canonical npz array payload for one PointSet (sans meta).

    Shared by :class:`SubsampleStore` and :mod:`repro.api` artifacts so the
    on-disk format has exactly one definition.
    """
    payload: dict[str, np.ndarray] = {f"val_{k}": v for k, v in points.values.items()}
    payload["coords"] = points.coords
    payload["time"] = np.asarray(points.time)
    return payload


def points_from_npz(data, meta: dict | None = None) -> PointSet:
    """Rebuild a PointSet from an open npz written with :func:`points_payload`."""
    values = {k[4:]: data[k] for k in data.files if k.startswith("val_")}
    time = data["time"]
    return PointSet(
        coords=data["coords"],
        values=values,
        time=float(time) if time.ndim == 0 else time,
        meta=dict(meta) if meta else {},
    )


def save_field(path: str, field: FlowField) -> None:
    """Save one snapshot as a compressed npz."""
    payload: dict[str, np.ndarray] = {f"var_{k}": v for k, v in field.variables.items()}
    payload["time"] = np.array(field.time)
    payload[_META_KEYS] = np.array(json.dumps(field.meta))
    np.savez_compressed(path, **payload)


def load_field(path: str) -> FlowField:
    """Load a snapshot saved by :func:`save_field`."""
    with np.load(path, allow_pickle=False) as data:
        variables = {k[4:]: data[k] for k in data.files if k.startswith("var_")}
        time = float(data["time"])
        meta = json.loads(str(data[_META_KEYS])) if _META_KEYS in data.files else {}
    return FlowField(variables=variables, time=time, meta=meta)


class SubsampleStore:
    """Directory of compressed subsampled PointSets with size accounting."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        if os.sep in name or name.startswith("."):
            raise ValueError(f"invalid store entry name {name!r}")
        return os.path.join(self.root, f"{name}.npz")

    def save(self, name: str, points: PointSet) -> str:
        """Persist one PointSet; returns the file path."""
        payload = points_payload(points)
        payload[_META_KEYS] = np.array(json.dumps(points.meta))
        path = self._path(name)
        np.savez_compressed(path, **payload)
        return path

    def load(self, name: str) -> PointSet:
        path = self._path(name)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data[_META_KEYS])) if _META_KEYS in data.files else {}
            points = points_from_npz(data, meta)
        return points

    def entries(self) -> list[str]:
        return sorted(
            os.path.splitext(f)[0] for f in os.listdir(self.root) if f.endswith(".npz")
        )

    def stored_bytes(self, name: str) -> int:
        """On-disk (compressed) size of one entry."""
        return os.path.getsize(self._path(name))

    def reduction_factor(self, name: str, raw_bytes: int) -> float:
        """Raw-field bytes divided by stored subsample bytes."""
        stored = self.stored_bytes(name)
        if stored <= 0:
            raise ValueError("stored entry is empty")
        return raw_bytes / stored
