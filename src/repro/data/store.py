"""Persistence for fields, datasets, and subsampled point sets.

The paper highlights that SICKLE "provides a convenient way to significantly
reduce file storage requirements, by storing feature-rich subsampled
datasets"; :class:`SubsampleStore` implements that: compressed npz files of
PointSets plus the bookkeeping to report the storage-reduction factor
against the raw fields they came from.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.data.points import PointSet
from repro.sim.fields import FlowField

__all__ = ["SubsampleStore", "save_field", "load_field"]

_META_KEYS = "__meta_json__"


def save_field(path: str, field: FlowField) -> None:
    """Save one snapshot as a compressed npz."""
    payload: dict[str, np.ndarray] = {f"var_{k}": v for k, v in field.variables.items()}
    payload["time"] = np.array(field.time)
    payload[_META_KEYS] = np.array(json.dumps(field.meta))
    np.savez_compressed(path, **payload)


def load_field(path: str) -> FlowField:
    """Load a snapshot saved by :func:`save_field`."""
    with np.load(path, allow_pickle=False) as data:
        variables = {k[4:]: data[k] for k in data.files if k.startswith("var_")}
        time = float(data["time"])
        meta = json.loads(str(data[_META_KEYS])) if _META_KEYS in data.files else {}
    return FlowField(variables=variables, time=time, meta=meta)


class SubsampleStore:
    """Directory of compressed subsampled PointSets with size accounting."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        if os.sep in name or name.startswith("."):
            raise ValueError(f"invalid store entry name {name!r}")
        return os.path.join(self.root, f"{name}.npz")

    def save(self, name: str, points: PointSet) -> str:
        """Persist one PointSet; returns the file path."""
        payload: dict[str, np.ndarray] = {f"val_{k}": v for k, v in points.values.items()}
        payload["coords"] = points.coords
        payload["time"] = np.asarray(points.time)
        payload[_META_KEYS] = np.array(json.dumps(points.meta))
        path = self._path(name)
        np.savez_compressed(path, **payload)
        return path

    def load(self, name: str) -> PointSet:
        path = self._path(name)
        with np.load(path, allow_pickle=False) as data:
            values = {k[4:]: data[k] for k in data.files if k.startswith("val_")}
            coords = data["coords"]
            time = data["time"]
            time = float(time) if time.ndim == 0 else time
            meta = json.loads(str(data[_META_KEYS])) if _META_KEYS in data.files else {}
        return PointSet(coords=coords, values=values, time=time, meta=meta)

    def entries(self) -> list[str]:
        return sorted(
            os.path.splitext(f)[0] for f in os.listdir(self.root) if f.endswith(".npz")
        )

    def stored_bytes(self, name: str) -> int:
        """On-disk (compressed) size of one entry."""
        return os.path.getsize(self._path(name))

    def reduction_factor(self, name: str, raw_bytes: int) -> float:
        """Raw-field bytes divided by stored subsample bytes."""
        stored = self.stored_bytes(name)
        if stored <= 0:
            raise ValueError("stored entry is empty")
        return raw_bytes / stored
