"""TurbulenceDataset: snapshots plus Table 1's variable roles."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.fields import FlowField

__all__ = ["TurbulenceDataset"]


@dataclass
class TurbulenceDataset:
    """A labeled sequence of snapshots with sampling/training roles.

    Mirrors one row of the paper's Table 1: the K-means cluster variable
    (``cluster_var``) drives phase-1/2 entropy computations; ``input_vars``
    and ``output_vars`` define the surrogate learning problem; ``target``
    optionally names a per-snapshot global quantity (OF2D's drag).
    """

    label: str
    snapshots: list[FlowField]
    input_vars: list[str]
    output_vars: list[str]
    cluster_var: str
    description: str = ""
    target: np.ndarray | None = None  # (n_snapshots,) global target, e.g. drag
    gravity: str = "none"
    paper_row: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.snapshots:
            raise ValueError("dataset needs at least one snapshot")
        shapes = {s.grid_shape for s in self.snapshots}
        if len(shapes) != 1:
            raise ValueError(f"snapshots must share a grid, got {shapes}")
        if self.target is not None:
            self.target = np.asarray(self.target, dtype=np.float64)
            if self.target.shape != (len(self.snapshots),):
                raise ValueError("target must have one value per snapshot")
        for name in [*self.input_vars, *self.output_vars, self.cluster_var]:
            if name and name not in self.snapshots[0]:
                raise ValueError(f"variable {name!r} not available in snapshots")

    @property
    def n_snapshots(self) -> int:
        return len(self.snapshots)

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.snapshots[0].grid_shape

    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    @property
    def n_points_per_snapshot(self) -> int:
        return self.snapshots[0].n_points

    @property
    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.snapshots])

    def nbytes(self) -> int:
        """Raw storage footprint of the stored variables across snapshots."""
        return sum(s.nbytes() for s in self.snapshots)

    def summary_row(self) -> dict:
        """A Table 1-style row for this dataset instance."""
        return {
            "label": self.label,
            "description": self.description,
            "space": "x".join(str(n) for n in self.grid_shape),
            "time": self.n_snapshots,
            "size_bytes": self.nbytes(),
            "kcv": self.cluster_var,
            "input": ", ".join(self.input_vars),
            "output": ", ".join(self.output_vars) if self.output_vars else "-",
        }
