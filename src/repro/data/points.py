"""Unstructured point sets: the product of phase-2 subsampling.

A :class:`PointSet` stores, for n selected points, their grid coordinates,
snapshot time, and any number of named per-point variables.  This is the
"feature-rich subsampled dataset" the paper stores in place of full fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PointSet"]


@dataclass
class PointSet:
    """n sampled points with coordinates and named values.

    Attributes
    ----------
    coords:
        (n, d) grid coordinates (d = 2 or 3).
    values:
        name -> (n,) array of per-point variable values.
    time:
        Snapshot time(s): scalar, or (n,) array for mixed-time sets.
    meta:
        Provenance (sampling method, source dataset, rate, ...).
    """

    coords: np.ndarray
    values: dict[str, np.ndarray]
    time: float | np.ndarray = 0.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.coords = np.atleast_2d(np.asarray(self.coords, dtype=np.float64))
        n = self.coords.shape[0]
        for name, v in self.values.items():
            v = np.asarray(v)
            if v.shape != (n,):
                raise ValueError(f"variable {name!r} has shape {v.shape}, expected ({n},)")
            self.values[name] = v
        if isinstance(self.time, np.ndarray) and self.time.shape not in ((), (n,)):
            raise ValueError(f"time array must be scalar or ({n},)")

    def __len__(self) -> int:
        return self.coords.shape[0]

    @property
    def ndim(self) -> int:
        return self.coords.shape[1]

    @property
    def variable_names(self) -> list[str]:
        return sorted(self.values)

    def feature_table(self, names: list[str]) -> np.ndarray:
        """Stack named variables as an (n, len(names)) array."""
        missing = [n for n in names if n not in self.values]
        if missing:
            raise KeyError(f"missing variables {missing}; available: {self.variable_names}")
        return np.column_stack([self.values[n] for n in names])

    def select(self, idx: np.ndarray) -> PointSet:
        """Subset by integer indices (or boolean mask)."""
        idx = np.asarray(idx)
        time = self.time[idx] if isinstance(self.time, np.ndarray) and self.time.ndim else self.time
        return PointSet(
            coords=self.coords[idx],
            values={k: v[idx] for k, v in self.values.items()},
            time=time,
            meta=dict(self.meta),
        )

    @staticmethod
    def concatenate(sets: list[PointSet]) -> PointSet:
        """Concatenate point sets sharing the same variables and ndim."""
        if not sets:
            raise ValueError("need at least one PointSet")
        names = set(sets[0].values)
        for s in sets[1:]:
            if set(s.values) != names:
                raise ValueError("point sets have mismatched variables")
            if s.ndim != sets[0].ndim:
                raise ValueError("point sets have mismatched coordinate dims")
        times = [
            np.broadcast_to(np.asarray(s.time, dtype=np.float64), (len(s),)) for s in sets
        ]
        return PointSet(
            coords=np.concatenate([s.coords for s in sets]),
            values={k: np.concatenate([s.values[k] for s in sets]) for k in sorted(names)},
            time=np.concatenate(times),
            meta=dict(sets[0].meta),
        )

    def nbytes(self) -> int:
        total = self.coords.nbytes + sum(v.nbytes for v in self.values.values())
        if isinstance(self.time, np.ndarray):
            total += self.time.nbytes
        return int(total)
