"""Snapshot sources: one ingestion abstraction for batch, out-of-core, and
in-situ data.

The paper's first future-work item is "integration with in-situ, streaming,
and online training frameworks": sampling while the simulation runs, without
ever materializing the full dataset.  A :class:`SnapshotSource` is the
stream-first answer — every consumer (the stage pipeline, the streaming
samplers, the training data builders, the CLI) asks a source for snapshots
one at a time and never requires the whole dataset to be resident.  Three
implementations cover the ingestion spectrum:

* :class:`InMemorySource` — wraps a fully resident
  :class:`~repro.data.dataset.TurbulenceDataset` (today's batch path;
  produces byte-identical pipeline results).
* :class:`ShardedNpzSource` — lazily loads per-snapshot npz shards written
  by :func:`repro.data.loaders.save_dataset`, keeping at most ``max_cached``
  decoded shards in a thread-safe LRU (out-of-core: the working set is
  bounded no matter how many shards the dataset has).
* :class:`SimulationSource` — generates snapshots on demand from a
  replayable simulation factory (true in-situ: nothing is ever written to
  disk or held beyond a small rolling window; revisiting an earlier
  snapshot re-runs the deterministic simulation).

:class:`PartitionedSource` is a contiguous snapshot-range *view* of any
source — the unit of work one SPMD rank streams in the multi-producer
subsample (``repro.parallel.partition.stream_partitions`` decides the
spans; per-rank samples are then recombined by weighted reservoir merge).

Sources may also support *asynchronous prefetch*: :meth:`SnapshotSource.prefetch`
is an advisory look-ahead hint (no-op by default);  ``ShardedNpzSource``
honours it with a background decode thread so each consumer overlaps shard
decode with sampling, and decodes npz members per variable on first access
(members are individually compressed, so touching one variable never pays
for the rest).

:func:`as_source` coerces a ``TurbulenceDataset`` (→ ``InMemorySource``), a
shard-directory path (→ ``ShardedNpzSource``), or a source (identity), so
``subsample()`` / ``Experiment`` accept all three kinds interchangeably.
"""

from __future__ import annotations

import abc
import json
import os
import queue
import threading
from collections import OrderedDict
from collections.abc import Callable, Iterable, Iterator

import numpy as np

from repro.data.dataset import TurbulenceDataset
from repro.data.store import MANIFEST, load_field, load_field_lazy
from repro.sim.fields import FlowField

__all__ = [
    "SnapshotSource",
    "InMemorySource",
    "ShardedNpzSource",
    "SimulationSource",
    "PartitionedSource",
    "as_source",
    "aggregate_cache_info",
]


class SnapshotSource(abc.ABC):
    """Sequential-access view of a snapshot sequence plus its Table 1 roles.

    Subclasses provide :meth:`snapshot` (random access; may be lazy,
    cached, or regenerating) and the dataset metadata the pipeline needs
    (variable roles, grid geometry, snapshot count).  Consumers that stream
    should prefer :meth:`iter_snapshots` / :meth:`iter_tables`, which visit
    snapshots in index order — the access pattern every implementation
    serves with bounded memory.
    """

    label: str = ""
    description: str = ""
    input_vars: list[str]
    output_vars: list[str]
    cluster_var: str
    gravity: str = "none"
    #: optional (n_snapshots,) per-snapshot global target (e.g. OF2D drag)
    target: np.ndarray | None = None

    # ---- geometry ---------------------------------------------------------

    @property
    @abc.abstractmethod
    def n_snapshots(self) -> int: ...

    @property
    @abc.abstractmethod
    def grid_shape(self) -> tuple[int, ...]: ...

    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    @property
    def n_points_per_snapshot(self) -> int:
        return int(np.prod(self.grid_shape))

    # ---- access -----------------------------------------------------------

    @abc.abstractmethod
    def snapshot(self, i: int) -> FlowField:
        """Fetch snapshot `i`.  May load, generate, or return a cached one;
        the returned field must not be assumed to stay resident after the
        next :meth:`snapshot` call (bounded sources evict)."""

    def iter_snapshots(self) -> Iterator[tuple[int, FlowField]]:
        """Yield ``(index, snapshot)`` in index order (the streaming order)."""
        for i in range(self.n_snapshots):
            yield i, self.snapshot(i)

    @property
    def times(self) -> np.ndarray:
        """(n_snapshots,) snapshot times.  The default walks the source."""
        return np.array([snap.time for _, snap in self.iter_snapshots()])

    def iter_tables(
        self, variables: list[str], chunk_rows: int = 65536
    ) -> Iterator[tuple[int, float, np.ndarray, np.ndarray]]:
        """Stream the source as flat row blocks of bounded size.

        Yields ``(snapshot_index, time, coords_block, table_block)`` where
        ``coords_block`` is (rows, ndim) global grid coordinates and
        ``table_block`` is (rows, len(variables)).  At most one snapshot
        (plus ``chunk_rows`` rows of coordinates) is touched at a time, so
        memory stays bounded by the source's own residency policy.
        """
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if self.n_snapshots == 0:
            # An empty span (e.g. a trailing rank when ranks > snapshots)
            # streams nothing; asking for the grid would force a decode the
            # source cannot serve.
            return
        grid = self.grid_shape
        n = int(np.prod(grid))
        for s, snap in self.iter_snapshots():
            flats = [snap.get(v).reshape(-1) for v in variables]
            for lo in range(0, n, chunk_rows):
                hi = min(lo + chunk_rows, n)
                coords = np.column_stack(
                    np.unravel_index(np.arange(lo, hi), grid)
                ).astype(np.float64)
                table = np.column_stack([f[lo:hi] for f in flats])
                yield s, snap.time, coords, table

    # ---- accounting / hints ----------------------------------------------

    def prefetch(self, indices: Iterable[int]) -> None:
        """Advisory hint that `indices` will be fetched soon.

        Default is a no-op; sources with asynchronous readers (e.g.
        :class:`ShardedNpzSource` with ``prefetch > 0``) start loading the
        named snapshots in the background so the caller's next
        :meth:`snapshot` overlaps I/O with its own compute.  Never required
        for correctness.
        """
        return None

    def nbytes(self) -> int:
        """Decoded footprint of the full snapshot sequence (estimate for
        lazy sources: first snapshot × count, grids are homogeneous)."""
        if self.n_snapshots == 0:
            return 0
        return self.snapshot(0).nbytes() * self.n_snapshots

    def value_range_hint(self, var: str) -> tuple[float, float] | None:
        """Optional global (min, max) of a variable, if knowable without an
        extra pass.  Streaming samplers fall back to estimating from the
        first chunk when this returns None."""
        return None

    def summary_row(self) -> dict:
        return {
            "label": self.label,
            "description": self.description,
            "space": "x".join(str(n) for n in self.grid_shape),
            "time": self.n_snapshots,
            "size_bytes": self.nbytes(),
            "kcv": self.cluster_var,
            "input": ", ".join(self.input_vars),
            "output": ", ".join(self.output_vars) if self.output_vars else "-",
        }


class InMemorySource(SnapshotSource):
    """A fully resident :class:`TurbulenceDataset` as a source (batch mode).

    The pipeline consumes every source through the same chunked interface;
    wrapping a dataset here reproduces the pre-source-API results
    byte-for-byte (pinned by the golden pipeline tests).
    """

    def __init__(self, dataset: TurbulenceDataset) -> None:
        if not isinstance(dataset, TurbulenceDataset):
            raise TypeError(f"expected TurbulenceDataset, got {type(dataset).__name__}")
        self.dataset = dataset
        self.label = dataset.label
        self.description = dataset.description
        self.input_vars = list(dataset.input_vars)
        self.output_vars = list(dataset.output_vars)
        self.cluster_var = dataset.cluster_var
        self.gravity = dataset.gravity
        self.target = dataset.target

    @property
    def n_snapshots(self) -> int:
        return self.dataset.n_snapshots

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.dataset.grid_shape

    def snapshot(self, i: int) -> FlowField:
        return self.dataset.snapshots[i]

    @property
    def times(self) -> np.ndarray:
        return self.dataset.times

    def nbytes(self) -> int:
        return self.dataset.nbytes()

    def value_range_hint(self, var: str) -> tuple[float, float] | None:
        # Everything is resident anyway; the exact range is one cheap scan.
        lo = min(float(s.get(var).min()) for s in self.dataset.snapshots)
        hi = max(float(s.get(var).max()) for s in self.dataset.snapshots)
        return (lo, hi)


class ShardedNpzSource(SnapshotSource):
    """Out-of-core source over per-snapshot npz shards on disk.

    Reads a directory written by :func:`repro.data.loaders.save_dataset`
    (``manifest.json`` + ``snapshot_XXXXX.npz``).  Decoded shards live in a
    thread-safe LRU holding at most ``max_cached`` snapshots, so subsampling
    an N-shard dataset never resides more than ``max_cached`` shards in
    memory regardless of N.  :meth:`cache_info` exposes the counters the
    boundedness tests assert on.

    ``prefetch=N`` starts one background thread that eagerly decodes up to
    ``N`` shards ahead of every access (and whatever :meth:`prefetch` names
    explicitly) into the same bounded LRU, so a streaming consumer overlaps
    shard decode with its own sampling compute; ``cache_info()`` counts the
    hits served from prefetched entries.  ``lazy=True`` (the default)
    decodes npz members per variable on first access — members are
    individually compressed, so a consumer that reads two of six variables
    decompresses exactly those two (the prefetcher still materializes whole
    shards: it exists to move decode off the consumer's thread).
    """

    def __init__(
        self, path: str, max_cached: int = 2, prefetch: int = 0, lazy: bool = True
    ) -> None:
        if max_cached < 1:
            raise ValueError("max_cached must be >= 1")
        if prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        manifest_path = os.path.join(path, MANIFEST)
        if not os.path.isfile(manifest_path):
            raise FileNotFoundError(
                f"no {MANIFEST} under {path!r} — not a save_dataset() directory"
            )
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        self.path = path
        self.max_cached = int(max_cached)
        self.prefetch_depth = int(prefetch)
        self.lazy = bool(lazy)
        self.label = manifest["label"]
        self.description = manifest.get("description", "")
        self.input_vars = list(manifest["input_vars"])
        self.output_vars = list(manifest["output_vars"])
        self.cluster_var = manifest["cluster_var"]
        self.gravity = manifest.get("gravity", "none")
        target = manifest.get("target")
        self.target = np.asarray(target, dtype=np.float64) if target is not None else None
        self._n = int(manifest["n_snapshots"])
        self._cache: OrderedDict[int, FlowField] = OrderedDict()
        self._lock = threading.RLock()
        self._grid_shape: tuple[int, ...] | None = None
        self._shard_nbytes: int | None = None
        self._times: np.ndarray | None = None
        self._stats = {
            "hits": 0, "misses": 0, "evictions": 0, "max_resident": 0,
            "prefetched": 0, "prefetch_hits": 0,
        }
        self._inflight: set[int] = set()
        self._from_prefetch: set[int] = set()
        self._queue: queue.Queue[int | None] | None = None
        self._worker: threading.Thread | None = None

    def shard_path(self, i: int) -> str:
        if not 0 <= i < self._n:
            raise IndexError(f"snapshot {i} out of range [0, {self._n})")
        return os.path.join(self.path, f"snapshot_{i:05d}.npz")

    @property
    def n_snapshots(self) -> int:
        return self._n

    @property
    def grid_shape(self) -> tuple[int, ...]:
        with self._lock:  # RLock: snapshot(0) re-enters safely
            if self._grid_shape is None:
                self._grid_shape = self.snapshot(0).grid_shape
            return self._grid_shape

    # ---- decode / cache internals -----------------------------------------

    def _decode(self, i: int, materialize: bool = False) -> FlowField:
        """Decode shard `i` (outside the lock, so decodes overlap)."""
        path = self.shard_path(i)
        if not self.lazy:
            return load_field(path)
        field = load_field_lazy(path)
        if materialize:
            field.materialize()
        return field

    def _insert(self, i: int, field: FlowField) -> None:
        """Add to the LRU under the lock; evict first so residency never
        exceeds ``max_cached``."""
        while len(self._cache) >= self.max_cached:
            old, _ = self._cache.popitem(last=False)
            self._from_prefetch.discard(old)
            self._stats["evictions"] += 1
        self._cache[i] = field
        self._stats["max_resident"] = max(self._stats["max_resident"], len(self._cache))
        if self._grid_shape is None:
            self._grid_shape = field.grid_shape
            self._shard_nbytes = field.nbytes()

    def snapshot(self, i: int) -> FlowField:
        self.shard_path(i)  # validate the index before touching the cache
        with self._lock:
            field = self._cache.get(i)
            if field is not None:
                self._cache.move_to_end(i)
                self._stats["hits"] += 1
                if i in self._from_prefetch:
                    self._from_prefetch.discard(i)
                    self._stats["prefetch_hits"] += 1
                self._schedule_lookahead(i)
                return field
            self._stats["misses"] += 1
            self._schedule_lookahead(i)
        # Decode outside the lock: concurrent ranks and the prefetcher make
        # progress while this thread decompresses.
        field = self._decode(i)
        with self._lock:
            racing = self._cache.get(i)
            if racing is not None:  # the prefetcher beat us to it
                self._cache.move_to_end(i)
                self._from_prefetch.discard(i)
                return racing
            self._insert(i, field)
            return field

    # ---- async prefetch ----------------------------------------------------

    def prefetch(self, indices: Iterable[int]) -> None:
        """Queue explicit shards for background decode (advisory; no-op
        unless the source was built with ``prefetch > 0``).

        At most ``prefetch_depth`` decodes are outstanding at once — a long
        hint list is truncated rather than flooding the bounded LRU with
        shards the consumer won't reach for a while (which would evict the
        ones it is about to read).
        """
        if self.prefetch_depth <= 0:
            return
        with self._lock:
            for i in indices:
                self._enqueue(int(i))

    def _schedule_lookahead(self, i: int) -> None:
        """Queue the next ``prefetch_depth`` shards after `i` (lock held)."""
        for j in range(i + 1, min(i + 1 + self.prefetch_depth, self._n)):
            self._enqueue(j)

    def _enqueue(self, j: int) -> None:
        """Queue shard `j` for background decode (caller holds the lock)."""
        if self.prefetch_depth <= 0 or not 0 <= j < self._n:
            return
        if j in self._cache or j in self._inflight:
            return
        # Bound outstanding decodes to the look-ahead depth: a long hint
        # list must not flood the bounded LRU with far-future shards.
        if len(self._inflight) >= self.prefetch_depth:
            return
        if self._worker is None:
            self._queue = queue.Queue()
            self._worker = threading.Thread(
                target=self._prefetch_loop, args=(self._queue,),
                name="shard-prefetch", daemon=True,
            )
            self._worker.start()
        self._inflight.add(j)
        assert self._queue is not None
        self._queue.put(j)

    def _prefetch_loop(self, q: queue.Queue[int | None]) -> None:
        while True:
            j = q.get()
            if j is None:
                return
            try:
                field = self._decode(j, materialize=True)
            except Exception:
                with self._lock:
                    self._inflight.discard(j)
                continue
            with self._lock:
                self._inflight.discard(j)
                if j not in self._cache:
                    self._insert(j, field)
                    self._from_prefetch.add(j)
                    self._stats["prefetched"] += 1

    def close(self) -> None:
        """Stop and join the prefetch worker (idempotent).

        Call when done with the source — directly, via the context manager,
        or through the pipeline/CLI teardown — so long-lived processes (and
        the thread-leak tests) never accumulate idle decode threads.  The
        worker is a daemon, so even an unclosed source cannot block
        interpreter exit.
        """
        with self._lock:
            worker, q = self._worker, self._queue
            self._worker = None
            self._queue = None
        if worker is not None and q is not None:
            q.put(None)
            worker.join(timeout=5.0)

    def __enter__(self) -> ShardedNpzSource:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def times(self) -> np.ndarray:
        with self._lock:
            if self._times is None:
                # np.load decompresses entries on access, so reading just the
                # scalar "time" entry never decodes the field arrays.
                times = np.empty(self._n)
                for i in range(self._n):
                    with np.load(self.shard_path(i), allow_pickle=False) as data:
                        times[i] = float(data["time"])
                self._times = times
            return self._times

    def nbytes(self) -> int:
        """Decoded footprint of all shards (first decode's size × count,
        cached so repeat queries touch no disk)."""
        if self._n == 0:
            return 0
        with self._lock:  # RLock: snapshot(0) re-enters safely
            if self._shard_nbytes is None:
                self.snapshot(0)
            return self._shard_nbytes * self._n

    def cache_info(self) -> dict:
        with self._lock:
            return {
                **self._stats,
                "resident": len(self._cache),
                "max_cached": self.max_cached,
                "prefetch_depth": self.prefetch_depth,
            }


class SimulationSource(SnapshotSource):
    """In-situ source: snapshots are generated on demand, never materialized.

    ``factory`` is a zero-argument callable returning a *fresh* iterator of
    :class:`FlowField` snapshots (a deterministic simulation run).  Forward
    access advances the live iterator; only the last ``max_cached``
    generated snapshots are retained, and stepping *backwards* restarts the
    factory and replays — the standard in-situ trade of compute for memory.
    ``restarts`` counts those replays (the two-phase pipeline revisits
    selected snapshots in phase 2, so expect a couple).
    """

    def __init__(
        self,
        factory: Callable[[], Iterator[FlowField]],
        n_snapshots: int,
        *,
        label: str = "SIM",
        input_vars: list[str],
        output_vars: list[str],
        cluster_var: str,
        gravity: str = "none",
        description: str = "",
        target: np.ndarray | None = None,
        max_cached: int = 1,
    ) -> None:
        if n_snapshots < 1:
            raise ValueError("n_snapshots must be >= 1")
        if max_cached < 1:
            raise ValueError("max_cached must be >= 1")
        self.factory = factory
        self.label = label
        self.description = description
        self.input_vars = list(input_vars)
        self.output_vars = list(output_vars)
        self.cluster_var = cluster_var
        self.gravity = gravity
        self.target = target
        self.max_cached = int(max_cached)
        self._n = int(n_snapshots)
        self._it: Iterator[FlowField] | None = None
        self._pos = 0  # number of snapshots consumed from the live iterator
        self._cache: OrderedDict[int, FlowField] = OrderedDict()
        self._lock = threading.RLock()
        self._grid_shape: tuple[int, ...] | None = None
        self._snapshot_nbytes: int | None = None
        self._seen_times: dict[int, float] = {}
        self.restarts = 0
        self.generated = 0

    @property
    def n_snapshots(self) -> int:
        return self._n

    @property
    def grid_shape(self) -> tuple[int, ...]:
        with self._lock:  # RLock: snapshot(0) re-enters safely
            if self._grid_shape is None:
                self._grid_shape = self.snapshot(0).grid_shape
            return self._grid_shape

    def snapshot(self, i: int) -> FlowField:
        if not 0 <= i < self._n:
            raise IndexError(f"snapshot {i} out of range [0, {self._n})")
        with self._lock:
            if i in self._cache:
                self._cache.move_to_end(i)
                return self._cache[i]
            if self._it is None or i < self._pos:
                # Revisiting a discarded snapshot: replay the simulation.
                if self._it is not None:
                    self.restarts += 1
                self._it = iter(self.factory())
                self._pos = 0
                self._cache.clear()
            field = None
            while self._pos <= i:
                try:
                    field = next(self._it)
                except StopIteration:
                    raise RuntimeError(
                        f"simulation factory yielded only {self._pos} snapshots, "
                        f"declared n_snapshots={self._n}"
                    ) from None
                self._seen_times[self._pos] = field.time
                self.generated += 1
                # Cache every snapshot generated while advancing, not just
                # the requested one: interleaved consumers (multi-rank
                # streaming) revisit the intermediates, and with
                # max_cached >= n_snapshots this makes the whole stream
                # resident — zero replays, as the replay guards promise.
                # The LRU still bounds residency for smaller windows.
                while len(self._cache) >= self.max_cached:
                    self._cache.popitem(last=False)
                self._cache[self._pos] = field
                self._pos += 1
                if self._grid_shape is None:
                    self._grid_shape = field.grid_shape
                    self._snapshot_nbytes = field.nbytes()
            self._cache.move_to_end(i)
            return self._cache[i]

    @property
    def times(self) -> np.ndarray:
        """Snapshot times; generating through the stream once if needed."""
        with self._lock:  # RLock: snapshot() re-enters safely
            if len(self._seen_times) < self._n:
                self.snapshot(self._n - 1)  # advance to the end, recording times
            return np.array([self._seen_times[i] for i in range(self._n)])

    def nbytes(self) -> int:
        """Would-be decoded footprint, from the first generated snapshot's
        size (cached, so asking after a completed pass never replays)."""
        with self._lock:  # RLock: snapshot(0) re-enters safely
            if self._snapshot_nbytes is None:
                self.snapshot(0)
            return self._snapshot_nbytes * self._n


class PartitionedSource(SnapshotSource):
    """A contiguous snapshot-range view ``[lo, hi)`` of another source.

    The unit of work one SPMD rank streams in the multi-producer subsample:
    rank `r` sees its span as snapshots ``0 .. hi-lo`` of an ordinary
    source, while coordinates, times, and values pass through unchanged from
    the base.  Views share the base source (and therefore its cache /
    prefetcher), so K ranks over one :class:`ShardedNpzSource` still respect
    a single global residency bound.
    """

    def __init__(self, base: SnapshotSource, lo: int, hi: int) -> None:
        if not isinstance(base, SnapshotSource):
            raise TypeError(f"expected SnapshotSource, got {type(base).__name__}")
        if not (0 <= lo <= hi <= base.n_snapshots):
            raise ValueError(
                f"span [{lo}, {hi}) invalid for a {base.n_snapshots}-snapshot source"
            )
        self.base = base
        self.lo = int(lo)
        self.hi = int(hi)
        self.label = f"{base.label}[{lo}:{hi}]"
        self.description = base.description
        self.input_vars = list(base.input_vars)
        self.output_vars = list(base.output_vars)
        self.cluster_var = base.cluster_var
        self.gravity = base.gravity
        self.target = base.target[lo:hi] if base.target is not None else None

    @classmethod
    def split(cls, source: SnapshotSource, nranks: int) -> list[PartitionedSource]:
        """One contiguous view per rank (sizes differ by at most one
        snapshot; trailing views are empty when ``nranks > n_snapshots``)."""
        from repro.parallel.partition import stream_partitions

        return [
            cls(source, part.lo, part.hi)
            for part in stream_partitions(source.n_snapshots, nranks)
        ]

    @property
    def n_snapshots(self) -> int:
        return self.hi - self.lo

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.base.grid_shape

    def snapshot(self, i: int) -> FlowField:
        if not 0 <= i < self.n_snapshots:
            raise IndexError(f"snapshot {i} out of range [0, {self.n_snapshots})")
        return self.base.snapshot(self.lo + i)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self.base.times)[self.lo : self.hi]

    def prefetch(self, indices: Iterable[int]) -> None:
        self.base.prefetch(self.lo + int(i) for i in indices)

    def nbytes(self) -> int:
        if self.n_snapshots == 0:
            return 0
        return self.snapshot(0).nbytes() * self.n_snapshots

    def value_range_hint(self, var: str) -> tuple[float, float] | None:
        # The base's global range is valid (if conservative) for any span —
        # and sharing it keeps every rank's histogram edges identical.
        return self.base.value_range_hint(var)


#: the cache_info() entries that are true event counters — additive across
#: disjoint caches.  Gauges and configuration (``resident``, ``max_cached``,
#: ``max_resident``, ``prefetch_depth``) are deliberately NOT aggregated:
#: their sums would masquerade as fleet totals while meaning nothing.
_ADDITIVE_CACHE_COUNTERS = (
    "hits", "misses", "evictions", "prefetched", "prefetch_hits"
)


def aggregate_cache_info(infos: Iterable[dict | None]) -> dict:
    """Sum per-rank :meth:`ShardedNpzSource.cache_info` event counters.

    The owned-shard benchmarks account total I/O across ranks with this:
    only the additive counters are summed, ``decodes`` is the derived total
    shard-decode count (``misses + prefetched`` — each a real
    decompression), and ``ranks`` counts the caches aggregated.  ``None``
    entries (ranks without a sharded source) are skipped.
    """
    total: dict = {"ranks": 0, **{k: 0 for k in _ADDITIVE_CACHE_COUNTERS}}
    for info in infos:
        if info is None:
            continue
        total["ranks"] += 1
        for key in _ADDITIVE_CACHE_COUNTERS:
            total[key] += info.get(key, 0)
    total["decodes"] = total["misses"] + total["prefetched"]
    return total


def as_source(data) -> SnapshotSource:
    """Coerce the accepted ingestion kinds to a :class:`SnapshotSource`.

    Accepts a source (identity), a :class:`TurbulenceDataset`
    (→ :class:`InMemorySource`), or a path to a shard directory written by
    ``save_dataset`` (→ :class:`ShardedNpzSource`).
    """
    if isinstance(data, SnapshotSource):
        return data
    if isinstance(data, TurbulenceDataset):
        return InMemorySource(data)
    if isinstance(data, (str, os.PathLike)):
        return ShardedNpzSource(os.fspath(data))
    raise TypeError(
        "expected a SnapshotSource, TurbulenceDataset, or shard-directory "
        f"path, got {type(data).__name__}"
    )
