"""Snapshot sources: one ingestion abstraction for batch, out-of-core, and
in-situ data.

The paper's first future-work item is "integration with in-situ, streaming,
and online training frameworks": sampling while the simulation runs, without
ever materializing the full dataset.  A :class:`SnapshotSource` is the
stream-first answer — every consumer (the stage pipeline, the streaming
samplers, the training data builders, the CLI) asks a source for snapshots
one at a time and never requires the whole dataset to be resident.  Three
implementations cover the ingestion spectrum:

* :class:`InMemorySource` — wraps a fully resident
  :class:`~repro.data.dataset.TurbulenceDataset` (today's batch path;
  produces byte-identical pipeline results).
* :class:`ShardDirSource` — lazily loads per-snapshot shards written by
  :func:`repro.data.loaders.save_dataset` in any registered
  :mod:`~repro.data.codecs` layout (auto-detected from the manifest),
  keeping at most ``max_cached`` decoded shards in a thread-safe LRU
  (out-of-core: the working set is bounded no matter how many shards the
  dataset has).  :class:`ShardedNpzSource` is the back-compat name.
* :class:`RemoteTieredSource` — a :class:`ShardDirSource` whose shard
  directory lives behind a simulated object store: shards are staged to a
  bounded local-disk tier through a latency/bandwidth cost model before
  decoding, so RAM → local disk → remote tiering is exercised with the
  same LRU/prefetch/ownership machinery.
* :class:`SimulationSource` — generates snapshots on demand from a
  replayable simulation factory (true in-situ: nothing is ever written to
  disk or held beyond a small rolling window; revisiting an earlier
  snapshot re-runs the deterministic simulation).

:class:`PartitionedSource` is a contiguous snapshot-range *view* of any
source — the unit of work one SPMD rank streams in the multi-producer
subsample (``repro.parallel.partition.stream_partitions`` decides the
spans; per-rank samples are then recombined by weighted reservoir merge).

Sources may also support *asynchronous prefetch*: :meth:`SnapshotSource.prefetch`
is an advisory look-ahead hint (no-op by default);  ``ShardDirSource``
honours it with a background decode thread so each consumer overlaps shard
decode with sampling, and (with ``lazy=True``) decodes shard members per
variable on first access — what "member decode" costs is the codec's
business (npz decompresses one zip entry, raw memory-maps one file,
chunked reads one variable's chunk files).

:func:`open_source` is the one factory every entry point routes through:
it resolves a source object (identity), a ``TurbulenceDataset``
(→ ``InMemorySource``), a shard-directory path (→ ``ShardDirSource``,
codec auto-detected), or a spec string like ``raw+dir:///data/shards`` /
``remote:///data/shards?latency_s=0.01`` to a :class:`SnapshotSource`.
:func:`as_source` remains as the historical coercion name.
"""

from __future__ import annotations

import abc
import dataclasses
import os
import queue
import shutil
import tempfile
import threading
import urllib.parse
import warnings
from collections import OrderedDict
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.data.codecs import get_codec
from repro.data.dataset import TurbulenceDataset
from repro.data.store import LazyMembers, read_manifest, write_manifest
from repro.sim.fields import FlowField

__all__ = [
    "SnapshotSource",
    "InMemorySource",
    "ShardDirSource",
    "ShardedNpzSource",
    "RemoteTieredSource",
    "SimulationSource",
    "PartitionedSource",
    "CacheCounters",
    "CacheInfo",
    "open_source",
    "as_source",
    "aggregate_cache_info",
]


class SnapshotSource(abc.ABC):
    """Sequential-access view of a snapshot sequence plus its Table 1 roles.

    Subclasses provide :meth:`snapshot` (random access; may be lazy,
    cached, or regenerating) and the dataset metadata the pipeline needs
    (variable roles, grid geometry, snapshot count).  Consumers that stream
    should prefer :meth:`iter_snapshots` / :meth:`iter_tables`, which visit
    snapshots in index order — the access pattern every implementation
    serves with bounded memory.
    """

    label: str = ""
    description: str = ""
    input_vars: list[str]
    output_vars: list[str]
    cluster_var: str
    gravity: str = "none"
    #: optional (n_snapshots,) per-snapshot global target (e.g. OF2D drag)
    target: np.ndarray | None = None

    # ---- geometry ---------------------------------------------------------

    @property
    @abc.abstractmethod
    def n_snapshots(self) -> int: ...

    @property
    @abc.abstractmethod
    def grid_shape(self) -> tuple[int, ...]: ...

    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    @property
    def n_points_per_snapshot(self) -> int:
        return int(np.prod(self.grid_shape))

    # ---- access -----------------------------------------------------------

    @abc.abstractmethod
    def snapshot(self, i: int) -> FlowField:
        """Fetch snapshot `i`.  May load, generate, or return a cached one;
        the returned field must not be assumed to stay resident after the
        next :meth:`snapshot` call (bounded sources evict)."""

    def iter_snapshots(self) -> Iterator[tuple[int, FlowField]]:
        """Yield ``(index, snapshot)`` in index order (the streaming order)."""
        for i in range(self.n_snapshots):
            yield i, self.snapshot(i)

    @property
    def times(self) -> np.ndarray:
        """(n_snapshots,) snapshot times.  The default walks the source."""
        return np.array([snap.time for _, snap in self.iter_snapshots()])

    def iter_tables(
        self, variables: list[str], chunk_rows: int = 65536
    ) -> Iterator[tuple[int, float, np.ndarray, np.ndarray]]:
        """Stream the source as flat row blocks of bounded size.

        Yields ``(snapshot_index, time, coords_block, table_block)`` where
        ``coords_block`` is (rows, ndim) global grid coordinates and
        ``table_block`` is (rows, len(variables)).  At most one snapshot
        (plus ``chunk_rows`` rows of coordinates) is touched at a time, so
        memory stays bounded by the source's own residency policy.
        """
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if self.n_snapshots == 0:
            # An empty span (e.g. a trailing rank when ranks > snapshots)
            # streams nothing; asking for the grid would force a decode the
            # source cannot serve.
            return
        grid = self.grid_shape
        n = int(np.prod(grid))
        for s, snap in self.iter_snapshots():
            flats = [snap.get(v).reshape(-1) for v in variables]
            for lo in range(0, n, chunk_rows):
                hi = min(lo + chunk_rows, n)
                coords = np.column_stack(
                    np.unravel_index(np.arange(lo, hi), grid)
                ).astype(np.float64)
                table = np.column_stack([f[lo:hi] for f in flats])
                yield s, snap.time, coords, table

    # ---- accounting / hints ----------------------------------------------

    def prefetch(self, indices: Iterable[int]) -> None:
        """Advisory hint that `indices` will be fetched soon.

        Default is a no-op; sources with asynchronous readers (e.g.
        :class:`ShardedNpzSource` with ``prefetch > 0``) start loading the
        named snapshots in the background so the caller's next
        :meth:`snapshot` overlaps I/O with its own compute.  Never required
        for correctness.
        """
        return None

    def nbytes(self) -> int:
        """Decoded footprint of the full snapshot sequence (estimate for
        lazy sources: first snapshot × count, grids are homogeneous)."""
        if self.n_snapshots == 0:
            return 0
        return self.snapshot(0).nbytes() * self.n_snapshots

    def value_range_hint(self, var: str) -> tuple[float, float] | None:
        """Optional global (min, max) of a variable, if knowable without an
        extra pass.  Streaming samplers fall back to estimating from the
        first chunk when this returns None."""
        return None

    def summary_row(self) -> dict:
        return {
            "label": self.label,
            "description": self.description,
            "space": "x".join(str(n) for n in self.grid_shape),
            "time": self.n_snapshots,
            "size_bytes": self.nbytes(),
            "kcv": self.cluster_var,
            "input": ", ".join(self.input_vars),
            "output": ", ".join(self.output_vars) if self.output_vars else "-",
        }


class InMemorySource(SnapshotSource):
    """A fully resident :class:`TurbulenceDataset` as a source (batch mode).

    The pipeline consumes every source through the same chunked interface;
    wrapping a dataset here reproduces the pre-source-API results
    byte-for-byte (pinned by the golden pipeline tests).
    """

    def __init__(self, dataset: TurbulenceDataset) -> None:
        if not isinstance(dataset, TurbulenceDataset):
            raise TypeError(f"expected TurbulenceDataset, got {type(dataset).__name__}")
        self.dataset = dataset
        self.label = dataset.label
        self.description = dataset.description
        self.input_vars = list(dataset.input_vars)
        self.output_vars = list(dataset.output_vars)
        self.cluster_var = dataset.cluster_var
        self.gravity = dataset.gravity
        self.target = dataset.target

    @property
    def n_snapshots(self) -> int:
        return self.dataset.n_snapshots

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.dataset.grid_shape

    def snapshot(self, i: int) -> FlowField:
        return self.dataset.snapshots[i]

    @property
    def times(self) -> np.ndarray:
        return self.dataset.times

    def nbytes(self) -> int:
        return self.dataset.nbytes()

    def value_range_hint(self, var: str) -> tuple[float, float] | None:
        # Everything is resident anyway; the exact range is one cheap scan.
        lo = min(float(s.get(var).min()) for s in self.dataset.snapshots)
        hi = max(float(s.get(var).max()) for s in self.dataset.snapshots)
        return (lo, hi)


@dataclass
class CacheCounters:
    """The documented additive event counters every tiered source reports.

    One shared schema across sources and tiers: plain :class:`ShardDirSource`
    instances leave the remote/staging counters at zero, a
    :class:`RemoteTieredSource` increments them, and
    :func:`aggregate_cache_info` sums *exactly these fields* across ranks —
    no per-source key special-casing.

    * ``hits`` / ``misses`` — LRU lookups served from / not in RAM;
    * ``evictions`` — shards dropped from the RAM LRU;
    * ``prefetched`` — shards decoded by the background prefetch thread;
    * ``prefetch_hits`` — hits served from a prefetched entry;
    * ``remote_fetches`` / ``remote_bytes`` — shard fetches (and their
      on-disk bytes) staged from the remote tier;
    * ``remote_wait_s`` — simulated seconds the latency/bandwidth model
      charges for those fetches (accounted, not slept);
    * ``staged_hits`` — decodes served from the already-staged local tier;
    * ``staged_evictions`` — shards dropped from the bounded staging tier.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetched: int = 0
    prefetch_hits: int = 0
    remote_fetches: int = 0
    remote_bytes: int = 0
    remote_wait_s: float = 0.0
    staged_hits: int = 0
    staged_evictions: int = 0


class CacheInfo(dict):
    """The schema ``cache_info()`` returns (a dict, schema version 2)::

        {
          "schema": 2,
          "codec": "npz" | "raw" | "chunked",
          "tier": "local" | "remote",
          "counters": {...CacheCounters fields...},   # additive across ranks
          "gauges": {"resident", "max_resident", "max_cached",
                     "prefetch_depth", ...per-tier gauges...},
        }

    Counters are events (summable across disjoint caches); gauges are
    levels and configuration, which :func:`aggregate_cache_info`
    deliberately never sums.  The pre-schema flat keys (``info["hits"]``,
    ``info["max_resident"]``, ...) keep working through a deprecation
    shim: bracket access and :meth:`get` fall back to the matching
    counter/gauge with a :class:`DeprecationWarning`.
    """

    def __missing__(self, key):
        for section in ("counters", "gauges"):
            values = dict.get(self, section)
            if isinstance(values, dict) and key in values:
                warnings.warn(
                    f"flat cache_info()[{key!r}] is deprecated; read "
                    f"cache_info()[{section!r}][{key!r}] (schema 2)",
                    DeprecationWarning, stacklevel=2,
                )
                return values[key]
        raise KeyError(key)

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default


class ShardDirSource(SnapshotSource):
    """Out-of-core source over per-snapshot shards on disk, any codec.

    Reads a directory written by :func:`repro.data.loaders.save_dataset`
    (``manifest.json`` + one shard per snapshot).  The shard layout is
    resolved from the manifest's ``"codec"`` stamp against the
    :mod:`~repro.data.codecs` registry (directories from before the
    registry read as ``npz``), so every policy here — bounded LRU,
    prefetch, ownership splits — is codec-agnostic.  Decoded shards live
    in a thread-safe LRU holding at most ``max_cached`` snapshots, so
    subsampling an N-shard dataset never resides more than ``max_cached``
    shards in memory regardless of N.  :meth:`cache_info` exposes the
    counters the boundedness tests assert on (see :class:`CacheInfo`).

    ``prefetch=N`` starts one background thread that eagerly decodes up to
    ``N`` shards ahead of every access (and whatever :meth:`prefetch` names
    explicitly) into the same bounded LRU, so a streaming consumer overlaps
    shard decode with its own sampling compute; ``cache_info()`` counts the
    hits served from prefetched entries.  ``lazy=True`` (the default)
    decodes shard members per variable on first access — a consumer that
    reads two of six variables pays for exactly those two (the prefetcher
    still materializes whole shards: it exists to move decode off the
    consumer's thread).
    """

    #: which storage tier serves decodes (overridden by remote wrappers)
    tier = "local"

    def __init__(
        self, path: str, max_cached: int = 2, prefetch: int = 0, lazy: bool = True
    ) -> None:
        if max_cached < 1:
            raise ValueError("max_cached must be >= 1")
        if prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        manifest = read_manifest(path)
        self.path = path
        self.codec = get_codec(manifest.get("codec", "npz"))
        self.max_cached = int(max_cached)
        self.prefetch_depth = int(prefetch)
        self.lazy = bool(lazy)
        self.label = manifest["label"]
        self.description = manifest.get("description", "")
        self.input_vars = list(manifest["input_vars"])
        self.output_vars = list(manifest["output_vars"])
        self.cluster_var = manifest["cluster_var"]
        self.gravity = manifest.get("gravity", "none")
        target = manifest.get("target")
        self.target = np.asarray(target, dtype=np.float64) if target is not None else None
        self._n = int(manifest["n_snapshots"])
        self._cache: OrderedDict[int, FlowField] = OrderedDict()
        self._lock = threading.RLock()
        self._grid_shape: tuple[int, ...] | None = None
        self._shard_nbytes: int | None = None
        self._times: np.ndarray | None = None
        self._stats = CacheCounters()
        self._max_resident = 0
        self._inflight: set[int] = set()
        self._from_prefetch: set[int] = set()
        self._queue: queue.Queue[int | None] | None = None
        self._worker: threading.Thread | None = None

    @property
    def layout_path(self) -> str:
        """The directory :class:`~repro.data.store.OwnedShardLayout` should
        split for per-rank ownership (tiered wrappers point this at their
        backing store, not their staging area)."""
        return self.path

    def reopen(self, path: str | None = None) -> ShardDirSource:
        """A fresh private source with this source's knobs over `path`
        (default: the same directory) — how owned-shard layouts and the
        process backend's forked workers get per-rank sources without
        sharing LRU/prefetch state."""
        return ShardDirSource(
            self.layout_path if path is None else path,
            max_cached=self.max_cached, prefetch=self.prefetch_depth,
            lazy=self.lazy,
        )

    def shard_path(self, i: int) -> str:
        """On-disk path of shard `i` (file or directory, per the codec);
        validates the index."""
        if not 0 <= i < self._n:
            raise IndexError(f"snapshot {i} out of range [0, {self._n})")
        return self.codec.shard_path(self.path, i)

    @property
    def n_snapshots(self) -> int:
        return self._n

    @property
    def grid_shape(self) -> tuple[int, ...]:
        with self._lock:  # RLock: snapshot(0) re-enters safely
            if self._grid_shape is None:
                self._grid_shape = self.snapshot(0).grid_shape
            return self._grid_shape

    # ---- decode / cache internals -----------------------------------------

    def _decode(self, i: int, materialize: bool = False) -> FlowField:
        """Decode shard `i` through the codec (outside the lock, so
        decodes overlap)."""
        self.shard_path(i)  # validate the index
        if not self.lazy:
            return self.codec.decode(self.path, i)
        field = self.codec.decode_lazy(self.path, i)
        if materialize:
            field.materialize()
        return field

    def _insert(self, i: int, field: FlowField) -> None:
        """Add to the LRU under the lock; evict first so residency never
        exceeds ``max_cached``."""
        while len(self._cache) >= self.max_cached:
            old, _ = self._cache.popitem(last=False)
            self._from_prefetch.discard(old)
            self._stats.evictions += 1
        self._cache[i] = field
        self._max_resident = max(self._max_resident, len(self._cache))
        if self._grid_shape is None:
            self._grid_shape = field.grid_shape
            self._shard_nbytes = field.nbytes()

    def snapshot(self, i: int) -> FlowField:
        self.shard_path(i)  # validate the index before touching the cache
        with self._lock:
            field = self._cache.get(i)
            if field is not None:
                self._cache.move_to_end(i)
                self._stats.hits += 1
                if i in self._from_prefetch:
                    self._from_prefetch.discard(i)
                    self._stats.prefetch_hits += 1
                self._schedule_lookahead(i)
                return field
            self._stats.misses += 1
            self._schedule_lookahead(i)
        # Decode outside the lock: concurrent ranks and the prefetcher make
        # progress while this thread decompresses.
        field = self._decode(i)
        with self._lock:
            racing = self._cache.get(i)
            if racing is not None:  # the prefetcher beat us to it
                self._cache.move_to_end(i)
                self._from_prefetch.discard(i)
                return racing
            self._insert(i, field)
            return field

    # ---- async prefetch ----------------------------------------------------

    def prefetch(self, indices: Iterable[int]) -> None:
        """Queue explicit shards for background decode (advisory; no-op
        unless the source was built with ``prefetch > 0``).

        At most ``prefetch_depth`` decodes are outstanding at once — a long
        hint list is truncated rather than flooding the bounded LRU with
        shards the consumer won't reach for a while (which would evict the
        ones it is about to read).
        """
        if self.prefetch_depth <= 0:
            return
        with self._lock:
            for i in indices:
                self._enqueue(int(i))

    def _schedule_lookahead(self, i: int) -> None:
        """Queue the next ``prefetch_depth`` shards after `i` (lock held)."""
        for j in range(i + 1, min(i + 1 + self.prefetch_depth, self._n)):
            self._enqueue(j)

    def _enqueue(self, j: int) -> None:
        """Queue shard `j` for background decode (caller holds the lock)."""
        if self.prefetch_depth <= 0 or not 0 <= j < self._n:
            return
        if j in self._cache or j in self._inflight:
            return
        # Bound outstanding decodes to the look-ahead depth: a long hint
        # list must not flood the bounded LRU with far-future shards.
        if len(self._inflight) >= self.prefetch_depth:
            return
        if self._worker is None:
            self._queue = queue.Queue()
            self._worker = threading.Thread(
                target=self._prefetch_loop, args=(self._queue,),
                name="shard-prefetch", daemon=True,
            )
            self._worker.start()
        self._inflight.add(j)
        assert self._queue is not None
        self._queue.put(j)

    def _prefetch_loop(self, q: queue.Queue[int | None]) -> None:
        while True:
            j = q.get()
            if j is None:
                return
            try:
                field = self._decode(j, materialize=True)
            except Exception:
                with self._lock:
                    self._inflight.discard(j)
                continue
            with self._lock:
                self._inflight.discard(j)
                if j not in self._cache:
                    self._insert(j, field)
                    self._from_prefetch.add(j)
                    self._stats.prefetched += 1

    def close(self) -> None:
        """Stop and join the prefetch worker (idempotent).

        Call when done with the source — directly, via the context manager,
        or through the pipeline/CLI teardown — so long-lived processes (and
        the thread-leak tests) never accumulate idle decode threads.  The
        worker is a daemon, so even an unclosed source cannot block
        interpreter exit.
        """
        with self._lock:
            worker, q = self._worker, self._queue
            self._worker = None
            self._queue = None
        if worker is not None and q is not None:
            q.put(None)
            worker.join(timeout=5.0)

    def __enter__(self) -> ShardDirSource:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _shard_time(self, i: int) -> float:
        """Metadata-only time read for shard `i` (no array decode); tiered
        wrappers read from their backing store so an unstaged shard never
        forces a fetch."""
        return self.codec.shard_time(self.path, i)

    @property
    def times(self) -> np.ndarray:
        with self._lock:
            if self._times is None:
                # Codecs read times from shard metadata (an npz scalar
                # entry, a json sidecar), never the field arrays.
                self._times = np.array(
                    [self._shard_time(i) for i in range(self._n)]
                )
            return self._times

    def nbytes(self) -> int:
        """Decoded footprint of all shards (first decode's size × count,
        cached so repeat queries touch no disk)."""
        if self._n == 0:
            return 0
        with self._lock:  # RLock: snapshot(0) re-enters safely
            if self._shard_nbytes is None:
                self.snapshot(0)
            return self._shard_nbytes * self._n

    def _tier_gauges(self) -> dict:
        """Extra per-tier gauges for :meth:`cache_info` (lock held)."""
        return {}

    def cache_info(self) -> CacheInfo:
        """Cache/tier counters in the documented :class:`CacheInfo` schema."""
        with self._lock:
            return CacheInfo(
                schema=2,
                codec=self.codec.name,
                tier=self.tier,
                counters=dataclasses.asdict(self._stats),
                gauges={
                    "resident": len(self._cache),
                    "max_resident": self._max_resident,
                    "max_cached": self.max_cached,
                    "prefetch_depth": self.prefetch_depth,
                    **self._tier_gauges(),
                },
            )


class ShardedNpzSource(ShardDirSource):
    """Back-compat name for :class:`ShardDirSource` (which now auto-detects
    any registered codec, npz included)."""


class RemoteTieredSource(ShardDirSource):
    """A shard directory behind a simulated object store, read through a
    local-disk staging tier: RAM (LRU) → local disk (staged) → remote.

    ``remote_path`` is an ordinary ``save_dataset`` directory standing in
    for the object store.  Before a shard is decoded it is *staged* —
    its files materialize in a local staging directory — and every fetch
    is charged to a configurable cost model, ``latency_s + bytes /
    bandwidth`` (accounted in ``counters["remote_wait_s"]``, not slept:
    benches stay fast and deterministic).  The staging tier is itself a
    bounded LRU of ``max_staged`` shards, so the three-tier residency
    story is: at most ``max_cached`` decoded shards in RAM, at most
    ``max_staged`` shard copies on local disk, everything in the remote.

    Everything above the staging step — bounded LRU, background
    prefetcher (which now overlaps *remote fetches* with sampling),
    ``cache_info()``, :class:`~repro.data.store.OwnedShardLayout` splits
    (built over ``remote_path``; per-rank sources stage privately) — is
    inherited from :class:`ShardDirSource` unchanged, for any codec.

    Staged files obey the same residency contract as LRU entries: a shard
    evicted from the staging tier may disappear from local disk, so
    snapshots must not be held across further ``snapshot()`` calls (the
    documented :class:`SnapshotSource` rule).  Shards resident in RAM or
    queued for prefetch are never staging-evicted.
    """

    tier = "remote"

    def __init__(
        self,
        remote_path: str,
        *,
        staging_dir: str | None = None,
        max_staged: int = 4,
        latency_s: float = 0.01,
        bandwidth: float = 100e6,
        max_cached: int = 2,
        prefetch: int = 0,
        lazy: bool = True,
    ) -> None:
        if max_staged < 1:
            raise ValueError("max_staged must be >= 1")
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        self.remote_path = os.fspath(remote_path)
        manifest = read_manifest(self.remote_path)  # fail before making dirs
        self._owns_staging = staging_dir is None
        staging = (
            tempfile.mkdtemp(prefix="staged_shards_")
            if staging_dir is None else os.fspath(staging_dir)
        )
        try:
            os.makedirs(staging, exist_ok=True)
            # The staging dir is a valid (initially shardless) save_dataset
            # dir: same manifest, so super().__init__ resolves the codec
            # and geometry from it.
            write_manifest(staging, manifest)
            self.max_staged = int(max_staged)
            self.latency_s = float(latency_s)
            self.bandwidth = float(bandwidth)
            self._staged: OrderedDict[int, int] = OrderedDict()  # index -> bytes
            self._staging: dict[int, threading.Event] = {}  # in-flight fetches
            self._decoding: dict[int, int] = {}  # index -> active decode count
            super().__init__(
                staging, max_cached=max_cached, prefetch=prefetch, lazy=lazy
            )
        except BaseException:
            if self._owns_staging:
                shutil.rmtree(staging, ignore_errors=True)
            raise

    @property
    def layout_path(self) -> str:
        return self.remote_path

    def reopen(self, path: str | None = None) -> RemoteTieredSource:
        return RemoteTieredSource(
            self.remote_path if path is None else path,
            max_staged=self.max_staged, latency_s=self.latency_s,
            bandwidth=self.bandwidth, max_cached=self.max_cached,
            prefetch=self.prefetch_depth, lazy=self.lazy,
        )

    # ---- staging tier ------------------------------------------------------

    def _stage(self, i: int) -> None:
        """Ensure shard `i`'s files exist in the staging tier, fetching
        from the remote (and charging the cost model) when they don't.
        Concurrent decoders of the same shard fetch it once."""
        with self._lock:
            if i in self._staged:
                self._staged.move_to_end(i)
                self._stats.staged_hits += 1
                return
            pending = self._staging.get(i)
            if pending is None:
                pending = threading.Event()
                self._staging[i] = pending
                owner = True
            else:
                owner = False
        if not owner:
            pending.wait()
            self._stage(i)  # staged now (hit) — or retry as the owner
            return
        try:
            # Fetch outside the lock: remote copies overlap with decodes
            # and with other shards' fetches.
            self.codec.link_shard(self.remote_path, i, self.path, i)
            nbytes = self.codec.shard_disk_bytes(self.path, i)
            with self._lock:
                self._staged[i] = nbytes
                self._stats.remote_fetches += 1
                self._stats.remote_bytes += nbytes
                self._stats.remote_wait_s += self.latency_s + nbytes / self.bandwidth
                self._evict_staged()
        finally:
            with self._lock:
                self._staging.pop(i, None)
            pending.set()

    def _evict_staged(self) -> None:
        """Drop least-recent staged shards down to ``max_staged`` (lock
        held).  Shards resident in the RAM LRU, queued for prefetch, or
        mid-decode are skipped — their files are still being read."""
        while len(self._staged) > self.max_staged:
            victim = next(
                (k for k in self._staged
                 if k not in self._cache and k not in self._inflight
                 and k not in self._decoding),
                None,
            )
            if victim is None:
                return  # everything over-budget is pinned by residency
            del self._staged[victim]
            self._stats.staged_evictions += 1
            self.codec.remove_shard(self.path, victim)

    def _decode(self, i: int, materialize: bool = False) -> FlowField:
        """Stage shard `i` from the remote tier, then decode the staged
        copy (outside the lock, so fetches and decodes overlap).  The shard
        is pinned against staging eviction while the decode reads it, and a
        lazy field's deferred member reads re-stage on demand — so a staged
        file vanishing under a bounded tier is never an error, only another
        accounted fetch."""
        self.shard_path(i)  # validate the index before any fetch
        with self._lock:
            self._decoding[i] = self._decoding.get(i, 0) + 1
        try:
            self._stage(i)
            field = super()._decode(i, materialize)
        finally:
            with self._lock:
                depth = self._decoding[i] - 1
                if depth:
                    self._decoding[i] = depth
                else:
                    del self._decoding[i]
        members = getattr(field, "variables", None)
        if isinstance(members, LazyMembers):
            members.before_load(lambda: self._stage(i))
        return field

    def _shard_time(self, i: int) -> float:
        """Metadata-only read served straight from the remote directory —
        times never force a shard fetch into the staging tier."""
        return self.codec.shard_time(self.remote_path, i)

    def _tier_gauges(self) -> dict:
        """Staging-tier gauges for :meth:`cache_info` (lock held)."""
        return {
            "staged": len(self._staged),
            "max_staged": self.max_staged,
            "latency_s": self.latency_s,
            "bandwidth": self.bandwidth,
        }

    def close(self) -> None:
        """Stop the prefetcher, then remove an owned staging directory
        (a caller-supplied ``staging_dir`` is the caller's to clean)."""
        super().close()
        if self._owns_staging:
            shutil.rmtree(self.path, ignore_errors=True)


class SimulationSource(SnapshotSource):
    """In-situ source: snapshots are generated on demand, never materialized.

    ``factory`` is a zero-argument callable returning a *fresh* iterator of
    :class:`FlowField` snapshots (a deterministic simulation run).  Forward
    access advances the live iterator; only the last ``max_cached``
    generated snapshots are retained, and stepping *backwards* restarts the
    factory and replays — the standard in-situ trade of compute for memory.
    ``restarts`` counts those replays (the two-phase pipeline revisits
    selected snapshots in phase 2, so expect a couple).
    """

    def __init__(
        self,
        factory: Callable[[], Iterator[FlowField]],
        n_snapshots: int,
        *,
        label: str = "SIM",
        input_vars: list[str],
        output_vars: list[str],
        cluster_var: str,
        gravity: str = "none",
        description: str = "",
        target: np.ndarray | None = None,
        max_cached: int = 1,
    ) -> None:
        if n_snapshots < 1:
            raise ValueError("n_snapshots must be >= 1")
        if max_cached < 1:
            raise ValueError("max_cached must be >= 1")
        self.factory = factory
        self.label = label
        self.description = description
        self.input_vars = list(input_vars)
        self.output_vars = list(output_vars)
        self.cluster_var = cluster_var
        self.gravity = gravity
        self.target = target
        self.max_cached = int(max_cached)
        self._n = int(n_snapshots)
        self._it: Iterator[FlowField] | None = None
        self._pos = 0  # number of snapshots consumed from the live iterator
        self._cache: OrderedDict[int, FlowField] = OrderedDict()
        self._lock = threading.RLock()
        self._grid_shape: tuple[int, ...] | None = None
        self._snapshot_nbytes: int | None = None
        self._seen_times: dict[int, float] = {}
        self.restarts = 0
        self.generated = 0

    @property
    def n_snapshots(self) -> int:
        return self._n

    @property
    def grid_shape(self) -> tuple[int, ...]:
        with self._lock:  # RLock: snapshot(0) re-enters safely
            if self._grid_shape is None:
                self._grid_shape = self.snapshot(0).grid_shape
            return self._grid_shape

    def snapshot(self, i: int) -> FlowField:
        if not 0 <= i < self._n:
            raise IndexError(f"snapshot {i} out of range [0, {self._n})")
        with self._lock:
            if i in self._cache:
                self._cache.move_to_end(i)
                return self._cache[i]
            if self._it is None or i < self._pos:
                # Revisiting a discarded snapshot: replay the simulation.
                if self._it is not None:
                    self.restarts += 1
                self._it = iter(self.factory())
                self._pos = 0
                self._cache.clear()
            field = None
            while self._pos <= i:
                try:
                    field = next(self._it)
                except StopIteration:
                    raise RuntimeError(
                        f"simulation factory yielded only {self._pos} snapshots, "
                        f"declared n_snapshots={self._n}"
                    ) from None
                self._seen_times[self._pos] = field.time
                self.generated += 1
                # Cache every snapshot generated while advancing, not just
                # the requested one: interleaved consumers (multi-rank
                # streaming) revisit the intermediates, and with
                # max_cached >= n_snapshots this makes the whole stream
                # resident — zero replays, as the replay guards promise.
                # The LRU still bounds residency for smaller windows.
                while len(self._cache) >= self.max_cached:
                    self._cache.popitem(last=False)
                self._cache[self._pos] = field
                self._pos += 1
                if self._grid_shape is None:
                    self._grid_shape = field.grid_shape
                    self._snapshot_nbytes = field.nbytes()
            self._cache.move_to_end(i)
            return self._cache[i]

    @property
    def times(self) -> np.ndarray:
        """Snapshot times; generating through the stream once if needed."""
        with self._lock:  # RLock: snapshot() re-enters safely
            if len(self._seen_times) < self._n:
                self.snapshot(self._n - 1)  # advance to the end, recording times
            return np.array([self._seen_times[i] for i in range(self._n)])

    def nbytes(self) -> int:
        """Would-be decoded footprint, from the first generated snapshot's
        size (cached, so asking after a completed pass never replays)."""
        with self._lock:  # RLock: snapshot(0) re-enters safely
            if self._snapshot_nbytes is None:
                self.snapshot(0)
            return self._snapshot_nbytes * self._n


class PartitionedSource(SnapshotSource):
    """A contiguous snapshot-range view ``[lo, hi)`` of another source.

    The unit of work one SPMD rank streams in the multi-producer subsample:
    rank `r` sees its span as snapshots ``0 .. hi-lo`` of an ordinary
    source, while coordinates, times, and values pass through unchanged from
    the base.  Views share the base source (and therefore its cache /
    prefetcher), so K ranks over one :class:`ShardDirSource` still respect
    a single global residency bound.
    """

    def __init__(self, base: SnapshotSource, lo: int, hi: int) -> None:
        if not isinstance(base, SnapshotSource):
            raise TypeError(f"expected SnapshotSource, got {type(base).__name__}")
        if not (0 <= lo <= hi <= base.n_snapshots):
            raise ValueError(
                f"span [{lo}, {hi}) invalid for a {base.n_snapshots}-snapshot source"
            )
        self.base = base
        self.lo = int(lo)
        self.hi = int(hi)
        self.label = f"{base.label}[{lo}:{hi}]"
        self.description = base.description
        self.input_vars = list(base.input_vars)
        self.output_vars = list(base.output_vars)
        self.cluster_var = base.cluster_var
        self.gravity = base.gravity
        self.target = base.target[lo:hi] if base.target is not None else None

    @classmethod
    def split(cls, source: SnapshotSource, nranks: int) -> list[PartitionedSource]:
        """One contiguous view per rank (sizes differ by at most one
        snapshot; trailing views are empty when ``nranks > n_snapshots``)."""
        from repro.parallel.partition import stream_partitions

        return [
            cls(source, part.lo, part.hi)
            for part in stream_partitions(source.n_snapshots, nranks)
        ]

    @property
    def n_snapshots(self) -> int:
        return self.hi - self.lo

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.base.grid_shape

    def snapshot(self, i: int) -> FlowField:
        if not 0 <= i < self.n_snapshots:
            raise IndexError(f"snapshot {i} out of range [0, {self.n_snapshots})")
        return self.base.snapshot(self.lo + i)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self.base.times)[self.lo : self.hi]

    def prefetch(self, indices: Iterable[int]) -> None:
        self.base.prefetch(self.lo + int(i) for i in indices)

    def nbytes(self) -> int:
        if self.n_snapshots == 0:
            return 0
        return self.snapshot(0).nbytes() * self.n_snapshots

    def value_range_hint(self, var: str) -> tuple[float, float] | None:
        # The base's global range is valid (if conservative) for any span —
        # and sharing it keeps every rank's histogram edges identical.
        return self.base.value_range_hint(var)


def aggregate_cache_info(infos: Iterable[dict | None]) -> dict:
    """Sum per-rank :meth:`ShardDirSource.cache_info` event counters.

    The owned-shard benchmarks account total I/O across ranks with this.
    Every :class:`CacheCounters` field is a true event counter — additive
    across disjoint caches — so all of them are summed, whatever the
    source's codec or tier; gauges and configuration (``resident``,
    ``max_cached``, ``prefetch_depth``, tier knobs) are deliberately NOT
    aggregated: their sums would masquerade as fleet totals while meaning
    nothing.  ``decodes`` is the derived total shard-decode count
    (``misses + prefetched`` — each a real decode), ``ranks`` counts the
    caches aggregated, and ``None`` entries (ranks without a shard-backed
    source) are skipped.  Accepts schema-2 dicts and legacy flat dicts.
    """
    names = [f.name for f in dataclasses.fields(CacheCounters)]
    total: dict = {"ranks": 0, **{k: 0 for k in names}}
    for info in infos:
        if info is None:
            continue
        total["ranks"] += 1
        # dict.__contains__ / dict.get keep legacy flat dicts working
        # without tripping the CacheInfo deprecation shim.
        counters = info["counters"] if "counters" in info else info
        for key in names:
            total[key] += dict.get(counters, key, 0)
    total["decodes"] = total["misses"] + total["prefetched"]
    return total


def _parse_source_spec(spec: str) -> tuple[str, str, dict]:
    """Split an ``open_source`` spec string into (scheme, path, options).

    Grammar (see :func:`open_source`): ``PATH``, ``dir://PATH``,
    ``CODEC+dir://PATH``, or ``remote://PATH?knob=value&...``.
    """
    if "://" not in spec:
        return "dir", spec, {}
    scheme, rest = spec.split("://", 1)
    path, _, query = rest.partition("?")
    options = dict(urllib.parse.parse_qsl(query, keep_blank_values=True))
    if scheme == "dir" or scheme.endswith("+dir"):
        codec = scheme[: -len("+dir")] if scheme.endswith("+dir") else None
        if options:
            raise ValueError(
                f"dir:// specs take no ?options (got {sorted(options)!r})"
            )
        return "dir", path, {"codec": codec} if codec else {}
    if scheme == "remote":
        return "remote", path, options
    raise ValueError(
        f"unknown source scheme {scheme!r} in {spec!r}; expected PATH, "
        "dir://PATH, CODEC+dir://PATH, or remote://PATH"
    )


_REMOTE_KNOBS = {
    "latency_s": float,
    "bandwidth": float,
    "max_staged": int,
    "staging_dir": str,
}


def open_source(
    spec,
    *,
    max_cached: int = 2,
    prefetch: int = 0,
    lazy: bool = True,
) -> SnapshotSource:
    """Resolve anything the pipeline ingests to a :class:`SnapshotSource`.

    One factory behind :meth:`Experiment.with_source` and the CLI
    ``--source`` flag.  ``spec`` may be:

    - a :class:`SnapshotSource` — returned as-is (keyword knobs ignored;
      the source keeps its own configuration);
    - a :class:`TurbulenceDataset` — wrapped in :class:`InMemorySource`;
    - a plain directory path (``str`` / ``os.PathLike``) — opened as a
      :class:`ShardDirSource`, codec auto-detected from the manifest;
    - ``dir://PATH`` — same, spelled explicitly;
    - ``CODEC+dir://PATH`` (e.g. ``raw+dir:///tmp/ds``) — same, but
      refuses to open a directory whose manifest names a different codec
      (a guard for scripts that depend on a layout's I/O behaviour);
    - ``remote://PATH?latency_s=0.01&bandwidth=1e8&max_staged=4`` —
      :class:`RemoteTieredSource` over the shard directory at ``PATH``,
      query knobs optional (``latency_s``, ``bandwidth``, ``max_staged``,
      ``staging_dir``).

    ``max_cached`` / ``prefetch`` / ``lazy`` configure whichever
    shard-backed source the spec resolves to.
    """
    if isinstance(spec, SnapshotSource):
        return spec
    if isinstance(spec, TurbulenceDataset):
        return InMemorySource(spec)
    if not isinstance(spec, (str, os.PathLike)):
        raise TypeError(
            "expected a SnapshotSource, TurbulenceDataset, path, or source "
            f"spec string, got {type(spec).__name__}"
        )
    scheme, path, options = _parse_source_spec(os.fspath(spec))
    if scheme == "remote":
        try:
            knobs = {
                key: _REMOTE_KNOBS[key](value) for key, value in options.items()
            }
        except KeyError as exc:
            raise ValueError(
                f"unknown remote:// option {exc.args[0]!r}; "
                f"expected one of {sorted(_REMOTE_KNOBS)}"
            ) from None
        return RemoteTieredSource(
            path, max_cached=max_cached, prefetch=prefetch, lazy=lazy, **knobs
        )
    source = ShardDirSource(path, max_cached=max_cached, prefetch=prefetch, lazy=lazy)
    want = options.get("codec")
    if want is not None and source.codec.name != want:
        source.close()
        raise ValueError(
            f"{path!r} holds {source.codec.name!r} shards, not {want!r} "
            f"(spec {os.fspath(spec)!r}); drop the codec prefix to auto-detect"
        )
    return source


def as_source(data) -> SnapshotSource:
    """Coerce the accepted ingestion kinds to a :class:`SnapshotSource`.

    Thin wrapper over :func:`open_source` kept for back-compat; new code
    should call ``open_source``, which also understands spec strings.
    """
    return open_source(data)
