"""dtype-keyed dataset loaders, mirroring the paper's ``--dtype`` flags.

The paper ships "a custom dataloader ... to read the dataset, under the
'dataloaders' directory" for each dtype (``openfoam``, ``sst-binary``,
``gests``, ``interpolated``).  Here each dtype maps to a catalog label; when
``path`` points at a directory previously written by :func:`save_dataset`
the snapshots are read back from disk (exercising the I/O path), otherwise
the dataset is generated on the fly.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.data.catalog import build_dataset
from repro.data.dataset import TurbulenceDataset
from repro.data.store import load_field, save_field

__all__ = ["DTYPE_TO_LABEL", "load_dataset", "save_dataset"]

#: --dtype flag -> default catalog label
DTYPE_TO_LABEL = {
    "openfoam": "OF2D",
    "interpolated": "OF2D",
    "tc2d": "TC2D",
    "sst-binary": "SST-P1F4",
    "sst-binary-f100": "SST-P1F100",
    "gests": "GESTS-2048",
    "gests-8192": "GESTS-8192",
}

_MANIFEST = "manifest.json"


def save_dataset(dataset: TurbulenceDataset, path: str) -> None:
    """Write a dataset as one npz per snapshot plus a manifest."""
    os.makedirs(path, exist_ok=True)
    for i, snap in enumerate(dataset.snapshots):
        save_field(os.path.join(path, f"snapshot_{i:05d}.npz"), snap)
    manifest = {
        "label": dataset.label,
        "description": dataset.description,
        "input_vars": dataset.input_vars,
        "output_vars": dataset.output_vars,
        "cluster_var": dataset.cluster_var,
        "gravity": dataset.gravity,
        "n_snapshots": dataset.n_snapshots,
        "target": dataset.target.tolist() if dataset.target is not None else None,
    }
    with open(os.path.join(path, _MANIFEST), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)


def _load_saved(path: str) -> TurbulenceDataset:
    with open(os.path.join(path, _MANIFEST), "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    snaps = [
        load_field(os.path.join(path, f"snapshot_{i:05d}.npz"))
        for i in range(manifest["n_snapshots"])
    ]
    target = manifest.get("target")
    return TurbulenceDataset(
        label=manifest["label"],
        snapshots=snaps,
        input_vars=manifest["input_vars"],
        output_vars=manifest["output_vars"],
        cluster_var=manifest["cluster_var"],
        gravity=manifest.get("gravity", "none"),
        description=manifest.get("description", ""),
        target=np.asarray(target) if target is not None else None,
    )


def load_dataset(
    dtype: str,
    path: str | None = None,
    scale: float = 1.0,
    rng=None,
    **overrides,
) -> TurbulenceDataset:
    """Load (from `path`) or generate (from the catalog) a dataset by dtype."""
    if path is not None and os.path.isfile(os.path.join(path, _MANIFEST)):
        return _load_saved(path)
    try:
        label = DTYPE_TO_LABEL[dtype]
    except KeyError:
        raise KeyError(f"unknown dtype {dtype!r}; available: {sorted(DTYPE_TO_LABEL)}") from None
    return build_dataset(label, scale=scale, rng=rng, **overrides)
