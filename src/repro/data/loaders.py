"""dtype-keyed dataset loaders, mirroring the paper's ``--dtype`` flags.

The paper ships "a custom dataloader ... to read the dataset, under the
'dataloaders' directory" for each dtype (``openfoam``, ``sst-binary``,
``gests``, ``interpolated``).  Here each dtype maps to a catalog label; when
``path`` points at a directory previously written by :func:`save_dataset`
the snapshots are read back from disk (exercising the I/O path), otherwise
the dataset is generated on the fly.
"""

from __future__ import annotations

import os

import numpy as np

from repro.data.catalog import CATALOG, build_dataset, snapshot_stream_factory
from repro.data.codecs import get_codec
from repro.data.dataset import TurbulenceDataset
from repro.data.sources import SimulationSource
from repro.data.store import MANIFEST, read_manifest, write_manifest

__all__ = ["DTYPE_TO_LABEL", "load_dataset", "save_dataset", "stream_dataset"]

#: --dtype flag -> default catalog label
DTYPE_TO_LABEL = {
    "openfoam": "OF2D",
    "interpolated": "OF2D",
    "tc2d": "TC2D",
    "sst-binary": "SST-P1F4",
    "sst-binary-f100": "SST-P1F100",
    "gests": "GESTS-2048",
    "gests-8192": "GESTS-8192",
}

_MANIFEST = MANIFEST


def save_dataset(dataset: TurbulenceDataset, path: str, codec: str = "npz") -> None:
    """Write a dataset as one shard per snapshot plus a manifest.

    ``codec`` picks the shard layout from the
    :mod:`~repro.data.codecs` registry (``npz`` keeps the historical
    compressed-npz files byte-for-byte; ``raw`` and ``chunked`` trade
    compression for zero-copy / per-chunk reads).  The chosen codec is
    stamped into the manifest, so readers auto-detect it.  The manifest is
    written *last* and atomically (tmp + rename): it is the directory's
    commit record — a writer killed mid-save leaves no ``manifest.json``,
    so :class:`~repro.data.sources.ShardDirSource` refuses the half-built
    directory instead of silently serving a truncated dataset.
    """
    codec_obj = get_codec(codec)
    os.makedirs(path, exist_ok=True)
    for i, snap in enumerate(dataset.snapshots):
        codec_obj.encode(path, i, snap)
    manifest = {
        "label": dataset.label,
        "description": dataset.description,
        "input_vars": dataset.input_vars,
        "output_vars": dataset.output_vars,
        "cluster_var": dataset.cluster_var,
        "gravity": dataset.gravity,
        "n_snapshots": dataset.n_snapshots,
        "target": dataset.target.tolist() if dataset.target is not None else None,
        "codec": codec_obj.name,
    }
    write_manifest(path, manifest)


def _load_saved(path: str) -> TurbulenceDataset:
    manifest = read_manifest(path)
    codec = get_codec(manifest.get("codec", "npz"))
    snaps = [codec.decode(path, i) for i in range(manifest["n_snapshots"])]
    target = manifest.get("target")
    return TurbulenceDataset(
        label=manifest["label"],
        snapshots=snaps,
        input_vars=manifest["input_vars"],
        output_vars=manifest["output_vars"],
        cluster_var=manifest["cluster_var"],
        gravity=manifest.get("gravity", "none"),
        description=manifest.get("description", ""),
        target=np.asarray(target) if target is not None else None,
    )


def load_dataset(
    dtype: str,
    path: str | None = None,
    scale: float = 1.0,
    rng=None,
    **overrides,
) -> TurbulenceDataset:
    """Load (from `path`) or generate (from the catalog) a dataset by dtype."""
    if path is not None and os.path.isfile(os.path.join(path, _MANIFEST)):
        return _load_saved(path)
    try:
        label = DTYPE_TO_LABEL[dtype]
    except KeyError:
        raise KeyError(f"unknown dtype {dtype!r}; available: {sorted(DTYPE_TO_LABEL)}") from None
    return build_dataset(label, scale=scale, rng=rng, **overrides)


def stream_dataset(
    dtype: str,
    scale: float = 1.0,
    seed: int | None = 0,
    n_snapshots: int | None = None,
    max_cached: int = 1,
    **overrides,
) -> SimulationSource:
    """An in-situ :class:`SimulationSource` for a dtype — nothing materialized.

    The returned source generates snapshots on demand from the catalog's
    deterministic simulation (seeded by `seed`, so replays after eviction
    reproduce the same fields) and keeps at most ``max_cached`` of them.
    Per-snapshot global targets (OF2D's drag series) are a whole-run
    property and stay None here; drag workflows need the batch loader.
    """
    try:
        label = DTYPE_TO_LABEL[dtype]
    except KeyError:
        raise KeyError(f"unknown dtype {dtype!r}; available: {sorted(DTYPE_TO_LABEL)}") from None
    entry = CATALOG[label]
    n, factory = snapshot_stream_factory(
        label, scale=scale, seed=seed, n_snapshots=n_snapshots, **overrides
    )
    return SimulationSource(
        factory,
        n,
        label=label,
        input_vars=list(entry.input_vars),
        output_vars=list(entry.point_output_vars),
        cluster_var=entry.kcv,
        gravity=entry.gravity,
        description=entry.description,
        max_cached=max_cached,
    )
