"""Hypercube extraction: tiling snapshots into the paper's phase-1 units.

The paper's workflow never trains on the raw grid; it tiles each snapshot
into hypercubes (32x32x32 for SST/GESTS) and phase 1 selects which cubes to
keep.  "Full" baselines keep entire cubes ("fully sampled hypercubes of size
32^3 ... the densest feasible baseline"); phase 2 subsamples points inside
each kept cube.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.points import PointSet
from repro.sim.fields import FlowField

__all__ = ["Hypercube", "hypercube_origins", "extract_hypercube", "extract_all_hypercubes"]


@dataclass
class Hypercube:
    """A structured sub-block of one snapshot.

    ``variables`` hold the block's data (shape = ``shape``); ``origin`` is the
    block's corner in the source grid; ``time`` the snapshot time.
    """

    origin: tuple[int, ...]
    shape: tuple[int, ...]
    variables: dict[str, np.ndarray]
    time: float = 0.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.origin) != len(self.shape):
            raise ValueError("origin/shape rank mismatch")
        for name, v in self.variables.items():
            if v.shape != self.shape:
                raise ValueError(f"variable {name!r} shape {v.shape} != cube shape {self.shape}")

    @property
    def n_points(self) -> int:
        return int(np.prod(self.shape))

    def coords(self) -> np.ndarray:
        """(n_points, d) global grid coordinates of every cell in the cube."""
        axes = [np.arange(o, o + s) for o, s in zip(self.origin, self.shape)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.column_stack([m.reshape(-1) for m in mesh]).astype(np.float64)

    def point_table(self, names: list[str]) -> np.ndarray:
        """(n_points, len(names)) feature table in C order."""
        missing = [n for n in names if n not in self.variables]
        if missing:
            raise KeyError(f"missing variables {missing}; have {sorted(self.variables)}")
        return np.column_stack([self.variables[n].reshape(-1) for n in names])

    def to_pointset(self, names: list[str] | None = None) -> PointSet:
        """Flatten the whole cube to a PointSet (the 'full' sampling path)."""
        names = names if names is not None else sorted(self.variables)
        return PointSet(
            coords=self.coords(),
            values={n: self.variables[n].reshape(-1) for n in names},
            time=self.time,
            meta=dict(self.meta),
        )

    def select_points(self, idx: np.ndarray, names: list[str] | None = None) -> PointSet:
        """PointSet of a subset of cells, by flat (C-order) index."""
        names = names if names is not None else sorted(self.variables)
        idx = np.asarray(idx)
        return PointSet(
            coords=self.coords()[idx],
            values={n: self.variables[n].reshape(-1)[idx] for n in names},
            time=self.time,
            meta=dict(self.meta),
        )


def hypercube_origins(
    grid_shape: tuple[int, ...], cube_shape: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """Origins of the non-overlapping tiling of `grid_shape` by `cube_shape`.

    Axes where the grid is not an exact multiple are tiled over the largest
    fitting prefix (trailing remainder cells are dropped, matching the
    paper's brick decomposition).
    """
    if len(grid_shape) != len(cube_shape):
        raise ValueError("grid/cube rank mismatch")
    counts = []
    for g, c in zip(grid_shape, cube_shape):
        if c < 1 or c > g:
            raise ValueError(f"cube edge {c} invalid for grid edge {g}")
        counts.append(g // c)
    grids = np.meshgrid(*[np.arange(n) for n in counts], indexing="ij")
    origins = np.column_stack([g.reshape(-1) for g in grids])
    return [tuple(int(o * c) for o, c in zip(row, cube_shape)) for row in origins]


def extract_hypercube(
    snapshot: FlowField,
    origin: tuple[int, ...],
    cube_shape: tuple[int, ...],
    variables: list[str],
) -> Hypercube:
    """Cut one hypercube out of a snapshot, materializing derived variables."""
    grid = snapshot.grid_shape
    if len(origin) != len(grid) or len(cube_shape) != len(grid):
        raise ValueError("origin/cube rank must match the snapshot grid")
    for o, c, g in zip(origin, cube_shape, grid):
        if o < 0 or o + c > g:
            raise ValueError(f"cube [{o}, {o + c}) exceeds grid edge {g}")
    slicer = tuple(slice(o, o + c) for o, c in zip(origin, cube_shape))
    data = {name: np.ascontiguousarray(snapshot.get(name)[slicer]) for name in variables}
    return Hypercube(
        origin=tuple(origin),
        shape=tuple(cube_shape),
        variables=data,
        time=snapshot.time,
        meta={"label": snapshot.meta.get("label", "")},
    )


def extract_all_hypercubes(
    snapshot: FlowField, cube_shape: tuple[int, ...], variables: list[str]
) -> list[Hypercube]:
    """Tile a snapshot into all non-overlapping hypercubes."""
    return [
        extract_hypercube(snapshot, origin, cube_shape, variables)
        for origin in hypercube_origins(snapshot.grid_shape, cube_shape)
    ]
