"""Dataset layer: Table 1 catalog, hypercube extraction, point sets, storage.

Maps the paper's data handling onto the synthetic substrates:

* :mod:`repro.data.points` — :class:`PointSet`, the unstructured sample table
  produced by phase-2 sampling (what the LSTM / MLP-Transformer consume),
* :mod:`repro.data.hypercubes` — tiling snapshots into 32³-style hypercubes
  (the paper's phase-1 unit; "full" baselines are fully dense hypercubes),
* :mod:`repro.data.dataset` — :class:`TurbulenceDataset`, snapshots plus the
  variable roles from Table 1 (input/output/K-means cluster variable),
* :mod:`repro.data.catalog` — the six datasets of Table 1 at configurable
  (scaled-down) resolution,
* :mod:`repro.data.loaders` — dtype-keyed loaders mirroring the paper's
  ``--dtype openfoam|sst-binary|gests`` flags, with shard persistence,
* :mod:`repro.data.codecs` — the shard-codec registry (``npz`` / ``raw`` /
  ``chunked`` on-disk layouts, self-described by the manifest),
* :mod:`repro.data.sources` — the stream-first :class:`SnapshotSource`
  ingestion protocol (in-memory / out-of-core sharded / remote-tiered /
  in-situ simulated), the single abstraction the sampling pipeline
  consumes, behind the :func:`open_source` factory,
* :mod:`repro.data.store` — saving feature-rich subsampled datasets and the
  storage-reduction accounting the paper advertises.
"""

from repro.data.points import PointSet
from repro.data.hypercubes import (
    Hypercube,
    hypercube_origins,
    extract_hypercube,
    extract_all_hypercubes,
)
from repro.data.dataset import TurbulenceDataset
from repro.data.catalog import CATALOG, build_dataset, dataset_summary
from repro.data.codecs import ShardCodec, codec_names, get_codec, register_codec
from repro.data.sources import (
    SnapshotSource,
    InMemorySource,
    ShardDirSource,
    ShardedNpzSource,
    RemoteTieredSource,
    SimulationSource,
    PartitionedSource,
    CacheCounters,
    CacheInfo,
    aggregate_cache_info,
    as_source,
    open_source,
)
from repro.data.loaders import load_dataset, save_dataset, stream_dataset
from repro.data.store import OwnedShardLayout, SubsampleStore

__all__ = [
    "PointSet",
    "Hypercube",
    "hypercube_origins",
    "extract_hypercube",
    "extract_all_hypercubes",
    "TurbulenceDataset",
    "CATALOG",
    "build_dataset",
    "dataset_summary",
    "ShardCodec",
    "codec_names",
    "get_codec",
    "register_codec",
    "SnapshotSource",
    "InMemorySource",
    "ShardDirSource",
    "ShardedNpzSource",
    "RemoteTieredSource",
    "SimulationSource",
    "PartitionedSource",
    "CacheCounters",
    "CacheInfo",
    "aggregate_cache_info",
    "as_source",
    "open_source",
    "load_dataset",
    "save_dataset",
    "stream_dataset",
    "OwnedShardLayout",
    "SubsampleStore",
]
