"""The six datasets of Table 1, regenerated at configurable resolution.

Paper-scale grids (up to 8192^3, 414 TB) are infeasible offline; each entry
records the paper's grid/size for reference and builds a scaled-down but
statistically equivalent instance.  ``scale`` multiplies the default linear
resolution (rounded to even sizes for the spectral solver).

>>> ds = build_dataset("SST-P1F4", scale=1.0, rng=0)
>>> ds.cluster_var
'pv'
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.data.dataset import TurbulenceDataset
from repro.sim.combustion import generate_combustion
from repro.sim.cylinder import CylinderConfig, generate_cylinder
from repro.sim.isotropic import generate_isotropic
from repro.sim.stratified import generate_stratified, stream_stratified
from repro.utils.rng import resolve_rng

__all__ = [
    "CATALOG",
    "CatalogEntry",
    "build_dataset",
    "dataset_summary",
    "snapshot_stream_factory",
]


def _even(n: float, minimum: int = 8) -> int:
    """Round to the nearest even integer >= minimum (rfft-friendly)."""
    return max(minimum, int(round(n / 2.0)) * 2)


@dataclass(frozen=True)
class CatalogEntry:
    """One row of Table 1 plus the builder that regenerates it.

    ``output_vars`` is Table 1's output column; for OF2D that is the drag
    series ``D`` — a per-*snapshot* target, not a field variable — so
    ``field_output_vars`` records the per-point output variables the built
    dataset actually carries (defaults to ``output_vars``).
    ``default_snapshots`` / ``gravity`` mirror the builder's defaults so
    streaming consumers need no parallel bookkeeping.
    """

    label: str
    description: str
    paper_space: str
    paper_time: int
    paper_size: str
    kcv: str
    input_vars: tuple[str, ...]
    output_vars: tuple[str, ...]
    builder: Callable[..., TurbulenceDataset]
    default_snapshots: int = 1
    gravity: str = "none"
    field_output_vars: tuple[str, ...] | None = None

    def build(self, scale: float = 1.0, rng=None, **overrides) -> TurbulenceDataset:
        return self.builder(scale=scale, rng=resolve_rng(rng), **overrides)

    @property
    def point_output_vars(self) -> tuple[str, ...]:
        """Per-point output variables of the built dataset's snapshots."""
        return self.output_vars if self.field_output_vars is None else self.field_output_vars


def _build_tc2d(scale: float = 1.0, rng=None, **_) -> TurbulenceDataset:
    shape = (_even(200 * scale), _even(200 * scale))
    snap = generate_combustion(shape=shape, rng=rng)
    return TurbulenceDataset(
        label="TC2D",
        snapshots=[snap],
        input_vars=["c", "c_var"],
        output_vars=[],
        cluster_var="c",
        description="2D Turbulent Combustion",
        paper_row={"space": "400k", "time": 1, "size": "31MB"},
    )


def _build_of2d(scale: float = 1.0, rng=None, n_snapshots: int = 100, **_) -> TurbulenceDataset:
    cfg = CylinderConfig(nx=_even(120 * scale), ny=_even(90 * scale))
    snaps, drag = generate_cylinder(cfg, n_snapshots=n_snapshots, rng=rng)
    return TurbulenceDataset(
        label="OF2D",
        snapshots=snaps,
        input_vars=["u", "v"],
        output_vars=[],
        cluster_var="p",
        target=drag,
        description="2D Laminar Flow Over Cylinder",
        paper_row={"space": "10800", "time": 100, "size": "300MB"},
    )


def _sst_sim_params(label: str, scale: float) -> tuple[tuple[int, int, int], dict]:
    """Grid + solver kwargs for the SST entries — the single source of truth
    shared by the batch builders and the in-situ stream factory, so the two
    ingestion paths cannot diverge."""
    if label == "SST-P1F4":
        shape = (_even(32 * scale), _even(32 * scale), _even(16 * scale))
        return shape, dict(gravity="z", forced=False)
    shape = (_even(32 * scale), _even(8 * scale), _even(32 * scale))
    return shape, dict(gravity="y", forced=True, n_buoyancy=3.0)


def _build_sst_p1f4(scale: float = 1.0, rng=None, n_snapshots: int = 8, **_) -> TurbulenceDataset:
    shape, kwargs = _sst_sim_params("SST-P1F4", scale)
    snaps = generate_stratified(shape=shape, n_snapshots=n_snapshots, rng=rng, **kwargs)
    return TurbulenceDataset(
        label="SST-P1F4",
        snapshots=snaps,
        input_vars=["u", "v", "w"],
        output_vars=["p"],
        cluster_var="pv",
        gravity="z",
        description="3D T-G[i] time evolving Pr=1",
        paper_row={"space": "512x512x256", "time": 125, "size": "376GB"},
    )


def _build_sst_p1f100(scale: float = 1.0, rng=None, n_snapshots: int = 4, **_) -> TurbulenceDataset:
    shape, kwargs = _sst_sim_params("SST-P1F100", scale)
    snaps = generate_stratified(shape=shape, n_snapshots=n_snapshots, rng=rng, **kwargs)
    return TurbulenceDataset(
        label="SST-P1F100",
        snapshots=snaps,
        input_vars=["u", "v", "w", "r"],
        output_vars=["ee"],
        cluster_var="rhoy",
        gravity="y",
        description="3D Forced stratified turbulence",
        paper_row={"space": "4096x1024x4096", "time": 10, "size": "5TB"},
    )


def _build_gests(label: str, base: int):
    def _build(scale: float = 1.0, rng=None, spinup_steps: int = 30, **_) -> TurbulenceDataset:
        n = _even(base * scale)
        snap = generate_isotropic(shape=(n, n, n), spinup_steps=spinup_steps, rng=rng)
        return TurbulenceDataset(
            label=label,
            snapshots=[snap],
            input_vars=["u", "v", "w", "e"],
            output_vars=["p"],
            cluster_var="enstrophy",
            description="3D Forced isotropic turbulence",
            paper_row={
                "space": f"{'2048' if base == 32 else '8192'}^3",
                "time": 1,
                "size": "188GB" if base == 32 else "12TB",
            },
        )

    return _build


CATALOG: dict[str, CatalogEntry] = {
    "TC2D": CatalogEntry(
        "TC2D", "2D Turbulent Combustion", "400k", 1, "31MB",
        "c", ("c", "c_var"), (), _build_tc2d,
    ),
    "OF2D": CatalogEntry(
        "OF2D", "2D Laminar Flow Over Cylinder", "10800", 100, "300MB",
        "p", ("u", "v"), ("D",), _build_of2d,
        default_snapshots=100, field_output_vars=(),  # D is the drag target
    ),
    "SST-P1F4": CatalogEntry(
        "SST-P1F4", "3D T-G[i] time evolving Pr=1", "512x512x256", 125, "376GB",
        "pv", ("u", "v", "w"), ("p",), _build_sst_p1f4,
        default_snapshots=8, gravity="z",
    ),
    "SST-P1F100": CatalogEntry(
        "SST-P1F100", "3D Forced stratified turbulence", "4096x1024x4096", 10, "5TB",
        "rhoy", ("u", "v", "w", "r"), ("ee",), _build_sst_p1f100,
        default_snapshots=4, gravity="y",
    ),
    "GESTS-2048": CatalogEntry(
        "GESTS-2048", "3D Forced isotropic turbulence", "2048x2048x2048", 1, "188GB",
        "enstrophy", ("u", "v", "w", "e"), ("p",), _build_gests("GESTS-2048", 32),
    ),
    "GESTS-8192": CatalogEntry(
        "GESTS-8192", "3D Forced isotropic turbulence", "8192x8192x8192", 1, "12TB",
        "enstrophy", ("u", "v", "w", "e"), ("p",), _build_gests("GESTS-8192", 48),
    ),
}


def snapshot_stream_factory(
    label: str,
    scale: float = 1.0,
    seed: int | None = 0,
    n_snapshots: int | None = None,
    **overrides,
):
    """A replayable per-snapshot producer for one catalog entry.

    Returns ``(n_snapshots, factory)`` where ``factory()`` yields the
    entry's snapshots one at a time from a fresh deterministic simulation
    run.  The SST entries step the pseudo-spectral solver and hand over
    each snapshot as it is computed (true in-situ), sharing their geometry
    with the batch builders via :func:`_sst_sim_params`; entries whose
    generator is single-shot (TC2D, GESTS) or globally coupled (OF2D's
    drag series) generate inside the factory and iterate, so the caller's
    residency policy still applies downstream.

    ``seed`` must be an int or None (not a live Generator): replaying the
    stream after eviction re-seeds from it to reproduce identical fields.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError("seed must be an int or None; a live Generator cannot be replayed")
    try:
        entry = CATALOG[label]
    except KeyError:
        raise KeyError(f"unknown dataset {label!r}; available: {sorted(CATALOG)}") from None
    n = n_snapshots if n_snapshots is not None else entry.default_snapshots

    if label in ("SST-P1F4", "SST-P1F100"):
        # Solver parameters follow the catalog configuration exactly — the
        # batch builders ignore solver overrides, so honouring them here
        # would silently break the batch/stream field equivalence.
        shape, kwargs = _sst_sim_params(label, scale)

        def factory():
            return stream_stratified(
                shape=shape, n_snapshots=n, rng=resolve_rng(seed), **kwargs
            )

    else:
        def factory():
            ds = build_dataset(label, scale=scale, rng=resolve_rng(seed),
                               n_snapshots=n, **overrides)
            return iter(ds.snapshots)

    return n, factory


def build_dataset(label: str, scale: float = 1.0, rng=None, **overrides) -> TurbulenceDataset:
    """Build a catalog dataset at the given resolution scale."""
    try:
        entry = CATALOG[label]
    except KeyError:
        raise KeyError(f"unknown dataset {label!r}; available: {sorted(CATALOG)}") from None
    return entry.build(scale=scale, rng=rng, **overrides)


def dataset_summary(datasets: list[TurbulenceDataset]) -> list[dict]:
    """Table 1-style summary rows (our instances + the paper's originals)."""
    rows = []
    for ds in datasets:
        row = ds.summary_row()
        entry = CATALOG.get(ds.label)
        if entry is not None:
            row["paper_space"] = entry.paper_space
            row["paper_time"] = entry.paper_time
            row["paper_size"] = entry.paper_size
        rows.append(row)
    return rows
