"""Shard codecs: pluggable on-disk formats behind :class:`ShardDirSource`.

A shard directory written by :func:`repro.data.loaders.save_dataset` holds
one shard per snapshot plus a ``manifest.json``.  How a shard is laid out
on disk is the codec's business; everything above it — the bounded LRU,
the background prefetcher, :class:`~repro.data.store.OwnedShardLayout`
ownership splits, the remote staging tier — is codec-agnostic.  The
registry mirrors the Sampler/CubeSelector/StreamSampler registries: codecs
register by name, ``save_dataset(codec=...)`` selects one at write time
and stamps it into the manifest (``"codec"``), and readers auto-detect it
from there (manifests without the key are ``npz``, the historical format).

Three codecs ship:

* ``npz`` — one compressed ``snapshot_XXXXX.npz`` per snapshot (the
  original format, byte-identical to the pre-registry files); members are
  individually compressed, so lazy decode of one variable skips the
  others' *decompression* but still opens the one zip file.
* ``raw`` — one ``snapshot_XXXXX.raw/`` directory per snapshot with an
  uncompressed ``.npy`` per variable: arrays are memory-mapped on decode
  (zero-copy — no decompression at all), and lazy decode of one variable
  never opens the others' files.
* ``chunked`` — one ``snapshot_XXXXX.chunked/`` directory per snapshot
  with each variable split into several ``.npy`` chunk files: lazy decode
  of one variable reads only that variable's chunks, so untouched
  variables skip the I/O itself, not just the decompression.

Every codec round-trips arrays bit-exactly (``.npy`` is a lossless
container), which the codec-golden tests pin per (seed, nranks).
"""

from __future__ import annotations

import abc
import json
import os
import shutil
from typing import ClassVar

import numpy as np

from repro.data.store import (
    LazyField,
    LazyMembers,
    load_field,
    load_field_lazy,
    save_field,
)
from repro.sim.fields import FlowField

__all__ = [
    "ShardCodec",
    "NpzCodec",
    "RawCodec",
    "ChunkedCodec",
    "CODECS",
    "register_codec",
    "get_codec",
    "codec_names",
]

#: per-shard metadata file inside directory-shaped shards (raw/chunked)
_SHARD_META = "field.json"


def _link_or_copy(src: str, dst: str) -> None:
    """Hardlink `src` to `dst`, copying when the filesystem refuses links
    (cross-device layouts) — the ownership split's O(1)-disk primitive."""
    try:
        os.link(src, dst)
    except OSError:
        shutil.copy2(src, dst)


class ShardCodec(abc.ABC):
    """One on-disk layout for one snapshot shard.

    Implementations are stateless (the registry holds a single shared
    instance) and addressed by ``(directory, index)``: every method
    operates on shard ``index`` of a ``save_dataset`` directory.  The
    contract the stack above relies on:

    * :meth:`encode` / :meth:`decode` round-trip a
      :class:`~repro.sim.fields.FlowField` bit-exactly;
    * :meth:`decode_lazy` returns a field whose ``variables`` is a real
      lazy Mapping (``materialize()`` / ``decoded_members()`` supported,
      ``nbytes()`` from metadata alone);
    * :meth:`shard_time` reads the snapshot time without decoding arrays;
    * :meth:`shard_name` names the shard's single file or directory, so
      ownership layouts can renumber shards and staging tiers can fetch
      and evict them as a unit.
    """

    #: registry key, stamped into manifests as ``"codec"``
    name: ClassVar[str]

    # ---- layout ------------------------------------------------------------

    @abc.abstractmethod
    def shard_name(self, index: int) -> str:
        """Basename (file or directory) holding shard `index`."""

    def shard_path(self, directory: str, index: int) -> str:
        return os.path.join(directory, self.shard_name(index))

    def shard_files(self, directory: str, index: int) -> list[str]:
        """Paths of every regular file composing shard `index` (for size
        accounting and integrity checks)."""
        path = self.shard_path(directory, index)
        if os.path.isfile(path):
            return [path]
        files = []
        for root, _, names in os.walk(path):
            files.extend(os.path.join(root, f) for f in sorted(names))
        return files

    def shard_disk_bytes(self, directory: str, index: int) -> int:
        """On-disk footprint of shard `index` (what a tier fetch moves)."""
        return sum(os.path.getsize(f) for f in self.shard_files(directory, index))

    def link_shard(
        self, src_dir: str, src_index: int, dst_dir: str, dst_index: int
    ) -> None:
        """Materialize shard `src_index` of `src_dir` as shard `dst_index`
        of `dst_dir` via hardlinks (copies across filesystems) — the
        renumbering step of :class:`~repro.data.store.OwnedShardLayout`
        and the staging step of remote tiers."""
        src = self.shard_path(src_dir, src_index)
        dst = self.shard_path(dst_dir, dst_index)
        if os.path.isfile(src):
            _link_or_copy(src, dst)
            return
        for root, _, names in os.walk(src):
            rel = os.path.relpath(root, src)
            target = dst if rel == "." else os.path.join(dst, rel)
            os.makedirs(target, exist_ok=True)
            for f in names:
                _link_or_copy(os.path.join(root, f), os.path.join(target, f))

    def remove_shard(self, directory: str, index: int) -> None:
        """Delete shard `index`'s file or directory (staging-tier evict)."""
        path = self.shard_path(directory, index)
        if os.path.isdir(path):
            shutil.rmtree(path, ignore_errors=True)
        elif os.path.exists(path):
            os.remove(path)

    # ---- payload -----------------------------------------------------------

    @abc.abstractmethod
    def encode(self, directory: str, index: int, field: FlowField) -> None:
        """Write `field` as shard `index` under `directory`."""

    @abc.abstractmethod
    def decode(self, directory: str, index: int) -> FlowField:
        """Read shard `index` eagerly (every variable resident)."""

    @abc.abstractmethod
    def decode_lazy(self, directory: str, index: int) -> LazyField:
        """Open shard `index` without reading arrays: geometry and time
        come from metadata, members decode on first access."""

    @abc.abstractmethod
    def shard_time(self, directory: str, index: int) -> float:
        """Snapshot time of shard `index`, without decoding arrays."""


#: name → shared codec instance (the registry readers auto-detect against)
CODECS: dict[str, ShardCodec] = {}


def register_codec(cls: type[ShardCodec]) -> type[ShardCodec]:
    """Class decorator: register a codec under its ``name``."""
    name = getattr(cls, "name", None)
    if not name:
        raise ValueError(f"{cls.__name__} needs a non-empty 'name' attribute")
    CODECS[name] = cls()
    return cls


def get_codec(name: str | ShardCodec) -> ShardCodec:
    """Resolve a codec by registry name (a codec instance passes through)."""
    if isinstance(name, ShardCodec):
        return name
    try:
        return CODECS[name]
    except KeyError:
        raise KeyError(
            f"unknown shard codec {name!r}; registered: {sorted(CODECS)}"
        ) from None


def codec_names() -> list[str]:
    return sorted(CODECS)


# ---------------------------------------------------------------------------
# npz — the historical format, byte-identical
# ---------------------------------------------------------------------------


@register_codec
class NpzCodec(ShardCodec):
    """One compressed npz per snapshot (``save_field``'s format, unchanged:
    directories written before the registry existed read back through this
    codec byte-for-byte)."""

    name = "npz"

    def shard_name(self, index: int) -> str:
        return f"snapshot_{index:05d}.npz"

    def encode(self, directory: str, index: int, field: FlowField) -> None:
        save_field(self.shard_path(directory, index), field)

    def decode(self, directory: str, index: int) -> FlowField:
        return load_field(self.shard_path(directory, index))

    def decode_lazy(self, directory: str, index: int) -> LazyField:
        return load_field_lazy(self.shard_path(directory, index))

    def shard_time(self, directory: str, index: int) -> float:
        # np.load decompresses entries on access, so reading just the
        # scalar "time" entry never decodes the field arrays.
        with np.load(self.shard_path(directory, index), allow_pickle=False) as data:
            return float(data["time"])


# ---------------------------------------------------------------------------
# raw — memory-mapped .npy per variable
# ---------------------------------------------------------------------------


def _write_shard_meta(path: str, field: FlowField, extra: dict | None = None) -> None:
    arr = next(iter(field.variables.values()))
    meta = {
        "time": field.time,
        "meta": field.meta,
        "variables": list(field.variables),
        "shape": list(arr.shape),
        "dtype": arr.dtype.str,
        **(extra or {}),
    }
    with open(os.path.join(path, _SHARD_META), "w", encoding="utf-8") as fh:
        json.dump(meta, fh)


def _read_shard_meta(path: str) -> dict:
    with open(os.path.join(path, _SHARD_META), encoding="utf-8") as fh:
        return json.load(fh)


@register_codec
class RawCodec(ShardCodec):
    """Uncompressed ``.npy`` per variable, decoded by memory mapping.

    ``decode`` returns fields whose arrays are ``np.memmap`` views — the
    kernel pages bytes in on touch, so "decode" copies nothing and evicting
    the shard from the LRU drops only page-cache references.  Lazy decode
    of one variable never opens the other variables' files.
    """

    name = "raw"

    def shard_name(self, index: int) -> str:
        return f"snapshot_{index:05d}.raw"

    def encode(self, directory: str, index: int, field: FlowField) -> None:
        path = self.shard_path(directory, index)
        os.makedirs(path, exist_ok=True)
        for name, arr in field.variables.items():
            np.save(os.path.join(path, f"{name}.npy"), np.asarray(arr))
        _write_shard_meta(path, field)

    def _load_var(self, path: str, name: str) -> np.ndarray:
        return np.load(os.path.join(path, f"{name}.npy"), mmap_mode="r")

    def decode(self, directory: str, index: int) -> FlowField:
        path = self.shard_path(directory, index)
        meta = _read_shard_meta(path)
        variables = {n: self._load_var(path, n) for n in meta["variables"]}
        return FlowField(variables=variables, time=meta["time"], meta=meta["meta"])

    def decode_lazy(self, directory: str, index: int) -> LazyField:
        path = self.shard_path(directory, index)
        meta = _read_shard_meta(path)
        members = LazyMembers(meta["variables"], lambda n: self._load_var(path, n))
        return LazyField(
            members, tuple(meta["shape"]), np.dtype(meta["dtype"]).itemsize,
            meta["time"], meta["meta"],
        )

    def shard_time(self, directory: str, index: int) -> float:
        return float(_read_shard_meta(self.shard_path(directory, index))["time"])


# ---------------------------------------------------------------------------
# chunked — per-variable chunk files
# ---------------------------------------------------------------------------


@register_codec
class ChunkedCodec(ShardCodec):
    """Each variable split into ``n_chunks`` flat ``.npy`` chunk files.

    The zarr-style trade: lazy decode of one variable reads exactly that
    variable's chunk files — untouched variables skip the I/O itself, not
    just the decompression — and a partial reader could stop after any
    chunk boundary.  Chunk count is fixed at encode time and recorded in
    the shard metadata.
    """

    name = "chunked"

    #: chunks per variable (small shards store fewer: at most one row each)
    n_chunks = 4

    def shard_name(self, index: int) -> str:
        return f"snapshot_{index:05d}.chunked"

    def encode(self, directory: str, index: int, field: FlowField) -> None:
        path = self.shard_path(directory, index)
        os.makedirs(path, exist_ok=True)
        n_chunks = None
        for name, arr in field.variables.items():
            flat = np.asarray(arr).reshape(-1)
            chunks = np.array_split(flat, min(self.n_chunks, max(1, flat.size)))
            n_chunks = len(chunks)
            for c, chunk in enumerate(chunks):
                np.save(os.path.join(path, f"{name}.c{c:04d}.npy"), chunk)
        _write_shard_meta(path, field, extra={"n_chunks": n_chunks})

    def _load_var(self, path: str, name: str, meta: dict) -> np.ndarray:
        parts = [
            np.load(os.path.join(path, f"{name}.c{c:04d}.npy"), allow_pickle=False)
            for c in range(meta["n_chunks"])
        ]
        return np.concatenate(parts).reshape(meta["shape"])

    def decode(self, directory: str, index: int) -> FlowField:
        path = self.shard_path(directory, index)
        meta = _read_shard_meta(path)
        variables = {n: self._load_var(path, n, meta) for n in meta["variables"]}
        return FlowField(variables=variables, time=meta["time"], meta=meta["meta"])

    def decode_lazy(self, directory: str, index: int) -> LazyField:
        path = self.shard_path(directory, index)
        meta = _read_shard_meta(path)
        members = LazyMembers(
            meta["variables"], lambda n: self._load_var(path, n, meta)
        )
        return LazyField(
            members, tuple(meta["shape"]), np.dtype(meta["dtype"]).itemsize,
            meta["time"], meta["meta"],
        )

    def shard_time(self, directory: str, index: int) -> float:
        return float(_read_shard_meta(self.shard_path(directory, index))["time"])
