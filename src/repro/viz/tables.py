"""Aligned-table and CSV emitters for bench output."""

from __future__ import annotations

__all__ = ["format_table", "to_csv"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_table(rows: list[dict], columns: list[str] | None = None, title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        raise ValueError("need at least one row")
    cols = columns if columns is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def to_csv(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as CSV text."""
    if not rows:
        raise ValueError("need at least one row")
    cols = columns if columns is not None else list(rows[0].keys())

    def esc(v) -> str:
        s = _fmt(v)
        if "," in s or '"' in s:
            s = '"' + s.replace('"', '""') + '"'
        return s

    lines = [",".join(cols)]
    for row in rows:
        lines.append(",".join(esc(row.get(c, "")) for c in cols))
    return "\n".join(lines)
