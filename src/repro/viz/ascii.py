"""ASCII plotting primitives."""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_scatter", "ascii_line", "ascii_bar", "ascii_field"]

_SHADES = " .:-=+*#%@"


def _canvas(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _render(canvas: list[list[str]]) -> str:
    return "\n".join("".join(row) for row in canvas)


def _scale(v: np.ndarray, lo: float, hi: float, n: int) -> np.ndarray:
    span = hi - lo if hi > lo else 1.0
    return np.clip(((v - lo) / span * (n - 1)).round().astype(int), 0, n - 1)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 60,
    height: int = 20,
    marker: str = "o",
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Scatter plot of (x, y) points on a character grid."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size == 0:
        raise ValueError("x and y must be equal-length, non-empty")
    xs = np.log10(x) if logx else x
    ys = np.log10(y) if logy else y
    canvas = _canvas(width, height)
    cols = _scale(xs, xs.min(), xs.max(), width)
    rows = _scale(ys, ys.min(), ys.max(), height)
    for c, r in zip(cols, rows):
        canvas[height - 1 - r][c] = marker
    header = f"{title}\n" if title else ""
    footer = (
        f"\nx: [{x.min():.3g}, {x.max():.3g}]"
        f"{' (log)' if logx else ''}   y: [{y.min():.3g}, {y.max():.3g}]"
        f"{' (log)' if logy else ''}"
    )
    return header + _render(canvas) + footer


def ascii_line(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 60,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Multiple named series on one grid, each with its own marker."""
    if not series:
        raise ValueError("need at least one series")
    markers = "ox+*sd^v"
    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    tx = np.log10(all_x) if logx else all_x
    ty = np.log10(all_y) if logy else all_y
    canvas = _canvas(width, height)
    legend = []
    for i, (name, (x, y)) in enumerate(series.items()):
        m = markers[i % len(markers)]
        legend.append(f"{m}={name}")
        xs = np.log10(np.asarray(x, float)) if logx else np.asarray(x, float)
        ys = np.log10(np.asarray(y, float)) if logy else np.asarray(y, float)
        cols = _scale(xs, tx.min(), tx.max(), width)
        rows = _scale(ys, ty.min(), ty.max(), height)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = m
    header = f"{title}\n" if title else ""
    return header + _render(canvas) + "\n" + "  ".join(legend)


def ascii_bar(labels: list[str], values: list[float], width: int = 50, title: str = "") -> str:
    """Horizontal bar chart."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must be equal-length, non-empty")
    vmax = max(max(values), 1e-12)
    name_w = max(len(s) for s in labels)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        n = int(round(v / vmax * width))
        lines.append(f"{label:>{name_w}} | {'#' * n} {v:.4g}")
    return "\n".join(lines)


def ascii_field(field: np.ndarray, width: int = 60, height: int = 24, title: str = "") -> str:
    """Render a 2-D scalar field as shaded characters (Fig 1-style)."""
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise ValueError("field must be 2-D")
    # Downsample by block mean onto the character grid.
    rows = np.linspace(0, field.shape[0], height + 1).astype(int)
    cols = np.linspace(0, field.shape[1], width + 1).astype(int)
    out = []
    lo, hi = field.min(), field.max()
    span = hi - lo if hi > lo else 1.0
    for r in range(height):
        line = []
        for c in range(width):
            block = field[rows[r] : max(rows[r + 1], rows[r] + 1),
                          cols[c] : max(cols[c + 1], cols[c] + 1)]
            v = (block.mean() - lo) / span
            line.append(_SHADES[min(int(v * (len(_SHADES) - 1)), len(_SHADES) - 1)])
        out.append("".join(line))
    header = f"{title}\n" if title else ""
    return header + "\n".join(out)
