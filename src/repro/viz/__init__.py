"""Text-mode visualization (matplotlib/Excel substitute).

Benches print each figure's rows/series as aligned tables, CSV, and ASCII
plots so the reproduction is inspectable in a terminal and diffable in CI.
"""

from repro.viz.ascii import ascii_scatter, ascii_line, ascii_bar, ascii_field
from repro.viz.tables import format_table, to_csv

__all__ = ["ascii_scatter", "ascii_line", "ascii_bar", "ascii_field", "format_table", "to_csv"]
