"""Composable stages of the two-phase subsampling pipeline.

The paper's ``subsample.py`` monolith is decomposed into five named stages,
each an object with a ``run(ctx)`` method satisfying the :class:`Stage`
protocol and communicating through a shared mutable :class:`PipelineContext`:

==========================  ================================================
:class:`CubeIndexStage`     enumerate the global cube tiling and take this
                            rank's block (no data touched yet)
:class:`Phase1SummarizeStage`  agree on global histogram edges, compute
                            per-cube moments + histograms (phase 1 stats)
:class:`CubeSelectStage`    gather stats to rank 0, run the configured
                            :class:`~repro.sampling.selectors.CubeSelector`,
                            broadcast the selected cube ids
:class:`PointSampleStage`   phase 2 — run the configured point
                            :class:`~repro.sampling.base.Sampler` inside this
                            rank's share of the selected cubes (or keep them
                            dense for ``method='full'``)
:class:`GatherStage`        gather points/cubes and counters to rank 0
==========================  ================================================

:class:`SubsamplePipeline` composes the stages (any sequence of stage objects
can be substituted — cache a stage, skip one, interleave new ones) and wraps
the run in per-rank energy metering.  ``run_subsample``/``subsample`` in
:mod:`repro.sampling.pipeline` stay as thin wrappers over the default
pipeline, so existing call sites and seeds are unaffected.

Since the stream-first redesign every stage consumes a
:class:`~repro.data.sources.SnapshotSource` chunk-by-chunk — snapshots are
fetched on demand and never required to be resident together, so the same
stage list runs over an in-memory dataset (byte-identical to the
pre-source-API results), an out-of-core shard directory, or an in-situ
simulation.  ``run``/``run_subsample`` accept a ``TurbulenceDataset`` too
and coerce it via :func:`~repro.data.sources.as_source`.

Method work-unit costs live on the sampler/selector classes themselves
(``cost_per_point``), so third-party strategies registered via
``register_sampler``/``register_selector`` flow through the pipeline without
touching any cost table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.data.dataset import TurbulenceDataset
from repro.data.hypercubes import Hypercube, extract_hypercube, hypercube_origins
from repro.data.points import PointSet
from repro.data.sources import SnapshotSource, as_source
from repro.energy.meter import EnergyMeter
from repro.parallel.comm import Communicator
from repro.parallel.partition import block_bounds
from repro.sampling.base import Sampler, get_sampler
from repro.sampling.selectors import get_selector
from repro.utils.config import CaseConfig
from repro.utils.rng import spawn_rngs

__all__ = [
    "FULL_METHOD_COST",
    "SubsampleResult",
    "PipelineContext",
    "Stage",
    "iter_cube_values",
    "CubeIndexStage",
    "Phase1SummarizeStage",
    "CubeSelectStage",
    "PointSampleStage",
    "GatherStage",
    "SubsamplePipeline",
]

#: work units per point for ``method='full'`` (dense copy, no sampler object).
FULL_METHOD_COST = 0.5


@dataclass
class SubsampleResult:
    """Output of one pipeline run (complete only on rank 0)."""

    points: PointSet | None
    cubes: list[Hypercube] | None
    selected_cube_ids: np.ndarray
    n_candidate_cubes: int
    n_points_scanned: int
    energy: EnergyMeter | None
    virtual_time: float
    meta: dict = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        if self.points is not None:
            return len(self.points)
        if self.cubes is not None:
            return sum(c.n_points for c in self.cubes)
        return 0


@dataclass
class PipelineContext:
    """Mutable state threaded through the pipeline stages on one rank.

    ``source`` is any :class:`~repro.data.sources.SnapshotSource`; stages
    fetch snapshots through it on demand instead of assuming a resident
    dataset, so the context works identically for in-memory, out-of-core,
    and in-situ ingestion.
    """

    comm: Communicator
    source: SnapshotSource
    config: CaseConfig
    seed: int = 0
    hist_bins: int = 50
    meter: EnergyMeter | None = None

    # ---- derived configuration (filled in __post_init__) ----
    cube_shape: tuple[int, ...] = ()
    cluster_var: str = ""
    input_vars: list[str] = field(default_factory=list)
    point_vars: list[str] = field(default_factory=list)
    rng: np.random.Generator | None = None
    root_rng: np.random.Generator | None = None

    # ---- stage products ----
    index: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)
    n_cubes: int = 0
    my_cubes: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)
    edges: np.ndarray | None = None
    summaries: np.ndarray | None = None
    histograms: np.ndarray | None = None
    scanned: int = 0
    selected: np.ndarray | None = None
    my_points: list[PointSet] = field(default_factory=list)
    my_full: list[Hypercube] = field(default_factory=list)
    gathered_points: list[list[PointSet]] | None = None
    gathered_full: list[list[Hypercube]] | None = None
    total_scanned: int = 0

    def __post_init__(self) -> None:
        sub = self.config.subsample
        self.cube_shape = sub.hypercube_shape[: self.source.ndim]
        self.cluster_var = self.source.cluster_var
        self.input_vars = list(self.source.input_vars)
        self.point_vars = list(dict.fromkeys(
            [*self.input_vars, *self.source.output_vars, self.cluster_var]
        ))
        rank_rng = spawn_rngs(self.seed, self.comm.size + 1)
        self.rng = rank_rng[self.comm.rank + 1]
        self.root_rng = rank_rng[0]  # identical on all ranks; rank-0 decisions


@runtime_checkable
class Stage(Protocol):
    """One named step of the pipeline; mutates the shared context."""

    name: str

    def run(self, ctx: PipelineContext) -> None: ...


def iter_cube_values(ctx: PipelineContext):
    """Yield ``(position, cluster-variable block)`` for this rank's cubes.

    Cubes arrive in (snapshot, origin) order, so each snapshot is fetched
    from the source exactly once per contiguous run — chunk-by-chunk
    consumption with residency bounded by the source, never a resident list
    of per-cube values.
    """
    current = -1
    snap = None
    for i, (s, origin) in enumerate(ctx.my_cubes):
        if s != current:
            snap = ctx.source.snapshot(s)
            current = s
        slicer = tuple(slice(o, o + c) for o, c in zip(origin, ctx.cube_shape))
        yield i, snap.get(ctx.cluster_var)[slicer]


class CubeIndexStage:
    """Enumerate the deterministic global cube tiling and take my block."""

    name = "cube-index"

    def run(self, ctx: PipelineContext) -> None:
        sub = ctx.config.subsample
        origins = hypercube_origins(ctx.source.grid_shape, ctx.cube_shape)
        ctx.index = [(s, o) for s in range(ctx.source.n_snapshots) for o in origins]
        ctx.n_cubes = len(ctx.index)
        if sub.num_hypercubes > ctx.n_cubes:
            raise ValueError(
                f"num_hypercubes={sub.num_hypercubes} exceeds available cubes ({ctx.n_cubes})"
            )
        lo, hi = block_bounds(ctx.n_cubes, ctx.comm.size, ctx.comm.rank)
        ctx.my_cubes = ctx.index[lo:hi]


class Phase1SummarizeStage:
    """Per-cube phase-1 statistics on globally agreed histogram edges.

    Two streaming passes over this rank's share of the source: one to agree
    on global histogram edges (min/max reduction), one to fill the per-cube
    moments and histograms.  Neither pass materializes more than one
    snapshot's worth of values at a time.
    """

    name = "phase1-summarize"

    def run(self, ctx: PipelineContext) -> None:
        comm, bins = ctx.comm, ctx.hist_bins
        # Advisory: tell an async source which snapshots this rank is about
        # to walk (twice), so decode overlaps the summarization compute.
        ctx.source.prefetch(dict.fromkeys(s for s, _ in ctx.my_cubes))
        local_min, local_max = np.inf, -np.inf
        for _, vals in iter_cube_values(ctx):
            local_min = min(local_min, float(vals.min()))
            local_max = max(local_max, float(vals.max()))
        gmin = comm.allreduce(local_min, op="min")
        gmax = comm.allreduce(local_max, op="max")
        if gmin == gmax:
            gmax = gmin + 1.0
        ctx.edges = np.linspace(gmin, gmax, bins + 1)

        summaries = np.zeros((len(ctx.my_cubes), 4))
        histograms = np.zeros((len(ctx.my_cubes), bins))
        scanned = 0
        for i, vals in iter_cube_values(ctx):
            flat = vals.reshape(-1)
            scanned += flat.size
            mean, std = flat.mean(), flat.std()
            centred = flat - mean
            summaries[i] = [
                mean,
                std,
                (centred**3).mean() / max(std**3, 1e-12),
                (centred**4).mean() / max(std**4, 1e-12),
            ]
            counts, _ = np.histogram(flat, bins=ctx.edges)
            total = counts.sum()
            histograms[i] = counts / total if total > 0 else 1.0 / bins
        ctx.summaries, ctx.histograms, ctx.scanned = summaries, histograms, scanned
        comm.account_compute(float(scanned))
        if ctx.meter is not None:
            ctx.meter.record(flops=3.0 * scanned, nbytes=8.0 * scanned, device="cpu")


class CubeSelectStage:
    """Gather per-cube stats and run the registered selector on rank 0."""

    name = "cube-select"

    def __init__(self, selector_name: str | None = None) -> None:
        #: override the config's ``hypercubes`` method (e.g. to A/B selectors)
        self.selector_name = selector_name

    def run(self, ctx: PipelineContext) -> None:
        comm, sub = ctx.comm, ctx.config.subsample
        gathered_s = comm.gather(ctx.summaries, root=0)
        gathered_h = comm.gather(ctx.histograms, root=0)
        chosen: np.ndarray | None = None
        if comm.rank == 0:
            all_s = np.concatenate([g for g in gathered_s if len(g)], axis=0)
            all_h = np.concatenate([g for g in gathered_h if len(g)], axis=0)
            if all_s.shape[0] != ctx.n_cubes:
                raise AssertionError("cube summary count mismatch after gather")
            selector = get_selector(self.selector_name or sub.hypercubes)
            chosen = selector.select(
                all_s, all_h, sub.num_hypercubes,
                num_clusters=sub.num_clusters, rng=ctx.root_rng,
            )
            comm.account_compute(selector.cost_per_point * float(ctx.n_cubes))
        ctx.selected = comm.bcast(chosen, root=0)


class PointSampleStage:
    """Phase 2: the configured point sampler over my share of selected cubes."""

    name = "point-sample"

    def run(self, ctx: PipelineContext) -> None:
        comm, sub = ctx.comm, ctx.config.subsample
        slo, shi = block_bounds(len(ctx.selected), comm.size, comm.rank)
        my_selected = ctx.selected[slo:shi]
        phase2_scanned = 0
        sampler: Sampler | None = None
        if sub.method not in ("full",):
            kwargs = {}
            if sub.method in ("maxent", "stratified"):
                kwargs["n_clusters"] = sub.num_clusters
            sampler = get_sampler(sub.method, **kwargs)
        cost = FULL_METHOD_COST if sampler is None else float(
            getattr(sampler, "cost_per_point", Sampler.cost_per_point)
        )
        # CubeSelector.select returns sorted ids (the ABC enforces it), and
        # the index is snapshot-major — so this loop visits snapshots
        # monotonically and a replay-on-backstep SimulationSource restarts
        # at most once for the whole phase.
        ctx.source.prefetch(dict.fromkeys(
            ctx.index[int(c)][0] for c in my_selected
        ))
        for cube_id in my_selected:
            s_idx, origin = ctx.index[int(cube_id)]
            cube = extract_hypercube(
                ctx.source.snapshot(s_idx), origin, ctx.cube_shape, ctx.point_vars
            )
            cube.meta["snapshot"] = s_idx
            cube.meta["cube_id"] = int(cube_id)
            phase2_scanned += cube.n_points
            if sampler is None:
                ctx.my_full.append(cube)
                continue
            features = self._features_for(sub.method, cube, ctx.cluster_var, ctx.input_vars)
            n_draw = min(sub.num_samples, cube.n_points)
            idx = sampler.sample(features, n_draw, ctx.rng)
            ps = cube.select_points(idx, ctx.point_vars)
            ps.meta.update(
                method=sub.method,
                snapshot=s_idx,
                cube_id=int(cube_id),
                cube_shape=list(ctx.cube_shape),
            )
            ctx.my_points.append(ps)
        comm.account_compute(cost * float(phase2_scanned))
        if ctx.meter is not None:
            ctx.meter.record(
                flops=cost * 2.0 * phase2_scanned,
                nbytes=8.0 * phase2_scanned * len(ctx.point_vars),
                device="cpu",
            )
        ctx.scanned += phase2_scanned

    @staticmethod
    def _features_for(
        method: str, cube: Hypercube, cluster_var: str, input_vars: list[str]
    ) -> np.ndarray:
        """Feature table the point sampler sees, per the paper's conventions."""
        if method == "uips":
            return cube.point_table(input_vars)
        return cube.point_table([cluster_var])


class GatherStage:
    """Collect per-rank results and global counters on rank 0."""

    name = "gather"

    def run(self, ctx: PipelineContext) -> None:
        comm = ctx.comm
        ctx.gathered_points = comm.gather(ctx.my_points, root=0)
        ctx.gathered_full = comm.gather(ctx.my_full, root=0)
        ctx.total_scanned = comm.allreduce(ctx.scanned, op="sum")


class SubsamplePipeline:
    """The two-phase pipeline as an ordered composition of stages.

    The default stage list reproduces ``run_subsample`` seed-for-seed; pass
    a custom sequence to swap, wrap, or extend stages::

        pipe = SubsamplePipeline([CubeIndexStage(), Phase1SummarizeStage(),
                                  CubeSelectStage("entropy"),
                                  PointSampleStage(), GatherStage()])
        result = pipe.run(comm, dataset, config, seed=7)
    """

    def __init__(self, stages: Sequence[Stage] | None = None) -> None:
        self.stages: list[Stage] = list(stages) if stages is not None else self.default_stages()

    @staticmethod
    def default_stages() -> list[Stage]:
        return [
            CubeIndexStage(),
            Phase1SummarizeStage(),
            CubeSelectStage(),
            PointSampleStage(),
            GatherStage(),
        ]

    def run(
        self,
        comm: Communicator,
        data: SnapshotSource | TurbulenceDataset,
        config: CaseConfig,
        seed: int = 0,
        hist_bins: int = 50,
    ) -> SubsampleResult:
        """Execute every stage on one rank of an SPMD run.

        `data` may be any :class:`~repro.data.sources.SnapshotSource` or a
        resident :class:`TurbulenceDataset` (coerced to an in-memory source).
        """
        ctx = PipelineContext(
            comm=comm, source=as_source(data), config=config, seed=seed, hist_bins=hist_bins
        )
        with EnergyMeter() as meter:
            ctx.meter = meter
            for stage in self.stages:
                stage.run(ctx)
            meter.add_elapsed(comm.clock.t)
        return self._build_result(ctx, meter)

    @staticmethod
    def _build_result(ctx: PipelineContext, meter: EnergyMeter) -> SubsampleResult:
        sub = ctx.config.subsample
        points: PointSet | None = None
        cubes: list[Hypercube] | None = None
        if ctx.comm.rank == 0:
            if sub.method == "full":
                cubes = [c for chunk in (ctx.gathered_full or []) for c in chunk]
            else:
                flat = [p for chunk in (ctx.gathered_points or []) for p in chunk]
                points = PointSet.concatenate(flat) if flat else None
        return SubsampleResult(
            points=points,
            cubes=cubes,
            selected_cube_ids=np.asarray(ctx.selected),
            n_candidate_cubes=ctx.n_cubes,
            n_points_scanned=int(ctx.total_scanned),
            energy=meter,
            virtual_time=ctx.comm.clock.t,
            meta={
                "method": sub.method,
                "hypercubes": sub.hypercubes,
                "num_samples": sub.num_samples,
                "rank": ctx.comm.rank,
                "size": ctx.comm.size,
                "seed": ctx.seed,
                "case": ctx.config.to_dict(),
            },
        )
