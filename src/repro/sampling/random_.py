"""Baseline samplers: uniform random and Latin hypercube.

Random sampling is the paper's main baseline — and, per its §7 discussion,
a surprisingly strong one.  LHS adds one-dimensional stratification per
feature: each of the `n` selected points occupies a distinct quantile bin in
every feature marginal, giving better marginal coverage at the same budget.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.sampling.base import Sampler, register_sampler

__all__ = ["RandomSampler", "LatinHypercubeSampler"]


@register_sampler("random")
class RandomSampler(Sampler):
    """Uniform sampling without replacement."""

    cost_per_point = 1.0

    def select(self, features: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.choice(features.shape[0], size=n, replace=False)


@register_sampler("lhs")
class LatinHypercubeSampler(Sampler):
    """Latin hypercube selection over existing data points.

    Classic LHS generates free coordinates; selecting from a *fixed* point
    cloud instead requires matching: we draw an LHS design in the feature
    hyper-rectangle (one stratum per sample per dimension, randomly paired)
    and map each design site to its nearest unused data point via a KD-tree.
    Marginal stratification is preserved approximately — exactly in the limit
    of dense data.
    """

    cost_per_point = 4.0

    def select(self, features: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        n_points, d = features.shape
        lo = features.min(axis=0)
        hi = features.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        # LHS design: one point per stratum per dimension, strata permuted.
        design = np.empty((n, d))
        for j in range(d):
            perm = rng.permutation(n)
            design[:, j] = (perm + rng.random(n)) / n
        sites = lo + design * span

        scaled = (features - lo) / span
        tree = cKDTree(scaled)
        chosen: list[int] = []
        used = np.zeros(n_points, dtype=bool)
        # Query progressively more neighbours until an unused one appears.
        for site in (sites - lo) / span:
            k = 1
            while True:
                k = min(k, n_points)
                dist, idx = tree.query(site, k=k)
                candidates = np.atleast_1d(idx)
                free = [int(c) for c in candidates if not used[c]]
                if free:
                    pick = free[0]
                    used[pick] = True
                    chosen.append(pick)
                    break
                if k == n_points:
                    raise AssertionError("unreachable: fewer free points than samples")
                k *= 2
        return np.asarray(chosen)
