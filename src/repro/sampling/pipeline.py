"""The distributed two-phase subsampling pipeline (= the paper's subsample.py).

Runs SPMD over a :class:`~repro.parallel.comm.Communicator`, mirroring
``srun -n N python subsample.py case.yaml``:

1.  every rank deterministically enumerates the hypercube tiling of all
    snapshots and takes its block of the cube list;
2.  **phase 1** — each rank summarizes its cubes (moments + histogram of the
    cluster variable on globally agreed edges); summaries are gathered to
    rank 0, which runs the registered
    :class:`~repro.sampling.selectors.CubeSelector` named by the case's
    ``hypercubes:`` key (Hmaxent / Hrandom / entropy / anything third-party)
    and broadcasts the selected cube ids;
3.  **phase 2** — each rank runs the configured point sampler (Xmaxent /
    UIPS / random / LHS / stratified) inside its share of the selected cubes,
    or keeps the cubes fully dense (``method='full'``);
4.  results are gathered to rank 0 and concatenated.

Since this repo's API redesign the pipeline itself lives in
:mod:`repro.sampling.stages` as composable :class:`~repro.sampling.stages.Stage`
objects (CubeIndex → Phase1Summarize → CubeSelect → PointSample → Gather)
driven by :class:`~repro.sampling.stages.SubsamplePipeline`; this module
keeps the historical entry points ``run_subsample`` / ``subsample`` as thin
seed-for-seed-equivalent wrappers over the default stage list.

Each rank meters its own energy (thread-local
:class:`~repro.energy.meter.EnergyMeter`) and charges compute work to its
virtual clock, so the same run yields Fig 7's scalability numbers (virtual
makespan vs rank count) and Fig 8's energy numbers.  Per-method work-unit
costs come from the ``cost_per_point`` attribute on the sampler/selector
classes, so registered third-party strategies need no cost-table entry.

Note: with the thread-backed communicator all ranks share the dataset
read-only in memory; on a real cluster each rank would read its slice from
disk.  Derived variables are materialized per snapshot before the parallel
region to keep the cache warm.
"""

from __future__ import annotations

from repro.data.dataset import TurbulenceDataset
from repro.energy.meter import EnergyMeter
from repro.parallel.comm import Communicator
from repro.parallel.perfmodel import PerfModel
from repro.parallel.spmd import run_spmd
from repro.sampling.stages import SubsamplePipeline, SubsampleResult
from repro.utils.config import CaseConfig

__all__ = ["SubsampleResult", "SubsamplePipeline", "run_subsample", "subsample"]


def run_subsample(
    comm: Communicator,
    dataset: TurbulenceDataset,
    config: CaseConfig,
    seed: int = 0,
    hist_bins: int = 50,
) -> SubsampleResult:
    """Execute the two-phase pipeline on one rank of an SPMD run.

    Thin wrapper over the default :class:`SubsamplePipeline` stage list.
    """
    return SubsamplePipeline().run(comm, dataset, config, seed=seed, hist_bins=hist_bins)


def subsample(
    dataset: TurbulenceDataset,
    config: CaseConfig,
    nranks: int = 1,
    seed: int = 0,
    model: PerfModel | None = None,
) -> SubsampleResult:
    """Convenience wrapper: launch the SPMD pipeline and return rank 0's result.

    The returned result's ``virtual_time`` is the makespan (slowest rank) and
    its energy meter is the merge of all ranks' meters.
    """
    # Materialize derived variables once, outside the parallel region.
    for snap in dataset.snapshots:
        snap.get(dataset.cluster_var)

    spmd = run_spmd(run_subsample, nranks, dataset, config, seed=seed, model=model)
    root: SubsampleResult = spmd[0]
    merged = EnergyMeter()
    for res in spmd.values:
        if res.energy is not None:
            merged.merge(res.energy)
    merged.elapsed = spmd.virtual_time
    root.energy = merged
    root.virtual_time = spmd.virtual_time
    return root
