"""The distributed two-phase subsampling pipeline (= the paper's subsample.py).

Runs SPMD over a :class:`~repro.parallel.comm.Communicator`, mirroring
``srun -n N python subsample.py case.yaml``:

1.  every rank deterministically enumerates the hypercube tiling of all
    snapshots and takes its block of the cube list;
2.  **phase 1** — each rank summarizes its cubes (moments + histogram of the
    cluster variable on globally agreed edges); summaries are gathered to
    rank 0, which runs Hmaxent (cluster → KL adjacency → node strengths →
    entropy-weighted draw) or Hrandom and broadcasts the selected cube ids;
3.  **phase 2** — each rank runs the configured point sampler (Xmaxent /
    UIPS / random / LHS / stratified) inside its share of the selected cubes,
    or keeps the cubes fully dense (``method='full'``);
4.  results are gathered to rank 0 and concatenated.

Each rank meters its own energy (thread-local
:class:`~repro.energy.meter.EnergyMeter`) and charges compute work to its
virtual clock, so the same run yields Fig 7's scalability numbers (virtual
makespan vs rank count) and Fig 8's energy numbers.

Note: with the thread-backed communicator all ranks share the dataset
read-only in memory; on a real cluster each rank would read its slice from
disk.  Derived variables are materialized per snapshot before the parallel
region to keep the cache warm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import TurbulenceDataset
from repro.data.hypercubes import Hypercube, extract_hypercube, hypercube_origins
from repro.data.points import PointSet
from repro.energy.meter import EnergyMeter
from repro.parallel.comm import Communicator
from repro.parallel.partition import block_bounds
from repro.parallel.perfmodel import PerfModel
from repro.parallel.spmd import run_spmd
from repro.sampling.base import get_sampler
from repro.sampling.maxent import maxent_cluster_weights
from repro.cluster.kmeans import MiniBatchKMeans
from repro.utils.config import CaseConfig
from repro.utils.rng import spawn_rngs

__all__ = ["SubsampleResult", "run_subsample", "subsample"]

#: point-sampler cost in work units per point, by method (clustering-based
#: methods scan each point ~n_cluster-ish times; calibrated, not measured).
_METHOD_COST = {
    "random": 1.0,
    "lhs": 4.0,
    "stratified": 8.0,
    "uips": 6.0,
    "maxent": 10.0,
    "full": 0.5,
}


@dataclass
class SubsampleResult:
    """Output of one pipeline run (complete only on rank 0)."""

    points: PointSet | None
    cubes: list[Hypercube] | None
    selected_cube_ids: np.ndarray
    n_candidate_cubes: int
    n_points_scanned: int
    energy: EnergyMeter | None
    virtual_time: float
    meta: dict = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        if self.points is not None:
            return len(self.points)
        if self.cubes is not None:
            return sum(c.n_points for c in self.cubes)
        return 0


def _cube_index(dataset: TurbulenceDataset, cube_shape: tuple[int, ...]) -> list[tuple[int, tuple[int, ...]]]:
    """Deterministic global list of (snapshot_idx, origin) cube coordinates."""
    origins = hypercube_origins(dataset.grid_shape, cube_shape)
    return [(s, o) for s in range(dataset.n_snapshots) for o in origins]


def _features_for(method: str, cube: Hypercube, cluster_var: str, input_vars: list[str]) -> np.ndarray:
    """Feature table the point sampler sees, per the paper's conventions."""
    if method == "uips":
        return cube.point_table(input_vars)
    return cube.point_table([cluster_var])


def _phase1_select(
    comm: Communicator,
    mode: str,
    summaries: np.ndarray,
    histograms: np.ndarray,
    n_cubes: int,
    num_hypercubes: int,
    num_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Gather per-cube stats and select cubes on rank 0; bcast ids."""
    gathered_s = comm.gather(summaries, root=0)
    gathered_h = comm.gather(histograms, root=0)
    chosen: np.ndarray | None = None
    if comm.rank == 0:
        all_s = np.concatenate([g for g in gathered_s if len(g)], axis=0)
        all_h = np.concatenate([g for g in gathered_h if len(g)], axis=0)
        if all_s.shape[0] != n_cubes:
            raise AssertionError("cube summary count mismatch after gather")
        if mode == "random":
            chosen = np.sort(rng.choice(n_cubes, size=num_hypercubes, replace=False))
        else:
            k = min(num_clusters, max(2, n_cubes // 2), n_cubes)
            km = MiniBatchKMeans(n_clusters=k, batch_size=min(256, n_cubes), rng=rng).fit(all_s)
            labels = km.labels_
            k_eff = km.cluster_centers_.shape[0]
            # Per-cluster distribution = mean histogram of member cubes.
            dists = np.stack([
                all_h[labels == c].mean(axis=0) if np.any(labels == c) else
                np.full(all_h.shape[1], 1.0 / all_h.shape[1])
                for c in range(k_eff)
            ])
            from repro.sampling.entropy import entropy_adjacency, node_strengths, strength_weights

            weights_by_cluster = strength_weights(node_strengths(entropy_adjacency(dists)))
            cluster_sizes = np.bincount(labels, minlength=k_eff).astype(np.float64)
            per_cube = weights_by_cluster[labels] / np.maximum(cluster_sizes[labels], 1.0)
            per_cube = per_cube / per_cube.sum()
            chosen = np.sort(rng.choice(n_cubes, size=num_hypercubes, replace=False, p=per_cube))
    return comm.bcast(chosen, root=0)


def run_subsample(
    comm: Communicator,
    dataset: TurbulenceDataset,
    config: CaseConfig,
    seed: int = 0,
    hist_bins: int = 50,
) -> SubsampleResult:
    """Execute the two-phase pipeline on one rank of an SPMD run."""
    sub = config.subsample
    cube_shape = sub.hypercube_shape[: dataset.ndim]
    cluster_var = dataset.cluster_var
    input_vars = dataset.input_vars
    point_vars = list(dict.fromkeys([*input_vars, *dataset.output_vars, cluster_var]))

    rank_rng = spawn_rngs(seed, comm.size + 1)
    rng = rank_rng[comm.rank + 1]
    root_rng = rank_rng[0]  # identical on all ranks; used for rank-0 decisions

    index = _cube_index(dataset, cube_shape)
    n_cubes = len(index)
    if sub.num_hypercubes > n_cubes:
        raise ValueError(
            f"num_hypercubes={sub.num_hypercubes} exceeds available cubes ({n_cubes})"
        )

    with EnergyMeter() as meter:
        lo, hi = block_bounds(n_cubes, comm.size, comm.rank)
        my_cubes = index[lo:hi]

        # Global histogram edges for the cluster variable.
        local_vals = [
            dataset.snapshots[s].get(cluster_var)[
                tuple(slice(o, o + c) for o, c in zip(origin, cube_shape))
            ]
            for s, origin in my_cubes
        ]
        local_min = min((float(v.min()) for v in local_vals), default=np.inf)
        local_max = max((float(v.max()) for v in local_vals), default=-np.inf)
        gmin = comm.allreduce(local_min, op="min")
        gmax = comm.allreduce(local_max, op="max")
        if gmin == gmax:
            gmax = gmin + 1.0
        edges = np.linspace(gmin, gmax, hist_bins + 1)

        # Phase-1 statistics for my cubes.
        summaries = np.zeros((len(my_cubes), 4))
        histograms = np.zeros((len(my_cubes), hist_bins))
        scanned = 0
        for i, vals in enumerate(local_vals):
            flat = vals.reshape(-1)
            scanned += flat.size
            mean, std = flat.mean(), flat.std()
            centred = flat - mean
            summaries[i] = [
                mean,
                std,
                (centred**3).mean() / max(std**3, 1e-12),
                (centred**4).mean() / max(std**4, 1e-12),
            ]
            counts, _ = np.histogram(flat, bins=edges)
            total = counts.sum()
            histograms[i] = counts / total if total > 0 else 1.0 / hist_bins
        comm.account_compute(float(scanned))
        meter.record(flops=3.0 * scanned, nbytes=8.0 * scanned, device="cpu")

        selected = _phase1_select(
            comm,
            sub.hypercubes,
            summaries,
            histograms,
            n_cubes,
            sub.num_hypercubes,
            sub.num_clusters,
            root_rng,
        )

        # Phase 2 over my share of the selected cubes.
        slo, shi = block_bounds(len(selected), comm.size, comm.rank)
        my_selected = selected[slo:shi]
        my_points: list[PointSet] = []
        my_full: list[Hypercube] = []
        phase2_scanned = 0
        sampler = None
        if sub.method not in ("full",):
            kwargs = {}
            if sub.method in ("maxent", "stratified"):
                kwargs["n_clusters"] = sub.num_clusters
            sampler = get_sampler(sub.method, **kwargs)
        for cube_id in my_selected:
            s_idx, origin = index[int(cube_id)]
            cube = extract_hypercube(dataset.snapshots[s_idx], origin, cube_shape, point_vars)
            cube.meta["snapshot"] = s_idx
            cube.meta["cube_id"] = int(cube_id)
            phase2_scanned += cube.n_points
            if sub.method == "full":
                my_full.append(cube)
                continue
            assert sampler is not None
            features = _features_for(sub.method, cube, cluster_var, input_vars)
            n_draw = min(sub.num_samples, cube.n_points)
            idx = sampler.sample(features, n_draw, rng)
            ps = cube.select_points(idx, point_vars)
            ps.meta.update(
                method=sub.method,
                snapshot=s_idx,
                cube_id=int(cube_id),
                cube_shape=list(cube_shape),
            )
            my_points.append(ps)
        comm.account_compute(_METHOD_COST[sub.method] * float(phase2_scanned))
        meter.record(
            flops=_METHOD_COST[sub.method] * 2.0 * phase2_scanned,
            nbytes=8.0 * phase2_scanned * len(point_vars),
            device="cpu",
        )
        scanned += phase2_scanned

        # Gather results on rank 0.
        gathered_pts = comm.gather(my_points, root=0)
        gathered_full = comm.gather(my_full, root=0)
        total_scanned = comm.allreduce(scanned, op="sum")
        meter.add_elapsed(comm.clock.t)

    points: PointSet | None = None
    cubes: list[Hypercube] | None = None
    if comm.rank == 0:
        if sub.method == "full":
            cubes = [c for chunk in gathered_full for c in chunk]
        else:
            flat = [p for chunk in gathered_pts for p in chunk]
            points = PointSet.concatenate(flat) if flat else None
    return SubsampleResult(
        points=points,
        cubes=cubes,
        selected_cube_ids=np.asarray(selected),
        n_candidate_cubes=n_cubes,
        n_points_scanned=int(total_scanned),
        energy=meter,
        virtual_time=comm.clock.t,
        meta={
            "method": sub.method,
            "hypercubes": sub.hypercubes,
            "num_samples": sub.num_samples,
            "rank": comm.rank,
            "size": comm.size,
        },
    )


def subsample(
    dataset: TurbulenceDataset,
    config: CaseConfig,
    nranks: int = 1,
    seed: int = 0,
    model: PerfModel | None = None,
) -> SubsampleResult:
    """Convenience wrapper: launch the SPMD pipeline and return rank 0's result.

    The returned result's ``virtual_time`` is the makespan (slowest rank) and
    its energy meter is the merge of all ranks' meters.
    """
    # Materialize derived variables once, outside the parallel region.
    for snap in dataset.snapshots:
        snap.get(dataset.cluster_var)

    spmd = run_spmd(run_subsample, nranks, dataset, config, seed=seed, model=model)
    root: SubsampleResult = spmd[0]
    merged = EnergyMeter()
    for res in spmd.values:
        if res.energy is not None:
            merged.merge(res.energy)
    merged.elapsed = spmd.virtual_time
    root.energy = merged
    root.virtual_time = spmd.virtual_time
    return root
