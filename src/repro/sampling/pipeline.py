"""The distributed two-phase subsampling pipeline (= the paper's subsample.py).

Runs SPMD over a :class:`~repro.parallel.comm.Communicator`, mirroring
``srun -n N python subsample.py case.yaml``:

1.  every rank deterministically enumerates the hypercube tiling of all
    snapshots and takes its block of the cube list;
2.  **phase 1** — each rank summarizes its cubes (moments + histogram of the
    cluster variable on globally agreed edges); summaries are gathered to
    rank 0, which runs the registered
    :class:`~repro.sampling.selectors.CubeSelector` named by the case's
    ``hypercubes:`` key (Hmaxent / Hrandom / entropy / anything third-party)
    and broadcasts the selected cube ids;
3.  **phase 2** — each rank runs the configured point sampler (Xmaxent /
    UIPS / random / LHS / stratified) inside its share of the selected cubes,
    or keeps the cubes fully dense (``method='full'``);
4.  results are gathered to rank 0 and concatenated.

Since the stream-first redesign :func:`subsample` is the single entry point
for all three ingestion modes: pass a resident
:class:`~repro.data.dataset.TurbulenceDataset` (or
:class:`~repro.data.sources.InMemorySource`) for batch, a
:class:`~repro.data.sources.ShardDirSource` (any registered shard codec;
optionally behind a :class:`~repro.data.sources.RemoteTieredSource`) for
out-of-core shards, or a
:class:`~repro.data.sources.SimulationSource` for in-situ generation — the
stage pipeline fetches snapshots through the source on demand and never
requires the dataset to be resident.  ``mode="stream"`` switches to the
single-pass streaming samplers (:mod:`repro.sampling.streaming`) registered
beside the offline ones, which sample while the data streams by without a
phase-2 revisit.

The stage pipeline itself lives in :mod:`repro.sampling.stages` as
composable :class:`~repro.sampling.stages.Stage` objects (CubeIndex →
Phase1Summarize → CubeSelect → PointSample → Gather) driven by
:class:`~repro.sampling.stages.SubsamplePipeline`; this module keeps the
historical entry points ``run_subsample`` / ``subsample`` as thin
seed-for-seed-equivalent wrappers over the default stage list.

Each rank meters its own energy (thread-local
:class:`~repro.energy.meter.EnergyMeter`) and charges compute work to its
virtual clock, so the same run yields Fig 7's scalability numbers (virtual
makespan vs rank count) and Fig 8's energy numbers.  Per-method work-unit
costs come from the ``cost_per_point`` attribute on the sampler/selector
classes, so registered third-party strategies need no cost-table entry.
"""

from __future__ import annotations

from repro.data.dataset import TurbulenceDataset
from repro.data.sources import InMemorySource, SimulationSource, SnapshotSource, as_source
from repro.energy.meter import EnergyMeter
from repro.parallel.comm import Communicator
from repro.parallel.perfmodel import PerfModel
from repro.parallel.spmd import run_spmd
from repro.sampling.stages import SubsamplePipeline, SubsampleResult
from repro.utils.config import CaseConfig

__all__ = ["SubsampleResult", "SubsamplePipeline", "run_subsample", "subsample"]


def run_subsample(
    comm: Communicator,
    data: SnapshotSource | TurbulenceDataset,
    config: CaseConfig,
    seed: int = 0,
    hist_bins: int = 50,
) -> SubsampleResult:
    """Execute the two-phase pipeline on one rank of an SPMD run.

    Thin wrapper over the default :class:`SubsamplePipeline` stage list;
    `data` is any snapshot source or a resident dataset.
    """
    return SubsamplePipeline().run(comm, data, config, seed=seed, hist_bins=hist_bins)


def subsample(
    data: SnapshotSource | TurbulenceDataset,
    config: CaseConfig,
    nranks: int = 1,
    seed: int = 0,
    model: PerfModel | None = None,
    mode: str = "batch",
    owned_shards: bool = False,
    on_rank_failure: str = "raise",
    fault_hook=None,
    backend: str = "thread",
) -> SubsampleResult:
    """One ``subsample()`` for batch, out-of-core, and in-situ ingestion.

    ``mode="batch"`` (default) launches the two-phase SPMD pipeline over any
    :class:`~repro.data.sources.SnapshotSource` and returns rank 0's result;
    the returned ``virtual_time`` is the makespan (slowest rank) and the
    energy meter is the merge of all ranks' meters.  ``mode="stream"`` runs
    the single-pass streaming samplers instead (no phase-2 revisit; with
    ``nranks > 1`` each rank streams its own snapshot partition and the
    per-rank states merge by weighted draw — see
    :func:`repro.sampling.streaming.run_stream_subsample`).

    The stream-only knobs: ``owned_shards`` gives each rank a private
    :class:`~repro.data.sources.ShardDirSource` over a disjoint shard set
    (per-rank LRU + prefetcher, no shared cache), ``on_rank_failure``
    chooses between reweighting the merge by delivered mass
    (``"reweight"``) and failing the draw (``"raise"``) when a producer
    dies mid-span, and ``fault_hook`` injects such deaths for testing.

    ``backend`` applies to both modes and picks the SPMD substrate:
    ``"thread"`` (deterministic virtual-time modeling, the default) or
    ``"process"`` (forked workers with shared-memory transport — real
    wall-clock parallelism, byte-identical results for the same
    (seed, nranks)).  See :func:`repro.parallel.spmd.run_spmd`.
    """
    source = as_source(data)
    if mode == "stream":
        from repro.sampling.streaming import run_stream_subsample

        return run_stream_subsample(
            source, config, seed=seed, nranks=nranks, model=model,
            owned_shards=owned_shards, on_rank_failure=on_rank_failure,
            fault_hook=fault_hook, backend=backend,
        )
    if mode != "batch":
        raise ValueError(f"mode must be 'batch' or 'stream', got {mode!r}")
    if owned_shards or fault_hook is not None or on_rank_failure != "raise":
        raise ValueError(
            "owned_shards / on_rank_failure / fault_hook apply to "
            "mode='stream' only — the batch pipeline has no partial-stream "
            "merge to configure"
        )

    if isinstance(source, InMemorySource):
        # Materialize derived variables once, outside the parallel region
        # (resident data only — lazy sources stay lazy).
        for snap in source.dataset.snapshots:
            snap.get(source.cluster_var)
    elif (
        isinstance(source, SimulationSource)
        and nranks > 1
        and source.max_cached < source.n_snapshots
    ):
        # Thread ranks interleave snapshot requests; a replay-on-backstep
        # source would re-run the simulation O(ranks * snapshots) times.
        raise ValueError(
            "a SimulationSource with max_cached < n_snapshots would replay "
            "the simulation for nearly every cross-rank access under "
            f"nranks={nranks}; use nranks=1, raise max_cached to "
            f">= {source.n_snapshots}, or shard the stream to disk first"
        )

    spmd = run_spmd(
        run_subsample, nranks, source, config, seed=seed, model=model, backend=backend
    )
    root: SubsampleResult = spmd[0]
    merged = EnergyMeter()
    for res in spmd.values:
        if res.energy is not None:
            merged.merge(res.energy)
    merged.elapsed = spmd.virtual_time
    root.energy = merged
    root.virtual_time = spmd.virtual_time
    return root
