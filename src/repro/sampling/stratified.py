"""Stratified (clustering-based) sampling — category 2 in the paper's §2.

Partition the feature space into strata with K-means and draw the budget
from each stratum.  ``allocation='equal'`` gives every stratum the same
share (boosting rare regions); ``'proportional'`` reproduces the data's own
mass distribution (closer to random sampling).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.sampling.base import Sampler, register_sampler

__all__ = ["StratifiedSampler", "allocate_counts"]


def allocate_counts(
    n: int, sizes: np.ndarray, weights: np.ndarray | None = None
) -> np.ndarray:
    """Split a budget of `n` across strata with capacities `sizes`.

    Largest-remainder apportionment of ``n * weights`` (uniform weights by
    default), then overflow beyond any stratum's capacity is redistributed to
    strata with headroom.  Always sums to exactly `n` (requires Σ sizes >= n).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    k = len(sizes)
    if k == 0:
        raise ValueError("need at least one stratum")
    if sizes.sum() < n:
        raise ValueError(f"cannot draw {n} samples from {sizes.sum()} points")
    if weights is None:
        weights = np.full(k, 1.0 / k)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (k,) or np.any(weights < 0):
        raise ValueError("weights must be non-negative with one entry per stratum")
    total = weights.sum()
    weights = weights / total if total > 0 else np.full(k, 1.0 / k)

    ideal = n * weights
    floor = np.floor(ideal).astype(np.int64)
    counts = np.minimum(floor, sizes)
    deficit = int(n - counts.sum())
    # Fast path: nothing hit capacity, so every remainder is < 1 and each
    # stratum takes at most one +1 — hand the deficit to the largest
    # remainders in one stable sort instead of one argmax per unit.  The
    # stable descending order breaks ties at the lowest index, exactly like
    # repeated argmax over the shrinking remainders.
    if deficit > 0 and np.array_equal(counts, floor):
        eligible = np.flatnonzero(counts < sizes)
        if deficit <= eligible.size:
            order = eligible[np.argsort(-(ideal - counts)[eligible], kind="stable")]
            counts[order[:deficit]] += 1
            return counts
    # Largest remainders first, respecting capacity.
    while counts.sum() < n:
        remainder = np.where(counts < sizes, ideal - counts, -np.inf)
        nxt = int(np.argmax(remainder))
        if not np.isfinite(remainder[nxt]):
            raise AssertionError("unreachable: no capacity left but sum(sizes) >= n")
        counts[nxt] += 1
    return counts


@register_sampler("stratified")
class StratifiedSampler(Sampler):
    """K-means strata + per-stratum random draws."""

    cost_per_point = 8.0

    def __init__(self, n_clusters: int = 20, allocation: str = "equal") -> None:
        if allocation not in ("equal", "proportional"):
            raise ValueError("allocation must be 'equal' or 'proportional'")
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.allocation = allocation

    def select(self, features: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        k = min(self.n_clusters, features.shape[0])
        km = KMeans(n_clusters=k, rng=rng).fit(features)
        labels = km.labels_
        k_eff = km.cluster_centers_.shape[0]
        sizes = np.bincount(labels, minlength=k_eff)
        weights = sizes / sizes.sum() if self.allocation == "proportional" else None
        counts = allocate_counts(n, sizes, weights)
        chosen: list[np.ndarray] = []
        for c in range(k_eff):
            if counts[c] == 0:
                continue
            members = np.flatnonzero(labels == c)
            chosen.append(rng.choice(members, size=counts[c], replace=False))
        return np.concatenate(chosen)
