"""Streaming / in-situ sampling (the paper's first future-work item).

The paper's outlook calls for "integration with in-situ, streaming, and
online training frameworks like SmartSim": sampling while the simulation
runs, without ever materializing the full dataset.  Two single-pass
samplers, registered in the stream-sampler registry
(:mod:`repro.sampling.base`) under the offline names they mirror so a
case's ``method:`` key resolves in both ingestion modes:

* ``random`` → :class:`ReservoirStream` /  :class:`ReservoirSampler` —
  classic Algorithm-R reservoir sampling: a uniform random subset of an
  unbounded stream in O(capacity) memory, with the per-chunk replacement
  draws fully vectorized.
* ``maxent`` → :class:`StreamingMaxEnt` — an online MaxEnt analogue:
  cluster centroids adapt via mini-batch K-means ``partial_fit`` as chunks
  stream through, each cluster keeps its own value histogram and reservoir,
  and on :meth:`finalize` the per-cluster budgets follow the same
  node-strength weighting as the offline sampler.  One pass, bounded
  memory, and the same tail-seeking behaviour.

:func:`run_stream_subsample` drives either over any
:class:`~repro.data.sources.SnapshotSource` — it is what
``subsample(source, config, mode="stream")`` and
``Experiment...subsample(mode="stream")`` execute.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import MiniBatchKMeans
from repro.data.points import PointSet
from repro.data.sources import SnapshotSource, as_source
from repro.energy.meter import EnergyMeter
from repro.parallel.perfmodel import PerfModel
from repro.sampling.base import (
    StreamSampler,
    get_stream_sampler,
    register_stream_sampler,
    stream_sampler_cls,
)
from repro.sampling.entropy import (
    entropy_adjacency,
    node_strengths,
    strength_weights,
)
from repro.sampling.stratified import allocate_counts
from repro.utils.config import CaseConfig
from repro.utils.rng import resolve_rng

__all__ = [
    "ReservoirSampler",
    "ReservoirStream",
    "StreamingMaxEnt",
    "run_stream_subsample",
]


class ReservoirSampler:
    """Uniform sampling of a stream with Algorithm R (Vitter 1985).

    ``feed`` is vectorized per chunk: the under-capacity fill is a block
    copy, and the replacement draws are one batched ``rng.integers`` call
    (one uniform draw per streamed row, exactly as the scalar algorithm
    makes), with sequential last-write-wins semantics recovered by keeping
    each slot's final hit.  The retention distribution is Algorithm R's.
    """

    def __init__(self, capacity: int, rng: np.random.Generator | int | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.rng = resolve_rng(rng)
        self._buf: np.ndarray | None = None
        self._size = 0
        self.n_seen = 0

    def __len__(self) -> int:
        """Number of rows currently held (= min(capacity, n_seen))."""
        return self._size

    def feed(self, chunk: np.ndarray) -> None:
        """Offer a chunk of rows (n, d) to the reservoir."""
        chunk = np.atleast_2d(np.asarray(chunk, dtype=np.float64))
        n = chunk.shape[0]
        if n == 0:
            return
        if self._buf is None:
            self._buf = np.empty((self.capacity, chunk.shape[1]))
        elif chunk.shape[1] != self._buf.shape[1]:
            raise ValueError(
                f"chunk width {chunk.shape[1]} != reservoir width {self._buf.shape[1]}"
            )
        pos = 0
        if self._size < self.capacity:
            take = min(self.capacity - self._size, n)
            self._buf[self._size : self._size + take] = chunk[:take]
            self._size += take
            pos = take
        m = n - pos
        if m > 0:
            # Row k of the remainder is stream element number
            # n_seen + pos + k + 1; Algorithm R draws j ~ U{0..element-1}
            # and replaces slot j when j < capacity.
            highs = self.n_seen + pos + 1 + np.arange(m)
            draws = self.rng.integers(highs)
            hit = np.nonzero(draws < self.capacity)[0]
            if hit.size:
                # Sequential semantics: the last row hitting a slot wins.
                slots_rev = draws[hit][::-1]
                rows_rev = hit[::-1]
                winners, first = np.unique(slots_rev, return_index=True)
                self._buf[winners] = chunk[pos + rows_rev[first]]
        self.n_seen += n

    @property
    def sample(self) -> np.ndarray:
        """The current reservoir, shape (min(capacity, n_seen), d)."""
        if self._size == 0:
            raise ValueError("reservoir is empty — feed data first")
        return self._buf[: self._size].copy()


def _validated_chunk(
    values: np.ndarray, payload: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """Shared feed() validation: (n,) values + (n, d) payload rows."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if payload is None:
        payload = values[:, None]
    payload = np.atleast_2d(np.asarray(payload, dtype=np.float64))
    if payload.shape[0] != values.size:
        raise ValueError("payload row count must match values")
    return values, payload


@register_stream_sampler("random")
class ReservoirStream(StreamSampler):
    """The ``random`` method's streaming analogue: one shared reservoir
    holding ``[value, payload...]`` rows — uniform over the whole stream."""

    cost_per_point = 1.0  # mirrors the offline RandomSampler

    def __init__(
        self,
        n_samples: int,
        value_range: tuple[float, float] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        # value_range is part of the constructor contract but uniform
        # sampling never bins values, so it is ignored.
        self.reservoir = ReservoirSampler(n_samples, rng=rng)
        self.n_seen = 0

    def feed(self, values: np.ndarray, payload: np.ndarray | None = None) -> None:
        values, payload = _validated_chunk(values, payload)
        if values.size == 0:
            return
        self.reservoir.feed(np.column_stack([values, payload]))
        self.n_seen = self.reservoir.n_seen

    def finalize(self) -> np.ndarray:
        return self.reservoir.sample


class _ClusterState:
    """Per-cluster histogram + reservoir for the streaming MaxEnt sampler."""

    def __init__(self, bins: int, reservoir: int, rng: np.random.Generator) -> None:
        self.counts = np.zeros(bins)
        self.reservoir = ReservoirSampler(reservoir, rng=rng)
        self.n_seen = 0


@register_stream_sampler("maxent")
class StreamingMaxEnt(StreamSampler):
    """Single-pass MaxEnt sampling over a chunked stream of points.

    Parameters
    ----------
    n_samples:
        Total budget returned by :meth:`finalize`.
    n_clusters:
        Number of online K-means clusters.
    value_range:
        (lo, hi) range of the cluster variable for the shared histogram
        edges (streaming cannot see global min/max in advance; pass the
        simulation's physical bounds or an estimate — out-of-range values
        clip to the edge bins).
    reservoir_factor:
        Each cluster's reservoir holds ``reservoir_factor * n_samples``
        candidates so post-hoc budgets can be met even for skewed streams.
    """

    cost_per_point = 10.0  # mirrors the offline MaxEntSampler
    needs_value_range = True

    def __init__(
        self,
        n_samples: int,
        value_range: tuple[float, float],
        n_clusters: int = 10,
        bins: int = 50,
        reservoir_factor: float = 2.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if n_clusters < 2:
            raise ValueError("n_clusters must be >= 2")
        if value_range is None or not value_range[1] > value_range[0]:
            raise ValueError("value_range must be increasing")
        self.n_samples = n_samples
        self.n_clusters = n_clusters
        self.bins = bins
        self.edges = np.linspace(value_range[0], value_range[1], bins + 1)
        self.rng = resolve_rng(rng)
        self._km = MiniBatchKMeans(n_clusters=n_clusters, batch_size=1024, rng=self.rng)
        per_cluster = max(n_samples, int(reservoir_factor * n_samples))
        self._states = [
            _ClusterState(bins, per_cluster, self.rng) for _ in range(n_clusters)
        ]
        self.n_seen = 0

    def feed(self, values: np.ndarray, payload: np.ndarray | None = None) -> None:
        """Stream one chunk: `values` (n,) cluster variable, optional payload
        rows (n, d) carried alongside (defaults to the values themselves)."""
        values, payload = _validated_chunk(values, payload)
        if values.size == 0:
            return
        feats = values[:, None]
        self._km.partial_fit(feats)
        labels = self._km.predict(feats)
        self.n_seen += values.size
        idx = np.clip(np.searchsorted(self.edges, values, side="right") - 1, 0, self.bins - 1)
        for c in range(self.n_clusters):
            mask = labels == c
            if not mask.any():
                continue
            state = self._states[c]
            state.n_seen += int(mask.sum())
            np.add.at(state.counts, idx[mask], 1.0)
            state.reservoir.feed(np.column_stack([values[mask], payload[mask]]))

    def finalize(self) -> np.ndarray:
        """Entropy-weighted draw across cluster reservoirs.

        Returns rows of ``[value, payload...]``; at most `n_samples` rows
        (fewer only if the whole stream was smaller).
        """
        if self.n_seen == 0:
            raise ValueError("no data streamed")
        active = [s for s in self._states if s.n_seen > 0]
        dists = np.stack([
            s.counts / s.counts.sum() if s.counts.sum() > 0 else np.full(self.bins, 1.0 / self.bins)
            for s in active
        ])
        weights = strength_weights(node_strengths(entropy_adjacency(dists)))
        capacities = np.array([len(s.reservoir) for s in active])
        budget = min(self.n_samples, int(capacities.sum()))
        counts = allocate_counts(budget, capacities, weights)
        chosen = []
        for s, c in zip(active, counts):
            if c == 0:
                continue
            pool = s.reservoir.sample
            take = self.rng.choice(len(pool), size=int(c), replace=False)
            chosen.append(pool[take])
        return np.concatenate(chosen)

    def to_pointset(self, coords_cols: int = 0) -> PointSet:
        """Finalize into a PointSet (first `coords_cols` payload columns are
        coordinates; the value column becomes variable 'value')."""
        rows = self.finalize()
        values = rows[:, 0]
        payload = rows[:, 1:]
        if coords_cols > payload.shape[1]:
            raise ValueError("coords_cols exceeds payload width")
        coords = payload[:, :coords_cols] if coords_cols else np.zeros((len(rows), 1))
        return PointSet(coords=coords, values={"value": values},
                        meta={"method": "streaming-maxent", "n_seen": self.n_seen})


def run_stream_subsample(
    source: SnapshotSource,
    config: CaseConfig,
    seed: int = 0,
    chunk_rows: int = 65536,
    value_range: tuple[float, float] | None = None,
    hist_bins: int = 50,
):
    """Single-pass streaming subsample over any snapshot source.

    Streams the source as bounded row chunks through the registered
    streaming analogue of the case's ``method`` (reservoir for ``random``,
    online MaxEnt for ``maxent``), without cube selection and without a
    phase-2 revisit — the in-situ path where the data flies by exactly
    once.  The point budget matches the batch pipeline's total
    (``num_hypercubes * num_samples``).

    The MaxEnt histogram range comes from `value_range`, the source's
    :meth:`~repro.data.sources.SnapshotSource.value_range_hint`, or (last
    resort) the first chunk's span widened 3×; out-of-range values clip to
    the edge bins.

    Returns a :class:`~repro.sampling.stages.SubsampleResult` whose
    ``points`` carry per-point times and ``meta["mode"] == "stream"``.
    """
    from repro.sampling.stages import SubsampleResult

    source = as_source(source)
    sub = config.subsample
    if sub.method == "full":
        raise ValueError(
            "method 'full' keeps dense cubes and has no single-pass "
            "streaming analogue; use mode='batch'"
        )
    # Resolve the registry up front so unsupported methods fail before the
    # source does any work (a SimulationSource would otherwise run the
    # solver for a whole snapshot first).
    sampler_cls = stream_sampler_cls(sub.method)
    cluster_var = source.cluster_var
    point_vars = list(dict.fromkeys(
        [*source.input_vars, *source.output_vars, cluster_var]
    ))
    vcol = point_vars.index(cluster_var)
    budget = sub.num_hypercubes * sub.num_samples
    kwargs = {}
    if sub.method == "maxent":
        kwargs = {"n_clusters": sub.num_clusters, "bins": hist_bins}
    d = source.ndim
    sampler = None
    perf = PerfModel()
    with EnergyMeter() as meter:
        for _, time, coords, table in source.iter_tables(point_vars, chunk_rows=chunk_rows):
            values = table[:, vcol]
            if sampler is None:
                vr = value_range
                if vr is None and sampler_cls.needs_value_range:
                    # Only binning samplers pay for a range (the hint can be
                    # a full extra scan on in-memory sources).
                    vr = source.value_range_hint(cluster_var)
                    if vr is None and values.size:
                        lo, hi = float(values.min()), float(values.max())
                        span = (hi - lo) or 1.0
                        vr = (lo - span, hi + span)
                sampler = get_stream_sampler(
                    sub.method, n_samples=budget, value_range=vr, rng=seed, **kwargs
                )
            payload = np.column_stack([np.full(values.shape[0], time), coords, table])
            sampler.feed(values, payload)
            meter.record(
                flops=sampler.cost_per_point * 2.0 * values.size,
                nbytes=float(payload.nbytes),
                device="cpu",
            )
            # Charge the scan to virtual time with the same work-unit model
            # the batch pipeline's communicator clock uses, so stream-mode
            # energy/makespan numbers are comparable to batch-mode ones.
            meter.add_elapsed(perf.compute_time(sampler.cost_per_point * values.size))
    if sampler is None or sampler.n_seen == 0:
        raise ValueError("source produced no data to stream")
    rows = sampler.finalize()
    points = PointSet(
        coords=rows[:, 2 : 2 + d],
        values={v: rows[:, 2 + d + j] for j, v in enumerate(point_vars)},
        time=rows[:, 1],
        meta={
            "method": sub.method,
            "mode": "stream",
            "n_seen": int(sampler.n_seen),
            "source": type(source).__name__,
        },
    )
    return SubsampleResult(
        points=points,
        cubes=None,
        selected_cube_ids=np.empty(0, dtype=np.int64),
        n_candidate_cubes=0,
        n_points_scanned=int(sampler.n_seen),
        energy=meter,
        virtual_time=meter.elapsed,
        meta={
            "method": sub.method,
            "hypercubes": sub.hypercubes,
            "num_samples": sub.num_samples,
            "mode": "stream",
            "seed": seed,
            "case": config.to_dict(),
        },
    )
