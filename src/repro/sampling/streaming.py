"""Streaming / in-situ sampling (the paper's first future-work item).

The paper's outlook calls for "integration with in-situ, streaming, and
online training frameworks like SmartSim": sampling while the simulation
runs, without ever materializing the full dataset.  Two single-pass
samplers, registered in the stream-sampler registry
(:mod:`repro.sampling.base`) under the offline names they mirror so a
case's ``method:`` key resolves in both ingestion modes:

* ``random`` → :class:`ReservoirStream` /  :class:`ReservoirSampler` —
  classic Algorithm-R reservoir sampling: a uniform random subset of an
  unbounded stream in O(capacity) memory, with the per-chunk replacement
  draws fully vectorized.
* ``maxent`` → :class:`StreamingMaxEnt` — an online MaxEnt analogue:
  cluster centroids adapt via mini-batch K-means ``partial_fit`` as chunks
  stream through, each cluster keeps its own value histogram and reservoir,
  and on :meth:`finalize` the per-cluster budgets follow the same
  node-strength weighting as the offline sampler.  One pass, bounded
  memory, and the same tail-seeking behaviour.

Both samplers support the multi-producer merge contract
(:meth:`~repro.sampling.base.StreamSampler.merge` /
:meth:`~repro.sampling.base.StreamSampler.merge_all`): per-rank states
combine by weighted draw — reservoirs via the classic distributed
reservoir merge (each retained row stands for ``n_seen/len`` stream rows;
slots fill by weighted draw without replacement), MaxEnt by aligning
clusters on their 1-D centroids and merging per-cluster histograms and
reservoirs — so a K-producer run is distributionally equivalent to a
single producer over the whole stream, and bit-deterministic given the
seed and rank count.

:func:`run_stream_subsample` drives either over any
:class:`~repro.data.sources.SnapshotSource` — it is what
``subsample(source, config, mode="stream")`` and
``Experiment...subsample(mode="stream")`` execute.  With ``nranks > 1`` it
launches one SPMD producer per rank over a
:class:`~repro.data.sources.PartitionedSource` snapshot span, gathers the
per-rank sampler states, and merges on rank 0.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.cluster.kmeans import MiniBatchKMeans
from repro.data.points import PointSet
from repro.data.sources import (
    PartitionedSource,
    ShardDirSource,
    SimulationSource,
    SnapshotSource,
    aggregate_cache_info,
    as_source,
)
from repro.data.store import OwnedShardLayout
from repro.energy.meter import EnergyMeter
from repro.parallel.partition import ProducerReport, stream_partitions
from repro.parallel.perfmodel import PerfModel
from repro.parallel.spmd import SPMD_BACKENDS, run_spmd
from repro.parallel.threadcomm import RankFailure
from repro.sampling.base import (
    StreamSampler,
    failed_producers_error,
    fold_weighted_merge,
    get_stream_sampler,
    register_stream_sampler,
    stream_sampler_cls,
)
from repro.sampling.entropy import (
    entropy_adjacency,
    node_strengths,
    strength_weights,
)
from repro.sampling.stratified import allocate_counts
from repro.utils.config import CaseConfig
from repro.utils.rng import resolve_rng, spawn_rngs

__all__ = [
    "ReservoirSampler",
    "ReservoirStream",
    "StreamingMaxEnt",
    "merge_reservoir_rows",
    "run_stream_subsample",
]


def merge_reservoir_rows(
    pools: list[tuple[np.ndarray, float]],
    capacity: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Weighted-draw merge of retained-row pools into one reservoir.

    ``pools`` is ``[(rows_i, weight_i), ...]`` where ``rows_i`` is what
    producer `i` retained and ``weight_i`` the stream mass it summarizes
    (its ``n_seen``).  A uniform ``m``-subset of the union stream decomposes
    exactly into a multivariate-hypergeometric split of `m` across the
    streams followed by uniform within-stream choice — so the merge draws
    per-pool counts from that law (population = the stream masses) and
    takes each pool's share uniformly without replacement from its retained
    rows.  With true stream counts as weights and per-producer capacity at
    least `capacity`, every stream row survives with equal probability: the
    merged reservoir is distributed exactly as a single producer's.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    live = [(np.atleast_2d(np.asarray(r, dtype=np.float64)), float(w))
            for r, w in pools if len(r) > 0 and w > 0]
    if not live:
        return np.empty((0, 1))
    widths = {r.shape[1] for r, _ in live}
    if len(widths) != 1:
        raise ValueError(f"pools disagree on row width: {sorted(widths)}")
    sizes = np.array([len(r) for r, _ in live], dtype=np.int64)
    # Integer stream masses for the hypergeometric draw.  A mass below a
    # pool's row count is a deliberate down-weighting: that pool then
    # contributes at most `mass` rows, and the output shrinks if the total
    # declared mass undercuts the capacity.
    mass = np.maximum(np.rint([w for _, w in live]).astype(np.int64), 1)
    m = int(min(capacity, sizes.sum(), mass.sum()))
    counts = rng.multivariate_hypergeometric(mass, m)
    # A pool can be allotted more than it holds only when its own capacity
    # was below the merge capacity; clip and hand the deficit to pools with
    # spare rows (largest spare first — deterministic repair).
    counts = np.minimum(counts, sizes)
    while counts.sum() < m:
        spare = sizes - counts
        counts[int(np.argmax(spare))] += 1
    out = np.concatenate([
        rows[rng.choice(len(rows), size=int(c), replace=False)]
        for (rows, _), c in zip(live, counts) if c > 0
    ])
    return out


class ReservoirSampler:
    """Uniform sampling of a stream with Algorithm R (Vitter 1985).

    ``feed`` is vectorized per chunk: the under-capacity fill is a block
    copy, and the replacement draws are one batched ``rng.integers`` call
    (one uniform draw per streamed row, exactly as the scalar algorithm
    makes), with sequential last-write-wins semantics recovered by keeping
    each slot's final hit.  The retention distribution is Algorithm R's.
    """

    def __init__(self, capacity: int, rng: np.random.Generator | int | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.rng = resolve_rng(rng)
        self._buf: np.ndarray | None = None
        self._size = 0
        self.n_seen = 0
        #: stream mass this reservoir summarizes — equals ``n_seen`` until a
        #: weighted merge reweights it; merges draw on (and update) this, so
        #: chained weighted merges keep their requested proportions.
        self.stream_mass = 0.0

    def __len__(self) -> int:
        """Number of rows currently held (= min(capacity, n_seen))."""
        return self._size

    def feed(self, chunk: np.ndarray) -> None:
        """Offer a chunk of rows (n, d) to the reservoir."""
        chunk = np.atleast_2d(np.asarray(chunk, dtype=np.float64))
        n = chunk.shape[0]
        if n == 0:
            return
        if self._buf is None:
            self._buf = np.empty((self.capacity, chunk.shape[1]))
        elif chunk.shape[1] != self._buf.shape[1]:
            raise ValueError(
                f"chunk width {chunk.shape[1]} != reservoir width {self._buf.shape[1]}"
            )
        pos = 0
        if self._size < self.capacity:
            take = min(self.capacity - self._size, n)
            self._buf[self._size : self._size + take] = chunk[:take]
            self._size += take
            pos = take
        m = n - pos
        if m > 0:
            # Row k of the remainder is stream element number
            # n_seen + pos + k + 1; Algorithm R draws j ~ U{0..element-1}
            # and replaces slot j when j < capacity.
            highs = self.n_seen + pos + 1 + np.arange(m)
            draws = self.rng.integers(highs)
            hit = np.nonzero(draws < self.capacity)[0]
            if hit.size:
                # Sequential semantics: the last row hitting a slot wins.
                slots_rev = draws[hit][::-1]
                rows_rev = hit[::-1]
                winners, first = np.unique(slots_rev, return_index=True)
                self._buf[winners] = chunk[pos + rows_rev[first]]
        self.n_seen += n
        self.stream_mass += n

    @property
    def sample(self) -> np.ndarray:
        """The current reservoir, shape (min(capacity, n_seen), d)."""
        if self._size == 0:
            raise ValueError("reservoir is empty — feed data first")
        return self._buf[: self._size].copy()

    def reweight(self, mass: float) -> None:
        """Declare the stream mass this reservoir stands for in merges
        (overrides the count-based default — e.g. importance-reweighting a
        producer, or down-weighting a partial stream)."""
        if mass <= 0:
            raise ValueError("stream mass must be > 0")
        self.stream_mass = float(mass)

    def merge(
        self,
        other: ReservoirSampler,
        weight: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> ReservoirSampler:
        """Fold another reservoir into this one by weighted draw.

        After the merge this reservoir is distributed as if it had seen both
        streams itself (``weight`` overrides the stream mass of `other`,
        default ``other.stream_mass`` = its row count unless it was itself
        reweighted).  This side's mass is its own ``stream_mass``, and the
        merged mass is the sum — so chained weighted merges keep their
        requested proportions.  Mutates and returns ``self``.
        """
        if not isinstance(other, ReservoirSampler):
            raise TypeError(f"cannot merge {type(other).__name__} into a reservoir")
        if other.n_seen == 0:
            return self
        rng = self.rng if rng is None else resolve_rng(rng)
        w_other = float(other.stream_mass if weight is None else weight)
        if w_other <= 0:
            raise ValueError("merge weight must be > 0")
        if self._buf is not None and other._buf is not None \
                and self._buf.shape[1] != other._buf.shape[1]:
            raise ValueError(
                f"reservoir width {other._buf.shape[1]} != {self._buf.shape[1]}"
            )
        pools = []
        if self._size:
            pools.append((self._buf[: self._size], float(self.stream_mass)))
        pools.append((other._buf[: other._size], w_other))
        merged = merge_reservoir_rows(pools, self.capacity, rng)
        if self._buf is None or self._buf.shape[1] != merged.shape[1]:
            self._buf = np.empty((self.capacity, merged.shape[1]))
        self._buf[: len(merged)] = merged
        self._size = len(merged)
        self.n_seen += other.n_seen
        self.stream_mass += w_other
        return self

    @classmethod
    def merge_all(
        cls,
        reservoirs: list[ReservoirSampler],
        weights: list[float] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> ReservoirSampler:
        """Fold K producers' reservoirs into ``reservoirs[0]`` by repeated
        weighted :meth:`merge` (``weights[i]`` defaults to each reservoir's
        ``n_seen``).  Deterministic for a fixed `rng` seed and order."""
        return fold_weighted_merge(reservoirs, weights, rng, "reservoir")


def _validated_chunk(
    values: np.ndarray, payload: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """Shared feed() validation: (n,) values + (n, d) payload rows."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if payload is None:
        payload = values[:, None]
    payload = np.atleast_2d(np.asarray(payload, dtype=np.float64))
    if payload.shape[0] != values.size:
        raise ValueError("payload row count must match values")
    return values, payload


@register_stream_sampler("random")
class ReservoirStream(StreamSampler):
    """The ``random`` method's streaming analogue: one shared reservoir
    holding ``[value, payload...]`` rows — uniform over the whole stream."""

    cost_per_point = 1.0  # mirrors the offline RandomSampler

    def __init__(
        self,
        n_samples: int,
        value_range: tuple[float, float] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        # value_range is part of the constructor contract but uniform
        # sampling never bins values, so it is ignored.
        self.reservoir = ReservoirSampler(n_samples, rng=rng)
        self.n_seen = 0

    def feed(self, values: np.ndarray, payload: np.ndarray | None = None) -> None:
        values, payload = _validated_chunk(values, payload)
        if values.size == 0:
            return
        self.reservoir.feed(np.column_stack([values, payload]))
        self.n_seen = self.reservoir.n_seen

    def finalize(self) -> np.ndarray:
        return self.reservoir.sample

    def reweight(self, mass: float) -> None:
        """See :meth:`ReservoirSampler.reweight`."""
        self.reservoir.reweight(mass)

    def merge(
        self,
        other: StreamSampler,
        weight: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> ReservoirStream:
        if not isinstance(other, ReservoirStream):
            raise TypeError(f"cannot merge {type(other).__name__} into ReservoirStream")
        self.reservoir.merge(other.reservoir, weight=weight, rng=rng)
        self.n_seen = self.reservoir.n_seen
        return self


class _ClusterState:
    """Per-cluster histogram + reservoir for the streaming MaxEnt sampler."""

    def __init__(self, bins: int, reservoir: int, rng: np.random.Generator) -> None:
        self.counts = np.zeros(bins)
        self.reservoir = ReservoirSampler(reservoir, rng=rng)
        self.n_seen = 0


@register_stream_sampler("maxent")
class StreamingMaxEnt(StreamSampler):
    """Single-pass MaxEnt sampling over a chunked stream of points.

    Parameters
    ----------
    n_samples:
        Total budget returned by :meth:`finalize`.
    n_clusters:
        Number of online K-means clusters.
    value_range:
        (lo, hi) range of the cluster variable for the shared histogram
        edges (streaming cannot see global min/max in advance; pass the
        simulation's physical bounds or an estimate — out-of-range values
        clip to the edge bins).
    reservoir_factor:
        Each cluster's reservoir holds ``reservoir_factor * n_samples``
        candidates so post-hoc budgets can be met even for skewed streams.
    """

    cost_per_point = 10.0  # mirrors the offline MaxEntSampler
    needs_value_range = True

    def __init__(
        self,
        n_samples: int,
        value_range: tuple[float, float],
        n_clusters: int = 10,
        bins: int = 50,
        reservoir_factor: float = 2.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if n_clusters < 2:
            raise ValueError("n_clusters must be >= 2")
        if value_range is None or not value_range[1] > value_range[0]:
            raise ValueError("value_range must be increasing")
        self.n_samples = n_samples
        self.n_clusters = n_clusters
        self.bins = bins
        self.edges = np.linspace(value_range[0], value_range[1], bins + 1)
        self.rng = resolve_rng(rng)
        self._km = MiniBatchKMeans(n_clusters=n_clusters, batch_size=1024, rng=self.rng)
        per_cluster = max(n_samples, int(reservoir_factor * n_samples))
        self._states = [
            _ClusterState(bins, per_cluster, self.rng) for _ in range(n_clusters)
        ]
        self.n_seen = 0

    def feed(self, values: np.ndarray, payload: np.ndarray | None = None) -> None:
        """Stream one chunk: `values` (n,) cluster variable, optional payload
        rows (n, d) carried alongside (defaults to the values themselves)."""
        values, payload = _validated_chunk(values, payload)
        if values.size == 0:
            return
        feats = values[:, None]
        self._km.partial_fit(feats)
        labels = self._km.predict(feats)
        self.n_seen += values.size
        idx = np.clip(np.searchsorted(self.edges, values, side="right") - 1, 0, self.bins - 1)
        for c in range(self.n_clusters):
            mask = labels == c
            if not mask.any():
                continue
            state = self._states[c]
            state.n_seen += int(mask.sum())
            np.add.at(state.counts, idx[mask], 1.0)
            state.reservoir.feed(np.column_stack([values[mask], payload[mask]]))

    def finalize(self) -> np.ndarray:
        """Entropy-weighted draw across cluster reservoirs.

        Returns rows of ``[value, payload...]``; at most `n_samples` rows
        (fewer only if the whole stream was smaller).
        """
        if self.n_seen == 0:
            raise ValueError("no data streamed")
        active = [s for s in self._states if s.n_seen > 0]
        dists = np.stack([
            s.counts / s.counts.sum() if s.counts.sum() > 0 else np.full(self.bins, 1.0 / self.bins)
            for s in active
        ])
        weights = strength_weights(node_strengths(entropy_adjacency(dists)))
        capacities = np.array([len(s.reservoir) for s in active])
        budget = min(self.n_samples, int(capacities.sum()))
        counts = allocate_counts(budget, capacities, weights)
        chosen = []
        for s, c in zip(active, counts):
            if c == 0:
                continue
            pool = s.reservoir.sample
            take = self.rng.choice(len(pool), size=int(c), replace=False)
            chosen.append(pool[take])
        return np.concatenate(chosen)

    def merge(
        self,
        other: StreamSampler,
        weight: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> StreamingMaxEnt:
        """Fold another producer's online-MaxEnt state into this one.

        Clusters are 1-D (the cluster variable), so the two centroid sets
        align by sort order: the j-th lowest centroid here absorbs the j-th
        lowest centroid of `other` — per-cluster histograms add, the
        per-cluster reservoirs merge by weighted draw, and the centroid
        moves to the mass-weighted average.  Requires identical histogram
        geometry (same edges / bins / n_clusters), which every rank of an
        SPMD stream shares by construction.
        """
        if not isinstance(other, StreamingMaxEnt):
            raise TypeError(f"cannot merge {type(other).__name__} into StreamingMaxEnt")
        if (
            self.bins != other.bins
            or self.n_clusters != other.n_clusters
            or not np.array_equal(self.edges, other.edges)
        ):
            raise ValueError(
                "merge requires identical histogram geometry "
                "(same value_range, bins, and n_clusters on every producer)"
            )
        if other.n_seen == 0:
            return self
        rng = self.rng if rng is None else resolve_rng(rng)
        scale = 1.0 if weight is None else float(weight) / other.n_seen
        if scale <= 0:
            raise ValueError("merge weight must be > 0")
        if self.n_seen == 0:
            # Nothing here yet: adopt a copy of the other producer's state
            # (a copy, so later merges into self never corrupt the donor),
            # scaling its histogram mass if an explicit weight reweights it.
            self._km = copy.deepcopy(other._km)
            self._states = copy.deepcopy(other._states)
            if scale != 1.0:
                for st in self._states:
                    st.counts *= scale
            self.n_seen = other.n_seen
            return self
        c_self = self._km.cluster_centers_
        c_other = other._km.cluster_centers_
        if c_self is None or c_other is None or c_self.shape != c_other.shape:
            raise ValueError("producers disagree on cluster-center shape")
        counts_self = self._km._counts
        counts_other = other._km._counts
        order_self = np.argsort(c_self[:, 0], kind="stable")
        order_other = np.argsort(c_other[:, 0], kind="stable")
        for a, b in zip(order_self, order_other):
            st, ot = self._states[int(a)], other._states[int(b)]
            st.counts += scale * ot.counts
            if ot.n_seen > 0:
                st.reservoir.merge(
                    ot.reservoir,
                    weight=scale * ot.reservoir.stream_mass,
                    rng=rng,
                )
                st.n_seen += ot.n_seen
            total = counts_self[int(a)] + counts_other[int(b)]
            if total > 0:
                c_self[int(a)] = (
                    c_self[int(a)] * counts_self[int(a)]
                    + c_other[int(b)] * counts_other[int(b)]
                ) / total
            counts_self[int(a)] = total
        self.n_seen += other.n_seen
        return self

    def to_pointset(self, coords_cols: int = 0) -> PointSet:
        """Finalize into a PointSet (first `coords_cols` payload columns are
        coordinates; the value column becomes variable 'value')."""
        rows = self.finalize()
        values = rows[:, 0]
        payload = rows[:, 1:]
        if coords_cols > payload.shape[1]:
            raise ValueError("coords_cols exceeds payload width")
        coords = payload[:, :coords_cols] if coords_cols else np.zeros((len(rows), 1))
        return PointSet(coords=coords, values={"value": values},
                        meta={"method": "streaming-maxent", "n_seen": self.n_seen})


def _resolve_stream_value_range(
    source: SnapshotSource,
    sampler_cls,
    cluster_var: str,
    point_vars: list[str],
    vcol: int,
    value_range: tuple[float, float] | None,
    chunk_rows: int,
) -> tuple[float, float] | None:
    """Histogram range for binning stream samplers, agreed before streaming.

    Preference order: the caller's `value_range`, the source's
    :meth:`~repro.data.sources.SnapshotSource.value_range_hint`, or (last
    resort) the first chunk's span widened 3×.  Non-binning samplers skip
    the whole question (the hint can cost a full extra scan on in-memory
    sources).  Resolved once, up front, so every SPMD producer bins on
    identical edges.
    """
    if value_range is not None or not sampler_cls.needs_value_range:
        return value_range
    vr = source.value_range_hint(cluster_var)
    if vr is not None:
        return vr
    for _, _, _, table in source.iter_tables(point_vars, chunk_rows=chunk_rows):
        values = table[:, vcol]
        if values.size:
            lo, hi = float(values.min()), float(values.max())
            span = (hi - lo) or 1.0
            return (lo - span, hi + span)
    return None


def _feed_stream(
    sampler: StreamSampler,
    source: SnapshotSource,
    point_vars: list[str],
    vcol: int,
    chunk_rows: int,
    meter: EnergyMeter,
    on_chunk=None,
    fault_check=None,
) -> None:
    """Stream one producer's span through its sampler, metering each chunk.

    ``fault_check(snapshot_index)`` runs after every fed chunk — the
    per-chunk checkpoint where an armed fault hook kills the producer
    (raising :class:`~repro.parallel.threadcomm.RankFailure` out of this
    loop with the already-fed rows retained in the sampler).
    """
    for s, time, coords, table in source.iter_tables(point_vars, chunk_rows=chunk_rows):
        values = table[:, vcol]
        payload = np.column_stack([np.full(values.shape[0], time), coords, table])
        sampler.feed(values, payload)
        meter.record(
            flops=sampler.cost_per_point * 2.0 * values.size,
            nbytes=float(payload.nbytes),
            device="cpu",
        )
        if on_chunk is not None:
            on_chunk(values.size)
        if fault_check is not None:
            fault_check(s)


def run_stream_subsample(
    source: SnapshotSource,
    config: CaseConfig,
    seed: int = 0,
    chunk_rows: int = 65536,
    value_range: tuple[float, float] | None = None,
    hist_bins: int = 50,
    nranks: int = 1,
    model: PerfModel | None = None,
    owned_shards: bool = False,
    on_rank_failure: str = "raise",
    fault_hook=None,
    backend: str = "thread",
):
    """Single- or multi-producer streaming subsample over any snapshot source.

    Streams the source as bounded row chunks through the registered
    streaming analogue of the case's ``method`` (reservoir for ``random``,
    online MaxEnt for ``maxent``), without cube selection and without a
    phase-2 revisit — the in-situ path where the data flies by exactly
    once.  The point budget matches the batch pipeline's total
    (``num_hypercubes * num_samples``).

    ``nranks > 1`` runs one SPMD producer per rank: the snapshot sequence is
    block-partitioned, each rank feeds its own sampler over its span,
    per-rank states are gathered to rank 0, and
    :meth:`~repro.sampling.base.StreamSampler.merge_partial` recombines them
    by weighted draw — distributionally equivalent to the single-producer
    run and bit-deterministic given ``seed`` and ``nranks``.
    ``virtual_time`` is then the makespan of the slowest rank under the
    LogGP `model`, and the energy meter merges all ranks.

    ``backend`` picks the rank substrate — ``"thread"`` (deterministic
    virtual-time modeling under the GIL, the default) or ``"process"``
    (forked workers over :class:`~repro.parallel.procomm.ProcessComm` with
    shared-memory transport; real wall-clock parallelism).  Both yield
    byte-identical samples and virtual clocks for the same (seed, nranks);
    on the process backend each rank reopens sharded sources privately so
    no LRU/prefetch state crosses the fork.

    ``owned_shards=True`` (sharded sources only) replaces the shared-cache
    :class:`~repro.data.sources.PartitionedSource` view with true per-rank
    I/O isolation: an :class:`~repro.data.store.OwnedShardLayout` gives
    every rank its own shard directory, private bounded LRU, and private
    prefetch thread over a disjoint file set; per-rank ``cache_info()``
    counters land in ``meta["cache"]`` with their cross-rank aggregate.

    Producers can die mid-span — for real (an exception while streaming) or
    injected (``fault_hook(rank, snapshots_done=..., rows_fed=...)`` armed
    through :func:`~repro.parallel.spmd.run_spmd`).  Each rank reports what
    it delivered (:class:`~repro.parallel.partition.ProducerReport`);
    ``on_rank_failure="reweight"`` merges the partial states with the
    allocation reweighted by delivered (not nominal) stream mass and still
    returns a full-size sample whenever the surviving rows cover the
    budget, while ``"raise"`` (the default) fails the whole draw loudly.

    The MaxEnt histogram range comes from `value_range`, the source's
    :meth:`~repro.data.sources.SnapshotSource.value_range_hint`, or (last
    resort) the first chunk's span widened 3×; out-of-range values clip to
    the edge bins.  The range is agreed before any rank streams, so all
    producers bin on identical edges.

    Returns a :class:`~repro.sampling.stages.SubsampleResult` whose
    ``points`` carry per-point times and ``meta["mode"] == "stream"``.
    """
    from repro.sampling.stages import SubsampleResult

    source = as_source(source)
    sub = config.subsample
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if backend not in SPMD_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {SPMD_BACKENDS}")
    if on_rank_failure not in ("reweight", "raise"):
        raise ValueError(
            f"on_rank_failure must be 'reweight' or 'raise', got {on_rank_failure!r}"
        )
    if fault_hook is not None and nranks == 1:
        raise ValueError(
            "fault injection needs nranks >= 2 — a single producer has no "
            "peers to survive it"
        )
    if owned_shards and not isinstance(source, ShardDirSource):
        raise ValueError(
            "owned_shards requires a ShardDirSource (a save_dataset shard "
            f"directory); got {type(source).__name__}"
        )
    if owned_shards and nranks < 2:
        raise ValueError(
            "owned_shards needs nranks >= 2 — a single producer already "
            "owns every shard, so the flag would be silently meaningless"
        )
    if sub.method == "full":
        raise ValueError(
            "method 'full' keeps dense cubes and has no single-pass "
            "streaming analogue; use mode='batch'"
        )
    # Resolve the registry up front so unsupported methods fail before the
    # source does any work (a SimulationSource would otherwise run the
    # solver for a whole snapshot first).
    sampler_cls = stream_sampler_cls(sub.method)
    if (
        isinstance(source, SimulationSource)
        and nranks > 1
        and source.max_cached < source.n_snapshots
    ):
        # Producers start at different offsets of the same live iterator; a
        # replay-on-backstep source would re-run the solver O(ranks) times.
        raise ValueError(
            "a SimulationSource with max_cached < n_snapshots would replay "
            f"the simulation for nearly every producer under nranks={nranks}; "
            f"use nranks=1, raise max_cached to >= {source.n_snapshots}, or "
            "shard the stream to disk first"
        )
    cluster_var = source.cluster_var
    point_vars = list(dict.fromkeys(
        [*source.input_vars, *source.output_vars, cluster_var]
    ))
    vcol = point_vars.index(cluster_var)
    budget = sub.num_hypercubes * sub.num_samples
    kwargs = {}
    if sub.method == "maxent":
        kwargs = {"n_clusters": sub.num_clusters, "bins": hist_bins}
    d = source.ndim
    vr = _resolve_stream_value_range(
        source, sampler_cls, cluster_var, point_vars, vcol, value_range, chunk_rows
    )

    reports = None
    cache_meta = None
    if nranks == 1:
        perf = model or PerfModel()
        sampler = get_stream_sampler(
            sub.method, n_samples=budget, value_range=vr, rng=seed, **kwargs
        )
        with EnergyMeter() as meter:
            # Charge the scan to virtual time with the same work-unit model
            # the batch pipeline's communicator clock uses, so stream-mode
            # energy/makespan numbers are comparable to batch-mode ones.
            _feed_stream(
                sampler, source, point_vars, vcol, chunk_rows, meter,
                on_chunk=lambda n: meter.add_elapsed(
                    perf.compute_time(sampler.cost_per_point * n)
                ),
            )
        virtual_time = meter.elapsed
        energy = meter
    else:
        parts = stream_partitions(source.n_snapshots, nranks)
        # The layout is a run-scoped scratch artifact (unique temp dir, so
        # concurrent runs and read-only base directories are safe); it is
        # removed again in the finally below, whatever the run does.
        layout = (
            OwnedShardLayout.build(source.layout_path, nranks)
            if owned_shards else None
        )

        def _rank_source(rank: int) -> tuple[SnapshotSource, ShardDirSource | None]:
            """Build this rank's source view; also returns the private sharded
            base the rank must close when it owns one."""
            if layout is not None:
                # reopen() keeps the source's own codec/tier configuration
                # over the rank's owned shard directory.
                src = source.reopen(layout.rank_dir(rank))
                return src, src
            if backend == "process" and isinstance(source, ShardDirSource):
                # Forked workers must not share the parent's LRU/prefetch
                # machinery (inherited locks and dead threads): reopen the
                # shard directory privately inside the worker.
                base = source.reopen()
                return PartitionedSource(base, parts[rank].lo, parts[rank].hi), base
            return PartitionedSource(source, parts[rank].lo, parts[rank].hi), None

        rngs = spawn_rngs(seed, nranks + 1)  # rngs[0] drives the merge draw

        rows_per_snapshot = source.n_points_per_snapshot

        def _producer(comm):
            part = parts[comm.rank]
            src_r, private_base = _rank_source(comm.rank)
            sampler = get_stream_sampler(
                sub.method, n_samples=budget, value_range=vr,
                rng=rngs[comm.rank + 1], **kwargs,
            )
            failed, err = False, None

            def _delivered_snapshots() -> int:
                # Grids are homogeneous, so delivered rows determine exactly
                # how many span snapshots are fully streamed — correct even
                # when a death lands on a snapshot's final chunk.
                return min(part.n, int(sampler.n_seen) // rows_per_snapshot)

            def _fault_check(snapshot_index: int) -> None:
                comm.maybe_fail(
                    snapshots_done=_delivered_snapshots(),
                    rows_fed=int(sampler.n_seen),
                )

            with EnergyMeter() as meter:
                try:
                    _feed_stream(
                        sampler, src_r, point_vars, vcol, chunk_rows, meter,
                        on_chunk=lambda n: comm.account_compute(
                            sampler.cost_per_point * float(n)
                        ),
                        fault_check=_fault_check,
                    )
                except RankFailure as exc:
                    failed, err = True, str(exc)
                except Exception as exc:
                    # A genuine producer death (corrupt shard, I/O error,
                    # ...): under "reweight" the partial reservoir is the
                    # recovered state; under "raise" keep fail-fast.
                    if on_rank_failure == "raise":
                        raise
                    failed, err = True, f"{type(exc).__name__}: {exc}"
                finally:
                    info = private_base.cache_info() if private_base is not None else None
                    if private_base is not None:
                        private_base.close()
                report = ProducerReport(
                    partition=part, snapshots_done=_delivered_snapshots(),
                    n_seen=int(sampler.n_seen), stream_mass=float(sampler.n_seen),
                    failed=failed, error=err, cache_info=info,
                )
                # The merge is a real communication step: per-rank sampler
                # states travel to rank 0, so the gather (and the weighted
                # redraw) land on the virtual clock like any collective.
                gathered = comm.gather((sampler, report), root=0)
                merged, all_reports = None, None
                if comm.rank == 0:
                    samplers = [g[0] for g in gathered]
                    all_reports = [g[1] for g in gathered]
                    any_failed = any(r.failed for r in all_reports)
                    delivered = sum(1 for s in samplers if s.n_seen > 0)
                    if delivered and (not any_failed or on_rank_failure == "reweight"):
                        # Delivered (not nominal) mass weights the draw:
                        # each state's own stream_mass is what it got fed.
                        merged = sampler_cls.merge_partial(
                            samplers, all_reports,
                            on_failure="reweight", rng=rngs[0],
                        )
                        comm.account_compute(float(delivered * budget))
                meter.add_elapsed(comm.clock.t)
            return merged, meter, all_reports

        try:
            spmd = run_spmd(
                _producer, nranks, model=model, fault_hook=fault_hook, backend=backend
            )
        finally:
            if layout is not None:
                layout.remove()
        sampler, _, reports = spmd[0]
        energy = EnergyMeter()
        for _, rank_meter, _ in spmd.values:
            energy.merge(rank_meter)
        virtual_time = spmd.virtual_time
        energy.elapsed = virtual_time
        failed_reports = [r for r in reports if r.failed]
        if failed_reports and on_rank_failure == "raise":
            raise failed_producers_error(failed_reports)
        if owned_shards:
            infos = [r.cache_info for r in reports]
            cache_meta = {
                "per_rank": infos,
                "total": aggregate_cache_info(infos),
            }

    if sampler is None or sampler.n_seen == 0:
        dead = [r for r in (reports or []) if r.failed]
        if dead:
            # Every producer died before delivering anything: reweighting
            # has nothing to work with, so surface the recorded errors
            # instead of the generic empty-source message.
            detail = "; ".join(
                f"rank {r.rank}: {r.error or 'died mid-span'}" for r in dead
            )
            raise RuntimeError(
                f"no stream producer delivered any data ({detail})"
            )
        raise ValueError("source produced no data to stream")
    rows = sampler.finalize()
    points = PointSet(
        coords=rows[:, 2 : 2 + d],
        values={v: rows[:, 2 + d + j] for j, v in enumerate(point_vars)},
        time=rows[:, 1],
        meta={
            "method": sub.method,
            "mode": "stream",
            "n_seen": int(sampler.n_seen),
            "ranks": nranks,
            "source": type(source).__name__,
        },
    )
    meta = {
        "method": sub.method,
        "hypercubes": sub.hypercubes,
        "num_samples": sub.num_samples,
        "mode": "stream",
        "ranks": nranks,
        "backend": backend,
        "seed": seed,
        "owned_shards": bool(owned_shards),
        "on_rank_failure": on_rank_failure,
        "case": config.to_dict(),
    }
    if reports is not None:
        meta["producers"] = [r.to_meta() for r in reports]
        meta["failed_ranks"] = [r.rank for r in reports if r.failed]
    if cache_meta is not None:
        meta["cache"] = cache_meta
    return SubsampleResult(
        points=points,
        cubes=None,
        selected_cube_ids=np.empty(0, dtype=np.int64),
        n_candidate_cubes=0,
        n_points_scanned=int(sampler.n_seen),
        energy=energy,
        virtual_time=virtual_time,
        meta=meta,
    )
