"""Streaming / in-situ sampling (the paper's first future-work item).

The paper's outlook calls for "integration with in-situ, streaming, and
online training frameworks like SmartSim": sampling while the simulation
runs, without ever materializing the full dataset.  Two single-pass
samplers:

* :class:`ReservoirSampler` — classic Algorithm-R reservoir sampling: a
  uniform random subset of an unbounded stream in O(n) memory.
* :class:`StreamingMaxEnt` — an online MaxEnt analogue: cluster centroids
  adapt via mini-batch K-means ``partial_fit`` as chunks stream through,
  each cluster keeps its own value histogram and reservoir, and on
  :meth:`finalize` the per-cluster budgets follow the same node-strength
  weighting as the offline sampler.  One pass, bounded memory, and the same
  tail-seeking behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import MiniBatchKMeans
from repro.data.points import PointSet
from repro.sampling.entropy import (
    entropy_adjacency,
    node_strengths,
    strength_weights,
)
from repro.sampling.stratified import allocate_counts
from repro.utils.rng import resolve_rng

__all__ = ["ReservoirSampler", "StreamingMaxEnt"]


class ReservoirSampler:
    """Uniform sampling of a stream with Algorithm R (Vitter 1985)."""

    def __init__(self, capacity: int, rng: np.random.Generator | int | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.rng = resolve_rng(rng)
        self._items: list[np.ndarray] = []
        self.n_seen = 0

    def feed(self, chunk: np.ndarray) -> None:
        """Offer a chunk of rows (n, d) to the reservoir."""
        chunk = np.atleast_2d(np.asarray(chunk, dtype=np.float64))
        for row in chunk:
            self.n_seen += 1
            if len(self._items) < self.capacity:
                self._items.append(row.copy())
            else:
                j = int(self.rng.integers(self.n_seen))
                if j < self.capacity:
                    self._items[j] = row.copy()

    @property
    def sample(self) -> np.ndarray:
        """The current reservoir, shape (min(capacity, n_seen), d)."""
        if not self._items:
            raise ValueError("reservoir is empty — feed data first")
        return np.stack(self._items)


class _ClusterState:
    """Per-cluster histogram + reservoir for the streaming MaxEnt sampler."""

    def __init__(self, bins: int, reservoir: int, rng: np.random.Generator) -> None:
        self.counts = np.zeros(bins)
        self.reservoir = ReservoirSampler(reservoir, rng=rng)
        self.n_seen = 0


class StreamingMaxEnt:
    """Single-pass MaxEnt sampling over a chunked stream of points.

    Parameters
    ----------
    n_samples:
        Total budget returned by :meth:`finalize`.
    n_clusters:
        Number of online K-means clusters.
    value_range:
        (lo, hi) range of the cluster variable for the shared histogram
        edges (streaming cannot see global min/max in advance; pass the
        simulation's physical bounds or an estimate — out-of-range values
        clip to the edge bins).
    reservoir_factor:
        Each cluster's reservoir holds ``reservoir_factor * n_samples``
        candidates so post-hoc budgets can be met even for skewed streams.
    """

    def __init__(
        self,
        n_samples: int,
        value_range: tuple[float, float],
        n_clusters: int = 10,
        bins: int = 50,
        reservoir_factor: float = 2.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if n_clusters < 2:
            raise ValueError("n_clusters must be >= 2")
        if not value_range[1] > value_range[0]:
            raise ValueError("value_range must be increasing")
        self.n_samples = n_samples
        self.n_clusters = n_clusters
        self.bins = bins
        self.edges = np.linspace(value_range[0], value_range[1], bins + 1)
        self.rng = resolve_rng(rng)
        self._km = MiniBatchKMeans(n_clusters=n_clusters, batch_size=1024, rng=self.rng)
        per_cluster = max(n_samples, int(reservoir_factor * n_samples))
        self._states = [
            _ClusterState(bins, per_cluster, self.rng) for _ in range(n_clusters)
        ]
        self.n_seen = 0

    def feed(self, values: np.ndarray, payload: np.ndarray | None = None) -> None:
        """Stream one chunk: `values` (n,) cluster variable, optional payload
        rows (n, d) carried alongside (defaults to the values themselves)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        if payload is None:
            payload = values[:, None]
        payload = np.atleast_2d(np.asarray(payload, dtype=np.float64))
        if payload.shape[0] != values.size:
            raise ValueError("payload row count must match values")
        feats = values[:, None]
        self._km.partial_fit(feats)
        labels = self._km.predict(feats)
        self.n_seen += values.size
        idx = np.clip(np.searchsorted(self.edges, values, side="right") - 1, 0, self.bins - 1)
        for c in range(self.n_clusters):
            mask = labels == c
            if not mask.any():
                continue
            state = self._states[c]
            state.n_seen += int(mask.sum())
            np.add.at(state.counts, idx[mask], 1.0)
            state.reservoir.feed(np.column_stack([values[mask], payload[mask]]))

    def finalize(self) -> np.ndarray:
        """Entropy-weighted draw across cluster reservoirs.

        Returns rows of ``[value, payload...]``; at most `n_samples` rows
        (fewer only if the whole stream was smaller).
        """
        if self.n_seen == 0:
            raise ValueError("no data streamed")
        active = [s for s in self._states if s.n_seen > 0]
        dists = np.stack([
            s.counts / s.counts.sum() if s.counts.sum() > 0 else np.full(self.bins, 1.0 / self.bins)
            for s in active
        ])
        weights = strength_weights(node_strengths(entropy_adjacency(dists)))
        capacities = np.array([len(s.reservoir._items) for s in active])
        budget = min(self.n_samples, int(capacities.sum()))
        counts = allocate_counts(budget, capacities, weights)
        chosen = []
        for s, c in zip(active, counts):
            if c == 0:
                continue
            pool = s.reservoir.sample
            take = self.rng.choice(len(pool), size=int(c), replace=False)
            chosen.append(pool[take])
        return np.concatenate(chosen)

    def to_pointset(self, coords_cols: int = 0) -> PointSet:
        """Finalize into a PointSet (first `coords_cols` payload columns are
        coordinates; the value column becomes variable 'value')."""
        rows = self.finalize()
        values = rows[:, 0]
        payload = rows[:, 1:]
        if coords_cols > payload.shape[1]:
            raise ValueError("coords_cols exceeds payload width")
        coords = payload[:, :coords_cols] if coords_cols else np.zeros((len(rows), 1))
        return PointSet(coords=coords, values={"value": values},
                        meta={"method": "streaming-maxent", "n_seen": self.n_seen})
