"""Temporal snapshot selection (paper §4.3).

Snapshots written at a fixed cadence often repeat the same state — vortex
shedding in OF2D revisits identical phases every period — so training on all
of them adds no information.  Intelligent temporal sampling keeps the
snapshots whose input PDFs are *novel* relative to what is already kept.

``method='maxent'`` greedily maximizes the minimum Jensen-Shannon divergence
between a candidate snapshot's cluster-variable histogram and the kept set
(max-min novelty); ``'uniform'`` keeps an evenly spaced subset; ``'random'``
keeps a random subset.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.entropy import kl_divergence
from repro.utils.rng import resolve_rng

__all__ = ["select_snapshots", "js_divergence", "snapshot_histograms"]


def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence (symmetric, bounded by log 2)."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    p = p / p.sum()
    q = q / q.sum()
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)


def snapshot_histograms(
    snapshots, variable: str, bins: int = 100
) -> np.ndarray:
    """(n_snapshots, bins) histograms of `variable` on shared edges."""
    values = [np.asarray(s.get(variable)).reshape(-1) for s in snapshots]
    lo = min(v.min() for v in values)
    hi = max(v.max() for v in values)
    if lo == hi:
        hi = lo + 1.0
    out = np.empty((len(values), bins))
    for i, v in enumerate(values):
        counts, _ = np.histogram(v, bins=bins, range=(lo, hi))
        total = counts.sum()
        out[i] = counts / total if total > 0 else 1.0 / bins
    return out


def select_snapshots(
    snapshots,
    n: int,
    variable: str,
    method: str = "maxent",
    bins: int = 100,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Indices of `n` snapshots to keep, in ascending order."""
    n_snaps = len(snapshots)
    if not (1 <= n <= n_snaps):
        raise ValueError(f"n must be in [1, {n_snaps}], got {n}")
    rng = resolve_rng(rng)
    if method == "uniform":
        return np.unique(np.linspace(0, n_snaps - 1, n).round().astype(int))
    if method == "random":
        return np.sort(rng.choice(n_snaps, size=n, replace=False))
    if method != "maxent":
        raise ValueError(f"unknown temporal method {method!r}")

    hists = snapshot_histograms(snapshots, variable, bins=bins)
    # Greedy max-min JS novelty, seeded with the first snapshot.
    kept = [0]
    min_div = np.array([js_divergence(hists[0], hists[i]) for i in range(n_snaps)])
    while len(kept) < n:
        min_div[kept] = -np.inf
        nxt = int(np.argmax(min_div))
        kept.append(nxt)
        new_div = np.array([js_divergence(hists[nxt], hists[i]) for i in range(n_snaps)])
        min_div = np.minimum(min_div, new_div)
    return np.sort(np.asarray(kept))
