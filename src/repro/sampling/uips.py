"""Uniform-in-phase-space sampling (Hassanaly et al. 2023; paper §4.2).

UIPS flattens the sampled distribution over the *feature* (phase) space:
points in dense regions are accepted with low probability, points in sparse
regions with high probability, so the selected subset covers phase space
uniformly.  The reference implementation estimates densities with iterative
normalizing flows; the paper's SICKLE adopts the simpler *binning* path
("binning was adopted for temporal dimensions due to implementation
simplicity"), which we implement with iterative refinement: re-estimate the
density of the currently-selected subset and re-draw, which corrects the
residual non-uniformity of the first pass (the flow iterations play the same
role in the reference code).

The paper's Fig 4 behaviour emerges naturally: with 2 well-spread features
(TC2D) binned densities are accurate and coverage is uniform; in higher-
dimensional anisotropic spaces (SST-P1F4's 4 features) the empty-bin fraction
explodes and the acceptance weights clump — exactly the failure mode the
paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.histogram import joint_histogram
from repro.sampling.base import Sampler, register_sampler

__all__ = ["UIPSSampler"]


@register_sampler("uips")
class UIPSSampler(Sampler):
    """Binned inverse-density sampling with iterative refinement."""

    cost_per_point = 6.0

    def __init__(self, bins: int = 20, n_iterations: int = 2, max_dims: int = 4) -> None:
        if bins < 2:
            raise ValueError("bins must be >= 2")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.bins = bins
        self.n_iterations = n_iterations
        self.max_dims = max_dims

    def _bins_for(self, n_points: int, d: int) -> int:
        """Cap the per-axis bin count so the joint histogram stays populated."""
        # Aim for >= ~4 points per occupied bin in the best case.
        cap = max(2, int((n_points / 4.0) ** (1.0 / d)))
        return min(self.bins, cap)

    def select(self, features: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        n_points, d = features.shape
        if d > self.max_dims:
            raise ValueError(
                f"UIPS binning supports up to {self.max_dims} feature dims, got {d} "
                "(the reference method switches to normalizing flows here)"
            )
        bins = self._bins_for(n_points, d)
        # Multi-resolution density estimate: each iteration adds a coarser
        # histogram and the weights use the geometric-mean density, damping
        # the sparse-bin noise a single resolution suffers from (this is the
        # role the iterative flow refinement plays in the reference code).
        log_w = np.zeros(n_points)
        levels = 0
        for level in range(self.n_iterations):
            b = max(2, bins // (2**level))
            pdf = joint_histogram(features, bins=b)
            log_w += np.log(1.0 / np.maximum(pdf.prob_at(features), 1e-12))
            levels += 1
            if b == 2:
                break
        weights = np.exp(log_w / levels)
        return self._weighted_draw(weights, n, rng)

    @staticmethod
    def _weighted_draw(weights: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        p = weights / weights.sum()
        return rng.choice(len(weights), size=n, replace=False, p=p)
