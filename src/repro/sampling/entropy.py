"""Information-theoretic machinery behind MaxEnt sampling (paper §4.1).

The paper computes, for a set of clusters with per-cluster probability
distributions P(C_i) over the cluster variable:

* pairwise relative entropies   A_ij = Σ P(C_i) log(P(C_i) / P(C_j))   (Eq. 2)
  — an adjacency matrix of KL divergences, and
* node strengths — the row sums of A — which weight the subsequent
  entropy-weighted random sampling.

A cluster whose distribution diverges most from everyone else's (a rare,
information-rich region: wake cores, turbulent layers, flame fronts) gets the
largest node strength and is therefore sampled hardest.  The adjacency matrix
is exposed as a :mod:`networkx` digraph for analysis/visualization.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = [
    "shannon_entropy",
    "kl_divergence",
    "cluster_value_distributions",
    "entropy_adjacency",
    "node_strengths",
    "adjacency_graph",
    "strength_weights",
]

_EPS = 1e-12


def _as_prob(p: np.ndarray, name: str) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {p.shape}")
    if np.any(p < 0):
        raise ValueError(f"{name} has negative entries")
    total = p.sum()
    if total <= 0:
        raise ValueError(f"{name} has zero mass")
    return p / total


def shannon_entropy(p: np.ndarray, base: float | None = None) -> float:
    """H(p) = -Σ p log p (natural log unless `base` given)."""
    p = _as_prob(p, "p")
    nz = p[p > 0]
    h = float(-(nz * np.log(nz)).sum())
    if base is not None:
        h /= np.log(base)
    return h


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """D(p || q) = Σ p log(p/q), with q floored at eps to stay finite (Eq. 1).

    The floor matches the paper's practical implementation: empirical
    histograms routinely contain empty bins, and an infinite divergence would
    poison the node strengths.
    """
    p = _as_prob(p, "p")
    q = _as_prob(q, "q")
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    q = np.maximum(q, _EPS)
    nz = p > 0
    return float((p[nz] * np.log(p[nz] / q[nz])).sum())


def cluster_value_distributions(
    values: np.ndarray, labels: np.ndarray, n_clusters: int, bins: int = 100
) -> np.ndarray:
    """Per-cluster histograms of the cluster variable on shared edges.

    Returns (n_clusters, bins) row-normalized probabilities; empty clusters
    get a uniform row (zero divergence against everything — harmless).
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    labels = np.asarray(labels)
    if values.shape != labels.shape:
        raise ValueError("values/labels length mismatch")
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    out = np.empty((n_clusters, bins), dtype=np.float64)
    for c in range(n_clusters):
        member = values[labels == c]
        if member.size == 0:
            out[c] = 1.0 / bins
            continue
        counts, _ = np.histogram(member, bins=edges)
        total = counts.sum()
        out[c] = counts / total if total > 0 else 1.0 / bins
    return out


def entropy_adjacency(distributions: np.ndarray) -> np.ndarray:
    """Pairwise KL adjacency A_ij = D(P_i || P_j)  (paper Eq. 2).

    Diagonal is zero; matrix is generally asymmetric (KL is not a metric).
    """
    dists = np.asarray(distributions, dtype=np.float64)
    if dists.ndim != 2:
        raise ValueError("distributions must be (n_clusters, bins)")
    # Vectorized: A_ij = sum_b P_ib log(P_ib) - sum_b P_ib log(P_jb).
    p = dists / np.maximum(dists.sum(axis=1, keepdims=True), _EPS)
    logp = np.log(np.maximum(p, _EPS))
    self_term = (p * logp).sum(axis=1)  # Σ p_i log p_i
    cross = p @ logp.T  # cross[i, j] = Σ_b p_ib log p_jb
    a = self_term[:, None] - cross
    np.fill_diagonal(a, 0.0)
    # Numerical floor: KL >= 0.
    return np.maximum(a, 0.0)


def node_strengths(adjacency: np.ndarray) -> np.ndarray:
    """Row sums of the adjacency: s_i = Σ_j A_ij."""
    a = np.asarray(adjacency, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("adjacency must be square")
    return a.sum(axis=1)


def adjacency_graph(adjacency: np.ndarray) -> nx.DiGraph:
    """The adjacency as a weighted digraph (for analysis / visualization)."""
    a = np.asarray(adjacency, dtype=np.float64)
    g = nx.DiGraph()
    g.add_nodes_from(range(a.shape[0]))
    for i in range(a.shape[0]):
        for j in range(a.shape[1]):
            if i != j and a[i, j] > 0:
                g.add_edge(i, j, weight=float(a[i, j]))
    return g


def strength_weights(strengths: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Normalize node strengths into sampling probabilities.

    ``temperature`` sharpens (<1) or flattens (>1) the weighting; all-zero
    strengths (identical clusters) fall back to uniform.
    """
    s = np.asarray(strengths, dtype=np.float64)
    if np.any(s < 0):
        raise ValueError("strengths must be non-negative")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    s = s ** (1.0 / temperature)
    total = s.sum()
    if total <= 0:
        return np.full(s.shape, 1.0 / len(s))
    return s / total
