"""Maximum-entropy sampling: the paper's contribution (§4.1, Fig 3).

Two phases:

**Phase 1 — Hmaxent (hypercube selection).**  Every candidate hypercube is
summarized by moments of its cluster variable; cubes are clustered with
mini-batch K-means; per-cluster distributions of the cluster variable give a
KL adjacency (Eq. 2) whose node strengths weight an entropy-weighted random
draw of ``num_hypercubes`` cubes.  Cubes living in rare, distributionally
distinct regions (turbulent layers, wakes) are preferentially kept.

**Phase 2 — Xmaxent (point selection).**  Inside each kept cube the same
machinery runs at point level: cluster points on the cluster variable,
compute distributions → adjacency → node strengths, allocate the per-cube
budget across clusters proportionally to strength, draw randomly within each
cluster.  High-strength (tail) clusters are oversampled, which is why MaxEnt
covers PDF tails better than random sampling (Fig 5).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import KMeans, MiniBatchKMeans
from repro.energy.meter import account
from repro.sampling.base import Sampler, register_sampler
from repro.sampling.entropy import (
    cluster_value_distributions,
    entropy_adjacency,
    node_strengths,
    strength_weights,
)
from repro.sampling.stratified import allocate_counts
from repro.utils.rng import resolve_rng

__all__ = ["MaxEntSampler", "maxent_cluster_weights", "select_hypercubes_maxent"]


def maxent_cluster_weights(
    values: np.ndarray,
    labels: np.ndarray,
    n_clusters: int,
    bins: int = 100,
    temperature: float = 1.0,
) -> np.ndarray:
    """Node-strength sampling weights for clusters of a value array.

    The full §4.1 chain: per-cluster distributions → KL adjacency →
    node strengths → normalized weights.
    """
    dists = cluster_value_distributions(values, labels, n_clusters, bins=bins)
    adjacency = entropy_adjacency(dists)
    strengths = node_strengths(adjacency)
    account(flops=float(n_clusters * n_clusters * bins), device="cpu")
    return strength_weights(strengths, temperature=temperature)


@register_sampler("maxent")
class MaxEntSampler(Sampler):
    """Phase-2 Xmaxent point sampler.

    ``features`` should be the cluster variable (1 column) or a small set of
    variables; clustering runs on the features, distributions are computed on
    the first column (the designated cluster variable).
    """

    cost_per_point = 10.0

    def __init__(
        self,
        n_clusters: int = 20,
        bins: int = 100,
        temperature: float = 1.0,
        min_cluster_weight: float = 0.0,
    ) -> None:
        if n_clusters < 2:
            raise ValueError("n_clusters must be >= 2 (entropy needs contrast)")
        if bins < 2:
            raise ValueError("bins must be >= 2")
        if min_cluster_weight < 0:
            raise ValueError("min_cluster_weight must be >= 0")
        self.n_clusters = n_clusters
        self.bins = bins
        self.temperature = temperature
        self.min_cluster_weight = min_cluster_weight

    def select(self, features: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        n_points = features.shape[0]
        k = min(self.n_clusters, max(2, n_points // 4), n_points)
        km = KMeans(n_clusters=k, rng=rng).fit(features)
        labels = km.labels_
        k_eff = km.cluster_centers_.shape[0]
        weights = maxent_cluster_weights(
            features[:, 0], labels, k_eff, bins=self.bins, temperature=self.temperature
        )
        if self.min_cluster_weight > 0:
            weights = np.maximum(weights, self.min_cluster_weight)
            weights = weights / weights.sum()
        sizes = np.bincount(labels, minlength=k_eff)
        counts = allocate_counts(n, sizes, weights)
        chosen: list[np.ndarray] = []
        for c in range(k_eff):
            if counts[c] == 0:
                continue
            members = np.flatnonzero(labels == c)
            chosen.append(rng.choice(members, size=counts[c], replace=False))
        return np.concatenate(chosen)


def _cube_summary(values: np.ndarray, n_moments: int = 4) -> np.ndarray:
    """Moment summary of one cube's cluster-variable field."""
    flat = values.reshape(-1)
    mean = flat.mean()
    std = flat.std()
    centred = flat - mean
    skew = (centred**3).mean() / max(std**3, 1e-12)
    kurt = (centred**4).mean() / max(std**4, 1e-12)
    return np.array([mean, std, skew, kurt][:n_moments])


def select_hypercubes_maxent(
    cube_values: list[np.ndarray],
    num_hypercubes: int,
    num_clusters: int = 8,
    bins: int = 50,
    rng: np.random.Generator | int | None = None,
    return_weights: bool = False,
):
    """Phase-1 Hmaxent: entropy-weighted random selection of hypercubes.

    ``cube_values[i]`` is cube i's cluster-variable block.  Returns the
    selected cube indices (and, optionally, each cube's sampling weight).
    """
    n_cubes = len(cube_values)
    if n_cubes == 0:
        raise ValueError("no candidate hypercubes")
    if not (1 <= num_hypercubes <= n_cubes):
        raise ValueError(f"num_hypercubes must be in [1, {n_cubes}], got {num_hypercubes}")
    rng = resolve_rng(rng)

    summaries = np.stack([_cube_summary(v) for v in cube_values])
    account(flops=float(sum(v.size for v in cube_values)), device="cpu")
    k = min(num_clusters, max(2, n_cubes // 2), n_cubes)
    km = MiniBatchKMeans(n_clusters=k, batch_size=min(256, n_cubes), rng=rng).fit(summaries)
    labels = km.labels_
    k_eff = km.cluster_centers_.shape[0]

    # Distribution per cube cluster: pooled histogram of member cubes' values.
    pooled = np.concatenate([v.reshape(-1) for v in cube_values])
    pooled_labels = np.concatenate(
        [np.full(v.size, labels[i]) for i, v in enumerate(cube_values)]
    )
    weights_by_cluster = maxent_cluster_weights(pooled, pooled_labels, k_eff, bins=bins)

    # Entropy-weighted random sampling of cubes: each cube inherits its
    # cluster's weight share.
    cluster_sizes = np.bincount(labels, minlength=k_eff).astype(np.float64)
    per_cube = weights_by_cluster[labels] / np.maximum(cluster_sizes[labels], 1.0)
    total = per_cube.sum()
    per_cube = per_cube / total if total > 0 else np.full(n_cubes, 1.0 / n_cubes)
    chosen = rng.choice(n_cubes, size=num_hypercubes, replace=False, p=per_cube)
    if return_weights:
        return chosen, per_cube
    return chosen
