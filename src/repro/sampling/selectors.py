"""Phase-1 hypercube selector interface and registry.

SICKLE's "pluggable architecture" claim covers both phases of the
subsampling pipeline.  Phase-2 point samplers have always been pluggable
through :mod:`repro.sampling.base`; this module gives phase-1 hypercube
selection the same treatment.  A :class:`CubeSelector` consumes the rank-0
gathered per-cube statistics (moment summaries + cluster-variable
histograms) and returns the ids of the cubes to keep.  The pipeline, the
CLI, and YAML case files refer to selectors by their registry names:

====================  ======================================================
``maxent``            Hmaxent — K-means over cube moments, KL adjacency of
                      per-cluster distributions, entropy-weighted draw
``random``            Hrandom — uniform draw without replacement
``entropy``           per-cube Shannon-entropy-weighted draw (no clustering)
====================  ======================================================

Register more with :func:`register_selector`; anything registered here is
immediately accepted by ``hypercubes:`` in YAML case files and by
:class:`repro.api.Experiment`.  Selectors carry a ``cost_per_point``
work-unit cost (like :class:`~repro.sampling.base.Sampler`) so the
pipeline's virtual-clock accounting never needs a hard-wired cost table.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

import numpy as np

from repro.energy.meter import account
from repro.utils.rng import resolve_rng

__all__ = [
    "CubeSelector",
    "register_selector",
    "get_selector",
    "available_selectors",
    "MaxEntCubeSelector",
    "RandomCubeSelector",
    "EntropyCubeSelector",
]

_REGISTRY: dict[str, type[CubeSelector]] = {}


class CubeSelector(abc.ABC):
    """Selects ``n`` hypercube ids from gathered per-cube statistics.

    ``summaries`` is (n_cubes, n_moments): moment summaries of each cube's
    cluster-variable block.  ``histograms`` is (n_cubes, n_bins): each cube's
    normalized cluster-variable histogram on globally agreed edges.
    """

    #: registry name, set by the @register_selector decorator
    name: str = ""

    #: virtual-clock work units charged per candidate cube statistic scanned
    #: during selection; safe default for third-party selectors.
    cost_per_point: float = 1.0

    def select(
        self,
        summaries: np.ndarray,
        histograms: np.ndarray,
        n: int,
        num_clusters: int = 8,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Validated entry point: returns `n` sorted unique cube ids."""
        summaries = np.asarray(summaries, dtype=np.float64)
        histograms = np.asarray(histograms, dtype=np.float64)
        if summaries.ndim != 2:
            raise ValueError(f"summaries must be (n_cubes, d), got {summaries.shape}")
        if histograms.ndim != 2:
            raise ValueError(f"histograms must be (n_cubes, bins), got {histograms.shape}")
        n_cubes = summaries.shape[0]
        if histograms.shape[0] != n_cubes:
            raise ValueError(
                f"summaries ({n_cubes}) and histograms ({histograms.shape[0]}) disagree on cube count"
            )
        if n_cubes == 0:
            raise ValueError("no candidate hypercubes")
        if not (1 <= n <= n_cubes):
            raise ValueError(f"n must be in [1, {n_cubes}], got {n}")
        if not (np.all(np.isfinite(summaries)) and np.all(np.isfinite(histograms))):
            raise ValueError("cube statistics contain non-finite values")
        rng = resolve_rng(rng)
        # Every selector at minimum scans the gathered statistics once.
        account(flops=float(summaries.size + histograms.size),
                nbytes=float(summaries.nbytes + histograms.nbytes), device="cpu")
        idx = np.asarray(self.select_cubes(summaries, histograms, n, num_clusters, rng))
        if idx.shape != (n,):
            raise AssertionError(f"{type(self).__name__} returned shape {idx.shape}, wanted ({n},)")
        if len(np.unique(idx)) != n:
            raise AssertionError(f"{type(self).__name__} returned duplicate cube ids")
        if idx.min() < 0 or idx.max() >= n_cubes:
            raise AssertionError(f"{type(self).__name__} returned out-of-range cube ids")
        return np.sort(idx.astype(np.int64))

    @abc.abstractmethod
    def select_cubes(
        self,
        summaries: np.ndarray,
        histograms: np.ndarray,
        n: int,
        num_clusters: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Strategy-specific selection; inputs are pre-validated."""


def register_selector(name: str) -> Callable[[type[CubeSelector]], type[CubeSelector]]:
    """Class decorator adding a cube selector to the registry under `name`."""

    def deco(cls: type[CubeSelector]) -> type[CubeSelector]:
        if not issubclass(cls, CubeSelector):
            raise TypeError(f"{cls.__name__} must subclass CubeSelector")
        if name in _REGISTRY:
            raise ValueError(f"selector {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def get_selector(name: str, **kwargs) -> CubeSelector:
    """Instantiate a registered cube selector by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown selector {name!r}; available: {available_selectors()}") from None
    return cls(**kwargs)


def available_selectors() -> list[str]:
    return sorted(_REGISTRY)


@register_selector("random")
class RandomCubeSelector(CubeSelector):
    """Hrandom: uniform cube choice without replacement (the baseline)."""

    cost_per_point = 0.5

    def select_cubes(self, summaries, histograms, n, num_clusters, rng):
        return rng.choice(summaries.shape[0], size=n, replace=False)


@register_selector("maxent")
class MaxEntCubeSelector(CubeSelector):
    """Hmaxent: the paper's §4.1 chain at hypercube level.

    K-means clusters the cube moment summaries; each cluster's distribution
    is the mean histogram of its member cubes; KL adjacency → node strengths
    → per-cluster weights, divided evenly among member cubes, drive an
    entropy-weighted draw without replacement.
    """

    cost_per_point = 4.0

    def select_cubes(self, summaries, histograms, n, num_clusters, rng):
        from repro.cluster.kmeans import MiniBatchKMeans
        from repro.sampling.entropy import entropy_adjacency, node_strengths, strength_weights

        n_cubes = summaries.shape[0]
        k = min(num_clusters, max(2, n_cubes // 2), n_cubes)
        km = MiniBatchKMeans(n_clusters=k, batch_size=min(256, n_cubes), rng=rng).fit(summaries)
        labels = km.labels_
        k_eff = km.cluster_centers_.shape[0]
        # Per-cluster distribution = mean histogram of member cubes.
        dists = np.stack([
            histograms[labels == c].mean(axis=0) if np.any(labels == c) else
            np.full(histograms.shape[1], 1.0 / histograms.shape[1])
            for c in range(k_eff)
        ])
        weights_by_cluster = strength_weights(node_strengths(entropy_adjacency(dists)))
        cluster_sizes = np.bincount(labels, minlength=k_eff).astype(np.float64)
        per_cube = weights_by_cluster[labels] / np.maximum(cluster_sizes[labels], 1.0)
        per_cube = per_cube / per_cube.sum()
        return rng.choice(n_cubes, size=n, replace=False, p=per_cube)


@register_selector("entropy")
class EntropyCubeSelector(CubeSelector):
    """Pure entropy weighting: cubes drawn ∝ their own histogram entropy.

    Unlike Hmaxent there is no clustering and no pairwise KL graph — each
    cube is weighted by the Shannon entropy of its *own* cluster-variable
    histogram, so cubes with rich internal variability (broad PDFs) are
    preferentially kept while near-constant cubes are suppressed.  O(n·bins)
    instead of Hmaxent's K-means + O(k²·bins) adjacency.
    """

    cost_per_point = 1.5

    def __init__(self, temperature: float = 1.0, floor: float = 1e-3) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be > 0")
        if floor < 0:
            raise ValueError("floor must be >= 0")
        self.temperature = temperature
        self.floor = floor

    def select_cubes(self, summaries, histograms, n, num_clusters, rng):
        from repro.sampling.entropy import shannon_entropy

        n_cubes = histograms.shape[0]
        ent = np.array([shannon_entropy(h) for h in histograms], dtype=np.float64)
        weights = np.power(ent + self.floor, 1.0 / self.temperature)
        total = weights.sum()
        per_cube = weights / total if total > 0 else np.full(n_cubes, 1.0 / n_cubes)
        return rng.choice(n_cubes, size=n, replace=False, p=per_cube)
