"""Intelligent sampling — the paper's core contribution, as a stage-based API.

Both phases of SICKLE's two-phase subsampling are pluggable registries:

**Phase 1 — hypercube selectors** (:mod:`repro.sampling.selectors`; register
more with :func:`register_selector`):

====================  ======================================================
``maxent``            Hmaxent — K-means over cube moments + KL adjacency +
                      entropy-weighted draw
``random``            Hrandom — uniform cube choice (the baseline)
``entropy``           per-cube Shannon-entropy-weighted draw (no clustering)
====================  ======================================================

**Phase 2 — point samplers** (:mod:`repro.sampling.base`; register more with
:func:`register_sampler`):

====================  ======================================================
``random``            uniform without replacement (the strong baseline)
``lhs``               Latin hypercube selection over data points
``stratified``        K-means strata + per-stratum draws
``uips``              uniform-in-phase-space (binned, iterative)
``maxent``            entropy-weighted stratified sampling (Xmaxent)
====================  ======================================================

**Streaming analogues** (:mod:`repro.sampling.streaming`; register more
with :func:`register_stream_sampler`) live in a sibling registry under the
offline names they mirror, so the same case ``method:`` key drives both
ingestion modes:

====================  ======================================================
``random``            Algorithm-R reservoir (vectorized per chunk)
``maxent``            online MaxEnt — mini-batch K-means + per-cluster
                      histograms/reservoirs, entropy-weighted finalize
====================  ======================================================

Registered classes carry their own ``cost_per_point`` work-unit cost, so the
pipeline's virtual-clock/energy accounting covers third-party strategies
automatically.

The distributed pipeline itself is a composition of named stages
(:mod:`repro.sampling.stages`: CubeIndex → Phase1Summarize → CubeSelect →
PointSample → Gather) driven by :class:`SubsamplePipeline`; every stage
consumes a :class:`~repro.data.sources.SnapshotSource` chunk-by-chunk, so
the same pipeline runs batch (in-memory), out-of-core (sharded npz), and
in-situ (simulation) ingestion — :func:`subsample` is the single entry
point for all three, with ``mode="stream"`` switching to the single-pass
streaming samplers.  The historical entry points :func:`run_subsample` /
:func:`subsample` remain as thin wrappers, and
:class:`repro.api.Experiment` is the high-level facade over the whole
subsample → train → report workflow.  Temporal snapshot selection (§4.3)
is in :mod:`repro.sampling.temporal`.
"""

from repro.sampling.base import (
    Sampler,
    StreamSampler,
    available_samplers,
    available_stream_samplers,
    get_sampler,
    get_stream_sampler,
    register_sampler,
    register_stream_sampler,
    stream_sampler_cls,
)
from repro.sampling.selectors import (
    CubeSelector,
    EntropyCubeSelector,
    MaxEntCubeSelector,
    RandomCubeSelector,
    available_selectors,
    get_selector,
    register_selector,
)
from repro.sampling import random_ as _random_  # registers random/lhs
from repro.sampling import stratified as _stratified
from repro.sampling import uips as _uips
from repro.sampling import maxent as _maxent
from repro.sampling.random_ import LatinHypercubeSampler, RandomSampler
from repro.sampling.stratified import StratifiedSampler, allocate_counts
from repro.sampling.uips import UIPSSampler
from repro.sampling.maxent import MaxEntSampler, maxent_cluster_weights, select_hypercubes_maxent
from repro.sampling.entropy import (
    shannon_entropy,
    kl_divergence,
    cluster_value_distributions,
    entropy_adjacency,
    node_strengths,
    adjacency_graph,
    strength_weights,
)
from repro.sampling.temporal import select_snapshots, js_divergence
from repro.sampling.stages import (
    CubeIndexStage,
    CubeSelectStage,
    GatherStage,
    Phase1SummarizeStage,
    PipelineContext,
    PointSampleStage,
    Stage,
    SubsamplePipeline,
    SubsampleResult,
)
from repro.sampling.pipeline import run_subsample, subsample
from repro.sampling.streaming import (
    ReservoirSampler,
    ReservoirStream,
    StreamingMaxEnt,
    run_stream_subsample,
)

__all__ = [
    "Sampler",
    "StreamSampler",
    "available_samplers",
    "available_stream_samplers",
    "get_sampler",
    "get_stream_sampler",
    "register_sampler",
    "register_stream_sampler",
    "stream_sampler_cls",
    "CubeSelector",
    "available_selectors",
    "get_selector",
    "register_selector",
    "RandomCubeSelector",
    "MaxEntCubeSelector",
    "EntropyCubeSelector",
    "RandomSampler",
    "LatinHypercubeSampler",
    "StratifiedSampler",
    "allocate_counts",
    "UIPSSampler",
    "MaxEntSampler",
    "maxent_cluster_weights",
    "select_hypercubes_maxent",
    "shannon_entropy",
    "kl_divergence",
    "cluster_value_distributions",
    "entropy_adjacency",
    "node_strengths",
    "adjacency_graph",
    "strength_weights",
    "select_snapshots",
    "js_divergence",
    "Stage",
    "PipelineContext",
    "CubeIndexStage",
    "Phase1SummarizeStage",
    "CubeSelectStage",
    "PointSampleStage",
    "GatherStage",
    "SubsamplePipeline",
    "SubsampleResult",
    "run_subsample",
    "subsample",
    "ReservoirSampler",
    "ReservoirStream",
    "StreamingMaxEnt",
    "run_stream_subsample",
]
