"""Intelligent sampling — the paper's core contribution.

Pluggable samplers (register more with
:func:`~repro.sampling.base.register_sampler`):

====================  ======================================================
``random``            uniform without replacement (the strong baseline)
``lhs``               Latin hypercube selection over data points
``stratified``        K-means strata + per-stratum draws
``uips``              uniform-in-phase-space (binned, iterative)
``maxent``            entropy-weighted stratified sampling (Xmaxent)
====================  ======================================================

Phase-1 hypercube selection lives in :mod:`repro.sampling.maxent`
(``select_hypercubes_maxent``) and the full distributed two-phase pipeline in
:mod:`repro.sampling.pipeline`.  Temporal snapshot selection (§4.3) is in
:mod:`repro.sampling.temporal`.
"""

from repro.sampling.base import Sampler, available_samplers, get_sampler, register_sampler
from repro.sampling import random_ as _random_  # noqa: F401  (registers random/lhs)
from repro.sampling import stratified as _stratified  # noqa: F401
from repro.sampling import uips as _uips  # noqa: F401
from repro.sampling import maxent as _maxent  # noqa: F401
from repro.sampling.random_ import LatinHypercubeSampler, RandomSampler
from repro.sampling.stratified import StratifiedSampler, allocate_counts
from repro.sampling.uips import UIPSSampler
from repro.sampling.maxent import MaxEntSampler, maxent_cluster_weights, select_hypercubes_maxent
from repro.sampling.entropy import (
    shannon_entropy,
    kl_divergence,
    cluster_value_distributions,
    entropy_adjacency,
    node_strengths,
    adjacency_graph,
    strength_weights,
)
from repro.sampling.temporal import select_snapshots, js_divergence
from repro.sampling.pipeline import SubsampleResult, run_subsample, subsample
from repro.sampling.streaming import ReservoirSampler, StreamingMaxEnt

__all__ = [
    "Sampler",
    "available_samplers",
    "get_sampler",
    "register_sampler",
    "RandomSampler",
    "LatinHypercubeSampler",
    "StratifiedSampler",
    "allocate_counts",
    "UIPSSampler",
    "MaxEntSampler",
    "maxent_cluster_weights",
    "select_hypercubes_maxent",
    "shannon_entropy",
    "kl_divergence",
    "cluster_value_distributions",
    "entropy_adjacency",
    "node_strengths",
    "adjacency_graph",
    "strength_weights",
    "select_snapshots",
    "js_divergence",
    "SubsampleResult",
    "run_subsample",
    "subsample",
    "ReservoirSampler",
    "StreamingMaxEnt",
]
