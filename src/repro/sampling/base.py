"""Sampler interfaces and registries — SICKLE's pluggable architecture.

The paper advertises "a pluggable architecture that makes it easy to
integrate other sampling strategies"; here a sampler is any class
implementing :meth:`Sampler.select` and registered under a name.  The
pipeline, benches, and YAML configs refer to samplers by these names
(``random``, ``lhs``, ``stratified``, ``uips``, ``maxent``).

Streaming (single-pass, in-situ) samplers live in a sibling registry with
the same naming scheme: :class:`StreamSampler` implementations register via
:func:`register_stream_sampler` under the offline name they mirror
(``random`` → reservoir sampling, ``maxent`` → online MaxEnt), so a case's
``method:`` key resolves in both ``mode="batch"`` and ``mode="stream"``.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

import numpy as np

from repro.energy.meter import account
from repro.utils.rng import resolve_rng

__all__ = [
    "Sampler",
    "register_sampler",
    "get_sampler",
    "available_samplers",
    "StreamSampler",
    "register_stream_sampler",
    "get_stream_sampler",
    "stream_sampler_cls",
    "available_stream_samplers",
]

_REGISTRY: dict[str, type[Sampler]] = {}
_STREAM_REGISTRY: dict[str, type[StreamSampler]] = {}


def failed_producers_error(dead: list) -> RuntimeError:
    """The one error for dead stream producers under the ``"raise"`` policy
    (shared by :meth:`StreamSampler.merge_partial` and the streaming
    pipeline, so the message — including the remedy — cannot drift)."""
    detail = "; ".join(f"rank {r.rank}: {r.error or 'died mid-span'}" for r in dead)
    return RuntimeError(
        f"{len(dead)} stream producer(s) failed ({detail}); rerun with the "
        "'reweight' policy (on_rank_failure='reweight') to merge the "
        "partial streams"
    )


def fold_weighted_merge(items: list, weights: list[float] | None, rng, noun: str):
    """Fold ``items[1:]`` into ``items[0]`` by repeated weighted ``merge``.

    Shared by every ``merge_all`` flavour (stream samplers, raw reservoirs)
    so the fold semantics — weights default to each producer's own count,
    one rng drives every draw, order is the caller's — live in one place.

    ``weights[0]`` reweights the fold *target*: applied via its
    ``reweight`` method where supported, a validated no-op when it equals
    the target's own ``n_seen``, and a loud error otherwise — it is never
    silently dropped.
    """
    if not items:
        raise ValueError(f"merge_all needs at least one {noun}")
    if weights is not None and len(weights) != len(items):
        raise ValueError(f"weights must match {noun}s")
    rng = resolve_rng(rng)
    merged = items[0]
    if weights is not None and weights[0] is not None:
        w0 = float(weights[0])
        reweight = getattr(merged, "reweight", None)
        if reweight is not None:
            reweight(w0)
        elif w0 != float(merged.n_seen):
            raise ValueError(
                f"weights[0]={w0} would reweight the fold target, which "
                f"{type(merged).__name__} does not support; pass None (or "
                "its own n_seen) for the first entry"
            )
    for k, other in enumerate(items[1:], start=1):
        merged = merged.merge(
            other, weight=None if weights is None else float(weights[k]), rng=rng
        )
    return merged


class Sampler(abc.ABC):
    """Selects `n` point indices from a feature table.

    ``features`` is (n_points, d): the variables the method samples over —
    the K-means cluster variable for MaxEnt/stratified, the model input
    variables for UIPS (Table 1 / Fig 4).
    """

    #: registry name, set by the @register_sampler decorator
    name: str = ""

    #: virtual-clock work units charged per candidate point scanned by the
    #: pipeline (clustering-based methods revisit each point ~n_cluster-ish
    #: times; calibrated, not measured).  Safe default for third-party
    #: samplers, so anything registered via :func:`register_sampler` flows
    #: through the pipeline without a cost-table entry.
    cost_per_point: float = 1.0

    def sample(
        self,
        features: np.ndarray,
        n: int,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Validated entry point: returns `n` unique indices into `features`."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[:, None]
        if features.ndim != 2:
            raise ValueError(f"features must be (n_points, d), got {features.shape}")
        n_points = features.shape[0]
        if n_points == 0:
            raise ValueError("cannot sample from an empty feature table")
        if not np.all(np.isfinite(features)):
            raise ValueError("features contain non-finite values")
        if n < 1:
            raise ValueError("n must be >= 1")
        if n > n_points:
            raise ValueError(f"requested {n} samples from {n_points} points")
        rng = resolve_rng(rng)
        # Every sampler at minimum scans the candidate table once.
        account(flops=float(features.size), nbytes=float(features.nbytes), device="cpu")
        idx = np.asarray(self.select(features, n, rng))
        if idx.shape != (n,):
            raise AssertionError(f"{type(self).__name__} returned shape {idx.shape}, wanted ({n},)")
        if len(np.unique(idx)) != n:
            raise AssertionError(f"{type(self).__name__} returned duplicate indices")
        if idx.min() < 0 or idx.max() >= n_points:
            raise AssertionError(f"{type(self).__name__} returned out-of-range indices")
        return idx

    @abc.abstractmethod
    def select(self, features: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        """Strategy-specific selection; inputs are pre-validated."""


def register_sampler(name: str) -> Callable[[type[Sampler]], type[Sampler]]:
    """Class decorator adding a sampler to the registry under `name`."""

    def deco(cls: type[Sampler]) -> type[Sampler]:
        if not issubclass(cls, Sampler):
            raise TypeError(f"{cls.__name__} must subclass Sampler")
        if name in _REGISTRY:
            raise ValueError(f"sampler {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def get_sampler(name: str, **kwargs) -> Sampler:
    """Instantiate a registered sampler by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown sampler {name!r}; available: {available_samplers()}") from None
    return cls(**kwargs)


def available_samplers() -> list[str]:
    return sorted(_REGISTRY)


class StreamSampler(abc.ABC):
    """Single-pass sampler over a chunked stream — the in-situ counterpart
    of :class:`Sampler`.

    Constructor contract (so registry instantiation is uniform)::

        StreamSamplerSubclass(n_samples, value_range, rng=None, **kwargs)

    where ``value_range`` is the expected (lo, hi) range of the streamed
    cluster variable (samplers that don't bin values may ignore it).  Feed
    chunks as they are produced, then :meth:`finalize` once; the result rows
    are ``[value, payload...]`` like :meth:`StreamingMaxEnt.finalize`.
    """

    #: registry name, set by the @register_stream_sampler decorator
    name: str = ""

    #: virtual-clock work units per streamed point (same convention as
    #: :attr:`Sampler.cost_per_point`).
    cost_per_point: float = 1.0

    #: whether the sampler bins values and therefore needs a real
    #: ``value_range`` at construction; samplers that ignore the range keep
    #: this False so callers can skip computing a range hint entirely.
    needs_value_range: bool = False

    #: total points fed so far; implementations must keep this current.
    n_seen: int = 0

    @abc.abstractmethod
    def feed(self, values: np.ndarray, payload: np.ndarray | None = None) -> None:
        """Offer one chunk: `values` (n,) cluster variable, optional payload
        rows (n, d) carried alongside."""

    @abc.abstractmethod
    def finalize(self) -> np.ndarray:
        """End of stream: the selected rows ``[value, payload...]``."""

    def merge(
        self,
        other: StreamSampler,
        weight: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> StreamSampler:
        """Fold another producer's state into this sampler (multi-producer
        SPMD streaming: each rank streams its own partition, then rank 0
        merges).

        ``weight`` is the stream mass `other` represents (defaults to
        ``other.n_seen``), so the combined state stays distributionally
        equivalent to a single producer having streamed both partitions.
        Mutates and returns ``self``.  Optional for implementations —
        samplers that cannot merge raise ``NotImplementedError`` and stay
        single-producer.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support multi-producer merging"
        )

    @classmethod
    def merge_all(
        cls,
        samplers: list[StreamSampler],
        weights: list[float] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> StreamSampler:
        """Merge per-rank samplers into one by repeated weighted
        :meth:`merge` (folds into ``samplers[0]`` and returns it).

        ``weights[i]`` defaults to ``samplers[i].n_seen`` — the number of
        stream rows rank `i` actually saw — which makes the merged sample
        distributionally equivalent to one producer over the whole stream.
        Deterministic for a fixed ``rng`` seed, sampler states, and order.
        """
        kinds = {type(s) for s in samplers}
        if len(kinds) > 1:
            raise TypeError(f"cannot merge mixed sampler types: {sorted(k.__name__ for k in kinds)}")
        return fold_weighted_merge(samplers, weights, rng, "sampler")

    @classmethod
    def merge_partial(
        cls,
        samplers: list[StreamSampler],
        reports: list | None = None,
        on_failure: str = "reweight",
        rng: np.random.Generator | int | None = None,
    ) -> StreamSampler:
        """Merge per-rank states whose producers may not have finished.

        The fault-tolerant flavour of :meth:`merge_all`: ``reports[i]`` is
        rank `i`'s :class:`~repro.parallel.partition.ProducerReport` (or any
        object with ``failed`` / ``rank`` / ``error``), describing what the
        producer actually delivered.  Under ``on_failure="reweight"`` the
        partial states of failed producers merge like any other — each
        state's own delivered mass drives the multivariate-hypergeometric
        allocation, so the merged sample is reweighted by *delivered*, not
        nominal, mass.  Under ``on_failure="raise"`` any failed producer
        aborts the merge.  Empty states (empty spans, or producers that died
        before their first chunk) carry zero mass and are skipped, so
        ``nranks > n_snapshots`` and early deaths merge cleanly.
        """
        if on_failure not in ("reweight", "raise"):
            raise ValueError(
                f"on_failure must be 'reweight' or 'raise', got {on_failure!r}"
            )
        if not samplers:
            raise ValueError("merge_partial needs at least one sampler")
        if reports is not None:
            if len(reports) != len(samplers):
                raise ValueError("reports must match samplers")
            dead = [r for r in reports if r.failed]
            if dead and on_failure == "raise":
                raise failed_producers_error(dead)
        live = [s for s in samplers if s.n_seen > 0]
        if not live:
            raise ValueError("no stream producer delivered any data")
        return cls.merge_all(live, rng=rng)


def register_stream_sampler(name: str) -> Callable[[type[StreamSampler]], type[StreamSampler]]:
    """Class decorator adding a streaming sampler to the registry under `name`.

    Use the offline sampler name the strategy mirrors, so the same case
    ``method:`` drives both ingestion modes.
    """

    def deco(cls: type[StreamSampler]) -> type[StreamSampler]:
        if not issubclass(cls, StreamSampler):
            raise TypeError(f"{cls.__name__} must subclass StreamSampler")
        if name in _STREAM_REGISTRY:
            raise ValueError(f"stream sampler {name!r} already registered")
        cls.name = name
        _STREAM_REGISTRY[name] = cls
        return cls

    return deco


def stream_sampler_cls(name: str) -> type[StreamSampler]:
    """Resolve a registered streaming sampler class by (offline) name."""
    try:
        return _STREAM_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no streaming analogue registered for {name!r}; "
            f"available: {available_stream_samplers()}"
        ) from None


def get_stream_sampler(
    name: str,
    n_samples: int,
    value_range: tuple[float, float] | None = None,
    rng: np.random.Generator | int | None = None,
    **kwargs,
) -> StreamSampler:
    """Instantiate a registered streaming sampler by (offline) name."""
    return stream_sampler_cls(name)(n_samples, value_range, rng=rng, **kwargs)


def available_stream_samplers() -> list[str]:
    return sorted(_STREAM_REGISTRY)
