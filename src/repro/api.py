"""High-level experiment facade — the repo's front door.

One fluent chain drives the paper's whole T1 → T2 workflow::

    from repro.api import Experiment

    report = (
        Experiment.from_case("case.yaml")
        .with_ranks(32)
        .with_seed(7)
        .subsample()
        .train()
        .report()
    )

``from_case`` accepts a YAML path, a raw dict, or a built
:class:`~repro.utils.config.CaseConfig`.

Data enters through the stream-first :class:`~repro.data.sources.SnapshotSource`
protocol — one ``with_source`` for every ingestion mode, resolved by
:func:`~repro.data.sources.open_source`::

    exp = Experiment.from_case("case.yaml")

    exp.with_source(build_dataset("SST-P1F4"))            # batch (in-memory)
    exp.with_source("snapshots/")                         # out-of-core shards
    exp.with_source("raw+dir://snapshots/")               # pin a shard codec
    exp.with_source("remote://snapshots/?latency_s=0.01") # simulated remote tier
    exp.with_source(stream_dataset("sst-binary"))         # in-situ simulation

(a bare :class:`~repro.data.dataset.TurbulenceDataset` or a built
:class:`~repro.data.sources.SnapshotSource` is accepted directly;
``with_dataset`` remains as sugar).  The
two-phase pipeline fetches snapshots through the source on demand, so
out-of-core and in-situ runs never hold the dataset resident;
``subsample(mode="stream")`` switches to the single-pass streaming samplers
(reservoir / online MaxEnt) for true sampling-while-the-simulation-runs.

Every stage call records a first-class artifact —
:class:`SubsampleArtifact` / :class:`TrainArtifact` — that can be persisted
with ``save(path)`` and resurrected with ``Artifact.load(path)``; saved
artifacts embed the seed and a full config snapshot, so a stored result is
reproducible from its metadata alone.

The CLI (:mod:`repro.cli`) and the examples are thin shells over this
facade; under the hood each stage runs the composable
:class:`~repro.sampling.stages.SubsamplePipeline`, so anything registered
with ``register_sampler`` / ``register_selector`` /
``register_stream_sampler`` is available here too.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.data import load_dataset
from repro.data.dataset import TurbulenceDataset
from repro.data.points import PointSet
from repro.data.sources import (
    InMemorySource,
    PartitionedSource,
    ShardDirSource,
    SnapshotSource,
    open_source,
)
from repro.data.store import META_KEY as _META_KEY
from repro.data.store import OwnedShardLayout, points_from_npz, points_payload
from repro.energy.meter import EnergyMeter
from repro.sampling.pipeline import SubsampleResult, subsample
from repro.train import build_drag_data, build_reconstruction_data
from repro.train.callbacks import Checkpoint
from repro.train.data import stream_assembler
from repro.train.feeds import ArrayFeed, ShardedFeed, StreamFeed
from repro.train.loop import TrainLoop
from repro.train.trainer import TrainResult
from repro.train.tuning import SearchSpace, Trial, default_search_space
from repro.train.tuning import tune as _tune
from repro.utils.config import CaseConfig

__all__ = [
    "Artifact",
    "SubsampleArtifact",
    "TrainArtifact",
    "TuneArtifact",
    "Experiment",
    "build_model_for_case",
]


def build_model_for_case(case: CaseConfig, data, input_dim: int | None = None, rng=0):
    """Instantiate the Table 2 architecture named by ``train.arch``."""
    from repro.nn.models import CNNTransformer, LSTMRegressor, MATEY, MLPTransformer

    arch = case.train.arch
    if arch == "lstm":
        if input_dim is None:
            raise ValueError("lstm needs input_dim")
        return LSTMRegressor(input_dim=input_dim, horizon=case.train.horizon, rng=rng)
    common = dict(
        in_channels=data.in_channels, out_channels=data.out_channels, grid=data.grid,
        window=case.train.window, horizon=case.train.horizon,
        d_model=32, depth=1, n_heads=2, rng=rng,
    )
    if arch == "mlp_transformer":
        return MLPTransformer(n_points=data.n_points, **common)
    if arch == "cnn_transformer":
        return CNNTransformer(**common)
    if arch == "matey":
        return MATEY(patch=min(8, min(data.grid) // 2), **common)
    raise ValueError(f"unknown arch {arch!r}")


@dataclass
class Artifact:
    """A first-class, persistable stage result.

    Subclasses implement ``save(path) -> path`` and the ``load(path)``
    classmethod; every artifact carries the seed and a config snapshot in
    ``meta`` so it is reproducible without the originating script.
    """

    kind: ClassVar[str] = "artifact"

    meta: dict = field(default_factory=dict)

    def save(self, path: str) -> str:
        raise NotImplementedError

    @classmethod
    def load(cls, path: str) -> Artifact:
        raise NotImplementedError

    def summary(self) -> str:
        return f"[{self.kind}] {self.meta}"

    def fingerprint(self) -> str:
        """Stable sha256 identity of this artifact.

        Hashes the kind plus a canonicalized rendering of ``meta`` (the
        embedded case snapshot is re-normalized through
        :class:`~repro.utils.config.CaseConfig`, so dict ordering and
        defaulted fields do not perturb it; execution-only fields such as
        the SPMD backend are dropped — artifacts that are byte-identical
        by the backend-conformance contract fingerprint identically).
        This is the same identity scheme ``repro-serve`` dedupes jobs by;
        see :mod:`repro.serve.keys`.
        """
        from repro.serve.keys import artifact_fingerprint

        return artifact_fingerprint(self.kind, self.meta)


@dataclass
class SubsampleArtifact(Artifact):
    """Wraps a :class:`~repro.sampling.stages.SubsampleResult`."""

    kind: ClassVar[str] = "subsample"

    result: SubsampleResult | None = None

    @property
    def points(self) -> PointSet | None:
        return self.result.points if self.result is not None else None

    @property
    def selected_cube_ids(self) -> np.ndarray:
        return self.result.selected_cube_ids

    def summary(self) -> str:
        res = self.result
        lines = [
            f"Subsampled {res.n_samples} points/cells from "
            f"{res.n_points_scanned} scanned "
            f"(H{res.meta.get('hypercubes', '?')}-X{res.meta.get('method', '?')})",
            f"Elapsed Time: {res.virtual_time:.3f} s",
        ]
        if res.energy is not None:
            lines.append(res.energy.report())
        return "\n".join(lines)

    def save(self, path: str) -> str:
        """Persist as one compressed npz (points or dense cubes + JSON meta).

        The PointSet payload shares its format with
        :class:`repro.data.store.SubsampleStore`; ``method='full'`` results
        store every dense cube's variable blocks alongside their origins.
        """
        res = self.result
        if res is None:
            raise ValueError("artifact holds no result")
        payload: dict[str, np.ndarray] = {
            "selected_cube_ids": np.asarray(res.selected_cube_ids),
        }
        cube_meta = None
        if res.points is not None:
            payload.update(points_payload(res.points))
        elif res.cubes is not None:
            cube_meta = []
            for i, cube in enumerate(res.cubes):
                for var, block in cube.variables.items():
                    payload[f"cube{i}_{var}"] = block
                cube_meta.append({
                    "origin": list(cube.origin),
                    "shape": list(cube.shape),
                    "time": float(cube.time),
                    "meta": cube.meta,
                    "variables": sorted(cube.variables),
                })
        meta = {
            **self.meta,
            # The config snapshot is stored once, at artifact level; strip the
            # identical copy the pipeline records in result.meta.
            "result_meta": {k: v for k, v in res.meta.items() if k != "case"},
            "points_meta": res.points.meta if res.points is not None else None,
            "cubes": cube_meta,
            "n_candidate_cubes": res.n_candidate_cubes,
            "n_points_scanned": res.n_points_scanned,
            "virtual_time": res.virtual_time,
            "total_energy": res.energy.total_energy if res.energy is not None else None,
        }
        payload[_META_KEY] = np.array(json.dumps(meta))
        if not path.endswith(".npz"):
            path = path + ".npz"
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        np.savez_compressed(path, **payload)
        return path

    @classmethod
    def load(cls, path: str) -> SubsampleArtifact:
        """Rebuild the artifact (minus live energy meters) from ``save`` output."""
        from repro.data.hypercubes import Hypercube

        if not path.endswith(".npz"):
            path = path + ".npz"
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data[_META_KEY])) if _META_KEY in data.files else {}
            points = None
            cubes = None
            if "coords" in data.files:
                points = points_from_npz(data, meta.get("points_meta"))
            elif meta.get("cubes"):
                cubes = [
                    Hypercube(
                        origin=tuple(int(o) for o in cm["origin"]),
                        shape=tuple(int(s) for s in cm["shape"]),
                        variables={v: data[f"cube{i}_{v}"] for v in cm["variables"]},
                        time=cm["time"],
                        meta=cm.get("meta") or {},
                    )
                    for i, cm in enumerate(meta["cubes"])
                ]
            result_meta = meta.get("result_meta") or {}
            if "case" in meta:
                result_meta = {**result_meta, "case": meta["case"]}
            result = SubsampleResult(
                points=points,
                cubes=cubes,
                selected_cube_ids=data["selected_cube_ids"],
                n_candidate_cubes=int(meta.get("n_candidate_cubes", 0)),
                n_points_scanned=int(meta.get("n_points_scanned", 0)),
                energy=None,
                virtual_time=float(meta.get("virtual_time", 0.0)),
                meta=result_meta,
            )
        art_meta = {k: v for k, v in meta.items()
                    if k not in ("result_meta", "points_meta", "cubes")}
        return cls(meta=art_meta, result=result)


@dataclass
class TrainArtifact(Artifact):
    """Wraps a :class:`~repro.train.trainer.TrainResult`."""

    kind: ClassVar[str] = "train"

    result: TrainResult | None = None

    def summary(self) -> str:
        return self.result.report()

    def save(self, path: str) -> str:
        """Persist the loss curves and metadata as JSON."""
        res = self.result
        if res is None:
            raise ValueError("artifact holds no result")
        if not path.endswith(".json"):
            path = path + ".json"
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        doc = {
            "meta": self.meta,
            "train_losses": [float(v) for v in res.train_losses],
            "test_losses": [float(v) for v in res.test_losses],
            "best_test_loss": float(res.best_test_loss),
            "final_test_loss": float(res.final_test_loss),
            "epochs_run": int(res.epochs_run),
            "lr_reductions": int(res.lr_reductions),
            "result_meta": res.meta,
            "total_energy": res.energy.total_energy if res.energy is not None else None,
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
        return path

    @classmethod
    def load(cls, path: str) -> TrainArtifact:
        if not path.endswith(".json"):
            path = path + ".json"
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        result = TrainResult(
            train_losses=doc["train_losses"],
            test_losses=doc["test_losses"],
            best_test_loss=doc["best_test_loss"],
            final_test_loss=doc["final_test_loss"],
            epochs_run=doc["epochs_run"],
            energy=EnergyMeter(),
            lr_reductions=doc["lr_reductions"],
            meta=doc.get("result_meta") or {},
        )
        return cls(meta=doc.get("meta") or {}, result=result)


@dataclass
class TuneArtifact(Artifact):
    """Wraps a hyperparameter search (:func:`repro.train.tuning.tune`)."""

    kind: ClassVar[str] = "tune"

    best: Trial | None = None
    trials: list = field(default_factory=list)

    def summary(self) -> str:
        if self.best is None:
            return "(no trials run)"
        cfg = ", ".join(f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                        for k, v in self.best.config.items())
        return (f"Best of {len(self.trials)} trials: {cfg} "
                f"(test loss {self.best.score:.6f})")

    def save(self, path: str) -> str:
        if self.best is None:
            raise ValueError("artifact holds no result")
        if not path.endswith(".json"):
            path = path + ".json"
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        def score_of(trial: Trial):
            # Diverged trials carry score=inf, which json.dump would emit
            # as the non-RFC token `Infinity`; store null instead.
            s = float(trial.score)
            return s if np.isfinite(s) else None

        doc = {
            "meta": self.meta,
            "best": {"config": self.best.config, "score": score_of(self.best)},
            "trials": [
                {"config": t.config, "score": score_of(t)} for t in self.trials
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
        return path

    @classmethod
    def load(cls, path: str) -> TuneArtifact:
        if not path.endswith(".json"):
            path = path + ".json"
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)

        def as_score(value) -> float:
            return float("inf") if value is None else float(value)

        trials = [Trial(config=t["config"], score=as_score(t["score"]))
                  for t in doc["trials"]]
        best = Trial(config=doc["best"]["config"], score=as_score(doc["best"]["score"]))
        return cls(meta=doc.get("meta") or {}, best=best, trials=trials)


class Experiment:
    """Fluent builder + runner for one SICKLE case.

    ``with_*`` methods configure and return ``self`` (chainable); ``subsample``
    and ``train`` execute a stage and record its artifact; ``report`` renders
    everything run so far.  Stages only run once — calling ``train`` without
    ``subsample`` triggers the subsample stage implicitly.
    """

    def __init__(self, case: CaseConfig) -> None:
        self.case = case
        self.ranks = 1          # simulated MPI ranks for the subsample SPMD run
        self.train_ranks = 1    # simulated DDP ranks for training
        self.backend = "thread"  # SPMD substrate: "thread" or "process"
        self.stream_shuffle = 0  # ShuffleBuffer capacity for stream feeds
        self.seed = 0
        self.scale = 1.0
        self.epochs: int | None = None
        self.artifacts: dict[str, Artifact] = {}
        self._source: SnapshotSource | None = None
        self._source_explicit = False

    # ---- construction -----------------------------------------------------

    @classmethod
    def from_case(cls, case: str | dict[str, Any] | CaseConfig) -> Experiment:
        """Build from a YAML path, a raw config dict, or a CaseConfig."""
        if isinstance(case, CaseConfig):
            cfg = case
        elif isinstance(case, dict):
            cfg = CaseConfig.from_dict(case)
        else:
            cfg = CaseConfig.from_file(str(case))
        return cls(cfg)

    # ---- fluent configuration --------------------------------------------

    def with_ranks(self, n: int) -> Experiment:
        """Simulated MPI ranks for the subsample phase (``srun -n N``)."""
        if n < 1:
            raise ValueError("ranks must be >= 1")
        self.ranks = int(n)
        return self

    def with_train_ranks(self, n: int) -> Experiment:
        """Simulated DDP ranks for the training phase."""
        if n < 1:
            raise ValueError("train ranks must be >= 1")
        self.train_ranks = int(n)
        return self

    def with_backend(self, backend: str) -> Experiment:
        """SPMD substrate for every parallel stage: ``"thread"`` (virtual-time
        modeling, the default) or ``"process"`` (forked workers with
        shared-memory transport — real wall-clock parallelism).  Results are
        byte-identical across backends for the same (seed, ranks)."""
        from repro.parallel import SPMD_BACKENDS

        if backend not in SPMD_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {SPMD_BACKENDS}"
            )
        self.backend = backend
        return self

    def with_stream_shuffle(self, capacity: int) -> Experiment:
        """Shuffle-buffer capacity for stream-mode training feeds (see
        :class:`~repro.train.feeds.ShuffleBuffer`).  ``0`` (the default)
        keeps arrival order, byte-identical to pre-shuffle fits."""
        if capacity < 0:
            raise ValueError("shuffle capacity must be >= 0")
        self.stream_shuffle = int(capacity)
        return self

    def with_seed(self, seed: int) -> Experiment:
        self.seed = int(seed)
        self._invalidate_dataset()
        return self

    def with_scale(self, scale: float) -> Experiment:
        """Dataset resolution scale (1.0 = the case's native grid)."""
        if scale <= 0:
            raise ValueError("scale must be > 0")
        self.scale = float(scale)
        self._invalidate_dataset()
        return self

    def _invalidate_dataset(self) -> None:
        """Drop a lazily-loaded source (it depends on seed and scale);
        a source supplied via with_source/with_dataset is the user's and
        is kept.

        Refuses outright once a stage has run: recorded artifacts were
        produced under the old dataset, and silently pairing them with a
        reloaded one (e.g. ``.subsample().with_scale(0.5).train()``) would
        train on data inconsistent with the sampled points and stamp the
        new settings into the artifact metadata.
        """
        if self.artifacts:
            raise RuntimeError(
                "cannot change seed/scale/dataset after a stage has run "
                f"(recorded: {sorted(self.artifacts)}); start a new "
                "Experiment via Experiment.from_case(...)"
            )
        if not self._source_explicit:
            self._source = None

    def with_epochs(self, epochs: int | None) -> Experiment:
        """Override the case's epoch budget (None keeps the case value)."""
        if epochs is not None and epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.epochs = epochs
        return self

    def with_source(self, source: SnapshotSource | TurbulenceDataset | str) -> Experiment:
        """Drive the experiment from any :class:`SnapshotSource`.

        Accepts an in-memory / sharded / remote-tiered / simulation source,
        a bare :class:`TurbulenceDataset`, a shard-directory path, or an
        :func:`~repro.data.sources.open_source` spec string
        (``raw+dir:///data/shards``, ``remote:///data/shards?latency_s=...``)
        — the single entry point for batch, out-of-core, and in-situ
        ingestion.
        """
        if self.artifacts:
            raise RuntimeError(
                "cannot change seed/scale/dataset after a stage has run "
                f"(recorded: {sorted(self.artifacts)}); start a new "
                "Experiment via Experiment.from_case(...)"
            )
        self._source = open_source(source)
        self._source_explicit = True
        return self

    def with_dataset(self, dataset: TurbulenceDataset) -> Experiment:
        """Use a pre-built dataset instead of loading from the case
        (sugar for ``with_source(dataset)``)."""
        return self.with_source(dataset)

    # ---- execution --------------------------------------------------------

    @property
    def source(self) -> SnapshotSource:
        """The experiment's snapshot source, built lazily from the case
        (an in-memory source over the catalog dataset) unless supplied via
        ``with_source``/``with_dataset``."""
        if self._source is None:
            self._source = InMemorySource(load_dataset(
                self.case.shared.dtype,
                path=self.case.subsample.path or None,
                scale=self.scale,
                rng=self.seed,
            ))
        return self._source

    @property
    def dataset(self) -> TurbulenceDataset:
        """The resident dataset behind an in-memory source.

        Raises for out-of-core / in-situ sources, whose whole point is that
        no resident dataset exists — use :attr:`source` instead.
        """
        source = self.source
        if isinstance(source, InMemorySource):
            return source.dataset
        raise RuntimeError(
            f"experiment is driven by a {type(source).__name__}, which never "
            "materializes a resident dataset; use .source"
        )

    def subsample(
        self,
        mode: str = "batch",
        ranks: int | None = None,
        owned_shards: bool = False,
        on_rank_failure: str = "raise",
        fault_hook=None,
    ) -> Experiment:
        """Run the subsampling pipeline and record its artifact.

        ``mode="batch"`` is the two-phase SPMD pipeline; ``mode="stream"``
        is the single-pass streaming path (reservoir / online MaxEnt over
        chunks as the source produces them).  Both are rank-parallel:
        ``ranks`` overrides ``with_ranks`` for this call only (the
        experiment's configured rank count is untouched), and in stream
        mode each rank streams its own snapshot partition concurrently,
        with per-rank sampler states recombined by weighted merge.

        Stream-only knobs (see :func:`repro.sampling.pipeline.subsample`):
        ``owned_shards`` isolates per-rank shard I/O behind an
        :class:`~repro.data.store.OwnedShardLayout`; ``on_rank_failure``
        picks the partial-stream policy (``"reweight"`` merges what failed
        producers delivered, ``"raise"`` fails the draw); ``fault_hook``
        injects producer deaths for testing.
        """
        if ranks is None:
            ranks = self.ranks
        elif ranks < 1:
            raise ValueError("ranks must be >= 1")
        result = subsample(self.source, self.case, nranks=int(ranks),
                           seed=self.seed, mode=mode, owned_shards=owned_shards,
                           on_rank_failure=on_rank_failure, fault_hook=fault_hook,
                           backend=self.backend)
        self.artifacts["subsample"] = SubsampleArtifact(
            meta={"seed": self.seed, "case": self.case.to_dict(),
                  "ranks": int(ranks), "scale": self.scale, "mode": mode,
                  "backend": self.backend,
                  "owned_shards": bool(owned_shards),
                  "on_rank_failure": on_rank_failure,
                  "source": type(self.source).__name__},
            result=result,
        )
        return self

    def train(
        self,
        mode: str = "batch",
        resume: str | None = None,
        checkpoint: str | None = None,
        checkpoint_every: int = 1,
        callbacks: list | None = None,
    ) -> Experiment:
        """Train the case's architecture on the subsample; records an artifact.

        ``mode="batch"`` assembles resident training arrays from a
        batch-mode subsample (the classic path, byte-identical to the seed
        goldens).  ``mode="stream"`` fits directly off the merged stream: the
        stream-mode subsample's sampled points become fixed sensors and
        windows are built incrementally as snapshots arrive from the source
        — bounded memory, no resident dataset; with ``with_train_ranks(N)``
        each DDP rank streams its own snapshot span (per-rank feeds over an
        :class:`~repro.data.store.OwnedShardLayout` for sharded sources).

        ``checkpoint`` writes a resumable checkpoint every
        ``checkpoint_every`` epochs; ``resume`` continues a fit from one,
        bit-identical to an uninterrupted run.  ``callbacks`` appends
        extra :class:`~repro.train.callbacks.Callback` instances after the
        checkpoint callback (e.g. ``StopOnSignal`` for drain-to-checkpoint
        in service mode); with multiple train ranks each rank's loop gets
        the same instances, so they must be fork/thread-safe.
        """
        if mode not in ("batch", "stream"):
            raise ValueError(f"mode must be 'batch' or 'stream', got {mode!r}")
        if "subsample" not in self.artifacts:
            self.subsample(mode=mode)
        result: SubsampleResult = self.subsample_artifact.result
        if mode == "batch" and result.meta.get("mode") == "stream":
            raise ValueError(
                "batch-mode training from a stream-mode subsample is not "
                "supported: streaming results carry no hypercube structure "
                "to build resident windows from; call train(mode='stream') "
                "to fit directly off the merged stream"
            )
        case = self.case
        epochs = self.epochs if self.epochs is not None else min(case.train.epochs, 100)
        if mode == "stream":
            fit = self._train_stream(result, epochs, resume, checkpoint,
                                     checkpoint_every, callbacks)
        else:
            fit = self._train_batch(result, epochs, resume, checkpoint,
                                    checkpoint_every, callbacks)
        self.artifacts["train"] = TrainArtifact(
            meta={"seed": self.seed, "case": case.to_dict(),
                  "ranks": self.train_ranks, "epochs": epochs, "mode": mode,
                  "backend": self.backend,
                  "checkpoint": checkpoint, "resumed_from": resume},
            result=fit,
        )
        return self

    def _loop_for(self, model, comm=None, checkpoint=None,
                  checkpoint_every=1, extra_callbacks=None) -> TrainLoop:
        case = self.case
        callbacks = []
        if checkpoint is not None:
            callbacks.append(Checkpoint(checkpoint, every=checkpoint_every))
        if extra_callbacks:
            callbacks.extend(extra_callbacks)
        return TrainLoop(
            model, lr=case.train.lr, patience=case.train.patience,
            precision=case.train.precision, comm=comm, seed=self.seed,
            callbacks=callbacks,
        )

    def _assemble_batch_data(self, result):
        """Resident training arrays + model geometry for the case's arch."""
        case = self.case
        if case.train.arch == "lstm":
            x, y = build_drag_data(self.source, result, window=case.train.window,
                                   horizon=case.train.horizon)
            return x, y, None, x.shape[2]
        data = build_reconstruction_data(self.source, result,
                                         window=case.train.window,
                                         horizon=case.train.horizon)
        return data.x, data.y, data, None

    def _train_batch(self, result, epochs, resume, checkpoint,
                     checkpoint_every, callbacks=None) -> TrainResult:
        case = self.case
        x, y, spec, input_dim = self._assemble_batch_data(result)

        def run(comm=None) -> TrainResult:
            # Each rank builds its own replica (identical seed/init; DDP
            # broadcasts rank 0's weights anyway) so thread ranks never race
            # on one shared module's gradients.
            model = build_model_for_case(case, spec, input_dim=input_dim,
                                         rng=self.seed)
            loop = self._loop_for(model, comm=comm, checkpoint=checkpoint,
                                  checkpoint_every=checkpoint_every,
                                  extra_callbacks=callbacks)
            feed = ArrayFeed(x, y, batch=case.train.batch,
                             test_frac=case.train.test_frac,
                             seed=self.seed, comm=loop.comm)
            return loop.fit(feed, epochs=epochs, resume=resume)

        if self.train_ranks > 1:
            from repro.parallel import run_spmd

            return run_spmd(lambda comm: run(comm), self.train_ranks,
                            backend=self.backend)[0]
        return run()

    def _train_stream(self, result, epochs, resume, checkpoint,
                      checkpoint_every, callbacks=None) -> TrainResult:
        """Fit incrementally off the streaming source (no resident dataset)."""
        case = self.case
        source = self.source
        points = result.points
        nranks = self.train_ranks

        def run(comm=None, layout=None) -> TrainResult:
            rank_source = None  # a per-rank private source this rank must close
            try:
                if comm is not None and comm.size > 1:
                    from repro.parallel.partition import stream_partitions

                    parts = stream_partitions(source.n_snapshots, comm.size)
                    part = parts[comm.rank]
                    if layout is not None:
                        # reopen() keeps the source's own knobs (and tier:
                        # remote ranks stage their owned shards privately).
                        rank_source = source.reopen(layout.rank_dir(comm.rank))
                        span_source = rank_source
                    else:
                        span_source = PartitionedSource(source, part.lo, part.hi)
                    assembler = stream_assembler(span_source, case, points)
                    feed = ShardedFeed.for_rank(
                        comm, span_source, assembler, source.n_snapshots,
                        batch=case.train.batch, test_frac=case.train.test_frac,
                        seed=self.seed, shuffle=self.stream_shuffle,
                    )
                else:
                    assembler = stream_assembler(source, case, points)
                    feed = StreamFeed(
                        source, assembler, batch=case.train.batch,
                        test_frac=case.train.test_frac, seed=self.seed,
                        shuffle=self.stream_shuffle,
                    )
                spec = feed.spec
                model = build_model_for_case(case, spec, input_dim=spec.input_dim,
                                             rng=self.seed)
                loop = self._loop_for(model, comm=comm, checkpoint=checkpoint,
                                      checkpoint_every=checkpoint_every,
                                      extra_callbacks=callbacks)
                return loop.fit(feed, epochs=epochs, resume=resume)
            finally:
                # Close before the outer finally removes the owned-shard
                # layout, so no prefetch thread outlives its shard files —
                # even when feed construction itself raised.
                if rank_source is not None:
                    rank_source.close()

        if nranks > 1:
            from repro.parallel import run_spmd

            # Sharded sources get true per-rank I/O ownership: a private
            # shard directory, LRU, and prefetcher per DDP rank.
            layout = (
                OwnedShardLayout.build(source.layout_path, nranks)
                if isinstance(source, ShardDirSource) else None
            )
            try:
                return run_spmd(lambda comm: run(comm, layout), nranks,
                                backend=self.backend)[0]
            finally:
                if layout is not None:
                    layout.remove()
        return run()

    def tune(
        self,
        n_trials: int = 10,
        strategy: str = "bayes",
        space: SearchSpace | None = None,
        epochs: int | None = None,
    ) -> Experiment:
        """Hyperparameter search (the paper's DeepHyper ``--tune`` substitute).

        Runs :func:`repro.train.tuning.tune` over the case's training data
        (assembled from the batch subsample, which runs implicitly if
        needed): each trial fits a fresh model with the sampled ``lr`` /
        ``batch`` (see :func:`~repro.train.tuning.default_search_space`) for
        a reduced epoch budget (`epochs`, else ``with_epochs``, else the
        case budget capped at 10) and is scored by final test loss.
        Records a :class:`TuneArtifact`; the best configuration is in
        ``exp.tune_artifact.best``.
        """
        if self.train_ranks > 1:
            raise ValueError(
                "tune() runs its trials serially; with_train_ranks "
                f"({self.train_ranks}) would be silently ignored — tune on "
                "a single rank, then train the best config with DDP"
            )
        if "subsample" not in self.artifacts:
            self.subsample()
        result: SubsampleResult = self.subsample_artifact.result
        if result.meta.get("mode") == "stream":
            raise ValueError(
                "tune() searches over resident training arrays; run the "
                "subsample in batch mode first"
            )
        case = self.case
        space = space or default_search_space()
        supported = {"lr", "batch"}
        unknown = sorted(set(space.params) - supported)
        if unknown:
            raise ValueError(
                f"tune() can apply only {sorted(supported)} to a trial; "
                f"the search space also names {unknown}, which would be "
                "sampled and recorded but never used — drop them or extend "
                "the objective"
            )
        if epochs is not None:
            trial_epochs = epochs
        elif self.epochs is not None:
            trial_epochs = self.epochs
        else:
            trial_epochs = min(case.train.epochs, 10)
        x, y, spec, input_dim = self._assemble_batch_data(result)

        def objective(config: dict) -> float:
            model = build_model_for_case(case, spec, input_dim=input_dim,
                                         rng=self.seed)
            loop = TrainLoop(
                model, lr=float(config.get("lr", case.train.lr)),
                patience=case.train.patience, precision=case.train.precision,
                seed=self.seed,
            )
            feed = ArrayFeed(
                x, y, batch=int(config.get("batch", case.train.batch)),
                test_frac=case.train.test_frac, seed=self.seed,
            )
            return loop.fit(feed, epochs=trial_epochs).final_test_loss

        best, trials = _tune(objective, space, n_trials=n_trials,
                             strategy=strategy, rng=self.seed)
        self.artifacts["tune"] = TuneArtifact(
            meta={"seed": self.seed, "case": case.to_dict(),
                  "n_trials": int(n_trials), "strategy": strategy,
                  "epochs_per_trial": int(trial_epochs),
                  "space": {k: list(v) for k, v in space.params.items()}},
            best=best,
            trials=trials,
        )
        return self

    # ---- results ----------------------------------------------------------

    @property
    def subsample_artifact(self) -> SubsampleArtifact:
        try:
            return self.artifacts["subsample"]  # type: ignore[return-value]
        except KeyError:
            raise KeyError("subsample stage has not run; call .subsample() first") from None

    @property
    def train_artifact(self) -> TrainArtifact:
        try:
            return self.artifacts["train"]  # type: ignore[return-value]
        except KeyError:
            raise KeyError("train stage has not run; call .train() first") from None

    @property
    def tune_artifact(self) -> TuneArtifact:
        try:
            return self.artifacts["tune"]  # type: ignore[return-value]
        except KeyError:
            raise KeyError("tune stage has not run; call .tune() first") from None

    def report(self) -> str:
        """Human-readable report over every stage run so far."""
        if not self.artifacts:
            return "(no stages run yet)"
        blocks = []
        for name in ("subsample", "tune", "train"):
            art = self.artifacts.get(name)
            if art is not None:
                blocks.append(f"== {name} ==\n{art.summary()}")
        return "\n\n".join(blocks)

    def save(self, directory: str) -> dict[str, str]:
        """Persist every recorded artifact under ``directory``; returns paths."""
        os.makedirs(directory, exist_ok=True)
        return {
            name: art.save(os.path.join(directory, name))
            for name, art in self.artifacts.items()
        }
