"""GESTS-like forced isotropic turbulence snapshots.

The paper's GESTS datasets (Yeung et al.) are single snapshots of forced
isotropic turbulence at 2048^3 / 8192^3, stored as physical-space bricks with
velocity, dissipation, pressure, and enstrophy (the K-means cluster variable).
We regenerate a statistically equivalent brick at configurable resolution:
initialize a divergence-free von Kármán field and evolve it with the
pseudo-spectral solver under low-wavenumber forcing for a spin-up period so
the small scales develop genuine nonlinear structure.

Isotropy is the property that matters downstream: the paper finds sampling
methods nearly tie on GESTS because no direction (and no region) is special.
"""

from __future__ import annotations

import numpy as np

from repro.sim.fields import FlowField
from repro.sim.navier_stokes import NSConfig, SpectralNS3D
from repro.sim.spectral import dissipation_rate, enstrophy, solenoidal_random_field
from repro.utils.rng import resolve_rng

__all__ = ["generate_isotropic"]


def generate_isotropic(
    shape: tuple[int, int, int] = (32, 32, 32),
    nu: float = 8e-3,
    spinup_steps: int = 40,
    forcing_kmax: float = 2.0,
    rng: np.random.Generator | int | None = None,
) -> FlowField:
    """One forced-isotropic-turbulence snapshot with u, v, w, p, e, enstrophy.

    ``spinup_steps = 0`` skips the solve and returns the synthetic spectral
    field directly (useful for fast tests; the spectrum is right either way,
    the solve adds realistic phase structure / intermittency).
    """
    rng = resolve_rng(rng)
    u, v, w = solenoidal_random_field(shape, k_peak=3.0, rng=rng)
    if spinup_steps > 0:
        cfg = NSConfig(shape=shape, nu=nu, dt=2.5e-3, forcing_kmax=forcing_kmax)
        solver = SpectralNS3D(cfg, velocity=(u, v, w))
        solver.step(spinup_steps)
        u, v, w = solver.velocity()
        p = solver.pressure()
    else:
        # Poisson-consistent pressure for the synthetic field.
        cfg = NSConfig(shape=shape, nu=nu)
        solver = SpectralNS3D(cfg, velocity=(u, v, w))
        p = solver.pressure()
    eps = dissipation_rate(u, v, w, nu=nu)
    omega2 = enstrophy(u, v, w)
    return FlowField(
        variables={
            "u": u,
            "v": v,
            "w": w,
            "p": p,
            "e": eps,
            "dissipation": eps,
            "enstrophy": omega2,
        },
        time=0.0,
        meta={"nu": nu, "regime": "isotropic", "label": "GESTS"},
    )
