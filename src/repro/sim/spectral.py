"""Fourier-space utilities for periodic turbulence fields.

All fields live on uniform periodic grids over ``[0, 2*pi)^d`` unless stated
otherwise; rfftn layouts keep memory at roughly half the complex spectrum.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.utils.rng import resolve_rng

__all__ = [
    "wavenumber_grid",
    "wavenumber_magnitude",
    "von_karman_spectrum",
    "solenoidal_random_field",
    "radial_energy_spectrum",
    "spectral_gradient",
    "vorticity",
    "divergence",
    "dissipation_rate",
    "enstrophy",
]


def wavenumber_grid(
    shape: tuple[int, ...], real: bool = True, zero_nyquist: bool = False
) -> list[np.ndarray]:
    """Integer wavenumber arrays (broadcastable) for an FFT of `shape`.

    With ``real=True`` the last axis uses the rfft layout.  ``zero_nyquist``
    zeroes the ±n/2 entries: the Nyquist mode is its own reflection partner,
    so multiplying a real field's spectrum by the *odd* function k there
    breaks Hermitian symmetry — derivative-like operators must drop it.
    """
    if len(shape) < 1:
        raise ValueError("shape must have at least one axis")
    return [k.copy() for k in _wavenumber_grid_cached(tuple(shape), real, zero_nyquist)]


@lru_cache(maxsize=64)
def _wavenumber_grid_cached(
    shape: tuple[int, ...], real: bool, zero_nyquist: bool
) -> tuple[np.ndarray, ...]:
    """Read-only cached wavenumber arrays; grids recur per field shape."""
    ks = []
    for ax, n in enumerate(shape):
        if ax == len(shape) - 1 and real:
            k = np.fft.rfftfreq(n, d=1.0 / n)
        else:
            k = np.fft.fftfreq(n, d=1.0 / n)
        if zero_nyquist and n % 2 == 0:
            k = k.copy()
            k[np.abs(k) == n // 2] = 0.0
        k = k.reshape([-1 if a == ax else 1 for a in range(len(shape))])
        k.flags.writeable = False
        ks.append(k)
    return tuple(ks)


def wavenumber_magnitude(shape: tuple[int, ...], real: bool = True) -> np.ndarray:
    """|k| on the (r)fft grid."""
    ks = wavenumber_grid(shape, real=real)
    return np.sqrt(sum(k**2 for k in ks))


def von_karman_spectrum(k: np.ndarray, k_peak: float = 4.0, k_eta: float | None = None) -> np.ndarray:
    """Model energy spectrum: k^4 rise, k^{-5/3} inertial range, viscous cutoff.

        E(k) ∝ (k/k_peak)^4 / (1 + (k/k_peak)^2)^(17/6) * exp(-2 (k/k_eta)^2)

    ``k_eta`` defaults to no cutoff (useful on coarse grids where the grid
    itself truncates the spectrum).
    """
    k = np.asarray(k, dtype=np.float64)
    if k_peak <= 0:
        raise ValueError("k_peak must be positive")
    kk = k / k_peak
    spec = kk**4 / (1.0 + kk**2) ** (17.0 / 6.0)
    if k_eta is not None:
        if k_eta <= 0:
            raise ValueError("k_eta must be positive")
        spec = spec * np.exp(-2.0 * (k / k_eta) ** 2)
    return spec


def _hermitian_noise(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Complex spectral noise whose inverse rfftn is real (by construction)."""
    real_field = rng.standard_normal(shape)
    return np.fft.rfftn(real_field)


def solenoidal_random_field(
    shape: tuple[int, int, int],
    spectrum: np.ndarray | None = None,
    k_peak: float = 4.0,
    rng: np.random.Generator | int | None = None,
    anisotropy: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random divergence-free velocity field with a prescribed energy spectrum.

    Each component starts as white noise in spectral space, is projected onto
    the divergence-free subspace (P_ij = δ_ij - k_i k_j / k²), then the radial
    shells are rescaled so the realized spectrum matches the target (default:
    von Kármán with peak at `k_peak`).  `anisotropy` scales per-component
    variance (e.g. ``(1, 1, 0.3)`` suppresses vertical motions, mimicking
    stratified turbulence's pancake structure).

    Returns (u, v, w) in physical space, unit RMS velocity overall.
    """
    if len(shape) != 3:
        raise ValueError("solenoidal fields are 3-D; use shape (nx, ny, nz)")
    rng = resolve_rng(rng)
    ks = wavenumber_grid(shape, real=True)
    kmag = np.sqrt(sum(k**2 for k in ks))
    kmag_safe = np.where(kmag == 0, 1.0, kmag)

    uh = [anisotropy[i] * _hermitian_noise(shape, rng) for i in range(3)]
    # Zero Nyquist planes: they are unprojectable (self-conjugate under the
    # Hermitian reflection) and carry negligible energy anyway.
    nyq = np.zeros(kmag.shape, dtype=bool)
    for ax, n in enumerate(shape):
        if n % 2 == 0:
            idx = [slice(None)] * 3
            idx[ax] = n // 2
            nyq[tuple(idx)] = True
    for f in uh:
        f[nyq] = 0.0
    # Leray projection: remove the compressive component.  (Anisotropy is
    # applied *before* projection so the result stays divergence-free.)
    div = sum(k * f for k, f in zip(ks, uh))
    for i in range(3):
        uh[i] = uh[i] - ks[i] * div / kmag_safe**2
        uh[i][kmag == 0] = 0.0

    # Shell-rescale so the *shell-integrated* energy follows the target E(k).
    shell = np.rint(kmag).astype(np.int64)
    nshells = int(shell.max()) + 1
    k_shells = np.arange(nshells, dtype=np.float64)
    wanted = (
        np.asarray(spectrum, dtype=np.float64)
        if spectrum is not None
        else von_karman_spectrum(k_shells, k_peak=k_peak)
    )
    if wanted.shape != (nshells,):
        raise ValueError(f"spectrum must be per-shell with {nshells} entries, got {wanted.shape}")
    # rfft layout: interior kz-planes represent conjugate pairs → weight 2.
    weight = np.full(shape[:2] + (shape[2] // 2 + 1,), 2.0)
    weight[..., 0] = 1.0
    if shape[2] % 2 == 0:
        weight[..., -1] = 1.0
    current = np.zeros(nshells)
    energy_density = weight * sum(np.abs(f) ** 2 for f in uh)
    np.add.at(current, shell.ravel(), energy_density.ravel())
    scale_shell = np.sqrt(np.divide(wanted, current, out=np.zeros(nshells), where=current > 0))
    scale = scale_shell[shell]
    for i in range(3):
        uh[i] = uh[i] * scale

    u, v, w = (np.fft.irfftn(f, s=shape, axes=(0, 1, 2)) for f in uh)
    rms = np.sqrt(np.mean(u**2 + v**2 + w**2))
    if rms > 0:
        u, v, w = u / rms, v / rms, w / rms
    return u, v, w


def radial_energy_spectrum(*components: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Shell-averaged kinetic energy spectrum E(k) of velocity components.

    Returns (k, E) with ``sum(E) ≈ mean kinetic energy``.
    """
    if not components:
        raise ValueError("need at least one velocity component")
    shape = components[0].shape
    for c in components:
        if c.shape != shape:
            raise ValueError("components must share a shape")
    n_total = float(np.prod(shape))
    kmag = wavenumber_magnitude(shape, real=True)
    shell = np.rint(kmag).astype(np.int64)
    nshells = int(shell.max()) + 1
    weight = np.ones(kmag.shape)
    weight[..., 1:] = 2.0
    if shape[-1] % 2 == 0:
        weight[..., -1] = 1.0
    spec = np.zeros(nshells)
    for c in components:
        ch = np.fft.rfftn(c) / n_total
        np.add.at(spec, shell.ravel(), (weight * 0.5 * np.abs(ch) ** 2).ravel())
    return np.arange(nshells, dtype=np.float64), spec


def spectral_gradient(field: np.ndarray, axis: int) -> np.ndarray:
    """d(field)/dx_axis for a periodic field on [0, 2*pi)^d, via FFT."""
    ks = _wavenumber_grid_cached(field.shape, True, True)
    return _gradient_from_spectrum(np.fft.rfftn(field), ks, axis, field.shape)


def _gradient_from_spectrum(
    fh: np.ndarray, ks: tuple[np.ndarray, ...], axis: int, shape: tuple[int, ...]
) -> np.ndarray:
    axes = tuple(range(len(shape)))
    return np.fft.irfftn(1j * ks[axis] * fh, s=shape, axes=axes)


def vorticity(u: np.ndarray, v: np.ndarray, w: np.ndarray | None = None) -> tuple[np.ndarray, ...]:
    """Vorticity components; 2-D inputs return the scalar (w_z,)."""
    if w is None:
        return (spectral_gradient(v, 0) - spectral_gradient(u, 1),)
    wx = spectral_gradient(w, 1) - spectral_gradient(v, 2)
    wy = spectral_gradient(u, 2) - spectral_gradient(w, 0)
    wz = spectral_gradient(v, 0) - spectral_gradient(u, 1)
    return wx, wy, wz


def divergence(u: np.ndarray, v: np.ndarray, w: np.ndarray | None = None) -> np.ndarray:
    """Velocity divergence (should vanish for incompressible fields)."""
    out = spectral_gradient(u, 0) + spectral_gradient(v, 1)
    if w is not None:
        out = out + spectral_gradient(w, 2)
    return out


def dissipation_rate(u: np.ndarray, v: np.ndarray, w: np.ndarray, nu: float = 1.0) -> np.ndarray:
    """Local dissipation ε = 2 ν S_ij S_ij from the strain-rate tensor."""
    comps = (u, v, w)
    # One forward FFT per component, one inverse per distinct du_i/dx_j:
    # the naive per-pair formulation redoes the forward transforms 6x.  The
    # accumulation below visits (i, j) in the same order with bitwise-equal
    # sij (S is symmetric and fp addition commutes), so ε is unchanged.
    ks = _wavenumber_grid_cached(u.shape, True, True)
    fhs = [np.fft.rfftn(c) for c in comps]
    grad = [
        [_gradient_from_spectrum(fhs[i], ks, j, u.shape) for j in range(3)]
        for i in range(3)
    ]
    eps = np.zeros_like(u)
    for i in range(3):
        for j in range(3):
            sij = 0.5 * (grad[i][j] + grad[j][i])
            eps += 2.0 * nu * sij**2
    return eps


def enstrophy(u: np.ndarray, v: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Local enstrophy Ω = |curl u|² (GESTS's K-means cluster variable)."""
    wx, wy, wz = vorticity(u, v, w)
    return wx**2 + wy**2 + wz**2
