"""TC2D: 2-D turbulent premixed combustion progress-variable fields.

The paper's TC2D case (from the NREL phase-space-sampling work) is a
downsampled 2-D turbulent combustion DNS described by the progress variable
C and its filtered variance.  We synthesize an equivalent field: a wrinkled
flame front — a level set displaced by multi-scale sinusoidal perturbations —
smoothed over a finite flame thickness, so that

* C is near 0 (fresh) on one side and near 1 (burnt) on the other → the
  strongly *bimodal* joint PDF that makes uniform-in-phase-space sampling
  attractive (Fig 4 left), and
* the filtered variance  C''² = filter(C²) - filter(C)²  is sharply peaked
  on the thin flame front (the rare, information-rich region).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.sim.fields import FlowField
from repro.utils.rng import resolve_rng

__all__ = ["generate_combustion"]


def generate_combustion(
    shape: tuple[int, int] = (200, 200),
    flame_thickness: float = 0.02,
    wrinkle_amplitude: float = 0.12,
    n_modes: int = 6,
    filter_sigma: float = 2.0,
    rng: np.random.Generator | int | None = None,
) -> FlowField:
    """One TC2D snapshot with variables C and C''² (``c`` and ``c_var``).

    ``flame_thickness`` is in units of the domain height; the front runs
    roughly across the middle of the domain with `n_modes` random wrinkles.
    """
    if len(shape) != 2:
        raise ValueError("TC2D is 2-D; shape must be (nx, ny)")
    if flame_thickness <= 0:
        raise ValueError("flame_thickness must be positive")
    rng = resolve_rng(rng)
    nx, ny = shape
    x = np.linspace(0.0, 1.0, nx)[:, None]
    y = np.linspace(0.0, 1.0, ny)[None, :]

    # Wrinkled front position y_f(x): superposition of random sinusoids with
    # amplitude falling as 1/k (large scales dominate, small scales wrinkle).
    y_front = np.full((nx, 1), 0.5)
    for mode in range(1, n_modes + 1):
        amp = wrinkle_amplitude / mode
        phase = rng.uniform(0, 2 * np.pi)
        y_front = y_front + amp * np.sin(2.0 * np.pi * mode * x + phase)

    signed_distance = y - y_front
    c = 0.5 * (1.0 + np.tanh(signed_distance / flame_thickness))

    filtered_c = gaussian_filter(c, sigma=filter_sigma, mode="nearest")
    filtered_c2 = gaussian_filter(c**2, sigma=filter_sigma, mode="nearest")
    c_var = np.clip(filtered_c2 - filtered_c**2, 0.0, None)

    return FlowField(
        variables={"c": c, "c_var": c_var},
        time=0.0,
        meta={"regime": "combustion", "label": "TC2D", "flame_thickness": flame_thickness},
    )
