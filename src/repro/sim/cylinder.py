"""OF2D: 2-D laminar flow over a cylinder with a Kármán vortex street.

The paper's OF2D case is an OpenFOAM body-fitted simulation at Re = 1267,
interpolated to a Cartesian grid for sampling, with drag as the surrogate
target.  OpenFOAM is unavailable offline, so we build a kinematic wake model
that preserves everything the sampling study sees:

* potential flow (uniform stream + doublet) around the cylinder,
* a staggered street of Oseen (Lamb) vortices of alternating sign advecting
  downstream at the classic ~0.88 U convection speed, shed at a Strouhal
  frequency of 0.21,
* Bernoulli pressure, analytic vorticity ``wz`` (the cluster variable the
  paper uses for this case), and
* a drag-coefficient time series oscillating at twice the shedding frequency
  around the Re~1e3 mean (Cd ≈ 1.0), phase-locked to the wake state.

The wake region occupies a small fraction of the domain but carries nearly
all the vorticity — exactly the structure Figs 1/3 use to show MaxEnt
capturing wake features that random sampling dilutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.fields import FlowField
from repro.utils.rng import resolve_rng

__all__ = ["CylinderConfig", "generate_cylinder"]


@dataclass
class CylinderConfig:
    """Geometry and wake parameters (lengths in cylinder diameters)."""

    nx: int = 120
    ny: int = 90
    x_range: tuple[float, float] = (-2.0, 10.0)
    y_range: tuple[float, float] = (-4.5, 4.5)
    radius: float = 0.5
    u_inf: float = 1.0
    strouhal: float = 0.21
    convection: float = 0.88  # vortex street convection speed / U_inf
    street_half_width: float = 0.55
    vortex_core: float = 0.35
    vortex_strength: float = 1.8
    cd_mean: float = 1.0
    cd_oscillation: float = 0.08
    noise: float = 0.0

    def __post_init__(self) -> None:
        if self.nx < 4 or self.ny < 4:
            raise ValueError("grid must be at least 4x4")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if not (self.x_range[0] < self.x_range[1] and self.y_range[0] < self.y_range[1]):
            raise ValueError("ranges must be increasing")

    @property
    def shedding_period(self) -> float:
        return 2.0 * self.radius / (self.strouhal * self.u_inf)


def _oseen_velocity(
    dx: np.ndarray, dy: np.ndarray, gamma: float, core: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Velocity and vorticity of one Oseen vortex at offset (dx, dy)."""
    r2 = dx**2 + dy**2
    r2_safe = np.where(r2 == 0, core**2 * 1e-6, r2)
    swirl = gamma / (2.0 * np.pi * r2_safe) * (1.0 - np.exp(-r2 / core**2))
    u = -swirl * dy
    v = swirl * dx
    wz = gamma / (np.pi * core**2) * np.exp(-r2 / core**2)
    return u, v, wz


def generate_cylinder(
    config: CylinderConfig | None = None,
    n_snapshots: int = 100,
    dt: float | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[list[FlowField], np.ndarray]:
    """Generate OF2D snapshots and the drag-coefficient time series.

    Returns ``(snapshots, drag)`` with ``len(snapshots) == len(drag) ==
    n_snapshots``.  Default ``dt`` resolves one shedding period in ~20 frames.
    """
    cfg = config or CylinderConfig()
    if n_snapshots < 1:
        raise ValueError("n_snapshots must be >= 1")
    rng = resolve_rng(rng)
    period = cfg.shedding_period
    if dt is None:
        dt = period / 20.0

    x = np.linspace(*cfg.x_range, cfg.nx)
    y = np.linspace(*cfg.y_range, cfg.ny)
    xx, yy = np.meshgrid(x, y, indexing="ij")
    r2 = xx**2 + yy**2
    inside = r2 <= cfg.radius**2
    r2_safe = np.where(inside, cfg.radius**2, r2)

    # Potential flow around the cylinder: uniform stream + doublet.
    a2 = cfg.radius**2
    u_pot = cfg.u_inf * (1.0 - a2 * (xx**2 - yy**2) / r2_safe**2)
    v_pot = -cfg.u_inf * 2.0 * a2 * xx * yy / r2_safe**2

    x_max = cfg.x_range[1]
    spacing = cfg.convection * cfg.u_inf * period  # streamwise vortex spacing
    snapshots: list[FlowField] = []
    drag = np.empty(n_snapshots)

    for frame in range(n_snapshots):
        t = frame * dt
        u = u_pot.copy()
        v = v_pot.copy()
        wz = np.zeros_like(u)
        # Vortices shed alternately from the upper (+) and lower (-) shear
        # layer every half period; vortex j was shed at t_j = j * period/2.
        n_alive = int(t / (period / 2.0)) + 1
        for j in range(n_alive):
            t_shed = j * period / 2.0
            age = t - t_shed
            if age < 0:
                continue
            sign = 1.0 if j % 2 == 0 else -1.0
            xc = cfg.radius + cfg.convection * cfg.u_inf * age
            if xc > x_max + spacing:
                continue
            yc = sign * cfg.street_half_width
            gamma = -sign * cfg.vortex_strength
            core = cfg.vortex_core * np.sqrt(1.0 + 0.15 * age / period)
            du, dv, dwz = _oseen_velocity(xx - xc, yy - yc, gamma, core)
            u += du
            v += dv
            wz += dwz
        if cfg.noise > 0:
            u += cfg.noise * rng.standard_normal(u.shape)
            v += cfg.noise * rng.standard_normal(v.shape)
        u[inside] = 0.0
        v[inside] = 0.0
        wz[inside] = 0.0
        p = 0.5 * cfg.u_inf**2 - 0.5 * (u**2 + v**2)  # Bernoulli, p_inf = 0
        p[inside] = 0.0

        phase = 2.0 * np.pi * t / period
        cd = cfg.cd_mean + cfg.cd_oscillation * np.cos(2.0 * phase)
        if cfg.noise > 0:
            cd += 0.1 * cfg.cd_oscillation * rng.standard_normal()
        drag[frame] = cd

        snapshots.append(
            FlowField(
                variables={"u": u, "v": v, "p": p, "wz": wz},
                time=t,
                meta={
                    "regime": "cylinder-wake",
                    "label": "OF2D",
                    "drag": cd,
                    "shedding_period": period,
                },
            )
        )
    return snapshots, drag
