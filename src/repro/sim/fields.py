"""Flow-field container and derived-variable registry.

A :class:`FlowField` is one solution snapshot: named variables on a common
grid plus a time stamp.  Derived variables (Table 1's K-means cluster
variables: vorticity ``wz``, enstrophy, dissipation ``ee``, potential
vorticity ``pv``) are computed on demand and cached.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.sim import spectral

__all__ = ["FlowField", "DERIVED_VARIABLES"]


def _need(field: FlowField, *names: str) -> list[np.ndarray]:
    missing = [n for n in names if n not in field.variables]
    if missing:
        raise KeyError(f"derived variable needs {missing}, available: {sorted(field.variables)}")
    return [field.variables[n] for n in names]


def _wz(field: FlowField) -> np.ndarray:
    u, v = _need(field, "u", "v")
    if field.ndim == 2:
        return spectral.vorticity(u, v)[0]
    (w,) = _need(field, "w")
    return spectral.vorticity(u, v, w)[2]


def _enstrophy(field: FlowField) -> np.ndarray:
    if field.ndim == 2:
        return _wz(field) ** 2
    u, v, w = _need(field, "u", "v", "w")
    return spectral.enstrophy(u, v, w)


def _dissipation(field: FlowField) -> np.ndarray:
    u, v, w = _need(field, "u", "v", "w")
    return spectral.dissipation_rate(u, v, w, nu=field.meta.get("nu", 1.0))


def _pv(field: FlowField) -> np.ndarray:
    """Potential vorticity q = omega . grad(rho) (SST's cluster variable)."""
    u, v, w = _need(field, "u", "v", "w")
    (r,) = _need(field, "r")
    wx, wy, wz = spectral.vorticity(u, v, w)
    gx = spectral.spectral_gradient(r, 0)
    gy = spectral.spectral_gradient(r, 1)
    gz = spectral.spectral_gradient(r, 2)
    # Background stratification contributes a mean gradient along gravity.
    g_axis = {"x": 0, "y": 1, "z": 2}.get(field.meta.get("gravity", "z"), 2)
    grads = [gx, gy, gz]
    grads[g_axis] = grads[g_axis] + field.meta.get("background_drho", 1.0)
    return wx * grads[0] + wy * grads[1] + wz * grads[2]


def _speed(field: FlowField) -> np.ndarray:
    comps = [field.variables[n] for n in ("u", "v", "w") if n in field.variables]
    if not comps:
        raise KeyError("speed needs at least one velocity component")
    return np.sqrt(sum(c**2 for c in comps))


#: name -> function(FlowField) -> array registry of derived variables.
DERIVED_VARIABLES: dict[str, Callable[[FlowField], np.ndarray]] = {
    "wz": _wz,
    "enstrophy": _enstrophy,
    "ee": _dissipation,
    "pv": _pv,
    "speed": _speed,
}


class FlowField:
    """One snapshot: named variables on a shared uniform grid.

    Parameters
    ----------
    variables:
        Mapping of variable name to array; all arrays must share a shape.
    time:
        Solution time of the snapshot.
    meta:
        Free-form metadata consumed by derived variables (``nu``, ``gravity``,
        ``background_drho``) and dataset descriptions.
    """

    def __init__(
        self,
        variables: dict[str, np.ndarray],
        time: float = 0.0,
        meta: dict | None = None,
    ) -> None:
        if not variables:
            raise ValueError("a FlowField needs at least one variable")
        shapes = {v.shape for v in variables.values()}
        if len(shapes) != 1:
            raise ValueError(f"variables must share a grid shape, got {shapes}")
        self.variables = dict(variables)
        self.time = float(time)
        self.meta = dict(meta or {})
        self._cache: dict[str, np.ndarray] = {}

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return next(iter(self.variables.values())).shape

    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    @property
    def n_points(self) -> int:
        return int(np.prod(self.grid_shape))

    def __contains__(self, name: str) -> bool:
        return name in self.variables or name in self._cache or name in DERIVED_VARIABLES

    def get(self, name: str) -> np.ndarray:
        """Fetch a stored or derived variable (derived results are cached)."""
        if name in self.variables:
            return self.variables[name]
        if name in self._cache:
            return self._cache[name]
        if name in DERIVED_VARIABLES:
            value = DERIVED_VARIABLES[name](self)
            self._cache[name] = value
            return value
        raise KeyError(
            f"unknown variable {name!r}; stored: {sorted(self.variables)}, "
            f"derivable: {sorted(DERIVED_VARIABLES)}"
        )

    __getitem__ = get

    def point_table(self, names: list[str]) -> np.ndarray:
        """Stack variables as a (n_points, len(names)) feature table."""
        if not names:
            raise ValueError("need at least one variable name")
        return np.column_stack([self.get(n).reshape(-1) for n in names])

    def nbytes(self) -> int:
        """Storage footprint of the stored (not derived) variables."""
        return int(sum(v.nbytes for v in self.variables.values()))
