"""SST-like stably stratified turbulence snapshot sequences.

Mirrors the de Bruyn Kops ensemble: an array of Taylor-Green vortices
transitions to turbulence and then re-laminarizes under stabilizing buoyancy.
We initialize the classic TG vortex array plus a small broadband
perturbation and evolve the Boussinesq pseudo-spectral solver with Brunt-
Väisälä frequency N > 0, saving snapshots along the way.  The resulting
fields are *anisotropic* — layered, with strong vertical gradients — which is
the property that makes MaxEnt shine in the paper (rare, information-rich
regions concentrated in thin layers).

Variables per snapshot: u, v, w, r (density perturbation, = -buoyancy up to
scale), p, plus derived pv (potential vorticity, the SST K-means cluster
variable) and ee (dissipation).
"""

from __future__ import annotations

import numpy as np

from repro.sim.fields import FlowField
from repro.sim.navier_stokes import NSConfig, SpectralNS3D
from repro.sim.spectral import solenoidal_random_field
from repro.utils.rng import resolve_rng

__all__ = ["generate_stratified", "stream_stratified", "taylor_green_velocity"]

_AXES = {"x": 0, "y": 1, "z": 2}


def taylor_green_velocity(
    shape: tuple[int, int, int], k0: int = 2
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Taylor-Green vortex array on [0, 2*pi)^3 (divergence-free)."""
    if k0 < 1:
        raise ValueError("k0 must be >= 1")
    x, y, z = (
        np.linspace(0.0, 2.0 * np.pi, n, endpoint=False).reshape(
            [-1 if a == ax else 1 for a in range(3)]
        )
        for ax, n in enumerate(shape)
    )
    u = np.broadcast_to(np.cos(k0 * x) * np.sin(k0 * y) * np.sin(k0 * z), shape).copy()
    v = np.broadcast_to(-np.sin(k0 * x) * np.cos(k0 * y) * np.sin(k0 * z), shape).copy()
    w = np.zeros(shape)
    return u, v, w


def generate_stratified(
    shape: tuple[int, int, int] = (32, 32, 32),
    n_snapshots: int = 8,
    steps_per_snapshot: int = 10,
    nu: float = 8e-3,
    n_buoyancy: float = 2.0,
    gravity: str = "z",
    forced: bool = False,
    perturbation: float = 0.1,
    dt: float = 2.5e-3,
    rng: np.random.Generator | int | None = None,
) -> list[FlowField]:
    """Evolve TG-initialized stratified turbulence, returning snapshots.

    Materializes :func:`stream_stratified`; in-situ consumers
    (:class:`repro.data.sources.SimulationSource`) iterate the stream
    directly and never hold more than a rolling window of snapshots.
    """
    return list(stream_stratified(
        shape=shape, n_snapshots=n_snapshots, steps_per_snapshot=steps_per_snapshot,
        nu=nu, n_buoyancy=n_buoyancy, gravity=gravity, forced=forced,
        perturbation=perturbation, dt=dt, rng=rng,
    ))


def stream_stratified(
    shape: tuple[int, int, int] = (32, 32, 32),
    n_snapshots: int = 8,
    steps_per_snapshot: int = 10,
    nu: float = 8e-3,
    n_buoyancy: float = 2.0,
    gravity: str = "z",
    forced: bool = False,
    perturbation: float = 0.1,
    dt: float = 2.5e-3,
    rng: np.random.Generator | int | None = None,
):
    """Yield stratified-turbulence snapshots as the solver advances.

    The in-situ producer: each snapshot is handed to the consumer the moment
    the solver reaches it, so sampling can run concurrently with the
    simulation and nothing needs to be materialized.  ``forced=True``
    approximates the SST-P1F100 configuration (statistically stationary
    forced stratified turbulence) by holding low-shell energy constant;
    ``forced=False`` matches the transient SST-P1F4 run.
    """
    if n_snapshots < 1:
        raise ValueError("n_snapshots must be >= 1")
    rng = resolve_rng(rng)
    u, v, w = taylor_green_velocity(shape)
    pu, pv_, pw = solenoidal_random_field(shape, k_peak=4.0, rng=rng)
    u, v, w = u + perturbation * pu, v + perturbation * pv_, w + perturbation * pw

    cfg = NSConfig(
        shape=shape,
        nu=nu,
        dt=dt,
        n_buoyancy=n_buoyancy,
        gravity=gravity,
        forcing_kmax=2.0 if forced else 0.0,
    )
    solver = SpectralNS3D(cfg, velocity=(u, v, w))

    for _ in range(n_snapshots):
        solver.step(steps_per_snapshot)
        uu, vv, ww = solver.velocity()
        b = solver.buoyancy()
        yield FlowField(
            variables={
                "u": uu,
                "v": vv,
                "w": ww,
                "r": -b,  # density perturbation is minus buoyancy (scaled)
                "rhoy": -b,
                "p": solver.pressure(),
            },
            time=solver.t,
            meta={
                "nu": nu,
                "gravity": gravity,
                "background_drho": n_buoyancy**2,
                "regime": "stratified",
                "label": "SST",
            },
        )
