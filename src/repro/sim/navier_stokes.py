"""Incompressible pseudo-spectral Navier-Stokes solver (3-D, periodic).

A miniature of the paper's DNS substrates (GESTS's Fourier pseudo-spectral
code; the SST ensemble's stratified Boussinesq runs): rotational-form
nonlinear term evaluated in physical space, differentiation and time
advancement in wavenumber space, 2/3-rule dealiasing, RK2 with an exact
integrating factor for viscosity, optional Boussinesq buoyancy (stable
stratification with frequency N) and optional low-wavenumber forcing that
holds the energy of the forced shells constant.

Pressure is diagnosed from the spectral Poisson equation, which is also how
GESTS post-processes its checkpoints ("solution checkpoints are stored in
wavenumber space").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.spectral import solenoidal_random_field, wavenumber_grid
from repro.utils.rng import resolve_rng

__all__ = ["NSConfig", "SpectralNS3D"]

_AXES = {"x": 0, "y": 1, "z": 2}


@dataclass
class NSConfig:
    """Solver parameters.

    ``n_buoyancy`` is the Brunt-Väisälä frequency N; 0 disables stratification.
    ``forcing_kmax > 0`` freezes the kinetic energy of shells ``k <= forcing_kmax``
    at their initial value (statistically stationary forced turbulence).
    """

    shape: tuple[int, int, int] = (32, 32, 32)
    nu: float = 5e-3
    kappa: float | None = None  # scalar diffusivity; defaults to nu (Pr = 1)
    dt: float = 5e-3
    n_buoyancy: float = 0.0
    gravity: str = "z"
    forcing_kmax: float = 0.0

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(n < 4 for n in self.shape):
            raise ValueError("shape must be 3 axes of at least 4 points")
        if any(n % 2 for n in self.shape):
            raise ValueError("grid sizes must be even (rfft layout)")
        if self.nu <= 0:
            raise ValueError("nu must be positive")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.gravity not in _AXES:
            raise ValueError("gravity must be 'x', 'y', or 'z'")
        if self.kappa is None:
            self.kappa = self.nu


class SpectralNS3D:
    """Pseudo-spectral incompressible NS with optional Boussinesq buoyancy.

    State lives in spectral space as ``self.uh`` (3 components) and ``self.bh``
    (buoyancy, used when stratified).  Physical-space views are exposed via
    :meth:`velocity` and :meth:`buoyancy`.
    """

    def __init__(
        self,
        config: NSConfig,
        velocity: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        buoyancy: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config
        shape = config.shape
        rng = resolve_rng(rng)
        if velocity is None:
            velocity = solenoidal_random_field(shape, rng=rng)
        if any(c.shape != shape for c in velocity):
            raise ValueError("velocity components must match config.shape")
        self.ks = wavenumber_grid(shape, real=True)
        self.k2 = sum(k**2 for k in self.ks)
        self.k2_safe = np.where(self.k2 == 0, 1.0, self.k2)
        # 2/3 dealiasing mask (also drops Nyquist modes, which keeps every
        # odd-in-k multiplication Hermitian-consistent).
        self.dealias = np.ones(self.k2.shape, dtype=bool)
        for ax, n in enumerate(shape):
            cutoff = n // 3
            self.dealias &= np.abs(self.ks[ax]) <= cutoff
        self.uh = [np.fft.rfftn(c) * self.dealias for c in velocity]
        self._project()
        if buoyancy is None:
            buoyancy = np.zeros(shape)
        if buoyancy.shape != shape:
            raise ValueError("buoyancy must match config.shape")
        self.bh = np.fft.rfftn(buoyancy) * self.dealias
        self.g_axis = _AXES[config.gravity]
        self.t = 0.0
        self.step_count = 0
        if config.forcing_kmax > 0:
            self._forced = self.k2 <= config.forcing_kmax**2
            self._forced &= self.k2 > 0
            self._target_shell_energy = self._shell_energy(self._forced)
        else:
            self._forced = None
            self._target_shell_energy = 0.0

    # Spectral helpers ---------------------------------------------------------

    def _project(self) -> None:
        """Leray-project uh onto divergence-free fields."""
        div = sum(k * f for k, f in zip(self.ks, self.uh))
        for i in range(3):
            self.uh[i] = self.uh[i] - self.ks[i] * div / self.k2_safe
            self.uh[i][self.k2 == 0] = 0.0

    def _shell_energy(self, mask: np.ndarray) -> float:
        weight = np.ones(self.k2.shape)
        weight[..., 1:] = 2.0
        if self.config.shape[2] % 2 == 0:
            weight[..., -1] = 1.0
        n_total = float(np.prod(self.config.shape))
        return float(
            sum((weight[mask] * 0.5 * np.abs(f[mask] / n_total) ** 2).sum() for f in self.uh)
        )

    def _rhs(
        self, uh: list[np.ndarray], bh: np.ndarray
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Nonlinear + buoyancy RHS (viscosity handled by integrating factor)."""
        shape = self.config.shape
        u = [np.fft.irfftn(f, s=shape, axes=(0, 1, 2)) for f in uh]
        # Rotational form: u x omega (the grad(|u|^2/2) part folds into pressure).
        omega_h = [
            1j * (self.ks[1] * uh[2] - self.ks[2] * uh[1]),
            1j * (self.ks[2] * uh[0] - self.ks[0] * uh[2]),
            1j * (self.ks[0] * uh[1] - self.ks[1] * uh[0]),
        ]
        om = [np.fft.irfftn(f, s=shape, axes=(0, 1, 2)) for f in omega_h]
        cross = [
            u[1] * om[2] - u[2] * om[1],
            u[2] * om[0] - u[0] * om[2],
            u[0] * om[1] - u[1] * om[0],
        ]
        rhs_u = [np.fft.rfftn(c) * self.dealias for c in cross]

        n_bv = self.config.n_buoyancy
        if n_bv != 0.0:
            b = np.fft.irfftn(bh, s=shape, axes=(0, 1, 2))
            rhs_u[self.g_axis] = rhs_u[self.g_axis] + np.fft.rfftn(b) * self.dealias
            adv_b = sum(
                u[i] * np.fft.irfftn(1j * self.ks[i] * bh, s=shape, axes=(0, 1, 2)) for i in range(3)
            )
            rhs_b = -np.fft.rfftn(adv_b) * self.dealias - n_bv**2 * uh[self.g_axis]
        else:
            rhs_b = np.zeros_like(bh)

        # Project momentum RHS (removes the implied pressure gradient).
        div = sum(k * f for k, f in zip(self.ks, rhs_u))
        for i in range(3):
            rhs_u[i] = rhs_u[i] - self.ks[i] * div / self.k2_safe
        return rhs_u, rhs_b

    # Time stepping -------------------------------------------------------------

    def step(self, n: int = 1) -> None:
        """Advance `n` RK2 (midpoint) steps with exact viscous decay."""
        cfg = self.config
        dt = cfg.dt
        e_half_u = np.exp(-cfg.nu * self.k2 * dt / 2.0)
        e_half_b = np.exp(-cfg.kappa * self.k2 * dt / 2.0)
        for _ in range(n):
            k1u, k1b = self._rhs(self.uh, self.bh)
            mid_u = [(self.uh[i] + 0.5 * dt * k1u[i]) * e_half_u for i in range(3)]
            mid_b = (self.bh + 0.5 * dt * k1b) * e_half_b
            k2u, k2b = self._rhs(mid_u, mid_b)
            self.uh = [
                self.uh[i] * e_half_u**2 + dt * e_half_u * k2u[i] for i in range(3)
            ]
            self.bh = self.bh * e_half_b**2 + dt * e_half_b * k2b
            self._project()
            if self._forced is not None:
                self._apply_forcing()
            self.t += dt
            self.step_count += 1

    def _apply_forcing(self) -> None:
        """Rescale forced shells to hold their kinetic energy constant."""
        assert self._forced is not None
        current = self._shell_energy(self._forced)
        if current <= 0:
            return
        scale = np.sqrt(self._target_shell_energy / current)
        for i in range(3):
            self.uh[i][self._forced] *= scale

    # Diagnostics ----------------------------------------------------------------

    def velocity(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        shape = self.config.shape
        return tuple(np.fft.irfftn(f, s=shape, axes=(0, 1, 2)) for f in self.uh)  # type: ignore[return-value]

    def buoyancy(self) -> np.ndarray:
        return np.fft.irfftn(self.bh, s=self.config.shape, axes=(0, 1, 2))

    def pressure(self) -> np.ndarray:
        """Diagnose pressure from the spectral Poisson equation."""
        shape = self.config.shape
        u = [np.fft.irfftn(f, s=shape, axes=(0, 1, 2)) for f in self.uh]
        # div(u . grad u) in spectral space, convective form.
        div_nl = np.zeros(self.k2.shape, dtype=complex)
        for i in range(3):
            for j in range(3):
                dui_dxj = np.fft.irfftn(1j * self.ks[j] * self.uh[i], s=shape, axes=(0, 1, 2))
                term = np.fft.rfftn(u[j] * dui_dxj) * self.dealias
                div_nl = div_nl + 1j * self.ks[i] * term
        rhs = -div_nl
        if self.config.n_buoyancy != 0.0:
            rhs = rhs + 1j * self.ks[self.g_axis] * self.bh
        ph = rhs / (-self.k2_safe)
        ph[self.k2 == 0] = 0.0
        return np.fft.irfftn(ph, s=shape, axes=(0, 1, 2))

    def kinetic_energy(self) -> float:
        """Mean kinetic energy 0.5 <|u|^2>."""
        u, v, w = self.velocity()
        return float(0.5 * np.mean(u**2 + v**2 + w**2))

    def max_divergence(self) -> float:
        """Max |div u| in physical space (incompressibility check)."""
        div_h = sum(1j * k * f for k, f in zip(self.ks, self.uh))
        return float(np.abs(np.fft.irfftn(div_h, s=self.config.shape, axes=(0, 1, 2))).max())

    def cfl(self) -> float:
        """Advective CFL number of the current state."""
        u, v, w = self.velocity()
        umax = max(np.abs(u).max(), np.abs(v).max(), np.abs(w).max())
        dx = 2.0 * np.pi / max(self.config.shape)
        return float(umax * self.config.dt / dx)
