"""Synthetic DNS substrates.

The paper's datasets come from production DNS campaigns (OpenFOAM cylinder
runs, the SST stratified-turbulence ensemble, GESTS exascale isotropic
turbulence) totalling hundreds of terabytes.  Offline we regenerate
*statistically equivalent* fields with the properties the paper's results
hinge on:

* :mod:`repro.sim.spectral` — Fourier-space utilities: wavenumber grids,
  divergence-free random fields with prescribed energy spectra, radial
  spectra, derived quantities (vorticity, enstrophy, dissipation, potential
  vorticity).
* :mod:`repro.sim.navier_stokes` — a real incompressible pseudo-spectral
  Navier-Stokes solver (2/3-dealiased, RK2, integrating-factor viscosity)
  with optional Boussinesq stratification and low-wavenumber forcing; the
  GESTS and SST generators *evolve* their fields with it rather than just
  drawing noise.
* :mod:`repro.sim.isotropic` — GESTS-like forced isotropic turbulence
  (Kolmogorov -5/3 inertial range; statistically isotropic, hence the
  regime where the paper finds sampling methods tie).
* :mod:`repro.sim.stratified` — SST-like stably stratified turbulence:
  Taylor-Green initialization, transition, buoyancy-dominated anisotropic
  layering (the regime where MaxEnt wins).
* :mod:`repro.sim.cylinder` — OF2D: a Kármán vortex-street wake model with
  a drag-coefficient time series (kinematic Oseen-vortex superposition —
  documented substitution for the OpenFOAM run).
* :mod:`repro.sim.combustion` — TC2D: wrinkled-flame progress-variable
  fields with the bimodal PDF that UIPS was designed around.
"""

from repro.sim.fields import FlowField, DERIVED_VARIABLES
from repro.sim.spectral import (
    wavenumber_grid,
    solenoidal_random_field,
    von_karman_spectrum,
    radial_energy_spectrum,
)
from repro.sim.navier_stokes import SpectralNS3D, NSConfig
from repro.sim.isotropic import generate_isotropic
from repro.sim.stratified import generate_stratified
from repro.sim.cylinder import generate_cylinder, CylinderConfig
from repro.sim.combustion import generate_combustion

__all__ = [
    "FlowField",
    "DERIVED_VARIABLES",
    "wavenumber_grid",
    "solenoidal_random_field",
    "von_karman_spectrum",
    "radial_energy_spectrum",
    "SpectralNS3D",
    "NSConfig",
    "generate_isotropic",
    "generate_stratified",
    "generate_cylinder",
    "CylinderConfig",
    "generate_combustion",
]
